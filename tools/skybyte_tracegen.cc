/**
 * @file
 * Trace generator, standing in for the artifact's PIN capture pipeline
 * (appendix §G "Capturing Custom Program's Traces"): renders any
 * registered workload spec into the binary trace file format of
 * src/trace/trace_file.h so it can be replayed repeatedly — by
 * skybyte_sim, by TraceFileWorkload-based experiments, or by
 * skybyte_traceinfo for offline analysis. The workload is drained
 * through the batched TraceBatch contract (TraceCursor per thread).
 *
 *   skybyte_tracegen -w <workload-spec> -o <path> [-n threads]
 *                    [-i instr-per-thread] [-m footprint-mb] [-s seed]
 *                    [--format=flat|tracelog] [--block-records=N]
 *
 * <workload-spec> is a registered name, optionally parameterized:
 * "ycsb", "zipf:theta=0.99,footprint=64M", ...
 *
 * --format=tracelog writes the seekable compressed STRC format
 * (trace/trace_log/trace_log.h) instead of the flat SKYTRC01 file;
 * both replay through the same "tracelog:path=..." workload spec.
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "trace/mix_workload.h"
#include "trace/trace_file.h"
#include "trace/trace_log/trace_log.h"
#include "trace/workload.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_tracegen -w <workload-spec> -o <path>"
        " [-n threads]\n"
        "                        [-i instr-per-thread] [-m footprint-mb]"
        " [-s seed]\n"
        "                        [--format=flat|tracelog]"
        " [--block-records=N]\n"
        "workload specs: name[:key=value,...], e.g."
        " zipf:theta=0.99,footprint=64M\n"
        "co-location:    mix:tenant=spec[;tenant=spec]..., e.g."
        " \"mix:a=zipf:footprint=4G;b=scan:threads=2\"\nregistered:");
    for (const std::string &name : registeredWorkloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name;
    std::string out_path;
    std::string format = "flat";
    std::uint32_t block_records = kTraceLogDefaultBlockRecords;
    WorkloadParams params;
    params.instrPerThread = 200'000;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "-w") {
                workload_name = next();
            } else if (arg == "-o") {
                out_path = next();
            } else if (arg == "-n") {
                params.numThreads = std::stoi(next());
            } else if (arg == "-i") {
                params.instrPerThread = std::stoull(next());
            } else if (arg == "-m") {
                params.footprintBytes =
                    std::stoull(next()) * 1024 * 1024;
            } else if (arg == "-s") {
                params.seed = std::stoull(next());
            } else if (arg.rfind("--format=", 0) == 0) {
                format = arg.substr(9);
            } else if (arg.rfind("--block-records=", 0) == 0) {
                block_records = static_cast<std::uint32_t>(
                    std::stoul(arg.substr(16)));
            } else {
                usage();
                return 2;
            }
        }
        if (workload_name.empty() || out_path.empty()
            || (format != "flat" && format != "tracelog")) {
            usage();
            return 2;
        }
        auto workload = makeWorkload(workload_name, params);
        if (const auto *mix =
                dynamic_cast<const MixWorkload *>(workload.get())) {
            // Expand the mix so the capture's tenant layout (thread
            // split, namespaced device regions) is on record next to
            // the trace file.
            for (const MixTenant &t : mix->tenants())
                std::fputs(describeMixTenant(t).c_str(), stdout);
        }
        const std::uint64_t records =
            format == "tracelog"
                ? writeTraceLog(out_path, *workload, block_records)
                : writeTraceFile(out_path, *workload);
        std::printf("wrote %llu records (%d threads, %s, %.1f MB "
                    "footprint, %s) to %s\n",
                    static_cast<unsigned long long>(records),
                    workload->numThreads(), workload->name().c_str(),
                    static_cast<double>(workload->footprintBytes())
                        / (1024.0 * 1024.0),
                    format.c_str(), out_path.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_tracegen: %s\n", e.what());
        return 1;
    }
    return 0;
}
