/**
 * @file
 * Driver for the registered experiment sweeps:
 *
 *   skybyte_sweep --list
 *       Enumerate every registered figure/table/ablation sweep.
 *   skybyte_sweep --points <name>
 *       Print the labeled point grid of one sweep.
 *   skybyte_sweep --run <name> [--shard i/N] [-o out.json] [-j n]
 *       Run one sweep (or one shard of it) on the in-process worker
 *       pool and write the mergeable JSON report. "-o -" writes to
 *       stdout. Reports are committed write-temp-then-rename, so an
 *       interrupted run never leaves a truncated file.
 *   skybyte_sweep --run <name> --run-dir <dir> [--timeout-s S]
 *                 [--retries N] [--backoff-ms MS] [--resume]
 *                 [--require-complete]
 *       Hardened execution (sim/run_executor.h): every point runs in
 *       its own child process under a per-point wall-clock timeout,
 *       failed/timed-out points retry with seeded exponential backoff,
 *       each attempt is journaled to <dir>/journal.jsonl and each
 *       result committed to <dir>/points/<i>.json — so --resume after
 *       a driver crash re-runs only incomplete points. Points that
 *       still fail degrade the report to a partial one with a failure
 *       manifest instead of aborting the sweep; --require-complete
 *       turns that into a hard error.
 *   skybyte_sweep --merge a.json b.json... [-o out.json]
 *                 [--require-complete]
 *       Recombine shard reports; the output is byte-identical to an
 *       unsharded run of the same sweep. Partial shard reports merge
 *       too (their failure manifests combine); --require-complete
 *       rejects a merge whose result is not fully successful.
 *   skybyte_sweep --diff a.json b.json [--tol pct]
 *       Compare two reports of the same sweep: structure and ids must
 *       match exactly, numeric metrics may drift up to --tol percent
 *       (default 0 = numerically equal). Points that failed in one
 *       report but not the other count as drifts.
 *
 * Exit codes (the CLI contract, also in the README):
 *   0  success
 *   1  usage error
 *   2  runtime error (I/O, malformed report, simulation failure)
 *   3  the sweep ran, but some point hit the in-sim safety tick limit
 *   4  --diff found drift beyond tolerance
 *   5  partial failure: some points failed permanently; the partial
 *      report (with its failure manifest) WAS written
 *   6  run-dir/resume state error (missing or mismatched journal,
 *      refusing to clobber), or incomplete result under
 *      --require-complete
 *
 * Scale knobs are the bench ones (SKYBYTE_BENCH_INSTR/THREADS/
 * FOOTPRINT_MB, SKYBYTE_BENCH_NTHREADS); SKYBYTE_SWEEP_SHARD is the
 * environment form of --shard, which CI uses to fan a sweep across
 * jobs. SKYBYTE_BACKOFF_MS overrides the retry backoff unit and
 * SKYBYTE_FAULT injects deterministic child faults (tests/CI only).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fs.h"
#include "sim/report.h"
#include "sim/run_executor.h"
#include "sim/sweep.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_sweep --list\n"
        "       skybyte_sweep --points <name>\n"
        "       skybyte_sweep --run <name> [--shard i/N] [-o out.json]"
        " [-j nthreads]\n"
        "                     [--run-dir dir [--timeout-s secs]"
        " [--retries n]\n"
        "                     [--backoff-ms ms] [--resume]"
        " [--require-complete]]\n"
        "       skybyte_sweep --merge a.json b.json... [-o out.json]"
        " [--require-complete]\n"
        "       skybyte_sweep --diff a.json b.json [--tol pct]\n"
        "exit codes: 0 ok; 1 usage; 2 error; 3 sim-timeout point(s);\n"
        "            4 diff drift; 5 partial failure (manifest"
        " written);\n"
        "            6 run-dir/resume state error or --require-complete"
        " violation\n"
        "env: SKYBYTE_SIM_LANES=N spends N host threads per point via\n"
        "     the parallel kernel (1..64; results are bit-identical"
        " for\n"
        "     every value — a wall-clock knob, like lanes= in configs)\n");
}

int
listSweeps()
{
    std::printf("%-16s %7s  %s\n", "name", "points", "title");
    for (const SweepSpec *spec : registeredSweeps()) {
        std::printf("%-16s %7zu  %s\n", spec->name.c_str(),
                    spec->pointCount(), spec->title.c_str());
    }
    return 0;
}

int
listPoints(const std::string &name)
{
    const SweepSpec *spec = findSweep(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "skybyte_sweep: unknown sweep: %s\n",
                     name.c_str());
        return 1;
    }
    const ExperimentOptions opt = spec->optionsFromEnv();
    for (const LabeledPoint &lp : spec->expand(opt)) {
        std::printf("%4zu  %s\n", lp.index, lp.id().c_str());
    }
    return 0;
}

void
writeReport(const SweepReport &report, const std::string &path)
{
    const std::string text = toJson(report);
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    writeFileAtomic(path, text);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

std::string
defaultOutPath(const std::string &name, const ShardSpec &shard)
{
    std::string out_path = name;
    if (shard.count > 1) {
        out_path += ".shard" + std::to_string(shard.index) + "_"
                    + std::to_string(shard.count);
    }
    return out_path + ".json";
}

/** All --run/--merge knobs in one place. */
struct RunFlags
{
    std::string runDir;
    double timeoutSec = 0.0;
    std::uint32_t retries = 0;
    std::int64_t backoffMs = -1; ///< <0 = SKYBYTE_BACKOFF_MS/default
    bool resume = false;
    bool requireComplete = false;
};

int
runIsolated(const SweepSpec &spec, const ShardSpec &shard,
            const std::string &out_path, int nthreads,
            const RunFlags &flags)
{
    const ExperimentOptions opt = spec.optionsFromEnv();
    std::size_t total_points = 0;
    const std::vector<LabeledPoint> points =
        expandShard(spec, opt, shard, total_points);

    ExecutorOptions exec_opt = executorOptionsFromEnv();
    exec_opt.runDir = flags.runDir;
    exec_opt.nthreads = nthreads;
    exec_opt.retries = flags.retries;
    exec_opt.timeoutMs =
        static_cast<std::uint64_t>(flags.timeoutSec * 1000.0);
    if (flags.backoffMs >= 0) {
        exec_opt.backoffBaseMs =
            static_cast<std::uint64_t>(flags.backoffMs);
    }
    exec_opt.resume = flags.resume;

    const IsolatedExecution exec = runSweepIsolated(
        spec.name, total_points, shard, points, exec_opt);
    const SweepReport report =
        buildIsolatedReport(spec.name, total_points, shard, exec);
    writeReport(report, out_path);

    const std::size_t ok = exec.countWith(PointStatus::Ok);
    const std::size_t resumed = [&] {
        std::size_t n = 0;
        for (const PointOutcome &o : exec.outcomes)
            n += o.resumedFromDisk ? 1 : 0;
        return n;
    }();
    std::fprintf(stderr,
                 "%s: %zu/%zu points ok (%zu resumed, %zu failed, "
                 "%zu timed out; shard %u/%u)%s\n",
                 spec.name.c_str(), ok, exec.outcomes.size(), resumed,
                 exec.countWith(PointStatus::Failed),
                 exec.countWith(PointStatus::Timeout), shard.index,
                 shard.count,
                 exec.anySimTimeout() ? " [SIM TIMEOUT]" : "");
    for (const PointOutcome &o : exec.outcomes) {
        if (o.status != PointStatus::Ok) {
            std::fprintf(stderr, "  point %zu %s: %s after %u "
                         "attempt(s): %s\n",
                         o.index, o.id.c_str(),
                         pointStatusName(o.status), o.attempts,
                         o.detail.c_str());
        }
    }
    if (!exec.complete()) {
        if (flags.requireComplete) {
            std::fprintf(stderr,
                         "skybyte_sweep: incomplete sweep with "
                         "--require-complete\n");
            return 6;
        }
        return 5;
    }
    return exec.anySimTimeout() ? 3 : 0;
}

int
runSweepCmd(const std::string &name, const std::string &shard_arg,
            std::string out_path, int nthreads, const RunFlags &flags)
{
    const SweepSpec *spec = findSweep(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "skybyte_sweep: unknown sweep: %s\n",
                     name.c_str());
        return 1;
    }
    const ShardSpec shard =
        shard_arg.empty() ? shardFromEnv() : parseShard(shard_arg);
    if (out_path.empty())
        out_path = defaultOutPath(name, shard);

    if (!flags.runDir.empty())
        return runIsolated(*spec, shard, out_path, nthreads, flags);

    const ExperimentOptions opt = spec->optionsFromEnv();
    const SweepExecution exec =
        runSweepShard(*spec, opt, shard, nthreads);

    SweepReport report;
    report.sweep = spec->name;
    report.totalPoints = exec.totalPoints;
    report.shardIndex = shard.index;
    report.shardCount = shard.count;
    bool timed_out = false;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
        timed_out = timed_out || exec.results[i].timedOut;
    }
    writeReport(report, out_path);
    std::fprintf(stderr, "%s: %zu/%zu points (shard %u/%u)%s\n",
                 spec->name.c_str(), exec.points.size(),
                 exec.totalPoints, shard.index, shard.count,
                 timed_out ? " [TIMED OUT]" : "");
    return timed_out ? 3 : 0;
}

SweepReport
readReportFile(const std::string &path)
{
    return parseSweepReport(readFileText(path));
}

int
mergeCmd(const std::vector<std::string> &paths, std::string out_path,
         bool require_complete)
{
    std::vector<SweepReport> shards;
    shards.reserve(paths.size());
    for (const std::string &path : paths)
        shards.push_back(readReportFile(path));
    const SweepReport merged = mergeSweepReports(shards);
    if (out_path.empty())
        out_path = merged.sweep + ".json";
    writeReport(merged, out_path);
    if (!merged.failures.empty()) {
        std::fprintf(stderr,
                     "%s: merged report is partial (%zu failed "
                     "point(s))\n",
                     merged.sweep.c_str(), merged.failures.size());
        return require_complete ? 6 : 5;
    }
    return 0;
}

int
diffCmd(const std::vector<std::string> &paths, double tol_pct)
{
    if (paths.size() != 2)
        throw std::invalid_argument("--diff needs exactly two reports");
    const SweepReport a = readReportFile(paths[0]);
    const SweepReport b = readReportFile(paths[1]);
    const std::vector<std::string> drifts =
        diffSweepReports(a, b, tol_pct);
    if (drifts.empty()) {
        std::fprintf(stderr,
                     "%s: %zu points agree within %g%% tolerance\n",
                     a.sweep.c_str(), a.entries.size(), tol_pct);
        return 0;
    }
    constexpr std::size_t kMaxShown = 50;
    for (std::size_t i = 0; i < drifts.size() && i < kMaxShown; ++i)
        std::fprintf(stderr, "%s\n", drifts[i].c_str());
    if (drifts.size() > kMaxShown) {
        std::fprintf(stderr, "... and %zu more\n",
                     drifts.size() - kMaxShown);
    }
    std::fprintf(stderr, "%s: %zu metric(s) drifted beyond %g%%\n",
                 a.sweep.c_str(), drifts.size(), tol_pct);
    return 4;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string name;
    std::string shard_arg;
    std::string out_path;
    std::vector<std::string> merge_paths;
    int nthreads = 0;
    double tol_pct = 0.0;
    RunFlags flags;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "--list") {
                mode = "list";
            } else if (arg == "--points") {
                mode = "points";
                name = next();
            } else if (arg == "--run") {
                mode = "run";
                name = next();
            } else if (arg == "--merge") {
                mode = "merge";
            } else if (arg == "--diff") {
                mode = "diff";
            } else if (arg == "--tol") {
                tol_pct = std::stod(next());
            } else if (arg == "--shard") {
                shard_arg = next();
            } else if (arg == "--run-dir") {
                flags.runDir = next();
            } else if (arg == "--timeout-s") {
                flags.timeoutSec = std::stod(next());
            } else if (arg == "--retries") {
                flags.retries =
                    static_cast<std::uint32_t>(std::stoul(next()));
            } else if (arg == "--backoff-ms") {
                flags.backoffMs = std::stol(next());
            } else if (arg == "--resume") {
                flags.resume = true;
            } else if (arg == "--require-complete") {
                flags.requireComplete = true;
            } else if (arg == "-o" || arg == "--output") {
                out_path = next();
            } else if (arg == "-j" || arg == "--nthreads") {
                nthreads = std::stoi(next());
            } else if (arg == "-h" || arg == "--help") {
                usage();
                return 0;
            } else if ((mode == "merge" || mode == "diff")
                       && !arg.empty() && arg[0] != '-') {
                merge_paths.push_back(arg);
            } else {
                throw std::invalid_argument("unknown option: " + arg);
            }
        }
        if (mode.empty())
            throw std::invalid_argument("pick one of --list/--points/"
                                        "--run/--merge/--diff");
        if (flags.runDir.empty()
            && (flags.resume || flags.retries != 0
                || flags.timeoutSec != 0.0)) {
            throw std::invalid_argument(
                "--resume/--retries/--timeout-s need --run-dir");
        }

        if (mode == "list")
            return listSweeps();
        if (mode == "points")
            return listPoints(name);
        if (mode == "run")
            return runSweepCmd(name, shard_arg, out_path, nthreads,
                               flags);
        if (mode == "diff")
            return diffCmd(merge_paths, tol_pct);
        if (merge_paths.empty())
            throw std::invalid_argument("--merge needs report files");
        return mergeCmd(merge_paths, out_path, flags.requireComplete);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "skybyte_sweep: %s\n", e.what());
        usage();
        return 1;
    } catch (const RunDirError &e) {
        std::fprintf(stderr, "skybyte_sweep: %s\n", e.what());
        return 6;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_sweep: %s\n", e.what());
        return 2;
    }
}
