/**
 * @file
 * Driver for the registered experiment sweeps:
 *
 *   skybyte_sweep --list
 *       Enumerate every registered figure/table/ablation sweep.
 *   skybyte_sweep --points <name>
 *       Print the labeled point grid of one sweep.
 *   skybyte_sweep --run <name> [--shard i/N] [-o out.json] [-j n]
 *       Run one sweep (or one shard of it) on the worker pool and
 *       write the mergeable JSON report. "-o -" writes to stdout.
 *       Exits 3 when any point timed out.
 *   skybyte_sweep --merge a.json b.json... [-o out.json]
 *       Recombine shard reports; the output is byte-identical to an
 *       unsharded run of the same sweep.
 *   skybyte_sweep --diff a.json b.json [--tol pct]
 *       Compare two reports of the same sweep: structure and ids must
 *       match exactly, numeric metrics may drift up to --tol percent
 *       (default 0 = numerically equal). Prints each drift and exits 4
 *       when any exceeds tolerance — the regression gate CI uses in
 *       place of byte-exact diffs, which runner libm updates can break.
 *
 * Scale knobs are the bench ones (SKYBYTE_BENCH_INSTR/THREADS/
 * FOOTPRINT_MB, SKYBYTE_BENCH_NTHREADS); SKYBYTE_SWEEP_SHARD is the
 * environment form of --shard, which CI uses to fan a sweep across
 * jobs.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/sweep.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_sweep --list\n"
        "       skybyte_sweep --points <name>\n"
        "       skybyte_sweep --run <name> [--shard i/N] [-o out.json]"
        " [-j nthreads]\n"
        "       skybyte_sweep --merge a.json b.json... [-o out.json]\n"
        "       skybyte_sweep --diff a.json b.json [--tol pct]\n");
}

int
listSweeps()
{
    std::printf("%-16s %7s  %s\n", "name", "points", "title");
    for (const SweepSpec *spec : registeredSweeps()) {
        std::printf("%-16s %7zu  %s\n", spec->name.c_str(),
                    spec->pointCount(), spec->title.c_str());
    }
    return 0;
}

int
listPoints(const std::string &name)
{
    const SweepSpec *spec = findSweep(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "skybyte_sweep: unknown sweep: %s\n",
                     name.c_str());
        return 1;
    }
    const ExperimentOptions opt = spec->optionsFromEnv();
    for (const LabeledPoint &lp : spec->expand(opt)) {
        std::printf("%4zu  %s\n", lp.index, lp.id().c_str());
    }
    return 0;
}

void
writeReport(const SweepReport &report, const std::string &path)
{
    const std::string text = toJson(report);
    if (path == "-") {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open output file: " + path);
    out << text;
    if (!out)
        throw std::runtime_error("short write: " + path);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

int
runSweepCmd(const std::string &name, const std::string &shard_arg,
            std::string out_path, int nthreads)
{
    const SweepSpec *spec = findSweep(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "skybyte_sweep: unknown sweep: %s\n",
                     name.c_str());
        return 1;
    }
    const ShardSpec shard =
        shard_arg.empty() ? shardFromEnv() : parseShard(shard_arg);
    if (out_path.empty()) {
        out_path = name;
        if (shard.count > 1) {
            out_path += ".shard" + std::to_string(shard.index) + "_"
                        + std::to_string(shard.count);
        }
        out_path += ".json";
    }

    const ExperimentOptions opt = spec->optionsFromEnv();
    const SweepExecution exec =
        runSweepShard(*spec, opt, shard, nthreads);

    SweepReport report;
    report.sweep = spec->name;
    report.totalPoints = exec.totalPoints;
    report.shardIndex = shard.index;
    report.shardCount = shard.count;
    bool timed_out = false;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
        timed_out = timed_out || exec.results[i].timedOut;
    }
    writeReport(report, out_path);
    std::fprintf(stderr, "%s: %zu/%zu points (shard %u/%u)%s\n",
                 spec->name.c_str(), exec.points.size(),
                 exec.totalPoints, shard.index, shard.count,
                 timed_out ? " [TIMED OUT]" : "");
    return timed_out ? 3 : 0;
}

SweepReport
readReportFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open report: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseSweepReport(buf.str());
}

int
mergeCmd(const std::vector<std::string> &paths, std::string out_path)
{
    std::vector<SweepReport> shards;
    shards.reserve(paths.size());
    for (const std::string &path : paths)
        shards.push_back(readReportFile(path));
    const SweepReport merged = mergeSweepReports(shards);
    if (out_path.empty())
        out_path = merged.sweep + ".json";
    writeReport(merged, out_path);
    return 0;
}

int
diffCmd(const std::vector<std::string> &paths, double tol_pct)
{
    if (paths.size() != 2)
        throw std::invalid_argument("--diff needs exactly two reports");
    const SweepReport a = readReportFile(paths[0]);
    const SweepReport b = readReportFile(paths[1]);
    const std::vector<std::string> drifts =
        diffSweepReports(a, b, tol_pct);
    if (drifts.empty()) {
        std::fprintf(stderr,
                     "%s: %zu points agree within %g%% tolerance\n",
                     a.sweep.c_str(), a.entries.size(), tol_pct);
        return 0;
    }
    constexpr std::size_t kMaxShown = 50;
    for (std::size_t i = 0; i < drifts.size() && i < kMaxShown; ++i)
        std::fprintf(stderr, "%s\n", drifts[i].c_str());
    if (drifts.size() > kMaxShown) {
        std::fprintf(stderr, "... and %zu more\n",
                     drifts.size() - kMaxShown);
    }
    std::fprintf(stderr, "%s: %zu metric(s) drifted beyond %g%%\n",
                 a.sweep.c_str(), drifts.size(), tol_pct);
    return 4;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string name;
    std::string shard_arg;
    std::string out_path;
    std::vector<std::string> merge_paths;
    int nthreads = 0;
    double tol_pct = 0.0;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "--list") {
                mode = "list";
            } else if (arg == "--points") {
                mode = "points";
                name = next();
            } else if (arg == "--run") {
                mode = "run";
                name = next();
            } else if (arg == "--merge") {
                mode = "merge";
            } else if (arg == "--diff") {
                mode = "diff";
            } else if (arg == "--tol") {
                tol_pct = std::stod(next());
            } else if (arg == "--shard") {
                shard_arg = next();
            } else if (arg == "-o" || arg == "--output") {
                out_path = next();
            } else if (arg == "-j" || arg == "--nthreads") {
                nthreads = std::stoi(next());
            } else if (arg == "-h" || arg == "--help") {
                usage();
                return 0;
            } else if ((mode == "merge" || mode == "diff")
                       && !arg.empty() && arg[0] != '-') {
                merge_paths.push_back(arg);
            } else {
                throw std::invalid_argument("unknown option: " + arg);
            }
        }
        if (mode.empty())
            throw std::invalid_argument("pick one of --list/--points/"
                                        "--run/--merge/--diff");

        if (mode == "list")
            return listSweeps();
        if (mode == "points")
            return listPoints(name);
        if (mode == "run")
            return runSweepCmd(name, shard_arg, out_path, nthreads);
        if (mode == "diff")
            return diffCmd(merge_paths, tol_pct);
        if (merge_paths.empty())
            throw std::invalid_argument("--merge needs report files");
        return mergeCmd(merge_paths, out_path);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "skybyte_sweep: %s\n", e.what());
        usage();
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_sweep: %s\n", e.what());
        return 2;
    }
}
