/**
 * @file
 * Trace capture converter: repacks a capture between the flat
 * SKYTRC01 file (trace/trace_file.h) and the seekable compressed STRC
 * log (trace/trace_log/trace_log.h) in either direction. The input
 * format is sniffed from the file magic; the output defaults to
 * whichever format the input is not.
 *
 *   skybyte_tracepack -i <in> -o <out> [--to=flat|tracelog]
 *                     [--block-records=N] [--verify]
 *
 * --verify re-opens both files after the conversion and drains the
 * two record streams side by side (every thread, every record), so a
 * zero exit with --verify certifies the repack is lossless. CI runs
 * the round trip flat -> tracelog -> flat this way.
 */

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "trace/trace_file.h"
#include "trace/trace_log/trace_log.h"
#include "trace/trace_log/trace_log_workload.h"
#include "trace/workload.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(stderr,
                 "usage: skybyte_tracepack -i <in> -o <out>"
                 " [--to=flat|tracelog]\n"
                 "                         [--block-records=N]"
                 " [--verify]\n"
                 "converts between the flat SKYTRC01 capture and the"
                 " seekable\ncompressed STRC trace log (default: the"
                 " format the input is not)\n");
}

/** Compare the full record streams of two captures; throws on any
 *  divergence so --verify failures name what differed. */
void
verifySame(const std::string &a_path, const std::string &b_path)
{
    auto a = makeTraceReplayWorkload(a_path);
    auto b = makeTraceReplayWorkload(b_path);
    if (a->numThreads() != b->numThreads())
        throw std::runtime_error("thread count differs: "
                                 + std::to_string(a->numThreads()) + " vs "
                                 + std::to_string(b->numThreads()));
    if (a->name() != b->name())
        throw std::runtime_error("workload name differs: '" + a->name()
                                 + "' vs '" + b->name() + "'");
    if (a->footprintBytes() != b->footprintBytes())
        throw std::runtime_error("footprint differs");
    for (int tid = 0; tid < a->numThreads(); ++tid) {
        TraceCursor ca(*a, tid);
        TraceCursor cb(*b, tid);
        std::uint64_t n = 0;
        for (;; ++n) {
            TraceRecord ra{};
            TraceRecord rb{};
            const bool more_a = ca.next(ra);
            const bool more_b = cb.next(rb);
            if (more_a != more_b)
                throw std::runtime_error(
                    "thread " + std::to_string(tid) + " length differs at"
                    " record " + std::to_string(n));
            if (!more_a)
                break;
            if (ra.vaddr != rb.vaddr || ra.isWrite != rb.isWrite
                || ra.computeOps != rb.computeOps)
                throw std::runtime_error(
                    "thread " + std::to_string(tid) + " record "
                    + std::to_string(n) + " differs");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path;
    std::string out_path;
    std::string to_format;
    std::uint32_t block_records = kTraceLogDefaultBlockRecords;
    bool verify = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "-i") {
                in_path = next();
            } else if (arg == "-o") {
                out_path = next();
            } else if (arg.rfind("--to=", 0) == 0) {
                to_format = arg.substr(5);
            } else if (arg.rfind("--block-records=", 0) == 0) {
                block_records = static_cast<std::uint32_t>(
                    std::stoul(arg.substr(16)));
            } else if (arg == "--verify") {
                verify = true;
            } else {
                usage();
                return 2;
            }
        }
        if (in_path.empty() || out_path.empty()) {
            usage();
            return 2;
        }
        const bool in_is_log = isTraceLogFile(in_path);
        if (to_format.empty())
            to_format = in_is_log ? "flat" : "tracelog";
        if (to_format != "flat" && to_format != "tracelog") {
            usage();
            return 2;
        }
        auto workload = makeTraceReplayWorkload(in_path);
        const std::uint64_t records =
            to_format == "tracelog"
                ? writeTraceLog(out_path, *workload, block_records)
                : writeTraceFile(out_path, *workload);
        std::printf("repacked %llu records (%d threads) %s -> %s (%s)\n",
                    static_cast<unsigned long long>(records),
                    workload->numThreads(),
                    in_is_log ? "tracelog" : "flat", to_format.c_str(),
                    out_path.c_str());
        if (verify) {
            verifySame(in_path, out_path);
            std::printf("verify: record streams identical\n");
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_tracepack: %s\n", e.what());
        return 1;
    }
    return 0;
}
