/**
 * @file
 * The command-line simulator, mirroring the original artifact's driver
 * (appendix §E):
 *
 *   skybyte_sim -b baseline.config -w workload.config [-t extra.config]
 *               [-k key=value]... [-c cores] [-f out.json] [-p] [-d] [-r]
 *
 *   -b/-w/-t  config files applied in order (key=value lines)
 *   -k        inline override, e.g. -k cs_threshold=2000 or
 *             -k workload=zipf:theta=0.99,footprint=64M (any
 *             registered workload spec string)
 *   -c        number of simulated cores
 *   -f        write the result as JSON to this file ("-" = stdout)
 *   -p        print detailed runtime information (summary to stdout)
 *   -d        run with effectively infinite host DRAM for promotions
 *   -r        output DRAM-only performance results (ideal baseline)
 *
 * With no arguments it runs a demonstration configuration. With
 * "-f -" the progress line is suppressed and stdout carries only the
 * JSON; file output is committed write-temp-then-rename, so an
 * interrupted run never leaves a truncated JSON file.
 *
 * Exit codes (the CLI contract, also in the README):
 *   0  success
 *   1  usage or runtime error (bad flags, config, workload, I/O)
 *   2  the run hit the in-sim safety tick limit (timedOut), so
 *      scripted sweeps can detect truncated runs
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "sim/config_file.h"
#include "sim/report.h"
#include "sim/system.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_sim [-b cfg] [-w cfg] [-t cfg] [-k key=value]\n"
        "                   [-c cores] [-f out.json] [-p] [-d] [-r]\n"
        "exit codes: 0 ok; 1 usage/runtime error; 2 in-sim safety tick"
        " limit hit\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentSpec spec;
    spec.config.name = "custom";
    spec.params.numThreads = 8;
    spec.params.instrPerThread = 100'000;

    std::string out_path;
    bool print_details = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "-b" || arg == "-w" || arg == "-t") {
                applyConfigFile(next(), spec);
            } else if (arg == "-k") {
                applyAssignment(next(), spec);
            } else if (arg == "-c") {
                spec.config.cpu.numCores = std::stoi(next());
            } else if (arg == "-f") {
                out_path = next();
            } else if (arg == "-p") {
                print_details = true;
            } else if (arg == "-d") {
                spec.config.hostMem.promotedBytesMax = ~0ULL >> 1;
            } else if (arg == "-r") {
                spec.config.dramOnly = true;
                spec.config.preconditionSsd = false;
            } else if (arg == "-h" || arg == "--help") {
                usage();
                return 0;
            } else {
                throw std::invalid_argument("unknown option: " + arg);
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_sim: %s\n", e.what());
        usage();
        return 1;
    }

    try {
        System system(spec.config, spec.workload, spec.params);
        SimResult res = system.run();
        const bool json_to_stdout = out_path == "-";
        if (print_details)
            printSummary(res, json_to_stdout ? std::cerr : std::cout);
        else if (!json_to_stdout)
            std::printf("%s/%s: %.3f ms, %lu instructions\n",
                        res.variant.c_str(), res.workload.c_str(),
                        res.execMs(),
                        static_cast<unsigned long>(
                            res.committedInstructions));
        if (json_to_stdout) {
            std::cout << toJson(res);
        } else if (!out_path.empty()) {
            writeJsonFile(res, out_path);
            std::printf("wrote %s\n", out_path.c_str());
        }
        return res.timedOut ? 2 : 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_sim: %s\n", e.what());
        return 1;
    }
}
