/**
 * @file
 * Bench-report comparator: the CI gate that keeps the committed bench
 * baselines honest.
 *
 *   skybyte_benchdiff [--tol=PCT] [--keys=a,b,...] [--regress-only]
 *                     baseline.json current.json
 *
 * Compares two BENCH_*.json reports (sim/benchdiff.h): the documents
 * must match structurally (same metrics, same layout — anything else
 * means the baseline needs regenerating), and paired numbers compare
 * under a relative tolerance. --keys restricts gating to numbers whose
 * dotted path contains one of the given substrings, which is how CI
 * pins machine-independent ratios ("speedup") while ignoring absolute
 * events-per-second that depend on the runner. --regress-only fails
 * only when current is below baseline, so an improvement prints but
 * passes (refresh the baseline at leisure).
 *
 * Exit codes (the CLI contract, also in the README):
 *   0  within tolerance
 *   1  usage error
 *   2  runtime error (I/O, structural mismatch)
 *   3  drift beyond tolerance
 */

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fs.h"
#include "sim/benchdiff.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_benchdiff [--tol=PCT] [--keys=a,b,...]\n"
        "                         [--regress-only] baseline.json"
        " current.json\n"
        "  --tol=PCT       allowed relative drift, percent"
        " (default 5)\n"
        "  --keys=a,b,...  gate only numbers whose dotted JSON path\n"
        "                  contains one of these substrings\n"
        "  --regress-only  fail only when current < baseline\n"
        "exit codes: 0 within tolerance; 1 usage; 2 error;"
        " 3 drift\n");
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t comma = text.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > begin)
            out.push_back(text.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDiffOptions opt;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--tol=", 0) == 0) {
            char *end = nullptr;
            opt.tolPct = std::strtod(arg.c_str() + 6, &end);
            if (end == nullptr || *end != '\0' || opt.tolPct < 0) {
                std::fprintf(stderr, "benchdiff: bad --tol: %s\n",
                             arg.c_str());
                return 1;
            }
        } else if (arg.rfind("--keys=", 0) == 0) {
            opt.keys = splitCsv(arg.substr(7));
            if (opt.keys.empty()) {
                std::fprintf(stderr, "benchdiff: empty --keys\n");
                return 1;
            }
        } else if (arg == "--regress-only") {
            opt.regressOnly = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "benchdiff: unknown option: %s\n",
                         arg.c_str());
            usage();
            return 1;
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2) {
        usage();
        return 1;
    }

    try {
        const std::string baseline = readFileText(files[0]);
        const std::string current = readFileText(files[1]);
        const std::vector<BenchDrift> drifts =
            diffBenchJson(baseline, current, opt);
        if (drifts.empty()) {
            std::printf("benchdiff: %s vs %s: within %.3g%%\n",
                        files[0].c_str(), files[1].c_str(), opt.tolPct);
            return 0;
        }
        for (const BenchDrift &d : drifts)
            std::printf("%s\n", formatBenchDrift(d, opt).c_str());
        std::printf("benchdiff: %zu drift(s) beyond %.3g%%\n",
                    drifts.size(), opt.tolPct);
        return 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "benchdiff: %s\n", e.what());
        return 2;
    }
}
