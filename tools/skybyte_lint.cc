/**
 * @file
 * Determinism auditor for the skybyte tree:
 *
 *   skybyte_lint --list
 *       Enumerate the registered rule families.
 *   skybyte_lint [--root dir] [--baseline file] [--json] [paths...]
 *       Scan every *.h and *.cc under <root>/{src,tools,bench} (or
 *       the given repo-relative paths), apply every registered rule,
 *       and compare against the baseline of grandfathered findings.
 *       Default baseline: <root>/lint_baseline.txt when it exists.
 *   skybyte_lint --update-baseline [--root dir] [--baseline file]
 *       Rewrite the baseline to exactly the current findings
 *       (write-temp-then-rename, like every other report writer).
 *
 * A finding not in the baseline fails the run; so does a baseline
 * entry whose finding no longer exists (delete the line — the
 * baseline only shrinks). Per-line suppression:
 *
 *   // skybyte-lint: allow(<rule>[,<rule>]) <justification>
 *
 * on the offending line or the comment-only line above it; the
 * justification text is mandatory.
 *
 * Exit codes (the CLI contract, also in the README):
 *   0  clean: no new findings, no stale baseline entries
 *   1  usage error
 *   2  runtime error (I/O, malformed baseline)
 *   3  new findings (not grandfathered in the baseline)
 *   4  stale baseline entries (fixed findings still listed)
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fs.h"
#include "lint/lint.h"

using namespace skybyte;

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: skybyte_lint --list\n"
        "       skybyte_lint [--root dir] [--baseline file] [--json]"
        " [paths...]\n"
        "       skybyte_lint --update-baseline [--root dir]"
        " [--baseline file]\n"
        "exit codes: 0 clean; 1 usage; 2 error; 3 new finding(s);\n"
        "            4 stale baseline entr(ies)\n");
}

int
listRules()
{
    std::printf("%-20s %s\n", "rule", "title");
    for (const LintRule *rule : registeredLintRules())
        std::printf("%-20s %s\n", rule->name.c_str(),
                    rule->title.c_str());
    std::printf("%-20s %s\n", "pragma",
                "allow pragmas must be well-formed and justified");
    return 0;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Per-finding "is this one grandfathered?" flags, in finding order. */
std::vector<bool>
baselinedFlags(const std::vector<LintFinding> &findings,
               const LintBaseline &baseline)
{
    std::vector<bool> flags(findings.size(), false);
    std::map<std::string, std::size_t> seen;
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const std::string key = baselineKey(findings[i]);
        auto it = baseline.entries.find(key);
        const std::size_t allowed =
            it == baseline.entries.end() ? 0 : it->second;
        flags[i] = ++seen[key] <= allowed;
    }
    return flags;
}

void
printJson(const std::vector<LintFinding> &findings,
          const std::vector<bool> &baselined,
          const BaselineDiff &diff)
{
    std::printf("{\n  \"findings\": [");
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const LintFinding &f = findings[i];
        std::printf(
            "%s\n    {\"rule\": \"%s\", \"file\": \"%s\", "
            "\"line\": %zu, \"code\": \"%s\", \"message\": \"%s\", "
            "\"baselined\": %s}",
            i == 0 ? "" : ",", jsonEscape(f.rule).c_str(),
            jsonEscape(f.file).c_str(), f.line,
            jsonEscape(f.code).c_str(), jsonEscape(f.message).c_str(),
            baselined[i] ? "true" : "false");
    }
    std::printf("%s],\n", findings.empty() ? "" : "\n  ");
    std::printf("  \"stale_baseline\": [");
    for (std::size_t i = 0; i < diff.stale.size(); ++i) {
        std::printf("%s\n    \"%s\"", i == 0 ? "" : ",",
                    jsonEscape(diff.stale[i]).c_str());
    }
    std::printf("%s],\n", diff.stale.empty() ? "" : "\n  ");
    std::printf("  \"total\": %zu,\n", findings.size());
    std::printf("  \"new\": %zu,\n", diff.fresh.size());
    std::printf("  \"stale\": %zu\n}\n", diff.stale.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baselinePath;
    std::vector<std::string> paths;
    bool json = false;
    bool list = false;
    bool updateBaseline = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "--list") {
                list = true;
            } else if (arg == "--root") {
                root = next();
            } else if (arg == "--baseline") {
                baselinePath = next();
            } else if (arg == "--json") {
                json = true;
            } else if (arg == "--update-baseline") {
                updateBaseline = true;
            } else if (arg == "-h" || arg == "--help") {
                usage();
                return 0;
            } else if (!arg.empty() && arg[0] != '-') {
                paths.push_back(arg);
            } else {
                throw std::invalid_argument("unknown option: " + arg);
            }
        }
        if (list)
            return listRules();

        const bool wholeTree = paths.empty();
        if (wholeTree)
            paths = collectLintFiles(root);
        std::vector<SourceFile> files;
        files.reserve(paths.size());
        for (const std::string &path : paths)
            files.push_back(
                scanSource(path, readFileText(root + "/" + path)));
        const std::vector<LintFinding> findings = lintFiles(files);

        if (baselinePath.empty()) {
            const std::string candidate = root + "/lint_baseline.txt";
            if (fileExists(candidate))
                baselinePath = candidate;
        }
        if (updateBaseline) {
            if (baselinePath.empty())
                baselinePath = root + "/lint_baseline.txt";
            writeFileAtomic(baselinePath,
                            formatLintBaseline(findings));
            std::fprintf(stderr,
                         "wrote %s (%zu grandfathered finding(s))\n",
                         baselinePath.c_str(), findings.size());
            return 0;
        }

        LintBaseline baseline;
        if (!baselinePath.empty())
            baseline = parseLintBaseline(readFileText(baselinePath));
        if (!wholeTree) {
            // Linting a subset: entries for files outside it are not
            // stale, they are just out of view this run.
            for (auto it = baseline.entries.begin();
                 it != baseline.entries.end();) {
                const std::string &key = it->first;
                const auto begin = key.find('\t') + 1;
                const std::string file =
                    key.substr(begin, key.find('\t', begin) - begin);
                if (std::find(paths.begin(), paths.end(), file)
                    == paths.end()) {
                    it = baseline.entries.erase(it);
                } else {
                    ++it;
                }
            }
        }
        const BaselineDiff diff =
            diffAgainstBaseline(findings, baseline);
        const std::vector<bool> baselined =
            baselinedFlags(findings, baseline);

        if (json) {
            printJson(findings, baselined, diff);
        } else {
            for (const LintFinding &f : diff.fresh) {
                std::fprintf(stderr, "%s:%zu: [%s] %s\n    %s\n",
                             f.file.c_str(), f.line, f.rule.c_str(),
                             f.message.c_str(), f.code.c_str());
            }
            for (const std::string &key : diff.stale) {
                std::fprintf(stderr,
                             "stale baseline entry (finding fixed — "
                             "delete the line): %s\n",
                             key.c_str());
            }
            std::fprintf(stderr,
                         "%zu file(s), %zu finding(s): %zu new, %zu "
                         "grandfathered, %zu stale baseline entr%s\n",
                         files.size(), findings.size(),
                         diff.fresh.size(),
                         findings.size() - diff.fresh.size(),
                         diff.stale.size(),
                         diff.stale.size() == 1 ? "y" : "ies");
        }
        if (!diff.fresh.empty())
            return 3;
        if (!diff.stale.empty())
            return 4;
        return 0;
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "skybyte_lint: %s\n", e.what());
        usage();
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_lint: %s\n", e.what());
        return 2;
    }
}
