/**
 * @file
 * Offline trace inspector: prints the workload-side statistics the
 * paper's motivation section is built on (write ratio as in Table I,
 * per-page cacheline-coverage CDFs as in Figures 5/6, and hot-page
 * concentration relevant to §III-C's migration policy) for either a
 * binary trace file produced by skybyte_tracegen or a named synthetic
 * workload generated on the fly.
 *
 *   skybyte_traceinfo <trace-file>
 *   skybyte_traceinfo -w <workload-spec> [-n threads] [-i instr] [-m mb]
 *
 * <workload-spec> is any registered workload spec string ("ycsb",
 * "scan:stride=256", ...); trace files may be either the flat
 * SKYTRC01 format or the seekable compressed STRC log (sniffed by
 * magic). For an STRC capture a block/index/compression stats section
 * is printed ahead of the workload statistics.
 */

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/mix_workload.h"
#include "trace/trace_file.h"
#include "trace/trace_log/trace_log.h"
#include "trace/trace_log/trace_log_workload.h"
#include "trace/trace_stats.h"
#include "trace/workload.h"

using namespace skybyte;

namespace {

/** Decode every block once to report the storage-side numbers the
 *  format exists for: seekability (blocks + index) and compression. */
void
printTraceLogStats(const std::string &path)
{
    TraceLogReader reader(path);
    std::uint64_t blocks = 0;
    std::uint64_t records = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t stored_bytes = 0;
    std::uint64_t compressed_blocks = 0;
    for (int tid = 0; tid < reader.numThreads(); ++tid) {
        for (std::uint64_t b = 0; b < reader.blockCount(tid); ++b) {
            const DecodedBlock block = reader.readBlock(tid, b);
            ++blocks;
            records += block.records.size();
            raw_bytes += block.rawBytes;
            stored_bytes += block.storedBytes;
            compressed_blocks += block.compressed ? 1 : 0;
        }
    }
    const double mb = 1024.0 * 1024.0;
    std::printf("STRC trace log %s\n", path.c_str());
    std::printf("  %d thread(s), %llu block(s) of <= %u records, %llu"
                " records total\n",
                reader.numThreads(),
                static_cast<unsigned long long>(blocks),
                reader.blockRecords(),
                static_cast<unsigned long long>(records));
    for (int tid = 0; tid < reader.numThreads(); ++tid) {
        std::printf("  thread %d: %llu records in %llu block(s)\n", tid,
                    static_cast<unsigned long long>(
                        reader.totalRecords(tid)),
                    static_cast<unsigned long long>(
                        reader.blockCount(tid)));
    }
    std::printf("  payload %.2f MB raw -> %.2f MB stored (%.2fx, %llu/"
                "%llu block(s) compressed), file %.2f MB\n",
                static_cast<double>(raw_bytes) / mb,
                static_cast<double>(stored_bytes) / mb,
                stored_bytes > 0 ? static_cast<double>(raw_bytes)
                                       / static_cast<double>(stored_bytes)
                                 : 0.0,
                static_cast<unsigned long long>(compressed_blocks),
                static_cast<unsigned long long>(blocks),
                static_cast<double>(reader.fileSize()) / mb);
}

void
usage()
{
    std::fprintf(stderr,
                 "usage: skybyte_traceinfo <trace-file>\n"
                 "       skybyte_traceinfo -w <workload-spec>"
                 " [-n threads]"
                 " [-i instr-per-thread] [-m footprint-mb] [-s seed]\n"
                 "co-location: -w \"mix:tenant=spec[;tenant=spec]...\""
                 " prints the per-tenant layout\n"
                 "registered workloads:");
    for (const std::string &name : registeredWorkloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string workload_name;
    WorkloadParams params;
    params.instrPerThread = 200'000;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw std::invalid_argument("missing value for "
                                                + arg);
                return argv[++i];
            };
            if (arg == "-w") {
                workload_name = next();
            } else if (arg == "-n") {
                params.numThreads = std::stoi(next());
            } else if (arg == "-i") {
                params.instrPerThread = std::stoull(next());
            } else if (arg == "-m") {
                params.footprintBytes =
                    std::stoull(next()) * 1024 * 1024;
            } else if (arg == "-s") {
                params.seed = std::stoull(next());
            } else if (arg[0] != '-') {
                trace_path = arg;
            } else {
                usage();
                return 2;
            }
        }
        if (trace_path.empty() == workload_name.empty()) {
            usage(); // need exactly one source
            return 2;
        }
        std::unique_ptr<Workload> workload;
        std::string name;
        if (!trace_path.empty()) {
            if (isTraceLogFile(trace_path))
                printTraceLogStats(trace_path);
            workload = makeTraceReplayWorkload(trace_path);
            name = trace_path;
        } else {
            workload = makeWorkload(workload_name, params);
            name = workload_name; // full spec text, not just the name
        }
        if (const auto *mix =
                dynamic_cast<const MixWorkload *>(workload.get())) {
            // Expand the mix: which threads and device window each
            // tenant owns, so the combined distributions below can be
            // read against the tenant layout.
            std::printf("mix of %zu tenant(s), %d threads total:\n",
                        mix->tenants().size(), mix->numThreads());
            for (const MixTenant &t : mix->tenants()) {
                std::fputs("  ", stdout);
                std::fputs(describeMixTenant(t).c_str(), stdout);
            }
        }
        const TraceSummary summary = summarizeWorkload(*workload);
        std::fputs(formatSummary(summary, name).c_str(), stdout);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte_traceinfo: %s\n", e.what());
        return 1;
    }
    return 0;
}
