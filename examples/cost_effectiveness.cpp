/**
 * @file
 * Cost-effectiveness analysis (§VI-B): the paper's closing argument is
 * economic — SkyByte-Full reaches a large fraction of DRAM-only
 * performance at a small fraction of DRAM cost ($4.28/GB DDR5 vs
 * $0.27/GB ULL flash, summer-2024 prices). This example reruns that
 * analysis on live simulation results: it measures Base-CSSD,
 * SkyByte-Full and the DRAM-Only ideal on a workload, prices the three
 * deployments, and reports performance-per-dollar.
 *
 *   ./examples/cost_effectiveness [workload]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"

using namespace skybyte;

namespace {

/** Unit prices the paper quotes in §VI-B (USD per GB). */
constexpr double kDdr5PerGb = 4.28;
constexpr double kUllSsdPerGb = 0.27;

SimResult
runVariant(const std::string &variant, const std::string &workload)
{
    SimConfig cfg = makeBenchConfig(variant);
    ExperimentOptions opt;
    opt.instrPerThread = 100'000;
    System system(cfg, workload, makeParams(cfg, opt));
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "ycsb";

    const SimResult base = runVariant("Base-CSSD", workload);
    const SimResult full = runVariant("SkyByte-Full", workload);
    const SimResult ideal = runVariant("DRAM-Only", workload);

    // Capacity being priced: the application footprint. The CXL-SSD
    // deployments buy it as flash plus the small promotion budget in
    // DRAM; the ideal buys all of it as DRAM.
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    ExperimentOptions opt;
    const WorkloadParams params = makeParams(cfg, opt);
    const double footprint_gb =
        static_cast<double>(params.footprintBytes > 0
                                ? params.footprintBytes
                                : 128ULL * 1024 * 1024)
        / (1024.0 * 1024.0 * 1024.0);
    const double promo_gb =
        static_cast<double>(cfg.hostMem.promotedBytesMax)
        / (1024.0 * 1024.0 * 1024.0);

    const double cssd_cost =
        footprint_gb * kUllSsdPerGb + promo_gb * kDdr5PerGb;
    const double dram_cost = footprint_gb * kDdr5PerGb;

    const double base_perf = ideal.execMs() > 0
                                 ? ideal.execMs() / base.execMs()
                                 : 0; // relative to ideal = 1.0
    const double full_perf = ideal.execMs() > 0
                                 ? ideal.execMs() / full.execMs()
                                 : 0;

    std::printf("workload: %s, footprint %.2f GB "
                "(+%.2f GB host promotion budget)\n\n",
                workload.c_str(), footprint_gb, promo_gb);
    std::printf("%-16s %12s %16s %14s %16s\n", "deployment",
                "exec (ms)", "perf vs ideal", "memory cost $",
                "perf per $");
    const struct
    {
        const char *name;
        double ms;
        double perf;
        double cost;
    } rows[] = {
        {"Base-CSSD", base.execMs(), base_perf, cssd_cost},
        {"SkyByte-Full", full.execMs(), full_perf, cssd_cost},
        {"DRAM-Only", ideal.execMs(), 1.0, dram_cost},
    };
    for (const auto &row : rows) {
        std::printf("%-16s %12.3f %15.1f%% %14.2f %16.3f\n", row.name,
                    row.ms, row.perf * 100.0, row.cost,
                    row.cost > 0 ? row.perf / row.cost : 0.0);
    }

    const double cost_ratio = dram_cost / cssd_cost;
    const double full_ppd = full_perf / cssd_cost;
    const double ideal_ppd = 1.0 / dram_cost;
    std::printf("\nDRAM-only memory costs %.1fx more; SkyByte-Full "
                "delivers %.1fx the\nperformance-per-dollar of the "
                "DRAM-only deployment on this workload\n(the paper "
                "reports 15.9x cost and 11.8x cost-effectiveness at "
                "full scale).\n",
                cost_ratio, ideal_ppd > 0 ? full_ppd / ideal_ppd : 0.0);
    return 0;
}
