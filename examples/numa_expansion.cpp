/**
 * @file
 * NUMA deployment (§IV): the CXL-SSD appears as a CPU-less NUMA node
 * attached to one socket (the "home node"); threads on the other socket
 * pay the inter-socket hop on every CXL access. Because that hop
 * (<100 ns) is dwarfed by flash latency (µs), SkyByte keeps one shared
 * context-switch threshold for all sockets — this example measures how
 * much the remote socket actually loses, and shows the coordinated
 * context switch does not need per-socket retuning.
 *
 *   ./examples/numa_expansion [workload]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"

using namespace skybyte;

namespace {

SimResult
runSockets(const std::string &workload, std::uint32_t sockets,
           Tick inter_socket)
{
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    cfg.numa.sockets = sockets;
    cfg.numa.interSocketLatency = inter_socket;
    cfg.numa.ssdHomeSocket = 0;
    ExperimentOptions opt;
    opt.instrPerThread = 100'000;
    System system(cfg, workload, makeParams(cfg, opt));
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "bfs-dense";

    // Single socket: every core is on the SSD's home node.
    const SimResult local = runSockets(workload, 1, 0);
    // Two sockets: half the cores reach the SSD through the other
    // socket, paying the paper's <100 ns hop each way.
    const SimResult two = runSockets(workload, 2, nsToTicks(100.0));
    // Stress case: a slow fabric makes the hop 4x worse.
    const SimResult slow = runSockets(workload, 2, nsToTicks(400.0));

    std::printf("workload: %s (SkyByte-Full, shared 2 us threshold)\n\n",
                workload.c_str());
    std::printf("%-28s %12s %12s %12s\n", "", "1-socket", "2-socket",
                "2-socket/400ns");
    std::printf("%-28s %12.3f %12.3f %12.3f\n",
                "simulated exec time (ms)", local.execMs(), two.execMs(),
                slow.execMs());
    std::printf("%-28s %12.1f %12.1f %12.1f\n", "AMAT (ns)",
                ticksToNs(static_cast<Tick>(local.amatTotalTicks)),
                ticksToNs(static_cast<Tick>(two.amatTotalTicks)),
                ticksToNs(static_cast<Tick>(slow.amatTotalTicks)));
    std::printf("%-28s %12lu %12lu %12lu\n", "context switches",
                static_cast<unsigned long>(local.contextSwitches),
                static_cast<unsigned long>(two.contextSwitches),
                static_cast<unsigned long>(slow.contextSwitches));

    std::printf("\nRemote-socket slowdown: %.1f%% at 100 ns, %.1f%% at "
                "400 ns —\nsmall against µs-scale flash, which is why a "
                "single shared context-switch\nthreshold works for every "
                "NUMA node (§IV).\n",
                (two.execMs() / local.execMs() - 1.0) * 100.0,
                (slow.execMs() / local.execMs() - 1.0) * 100.0);
    return 0;
}
