/**
 * @file
 * Quickstart: build a SkyByte-Full system, run a small workload, and
 * print the headline statistics. Start here to learn the public API.
 *
 *   ./examples/quickstart [workload] [variant]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"

using namespace skybyte;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "ycsb";
    const std::string variant = argc > 2 ? argv[2] : "SkyByte-Full";

    // 1. Pick a configuration preset (Base-CSSD, SkyByte-*, DRAM-Only).
    //    Every Table II knob is a plain struct field you can override.
    SimConfig cfg = makeBenchConfig(variant);
    cfg.policy.csThreshold = usToTicks(2.0); // context-switch threshold

    // 2. Describe the run: thread count follows the paper's rule
    //    (24 threads on 8 cores when coordinated switching is on).
    ExperimentOptions opt;
    opt.instrPerThread = 100'000;
    const WorkloadParams params = makeParams(cfg, opt);

    // 3. Build the system and run to completion.
    System system(cfg, workload, params);
    SimResult res = system.run();

    // 4. Inspect the results.
    std::printf("workload            : %s\n", res.workload.c_str());
    std::printf("variant             : %s\n", res.variant.c_str());
    std::printf("threads x instr     : %d x %lu\n", params.numThreads,
                static_cast<unsigned long>(params.instrPerThread));
    std::printf("simulated exec time : %.3f ms\n", res.execMs());
    std::printf("IPC                 : %.3f\n", res.ipc());
    std::printf("context switches    : %lu\n",
                static_cast<unsigned long>(res.contextSwitches));
    std::printf("SSD reads hit/miss  : %lu / %lu\n",
                static_cast<unsigned long>(res.ssdReadHits),
                static_cast<unsigned long>(res.ssdReadMisses));
    std::printf("SSD writes (S-W)    : %lu\n",
                static_cast<unsigned long>(res.ssdWrites));
    std::printf("flash page programs : %lu (+%lu GC)\n",
                static_cast<unsigned long>(res.flashHostPrograms),
                static_cast<unsigned long>(res.flashGcPrograms));
    std::printf("pages promoted      : %lu\n",
                static_cast<unsigned long>(res.promotions));
    std::printf("AMAT                : %.1f ns (host %.1f | cxl %.1f | "
                "idx %.1f | dram %.1f | flash %.1f)\n",
                ticksToNs(static_cast<Tick>(res.amatTotalTicks)),
                ticksToNs(static_cast<Tick>(res.amatHostTicks)),
                ticksToNs(static_cast<Tick>(res.amatProtocolTicks)),
                ticksToNs(static_cast<Tick>(res.amatIndexingTicks)),
                ticksToNs(static_cast<Tick>(res.amatSsdDramTicks)),
                ticksToNs(static_cast<Tick>(res.amatFlashTicks)));
    std::printf("memory-bound share  : %.1f%%\n",
                100.0 * static_cast<double>(res.memStallTicks)
                    / static_cast<double>(res.memStallTicks
                                          + res.computeTicks
                                          + res.ctxSwitchTicks));
    return 0;
}
