/**
 * @file
 * Scenario: sizing a CXL-SSD for a key-value serving tier (the paper's
 * intro motivation — memory capacity at SSD cost).
 *
 * Sweeps the SSD DRAM budget and the write-log share for ycsb and
 * reports where the knee is: how little DRAM a SkyByte-style device
 * needs to stay within a target slowdown of the all-DRAM ideal. This is
 * the cost-effectiveness argument of §VI-B made runnable.
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.h"
#include "sim/system.h"

using namespace skybyte;

int
main()
{
    ExperimentOptions opt;
    opt.instrPerThread = 80'000;

    // The all-DRAM ideal as the reference point.
    SimConfig ideal = makeBenchConfig("DRAM-Only");
    const SimResult ideal_res = runConfig(ideal, "ycsb", opt);
    std::printf("DRAM-Only ideal: %.3f ms\n\n", ideal_res.execMs());

    std::printf("%-12s %-10s %12s %12s %10s %12s\n", "ssd-dram",
                "log-share", "exec(ms)", "vs-ideal", "ssd-hit%",
                "flash-pgms");
    for (const std::uint64_t dram_mb : {2, 4, 8, 16}) {
        for (const int log_share_pct : {0, 12, 25}) {
            SimConfig cfg = makeBenchConfig("SkyByte-Full");
            const std::uint64_t total = dram_mb * 1024ULL * 1024ULL;
            const std::uint64_t log_bytes =
                total * static_cast<std::uint64_t>(log_share_pct) / 100;
            if (log_bytes == 0)
                cfg.policy.writeLogEnable = false;
            cfg.ssdCache.writeLogBytes =
                log_bytes > 0 ? log_bytes : 1; // unused when disabled
            cfg.ssdCache.dataCacheBytes = total - log_bytes;
            cfg.hostMem.promotedBytesMax = total * 4;

            const SimResult r = runConfig(cfg, "ycsb", opt);
            const double hits = static_cast<double>(r.ssdReadHits);
            const double total_reads =
                hits + static_cast<double>(r.ssdReadMisses);
            std::printf("%9luMB %9d%% %12.3f %11.2fx %9.1f%% %12lu\n",
                        static_cast<unsigned long>(dram_mb),
                        log_share_pct, r.execMs(),
                        ideal_res.execMs() > 0
                            ? r.execMs() / ideal_res.execMs()
                            : 0.0,
                        total_reads > 0 ? 100.0 * hits / total_reads
                                        : 0.0,
                        static_cast<unsigned long>(r.flashHostPrograms));
        }
    }
    std::printf("\nReading the table: the write log (12-25%% of SSD "
                "DRAM) buys more than doubling the cache,\nand the "
                "cost-per-GB of the CXL-SSD is ~16x below DRAM "
                "(paper: $0.27 vs $4.28 per GB).\n");
    return 0;
}
