/**
 * @file
 * Scenario: bringing your own application to the simulator.
 *
 * Implements a custom Workload (a pointer-chasing index join with a hot
 * build side and a streamed probe side), captures it to a trace file —
 * the analogue of the artifact's PIN capture step — then replays the
 * identical trace under three device configurations via System's
 * bring-your-own-workload constructor.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/experiment.h"
#include "sim/system.h"
#include "trace/trace_file.h"

using namespace skybyte;

namespace {

/** Hash-join-like workload: random build-side probes + streaming scan. */
class IndexJoinWorkload : public Workload
{
  public:
    explicit IndexJoinWorkload(const WorkloadParams &params)
        : params_(params),
          footprint_(params.footprintBytes != 0
                         ? params.footprintBytes
                         : 96ULL * 1024 * 1024)
    {
        rngs_.resize(static_cast<std::size_t>(params.numThreads));
        emitted_.assign(static_cast<std::size_t>(params.numThreads), 0);
        cursor_.assign(static_cast<std::size_t>(params.numThreads), 0);
        for (int t = 0; t < params.numThreads; ++t)
            rngs_[static_cast<std::size_t>(t)].reseed(params.seed + t);
    }

    std::string name() const override { return "index-join"; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override { return params_.numThreads; }
    std::uint64_t instructionsEmitted(int tid) const override
    {
        return emitted_[static_cast<std::size_t>(tid)];
    }

    // The batched contract: fill up to TraceBatch::kCapacity records
    // in one call. The record stream must not depend on how many
    // records each refill produces.
    std::uint32_t
    refill(int tid, TraceBatch &batch) override
    {
        auto t = static_cast<std::size_t>(tid);
        Rng &rng = rngs_[t];
        const std::uint64_t hash_region = footprint_ / 8; // build side
        std::uint32_t n = 0;
        while (n < TraceBatch::kCapacity
               && emitted_[t] < params_.instrPerThread) {
            TraceRecord &rec = batch.records[n++];
            switch (cursor_[t] % 4) {
              case 0: // stream the probe side sequentially
                rec = {6, false,
                       kDataBase + hash_region
                           + (cursor_[t] * kCachelineBytes)
                                 % (footprint_ - hash_region)};
                break;
              case 1: // hash-bucket lookup (random, hot)
              case 2: // chase one chain link
                rec = {4, false,
                       kDataBase + lineAlign(rng.below(hash_region))};
                break;
              default: // emit a join result (write, streaming)
                rec = {5, true,
                       kDataBase + hash_region
                           + lineAlign(
                               rng.below(footprint_ - hash_region))};
                break;
            }
            cursor_[t]++;
            emitted_[t] += rec.computeOps + 1;
        }
        batch.count = n;
        batch.cursor = 0;
        return n;
    }

  private:
    WorkloadParams params_;
    std::uint64_t footprint_;
    std::vector<Rng> rngs_;
    std::vector<std::uint64_t> emitted_;
    std::vector<std::uint64_t> cursor_;
};

} // namespace

int
main()
{
    WorkloadParams params;
    params.numThreads = 8;
    params.instrPerThread = 80'000;

    // Step 1: "capture" the custom application once (the PIN step).
    const std::string trace_path = "/tmp/index_join.skytrace";
    {
        IndexJoinWorkload capture(params);
        const std::uint64_t records =
            writeTraceFile(trace_path, capture);
        std::printf("captured %lu records to %s\n",
                    static_cast<unsigned long>(records),
                    trace_path.c_str());
    }

    // Step 2: replay the identical trace under different devices using
    // the bring-your-own-workload constructor. The warm factory gives
    // the SSD-cache warmup pass its own replay cursor.
    std::printf("\n%-14s %12s %12s %12s %14s\n", "variant", "exec(ms)",
                "ssd-hit", "ssd-miss", "ctx-switches");
    double base_ms = 0;
    for (const std::string variant :
         {"Base-CSSD", "SkyByte-WP", "SkyByte-Full"}) {
        SimConfig cfg = makeBenchConfig(variant);
        System system(cfg,
                      std::make_unique<TraceFileWorkload>(trace_path),
                      [&trace_path] {
                          return std::make_unique<TraceFileWorkload>(
                              trace_path);
                      });
        SimResult res = system.run();
        if (variant == "Base-CSSD")
            base_ms = res.execMs();
        std::printf("%-14s %12.3f %12lu %12lu %14lu\n", variant.c_str(),
                    res.execMs(),
                    static_cast<unsigned long>(res.ssdReadHits),
                    static_cast<unsigned long>(res.ssdReadMisses),
                    static_cast<unsigned long>(res.contextSwitches));
        if (variant == "SkyByte-Full" && base_ms > 0) {
            std::printf("\nverdict: SkyByte-Full runs this join in "
                        "%.0f%% of the naive CXL-SSD time.\n",
                        100.0 * res.execMs() / base_ms);
        }
    }
    return base_ms > 0 ? 0 : 1;
}
