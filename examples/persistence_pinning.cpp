/**
 * @file
 * Data persistence (§IV): pin a range of the device address space so
 * the pages holding durable state are never promoted to volatile host
 * DRAM — once a clwb-flushed line reaches the battery-backed SSD DRAM
 * it is persistent. The unpinned remainder of the footprint still
 * enjoys adaptive page migration.
 *
 * The example runs the same workload three times — everything
 * migratable, one quarter pinned, everything pinned — and shows (a) the
 * promotion count falls as the pinned range grows because only unpinned
 * pages are candidates, and (b) what the durability guarantee costs (or
 * saves) end to end at this scale.
 *
 *   ./examples/persistence_pinning [workload]
 */

#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "sim/system.h"
#include "trace/workload.h"

using namespace skybyte;

namespace {

SimResult
runWithPinned(const std::string &workload, std::uint64_t pinned_bytes)
{
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    cfg.hostMem.pinnedDeviceBytes = pinned_bytes;
    ExperimentOptions opt;
    opt.instrPerThread = 100'000;
    System system(cfg, workload, makeParams(cfg, opt));
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "bc";

    // Ask the workload for its actual footprint so the pinned fraction
    // is exact (0 in WorkloadParams selects the per-workload default).
    SimConfig probe_cfg = makeBenchConfig("SkyByte-Full");
    ExperimentOptions probe_opt;
    const std::uint64_t footprint =
        makeWorkload(workload, makeParams(probe_cfg, probe_opt))
            ->footprintBytes();

    const SimResult all_volatile = runWithPinned(workload, 0);
    const SimResult quarter = runWithPinned(workload, footprint / 4);
    const SimResult all_pinned = runWithPinned(workload, footprint);

    std::printf("workload %s, footprint %.1f MB\n\n", workload.c_str(),
                static_cast<double>(footprint) / (1024.0 * 1024.0));
    std::printf("%-26s %13s %13s %13s\n", "", "all-volatile",
                "1/4-pinned", "all-pinned");
    std::printf("%-26s %13.3f %13.3f %13.3f\n",
                "simulated exec time (ms)", all_volatile.execMs(),
                quarter.execMs(), all_pinned.execMs());
    std::printf("%-26s %13lu %13lu %13lu\n", "pages promoted",
                static_cast<unsigned long>(all_volatile.promotions),
                static_cast<unsigned long>(quarter.promotions),
                static_cast<unsigned long>(all_pinned.promotions));
    std::printf("%-26s %13lu %13lu %13lu\n", "context switches",
                static_cast<unsigned long>(
                    all_volatile.contextSwitches),
                static_cast<unsigned long>(quarter.contextSwitches),
                static_cast<unsigned long>(all_pinned.contextSwitches));

    const double delta =
        (all_pinned.execMs() / all_volatile.execMs() - 1.0) * 100.0;
    std::printf("\nPinned pages are excluded from promotion, so the "
                "promotion count shrinks\nwith the pinned range "
                "(%lu -> %lu -> %lu) while durable data always serves\n"
                "from the battery-backed SSD DRAM. Full pinning changes "
                "end-to-end time by\n%+.1f%% here — the coordinated "
                "context switch still hides most flash latency\neven "
                "with migration disabled.\n",
                static_cast<unsigned long>(all_volatile.promotions),
                static_cast<unsigned long>(quarter.promotions),
                static_cast<unsigned long>(all_pinned.promotions),
                delta);
    return 0;
}
