#include "cpu/core.h"

#include <algorithm>

namespace skybyte {

Core::Core(int core_id, const CpuConfig &cfg, const PolicyConfig &policy,
           EventQueue &eq, Uncore &uncore)
    : coreId_(core_id), cfg_(cfg), policy_(policy), eq_(eq),
      uncore_(uncore), l1_(cfg.l1d), l2_(cfg.l2), l1Mshrs_(cfg.l1d.mshrs)
{
    uncore.addCore(this);
}

void
Core::assignThread(ThreadContext *thread, Tick now)
{
    if (state_ != State::Idle || thread == nullptr)
        return;
    if (now > idleSince_)
        stats_.idleTicks += now - idleSince_;
    cursor_ = std::max(cursor_, now);
    thread_ = thread;
    state_ = State::Running;
    scheduleRun(cursor_);
}

void
Core::scheduleRun(Tick when)
{
    if (runScheduled_)
        return;
    runScheduled_ = true;
    eq_.schedule(when, [this] {
        runScheduled_ = false;
        if (state_ != State::Running)
            return;
        cursor_ = std::max(cursor_, eq_.now());
        runLoop();
    });
}

Tick
Core::headCompleteAt() const
{
    const RobEntry &head = rob_.front();
    if (head.miss)
        return head.miss->done ? head.miss->doneAt : kTickMax;
    return head.completeAt;
}

void
Core::retire()
{
    while (!rob_.empty() && headCompleteAt() <= cursor_) {
        stats_.committedInstructions += rob_.front().slots;
        robSlotsUsed_ -= rob_.front().slots;
        rob_.pop_front();
    }
}

void
Core::fillLocal(Addr line, Tick now)
{
    // Fill L2 first so the L1 victim (if dirty) lands behind it in LRU.
    CacheResult r2 = l2_.fill(line, false);
    if (r2.writeback)
        uncore_.writebackToL3(r2.victimAddr, r2.victimValue, now);
    CacheResult r1 = l1_.fill(line, false);
    if (r1.writeback) {
        CacheResult cascade = l2_.fill(r1.victimAddr, true, r1.victimValue);
        if (cascade.writeback) {
            uncore_.writebackToL3(cascade.victimAddr, cascade.victimValue,
                                  now);
        }
    }
}

bool
Core::issueMem(const TraceRecord &rec, Tick t, RobEntry &entry)
{
    const Addr line = lineAlign(rec.vaddr);

    if (rec.isWrite) {
        // Trace-driven stores allocate without a demand fetch (no RFO);
        // the dirty data reaches the SSD via LLC writebacks, matching the
        // paper's accounting where CXL-SSD writes never stall or hint.
        const LineValue v = thread_->nextStoreValue();
        if (!l1_.access(line, true, v)) {
            CacheResult r1 = l1_.fill(line, true, v);
            if (r1.writeback) {
                CacheResult c =
                    l2_.fill(r1.victimAddr, true, r1.victimValue);
                if (c.writeback) {
                    uncore_.writebackToL3(c.victimAddr, c.victimValue, t);
                }
            }
        }
        entry.completeAt = t + cfg_.l1d.hitLatency;
        return true;
    }

    if (l1_.access(line, false)) {
        entry.completeAt = t + cfg_.l1d.hitLatency;
        return true;
    }
    if (l2_.access(line, false)) {
        CacheResult r1 = l1_.fill(line, false);
        if (r1.writeback) {
            CacheResult c = l2_.fill(r1.victimAddr, true, r1.victimValue);
            if (c.writeback)
                uncore_.writebackToL3(c.victimAddr, c.victimValue, t);
        }
        entry.completeAt = t + cfg_.l2.hitLatency;
        return true;
    }

    // LLC-bound. Reserve an L1 MSHR unless this line coalesces onto an
    // in-flight one.
    const bool coalesced = l1Mshrs_.contains(line);
    if (!coalesced && l1Mshrs_.full())
        return false;

    MissRef status = uncore_.makeMiss();
    status->lineAddr = line;
    status->owner = this;
    status->issuedAt = t;

    switch (uncore_.load(status, t)) {
      case UncoreLoadResult::HitL3:
        fillLocal(line, t);
        entry.completeAt = t + cfg_.llc.hitLatency;
        return true;
      case UncoreLoadResult::Pending:
        if (!coalesced) {
            l1Mshrs_.allocate(line);
            status->l1MshrHeld = true;
        }
        entry.miss = std::move(status);
        entry.completeAt = kTickMax;
        return true;
      case UncoreLoadResult::MshrBlocked:
        return false;
    }
    return false;
}

void
Core::runLoop()
{
    const Tick quantum_end = eq_.now() + kQuantumTicks;
    while (true) {
        retire();

        if (pendingPenalty_ > 0) {
            stats_.memStallTicks += pendingPenalty_;
            cursor_ += pendingPenalty_;
            pendingPenalty_ = 0;
        }

        if (!hasPendingRec_) {
            if (!thread_->fetch(pendingRec_)) {
                // Trace exhausted: drain the ROB, then finish.
                if (rob_.empty()) {
                    threadDone();
                    return;
                }
                if (!waitOnHead(quantum_end))
                    return;
                continue;
            }
            hasPendingRec_ = true;
        }

        const std::uint32_t slots = pendingRec_.computeOps + 1;
        if (!rob_.empty()
            && robSlotsUsed_ + slots > cfg_.robEntries) {
            if (!waitOnHead(quantum_end))
                return;
            continue;
        }

        const Tick issue_end = cursor_ + slots;
        RobEntry entry;
        entry.slots = slots;
        entry.rec = pendingRec_;
        if (!issueMem(pendingRec_, issue_end, entry)) {
            stats_.mshrBlockedStalls++;
            state_ = State::StalledMshr;
            return; // woken by onMshrFree / own completions
        }
        rob_.push_back(std::move(entry));
        robSlotsUsed_ += slots;
        stats_.issuedInstructions += slots;
        stats_.computeTicks += slots;
        thread_->addVruntime(slots);
        cursor_ = issue_end;
        hasPendingRec_ = false;

        if (cursor_ >= quantum_end) {
            scheduleRun(cursor_);
            return;
        }
    }
}

bool
Core::waitOnHead(Tick quantum_end)
{
    const Tick t = headCompleteAt();
    if (t == kTickMax) {
        const RobEntry &head = rob_.front();
        if (head.miss->hinted && policy_.deviceTriggeredCtxSwitch) {
            doContextSwitch();
            return false;
        }
        state_ = State::StalledMem;
        return false; // woken by onMissData / onMissHint
    }
    stats_.memStallTicks += t - cursor_;
    cursor_ = t;
    if (cursor_ >= quantum_end) {
        scheduleRun(cursor_);
        return false;
    }
    return true;
}

void
Core::squashToReplay()
{
    std::deque<TraceRecord> recs;
    for (auto &entry : rob_) {
        recs.push_back(entry.rec);
        stats_.squashedRecords++;
        if (entry.miss && !entry.miss->done) {
            entry.miss->orphaned = true;
            if (cfg_.freeMshrOnSquash && entry.miss->l1MshrHeld) {
                l1Mshrs_.release(entry.miss->lineAddr);
                entry.miss->l1MshrHeld = false;
            }
        }
    }
    if (hasPendingRec_) {
        recs.push_back(pendingRec_);
        hasPendingRec_ = false;
    }
    thread_->unfetch(recs);
    rob_.clear();
    robSlotsUsed_ = 0;
}

void
Core::doContextSwitch()
{
    stats_.contextSwitches++;
    squashToReplay();
    ThreadContext *next = scheduler_->pickNext(coreId_, thread_, cursor_);
    stats_.ctxSwitchTicks += policy_.ctxSwitchOverhead;
    cursor_ += policy_.ctxSwitchOverhead;
    thread_ = next;
    if (thread_ == nullptr) {
        enterIdle();
        return;
    }
    state_ = State::Running;
    scheduleRun(cursor_);
}

void
Core::threadDone()
{
    thread_->markFinished();
    thread_->setFinishTime(cursor_);
    scheduler_->threadFinished(thread_, cursor_);
    ThreadContext *next = scheduler_->pickNext(coreId_, nullptr, cursor_);
    if (next == nullptr) {
        enterIdle();
        return;
    }
    thread_ = next;
    stats_.ctxSwitchTicks += policy_.ctxSwitchOverhead;
    cursor_ += policy_.ctxSwitchOverhead;
    state_ = State::Running;
    scheduleRun(cursor_);
}

void
Core::enterIdle()
{
    state_ = State::Idle;
    thread_ = nullptr;
    idleSince_ = cursor_;
}

void
Core::wake(Tick now)
{
    if (now > cursor_) {
        stats_.memStallTicks += now - cursor_;
        cursor_ = now;
    }
    state_ = State::Running;
    runLoop();
}

void
Core::onMissData(const MissRef &status, Tick now)
{
    status->done = true;
    status->doneAt = now;
    if (status->l1MshrHeld) {
        l1Mshrs_.release(status->lineAddr);
        status->l1MshrHeld = false;
    }
    if (!status->orphaned)
        fillLocal(status->lineAddr, now);
    if (state_ == State::StalledMem || state_ == State::StalledMshr)
        wake(now);
}

void
Core::onMissHint(const MissRef &status, Tick now)
{
    status->hinted = true;
    if (status->l1MshrHeld) {
        l1Mshrs_.release(status->lineAddr);
        status->l1MshrHeld = false;
    }
    if (state_ == State::StalledMem || state_ == State::StalledMshr)
        wake(now);
}

void
Core::onMshrFree(Tick now)
{
    if (state_ == State::StalledMshr)
        wake(now);
}

} // namespace skybyte
