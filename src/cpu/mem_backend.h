/**
 * @file
 * Interface between the CPU cache hierarchy and the off-chip memory
 * system (host DRAM, or the CXL-SSD through the CXL link).
 *
 * Demand reads complete asynchronously with either a data response or a
 * SkyByte-Delay hint (§III-A, C2). Writebacks of dirty LLC victims are
 * posted: nothing in the core waits on them.
 */

#ifndef SKYBYTE_CPU_MEM_BACKEND_H
#define SKYBYTE_CPU_MEM_BACKEND_H

#include <cstdint>

#include "common/inline_function.h"
#include "common/types.h"

namespace skybyte {

/** What a read response carries back to the cache hierarchy. */
enum class MemResponseKind
{
    Data,      ///< CXL.mem MemData (or host DRAM fill)
    DelayHint, ///< CXL.mem NDR with the SkyByte-Delay opcode
};

/** Off-chip memory request (one 64 B cacheline). */
struct MemRequest
{
    Addr lineAddr = 0;   ///< cacheline-aligned virtual address
    bool isWrite = false;
    int coreId = -1;
    int threadId = -1;
    LineValue value = 0; ///< functional payload for writes
};

/** Response to a demand read. */
struct MemResponse
{
    MemResponseKind kind = MemResponseKind::Data;
    Addr lineAddr = 0;
    LineValue value = 0; ///< functional payload for data responses
    /** CXL transaction tag carried by NDR delay hints (Figure 8). */
    std::uint16_t tag = 0;
};

/**
 * Demand-read completion callback. Move-only with a 32-byte inline
 * buffer: every callback on the miss path (the uncore's response
 * dispatch, test harness captures) constructs inline, and handing the
 * callback down the router -> SSD -> event-queue chain moves it
 * instead of cloning a heap-backed std::function at each hop.
 */
using MemCallback = InlineFunction<void(const MemResponse &), 32>;

/**
 * Anything that can serve LLC misses: the memory router in the full
 * system, or a plain DRAM model in unit tests.
 */
class MemoryBackend
{
  public:
    virtual ~MemoryBackend() = default;

    /**
     * Issue a demand read at time @p when (>= now). Exactly one callback
     * will eventually fire: Data when the line is ready at the core, or
     * DelayHint when the SSD asks the host to context switch instead.
     */
    virtual void read(const MemRequest &req, Tick when, MemCallback cb) = 0;

    /** Posted write (dirty LLC victim) issued at time @p when. */
    virtual void write(const MemRequest &req, Tick when) = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CPU_MEM_BACKEND_H
