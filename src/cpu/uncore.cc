#include "cpu/uncore.h"

#include "cpu/core.h"

namespace skybyte {

Uncore::Uncore(const CpuConfig &cfg, EventQueue &eq, MemoryBackend &backend)
    : eq_(eq), backend_(backend), l3_(cfg.llc), mshrs_(cfg.llc.mshrs)
{}

UncoreLoadResult
Uncore::load(const MissRef &status, Tick when)
{
    const Addr line = status->lineAddr;
    if (l3_.access(line, false, 0, &status->value))
        return UncoreLoadResult::HitL3;

    llcMisses_++;
    if (auto *waiters = inFlight_.find(line)) {
        waiters->push_back(status);
        llcCoalesced_++;
        return UncoreLoadResult::Pending;
    }
    if (mshrs_.full()) {
        llcMshrBlocks_++;
        return UncoreLoadResult::MshrBlocked;
    }
    mshrs_.allocate(line);
    inFlight_[line].push_back(status);

    MemRequest req;
    req.lineAddr = line;
    req.isWrite = false;
    req.coreId = status->owner != nullptr ? status->owner->id() : -1;
    backend_.read(req, when, [this, line](const MemResponse &resp) {
        onResponse(line, resp);
    });
    return UncoreLoadResult::Pending;
}

void
Uncore::writebackToL3(Addr line_addr, LineValue value, Tick when)
{
    CacheResult res = l3_.fill(line_addr, true, value);
    if (res.writeback) {
        MemRequest req;
        req.lineAddr = res.victimAddr;
        req.isWrite = true;
        req.value = res.victimValue;
        backend_.write(req, when);
    }
}

void
Uncore::onResponse(Addr line_addr, const MemResponse &resp)
{
    // Detach the waiter list before completing anyone: a completion
    // callback may re-enter load() and mutate the table.
    std::vector<MissRef> waiters;
    if (auto *entry = inFlight_.find(line_addr)) {
        waiters = std::move(*entry);
        inFlight_.erase(line_addr);
    }
    mshrs_.release(line_addr);
    const Tick now = eq_.now();

    if (waiters.empty()) {
        wakeBlockedCores();
        return;
    }

    if (resp.kind == MemResponseKind::Data) {
        CacheResult res = l3_.fill(line_addr, false, resp.value);
        if (res.writeback) {
            MemRequest wb;
            wb.lineAddr = res.victimAddr;
            wb.isWrite = true;
            wb.value = res.victimValue;
            backend_.write(wb, now);
        }
        for (auto &st : waiters) {
            st->value = resp.value;
            offchip_.record(now - st->issuedAt);
            if (!tenantOffchip_.empty()) {
                const int t = tenantOf_(st->lineAddr);
                if (t >= 0
                    && static_cast<std::size_t>(t)
                           < tenantOffchip_.size()) {
                    tenantOffchip_[static_cast<std::size_t>(t)].record(
                        now - st->issuedAt);
                }
            }
            if (st->owner != nullptr) {
                st->owner->onMissData(st, now);
            } else {
                st->done = true;
                st->doneAt = now;
            }
        }
    } else {
        for (auto &st : waiters) {
            if (st->owner != nullptr)
                st->owner->onMissHint(st, now);
            else
                st->hinted = true;
        }
    }
    wakeBlockedCores();
}

void
Uncore::wakeBlockedCores()
{
    for (Core *core : cores_)
        core->onMshrFree(eq_.now());
}

} // namespace skybyte
