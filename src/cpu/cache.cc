#include "cpu/cache.h"

#include <algorithm>

namespace skybyte {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, std::uint32_t ways)
{
    ways_ = std::max<std::uint32_t>(ways, 1);
    std::uint64_t lines = std::max<std::uint64_t>(
        size_bytes / kCachelineBytes, ways_);
    std::uint64_t sets = lines / ways_;
    // Round sets down to a power of two for cheap indexing.
    std::uint32_t pow2 = 1;
    while (static_cast<std::uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    numSets_ = pow2;
    ways2d_.assign(static_cast<std::size_t>(numSets_) * ways_, Way{});
}

std::uint32_t
SetAssocCache::setOf(Addr line_addr) const
{
    // Mix upper bits so large-stride patterns spread across sets.
    std::uint64_t x = line_addr / kCachelineBytes;
    x ^= x >> 17;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    return static_cast<std::uint32_t>(x & (numSets_ - 1));
}

bool
SetAssocCache::access(Addr line_addr, bool is_write, LineValue write_value,
                      LineValue *read_out)
{
    const Addr tag = line_addr / kCachelineBytes;
    Way *set = &ways2d_[static_cast<std::size_t>(setOf(line_addr)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lru = ++lruClock_;
            if (is_write) {
                set[w].dirty = true;
                set[w].value = write_value;
            } else if (read_out != nullptr) {
                *read_out = set[w].value;
            }
            hits_++;
            return true;
        }
    }
    misses_++;
    return false;
}

bool
SetAssocCache::probe(Addr line_addr) const
{
    const Addr tag = line_addr / kCachelineBytes;
    const Way *set =
        &ways2d_[static_cast<std::size_t>(setOf(line_addr)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

CacheResult
SetAssocCache::fill(Addr line_addr, bool dirty, LineValue value)
{
    CacheResult res;
    const Addr tag = line_addr / kCachelineBytes;
    Way *set = &ways2d_[static_cast<std::size_t>(setOf(line_addr)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            // Already present (e.g., racing fills after coalescing).
            set[w].lru = ++lruClock_;
            if (dirty) {
                set[w].dirty = true;
                set[w].value = value;
            }
            res.hit = true;
            return res;
        }
    }
    // Prefer an invalid way; otherwise evict true-LRU.
    Way *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim == nullptr || set[w].lru < victim->lru)
            victim = &set[w];
    }
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victimAddr = victim->tag * kCachelineBytes;
        res.victimValue = victim->value;
        writebacks_++;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lru = ++lruClock_;
    victim->value = value;
    return res;
}

bool
SetAssocCache::invalidate(Addr line_addr, bool *was_dirty)
{
    const Addr tag = line_addr / kCachelineBytes;
    Way *set = &ways2d_[static_cast<std::size_t>(setOf(line_addr)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            if (was_dirty != nullptr)
                *was_dirty = set[w].dirty;
            set[w].valid = false;
            set[w].dirty = false;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::clear()
{
    std::fill(ways2d_.begin(), ways2d_.end(), Way{});
    lruClock_ = 0;
}

bool
MshrFile::contains(Addr line_addr) const
{
    return inFlight_.contains(line_addr);
}

bool
MshrFile::allocate(Addr line_addr)
{
    if (full() || contains(line_addr))
        return false;
    inFlight_.tryEmplace(line_addr, 1);
    return true;
}

void
MshrFile::release(Addr line_addr)
{
    inFlight_.erase(line_addr);
}

} // namespace skybyte
