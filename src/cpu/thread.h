/**
 * @file
 * Software thread state: the per-thread trace cursor, the replay buffer
 * that receives squashed records on a coordinated context switch
 * (§III-A C3/C4 — the thread resumes from the faulting instruction), and
 * the scheduler bookkeeping (CFS vruntime).
 */

#ifndef SKYBYTE_CPU_THREAD_H
#define SKYBYTE_CPU_THREAD_H

#include <cstdint>
#include <deque>

#include "common/types.h"
#include "trace/workload.h"

namespace skybyte {

/**
 * One software thread replaying one lane of the workload trace.
 */
class ThreadContext
{
  public:
    ThreadContext(int thread_id, Workload *workload)
        : threadId_(thread_id), workload_(workload)
    {}

    int threadId() const { return threadId_; }

    /**
     * Next record to execute: the replay buffer (squashed work) first,
     * then fresh trace records. Fresh records come from a per-thread
     * TraceBatch, so the common case is an inline array walk; the
     * workload's virtual refill() runs once per batch. Prefetched
     * records waiting in the batch were never issued, so a squash never
     * touches them — only ROB/pending records go back through unfetch().
     * @retval false when the thread has fully exhausted its trace.
     */
    bool
    fetch(TraceRecord &rec)
    {
        if (!replay_.empty()) {
            rec = replay_.front();
            replay_.pop_front();
            return true;
        }
        if (batch_.drained()) {
            const std::uint32_t n =
                source_ != nullptr ? source_->nextBatch(threadId_, batch_)
                                   : workload_->refill(threadId_, batch_);
            if (n == 0)
                return false;
        }
        rec = batch_.records[batch_.cursor++];
        return true;
    }

    /**
     * Route batch refills through @p source instead of the workload
     * (lane-parallel prestaging); nullptr restores the direct path.
     * The record stream must be identical either way.
     */
    void setBatchSource(BatchSource *source) { source_ = source; }

    /**
     * Return squashed records (oldest first) to the front of the stream
     * so the thread re-executes from the faulting instruction.
     */
    void
    unfetch(const std::deque<TraceRecord> &records)
    {
        replay_.insert(replay_.begin(), records.begin(), records.end());
    }

    /** Prepend a single record (the faulting access itself). */
    void unfetchOne(const TraceRecord &rec) { replay_.push_front(rec); }

    bool finished() const { return finished_; }
    void markFinished() { finished_ = true; }

    /** CFS virtual runtime (issued instruction slots as proxy). */
    Tick vruntime() const { return vruntime_; }
    void addVruntime(Tick t) { vruntime_ += t; }

    /** Monotonic functional store counter for this thread. */
    LineValue nextStoreValue() { return ++storeSeq_; }

    /** Simulation time at which the thread finished (0 if running). */
    Tick finishTime() const { return finishTime_; }
    void setFinishTime(Tick t) { finishTime_ = t; }

  private:
    int threadId_;
    Workload *workload_;
    BatchSource *source_ = nullptr;
    TraceBatch batch_;
    std::deque<TraceRecord> replay_;
    bool finished_ = false;
    Tick vruntime_ = 0;
    LineValue storeSeq_ = 0;
    Tick finishTime_ = 0;
};

/**
 * Scheduling interface the core uses to hand threads back to the OS.
 * Implemented by the CXL-aware scheduler in src/core/os.h.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Yield @p yielding (may be nullptr when the previous thread
     * finished) and pick the next runnable thread for @p core_id, or
     * nullptr if none is available (core goes idle).
     */
    virtual ThreadContext *pickNext(int core_id, ThreadContext *yielding,
                                    Tick now) = 0;

    /** Notify that @p thread exhausted its trace at @p now. */
    virtual void threadFinished(ThreadContext *thread, Tick now) = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CPU_THREAD_H
