/**
 * @file
 * Trace-driven core model (Table II: 4-wide, 256-entry ROB, private
 * L1D/L2, 4 GHz).
 *
 * The core consumes TraceRecords ("k compute ops + 1 memory op"), issuing
 * one instruction per tick (4-wide at 4 GHz) into a ROB window. Memory
 * ops probe L1/L2 functionally; LLC-bound loads go to the Uncore and
 * complete via callback. The core stalls when the ROB head is incomplete
 * and the window is full; stall time is attributed to memory-boundedness
 * exactly as the paper's VTune-style definition (Fig 4).
 *
 * Coordinated context switches (§III-A): when a blocking ROB head carries
 * a SkyByte-Delay hint, the core raises the Long Delay Exception, squashes
 * un-retired records into the thread's replay buffer, optionally frees its
 * L1 MSHRs, charges the OS switch overhead and asks the scheduler for the
 * next thread.
 */

#ifndef SKYBYTE_CPU_CORE_H
#define SKYBYTE_CPU_CORE_H

#include <deque>
#include <memory>

#include "common/config.h"
#include "common/event_queue.h"
#include "cpu/cache.h"
#include "cpu/thread.h"
#include "cpu/uncore.h"

namespace skybyte {

/** Per-core timing and event statistics. */
struct CoreStats
{
    Tick computeTicks = 0;
    Tick memStallTicks = 0;
    Tick ctxSwitchTicks = 0;
    Tick idleTicks = 0;
    std::uint64_t committedInstructions = 0;
    std::uint64_t issuedInstructions = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t squashedRecords = 0;
    std::uint64_t mshrBlockedStalls = 0;
};

/**
 * One CPU core.
 */
class Core
{
  public:
    Core(int core_id, const CpuConfig &cfg, const PolicyConfig &policy,
         EventQueue &eq, Uncore &uncore);

    int id() const { return coreId_; }

    /** The OS must be attached before any thread runs. */
    void setScheduler(Scheduler *sched) { scheduler_ = sched; }

    /** Assign a thread and (if idle) start executing it at @p now. */
    void assignThread(ThreadContext *thread, Tick now);

    bool idle() const { return state_ == State::Idle; }
    ThreadContext *currentThread() const { return thread_; }

    /** Uncore callbacks. @{ */
    void onMissData(const MissRef &status, Tick now);
    void onMissHint(const MissRef &status, Tick now);
    void onMshrFree(Tick now);
    /** @} */

    /**
     * Charge a one-off pipeline penalty (e.g., TLB shootdown when a page
     * migration completes, §V). Applied before the next instruction.
     */
    void addPenalty(Tick ticks) { pendingPenalty_ += ticks; }

    const CoreStats &stats() const { return stats_; }
    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &l2() const { return l2_; }

  private:
    enum class State { Idle, Running, StalledMem, StalledMshr, Switching };

    struct RobEntry
    {
        std::uint32_t slots = 0;
        Tick completeAt = 0; ///< kTickMax while a miss is pending
        MissRef miss;
        TraceRecord rec;
    };

    /** Main execution loop; runs until stalled or quantum expires. */
    void runLoop();

    /** Resume from a stall at @p now, accounting the stalled interval. */
    void wake(Tick now);

    /** Retire all completed head entries at local time cursor_. */
    void retire();

    /**
     * Handle a blocking ROB head: context switch on a hinted miss, sleep
     * on a pending one, or advance time to a known completion.
     * @retval true to keep executing in the current loop iteration.
     */
    bool waitOnHead(Tick quantum_end);

    Tick headCompleteAt() const;

    /**
     * Issue the memory op of @p rec at time @p t.
     * @retval false if blocked on an MSHR (record stays pending).
     */
    bool issueMem(const TraceRecord &rec, Tick t, RobEntry &entry);

    /** Fill @p line into L1/L2, cascading dirty victims downwards. */
    void fillLocal(Addr line, Tick now);

    /** Raise the Long Delay Exception and switch threads (§III-A C3). */
    void doContextSwitch();

    /** Move all un-retired records back to the thread (squash). */
    void squashToReplay();

    /** Current thread ended; pick another or go idle. */
    void threadDone();

    void scheduleRun(Tick when);
    void enterIdle();

    int coreId_;
    const CpuConfig &cfg_;
    const PolicyConfig &policy_;
    EventQueue &eq_;
    Uncore &uncore_;
    Scheduler *scheduler_ = nullptr;

    SetAssocCache l1_;
    SetAssocCache l2_;
    MshrFile l1Mshrs_;

    ThreadContext *thread_ = nullptr;
    State state_ = State::Idle;
    Tick cursor_ = 0;       ///< core-local time (>= last event time)
    Tick idleSince_ = 0;
    std::deque<RobEntry> rob_;
    std::uint32_t robSlotsUsed_ = 0;
    bool hasPendingRec_ = false;
    TraceRecord pendingRec_{};
    Tick pendingPenalty_ = 0;
    bool runScheduled_ = false;

    CoreStats stats_;

    /** Causality quantum: max ticks to run ahead of the event queue. */
    static constexpr Tick kQuantumTicks = 4096; // 256 ns
};

} // namespace skybyte

#endif // SKYBYTE_CPU_CORE_H
