/**
 * @file
 * Functional set-associative write-back cache with true-LRU replacement,
 * used for the per-core L1D/L2 and the shared L3 (Table II). Timing is
 * applied by the core model; this class only tracks tags and dirty bits.
 */

#ifndef SKYBYTE_CPU_CACHE_H
#define SKYBYTE_CPU_CACHE_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/flat_map.h"
#include "common/types.h"

namespace skybyte {

/** Outcome of a cache access or fill. */
struct CacheResult
{
    bool hit = false;
    /** A dirty victim was evicted and must be written to the next level. */
    bool writeback = false;
    Addr victimAddr = 0;
    /** Functional payload of the dirty victim. */
    LineValue victimValue = 0;
};

/**
 * Set-associative cache of 64 B lines.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes capacity
     * @param ways associativity (clamped so at least one set exists)
     */
    SetAssocCache(std::uint64_t size_bytes, std::uint32_t ways);

    /** Build from a CacheConfig. */
    explicit SetAssocCache(const CacheConfig &cfg)
        : SetAssocCache(cfg.sizeBytes, cfg.ways)
    {}

    /**
     * Look up @p line_addr; on hit, update LRU and (for writes) the dirty
     * bit and functional value. Does NOT allocate on miss — call fill().
     *
     * @param write_value functional payload stored on a write hit
     * @param read_out    receives the line's payload on a read hit
     */
    bool access(Addr line_addr, bool is_write, LineValue write_value = 0,
                LineValue *read_out = nullptr);

    /** True if the line is present (no LRU update). */
    bool probe(Addr line_addr) const;

    /**
     * Insert @p line_addr, evicting the LRU way if the set is full.
     * @param dirty insert in dirty state (writeback fills)
     * @param value functional payload of the inserted line
     * @return eviction information
     */
    CacheResult fill(Addr line_addr, bool dirty, LineValue value = 0);

    /** Remove a line if present; @return true and its dirty state. */
    bool invalidate(Addr line_addr, bool *was_dirty = nullptr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t ways() const { return ways_; }

    /** Drop all contents (used on reset between runs). */
    void clear();

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
        LineValue value = 0;
    };

    std::uint32_t setOf(Addr line_addr) const;

    std::uint32_t numSets_;
    std::uint32_t ways_;
    std::vector<Way> ways2d_; // numSets_ x ways_, row-major
    std::uint64_t lruClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

/**
 * Miss-status holding register file with same-line coalescing: tracks the
 * set of distinct in-flight line addresses and enforces the entry budget.
 */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t entries) : capacity_(entries) {}

    bool full() const { return inFlight_.size() >= capacity_; }

    /** True if @p line_addr already has an entry (coalesce target). */
    bool contains(Addr line_addr) const;

    /**
     * Allocate an entry for @p line_addr.
     * @retval false if full or already present.
     */
    bool allocate(Addr line_addr);

    /** Release the entry for @p line_addr (idempotent). */
    void release(Addr line_addr);

    std::size_t occupancy() const { return inFlight_.size(); }
    std::uint32_t capacity() const { return capacity_; }

    void clear() { inFlight_.clear(); }

  private:
    std::uint32_t capacity_;
    /** Membership-only set of in-flight lines (never iterated). */
    FlatMap<unsigned char> inFlight_;
};

} // namespace skybyte

#endif // SKYBYTE_CPU_CACHE_H
