/**
 * @file
 * Shared uncore: the L3/LLC, its MSHR file with cross-core coalescing
 * (§III-A C1 — one CXL.mem request may be associated with instructions
 * from several cores), and the dispatch of LLC misses to the off-chip
 * backend. Also records the off-chip latency distribution for Figure 3.
 */

#ifndef SKYBYTE_CPU_UNCORE_H
#define SKYBYTE_CPU_UNCORE_H

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/slab.h"
#include "common/stats.h"
#include "cpu/cache.h"
#include "cpu/mem_backend.h"

namespace skybyte {

class Core;

/**
 * Status of one in-flight load miss as seen by a core's ROB. Shared
 * between the ROB entry and the uncore so a response (or SkyByte-Delay
 * hint) can complete or mark the entry even after a squash.
 */
struct MissStatus
{
    Addr lineAddr = 0;
    Core *owner = nullptr;
    bool done = false;      ///< data arrived
    bool hinted = false;    ///< SkyByte-Delay received (§III-A C2)
    bool orphaned = false;  ///< squashed; nobody will retire it
    bool l1MshrHeld = false;
    Tick issuedAt = 0;
    Tick doneAt = kTickMax;
    LineValue value = 0; ///< functional payload of the data response
    /** Intrusive refcount managed by MissRef (single-threaded). */
    std::uint32_t refs = 0;
};

/**
 * Intrusive refcounted handle to a slab-backed MissStatus: the
 * shared_ptr it replaced cost one heap allocation (control block +
 * record) per LLC-bound load on the request path. Records come from
 * Uncore's slab (stable addresses, recycled storage) and return to it
 * when the last handle drops; the count is a plain integer because the
 * whole core/uncore request path is single-threaded event code.
 */
class MissRef
{
  public:
    MissRef() = default;

    /** Adopt @p status (its refcount must already count this handle). */
    MissRef(MissStatus *status, Slab<MissStatus> *home)
        : ptr_(status), home_(home)
    {}

    MissRef(const MissRef &other) : ptr_(other.ptr_), home_(other.home_)
    {
        if (ptr_ != nullptr)
            ++ptr_->refs;
    }

    MissRef(MissRef &&other) noexcept
        : ptr_(other.ptr_), home_(other.home_)
    {
        other.ptr_ = nullptr;
    }

    MissRef &
    operator=(const MissRef &other)
    {
        MissRef copy(other);
        swap(copy);
        return *this;
    }

    MissRef &
    operator=(MissRef &&other) noexcept
    {
        swap(other);
        other.reset();
        return *this;
    }

    ~MissRef() { reset(); }

    /** Drop this handle; releases the record on the last one. */
    void
    reset()
    {
        if (ptr_ != nullptr && --ptr_->refs == 0)
            home_->release(ptr_);
        ptr_ = nullptr;
    }

    void
    swap(MissRef &other) noexcept
    {
        std::swap(ptr_, other.ptr_);
        std::swap(home_, other.home_);
    }

    MissStatus *operator->() const { return ptr_; }
    MissStatus &operator*() const { return *ptr_; }
    explicit operator bool() const { return ptr_ != nullptr; }

  private:
    MissStatus *ptr_ = nullptr;
    Slab<MissStatus> *home_ = nullptr;
};

/** Result of presenting an LLC-bound load to the uncore. */
enum class UncoreLoadResult
{
    HitL3,      ///< completes after the L3 hit latency
    Pending,    ///< miss in flight; MissStatus will be completed
    MshrBlocked ///< LLC MSHRs exhausted; retry after a release
};

/**
 * The shared L3 + LLC MSHRs + backend port.
 */
class Uncore
{
  public:
    Uncore(const CpuConfig &cfg, EventQueue &eq, MemoryBackend &backend);

    /**
     * Fresh slab-backed miss record for an LLC-bound load (the one
     * sanctioned allocation site; the request path itself stays
     * allocation-free at steady state).
     */
    MissRef
    makeMiss()
    {
        MissStatus *status = missSlab_.alloc();
        status->refs = 1;
        return MissRef(status, &missSlab_);
    }

    /**
     * Present a demand load that missed L1/L2 at time @p when.
     * On Pending, @p status is registered and will receive done/hinted.
     */
    UncoreLoadResult load(const MissRef &status, Tick when);

    /** Dirty line evicted from a core's L2: fill into L3. */
    void writebackToL3(Addr line_addr, LineValue value, Tick when);

    /** Register a core for MSHR-free wakeups. */
    void addCore(Core *core) { cores_.push_back(core); }

    SetAssocCache &l3() { return l3_; }
    const SetAssocCache &l3c() const { return l3_; }

    std::uint64_t llcMisses() const { return llcMisses_; }
    std::uint64_t llcCoalesced() const { return llcCoalesced_; }
    std::uint64_t llcMshrBlocks() const { return llcMshrBlocks_; }

    /** Off-chip (post-LLC) demand-load latency distribution (Fig 3). */
    const LatencyHistogram &offchipLatency() const { return offchip_; }

    /**
     * Enable per-tenant off-chip latency recording (mix: workloads):
     * @p n histograms, one per tenant, classified by the host virtual
     * line address through @p classify (-1 = no tenant, e.g. private
     * stack lines — those land only in the aggregate). Recording
     * happens beside the aggregate offchip histogram at the same
     * sample sites, so the tenant histograms partition the aggregate's
     * tenant-owned samples exactly. Pure accounting: enabling this
     * never changes simulated behaviour.
     */
    void
    enableTenantLatency(std::size_t n, std::function<int(Addr)> classify)
    {
        tenantOffchip_.assign(n, LatencyHistogram{});
        tenantOf_ = std::move(classify);
    }

    /** Per-tenant off-chip latency, aligned with enableTenantLatency. */
    const std::vector<LatencyHistogram> &tenantOffchipLatency() const
    {
        return tenantOffchip_;
    }

  private:
    void onResponse(Addr line_addr, const MemResponse &resp);
    void wakeBlockedCores();

    EventQueue &eq_;
    MemoryBackend &backend_;
    SetAssocCache l3_;
    MshrFile mshrs_;
    /** Declared before inFlight_ so every waiter handle releases back
     *  into the slab before the slab itself destructs. */
    Slab<MissStatus> missSlab_;
    FlatMap<std::vector<MissRef>> inFlight_;
    std::vector<Core *> cores_;
    LatencyHistogram offchip_;
    /** Per-tenant histograms (empty = disabled) + vaddr classifier. */
    std::vector<LatencyHistogram> tenantOffchip_;
    std::function<int(Addr)> tenantOf_;
    std::uint64_t llcMisses_ = 0;
    std::uint64_t llcCoalesced_ = 0;
    std::uint64_t llcMshrBlocks_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CPU_UNCORE_H
