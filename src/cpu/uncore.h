/**
 * @file
 * Shared uncore: the L3/LLC, its MSHR file with cross-core coalescing
 * (§III-A C1 — one CXL.mem request may be associated with instructions
 * from several cores), and the dispatch of LLC misses to the off-chip
 * backend. Also records the off-chip latency distribution for Figure 3.
 */

#ifndef SKYBYTE_CPU_UNCORE_H
#define SKYBYTE_CPU_UNCORE_H

#include <memory>
#include <vector>

#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/stats.h"
#include "cpu/cache.h"
#include "cpu/mem_backend.h"

namespace skybyte {

class Core;

/**
 * Status of one in-flight load miss as seen by a core's ROB. Shared
 * between the ROB entry and the uncore so a response (or SkyByte-Delay
 * hint) can complete or mark the entry even after a squash.
 */
struct MissStatus
{
    Addr lineAddr = 0;
    Core *owner = nullptr;
    bool done = false;      ///< data arrived
    bool hinted = false;    ///< SkyByte-Delay received (§III-A C2)
    bool orphaned = false;  ///< squashed; nobody will retire it
    bool l1MshrHeld = false;
    Tick issuedAt = 0;
    Tick doneAt = kTickMax;
    LineValue value = 0; ///< functional payload of the data response
};

/** Result of presenting an LLC-bound load to the uncore. */
enum class UncoreLoadResult
{
    HitL3,      ///< completes after the L3 hit latency
    Pending,    ///< miss in flight; MissStatus will be completed
    MshrBlocked ///< LLC MSHRs exhausted; retry after a release
};

/**
 * The shared L3 + LLC MSHRs + backend port.
 */
class Uncore
{
  public:
    Uncore(const CpuConfig &cfg, EventQueue &eq, MemoryBackend &backend);

    /**
     * Present a demand load that missed L1/L2 at time @p when.
     * On Pending, @p status is registered and will receive done/hinted.
     */
    UncoreLoadResult load(const std::shared_ptr<MissStatus> &status,
                          Tick when);

    /** Dirty line evicted from a core's L2: fill into L3. */
    void writebackToL3(Addr line_addr, LineValue value, Tick when);

    /** Register a core for MSHR-free wakeups. */
    void addCore(Core *core) { cores_.push_back(core); }

    SetAssocCache &l3() { return l3_; }
    const SetAssocCache &l3c() const { return l3_; }

    std::uint64_t llcMisses() const { return llcMisses_; }
    std::uint64_t llcCoalesced() const { return llcCoalesced_; }
    std::uint64_t llcMshrBlocks() const { return llcMshrBlocks_; }

    /** Off-chip (post-LLC) demand-load latency distribution (Fig 3). */
    const LatencyHistogram &offchipLatency() const { return offchip_; }

  private:
    void onResponse(Addr line_addr, const MemResponse &resp);
    void wakeBlockedCores();

    EventQueue &eq_;
    MemoryBackend &backend_;
    SetAssocCache l3_;
    MshrFile mshrs_;
    FlatMap<std::vector<std::shared_ptr<MissStatus>>> inFlight_;
    std::vector<Core *> cores_;
    LatencyHistogram offchip_;
    std::uint64_t llcMisses_ = 0;
    std::uint64_t llcCoalesced_ = 0;
    std::uint64_t llcMshrBlocks_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CPU_UNCORE_H
