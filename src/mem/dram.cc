#include "mem/dram.h"

#include <algorithm>

namespace skybyte {

DramModel::DramModel(EventQueue &eq, Tick access_latency,
                     std::uint32_t channels,
                     double bytes_per_ns_per_channel,
                     const DramBankTiming &bank)
    : eq_(eq), accessLatency_(access_latency),
      bytesPerNsPerChannel_(bytes_per_ns_per_channel), bank_(bank),
      channelFree_(std::max<std::uint32_t>(channels, 1), 0)
{
    if (bank_.enabled())
        banks_.resize(channelFree_.size() * bank_.banksPerChannel);
}

std::uint32_t
DramModel::channelOf(Addr addr) const
{
    // Hash the line index so page-aligned bursts spread across channels
    // (plain modulo would pin all 4 KB-aligned transfers to channel 0).
    std::uint64_t x = addr / kCachelineBytes;
    x ^= x >> 13;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x % channelFree_.size());
}

Tick
DramModel::serviceAt(Tick when, std::uint32_t bytes, Addr addr)
{
    if (bank_.enabled())
        return bankServiceAt(when, bytes, addr);
    Tick &free_at = channelFree_[channelOf(addr)];
    const Tick start = std::max(when, free_at);
    const auto xfer = static_cast<Tick>(
        static_cast<double>(bytes) / bytesPerNsPerChannel_
        * static_cast<double>(kTicksPerNs));
    free_at = start + xfer;
    bytes_ += bytes;
    return start + xfer + accessLatency_;
}

Tick
DramModel::bankServiceAt(Tick when, std::uint32_t bytes, Addr addr)
{
    // Rows are contiguous in the address space; spread *rows* (not
    // lines) across channels and banks so row locality survives the
    // interleaving.
    const std::uint64_t row = addr / bank_.rowBytes;
    std::uint64_t x = row;
    x ^= x >> 13;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 31;
    const auto channel =
        static_cast<std::uint32_t>(x % channelFree_.size());
    const auto bank_idx = static_cast<std::uint32_t>(
        (x / channelFree_.size()) % bank_.banksPerChannel);
    Bank &bank = banks_[channel * bank_.banksPerChannel + bank_idx];

    // Core access latency by row-buffer state (open-page policy).
    Tick core;
    if (bank.open && bank.openRow == row) {
        core = bank_.tCas;
        rowHits_++;
    } else if (!bank.open) {
        core = bank_.tRcd + bank_.tCas;
        rowMisses_++;
    } else {
        core = bank_.tRp + bank_.tRcd + bank_.tCas;
        rowConflicts_++;
    }

    const Tick cmd = std::max(when, bank.freeAt);
    Tick &chan_free = channelFree_[channel];
    const Tick data_start = std::max(cmd + core, chan_free);
    const auto xfer = static_cast<Tick>(
        static_cast<double>(bytes) / bytesPerNsPerChannel_
        * static_cast<double>(kTicksPerNs));
    chan_free = data_start + xfer;
    bank.freeAt = data_start + xfer;
    bank.open = true;
    bank.openRow = row;
    bytes_ += bytes;
    return data_start + xfer + bank_.controllerLatency;
}

Tick
DramModel::readAt(const MemRequest &req, Tick when, MemCallback cb)
{
    reads_++;
    const Tick done = serviceAt(when, kCachelineBytes, req.lineAddr);
    MemResponse resp;
    resp.kind = MemResponseKind::Data;
    resp.lineAddr = req.lineAddr;
    resp.value = peek(req.lineAddr);
    eq_.schedule(done, [cb = std::move(cb), resp]() mutable { cb(resp); });
    return done;
}

void
DramModel::read(const MemRequest &req, Tick when, MemCallback cb)
{
    readAt(req, when, std::move(cb));
}

void
DramModel::write(const MemRequest &req, Tick when)
{
    writes_++;
    serviceAt(when, kCachelineBytes, req.lineAddr);
    store_[req.lineAddr] = req.value;
}

LineValue
DramModel::peek(Addr line_addr) const
{
    const LineValue *v = store_.find(line_addr);
    return v == nullptr ? 0 : *v;
}

void
DramModel::poke(Addr line_addr, LineValue value)
{
    store_[line_addr] = value;
}

} // namespace skybyte
