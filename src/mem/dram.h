/**
 * @file
 * DRAM timing + functional model, used for both the host DDR5 (Table II:
 * 8 channels) and the SSD-internal LPDDR4 (2 channels). The default
 * timing is a fixed access latency plus a per-channel bandwidth queue;
 * enabling DramBankTiming switches to a bank/row-buffer model built from
 * Table II's speed grades (row hits pay CL, row misses tRCD+CL, row
 * conflicts tRP+tRCD+CL, banks serialize their own accesses). The
 * functional side is a sparse map of cacheline payloads either way.
 */

#ifndef SKYBYTE_MEM_DRAM_H
#define SKYBYTE_MEM_DRAM_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/flat_map.h"
#include "cpu/mem_backend.h"

namespace skybyte {

/**
 * A bandwidth-limited, fixed-latency DRAM device.
 */
class DramModel : public MemoryBackend
{
  public:
    DramModel(EventQueue &eq, Tick access_latency, std::uint32_t channels,
              double bytes_per_ns_per_channel,
              const DramBankTiming &bank = {});

    DramModel(EventQueue &eq, const HostDramConfig &cfg)
        : DramModel(eq, cfg.accessLatency, cfg.channels,
                    cfg.bytesPerNsPerChannel, cfg.bank)
    {}

    DramModel(EventQueue &eq, const SsdDramConfig &cfg)
        : DramModel(eq, cfg.accessLatency, cfg.channels,
                    cfg.bytesPerNsPerChannel, cfg.bank)
    {}

    /**
     * Timing-only primitive: when is a @p bytes transfer issued at
     * @p when for @p addr complete? Advances the channel queue.
     */
    Tick serviceAt(Tick when, std::uint32_t bytes, Addr addr);

    /** MemoryBackend: asynchronous demand read with functional payload. */
    void read(const MemRequest &req, Tick when, MemCallback cb) override;

    /**
     * Like read(), but returns the completion tick (the time @p cb is
     * scheduled at). The MemRouter uses this to account host-read
     * latency at issue time instead of wrapping the callback — the
     * wrap was the last per-request heap allocation on the host path.
     */
    Tick readAt(const MemRequest &req, Tick when, MemCallback cb);

    /** MemoryBackend: posted write; payload applied at completion time. */
    void write(const MemRequest &req, Tick when) override;

    /** Functional peek (tests / migration copies). */
    LineValue peek(Addr line_addr) const;

    /** Functional poke (migration copies, preconditioning). */
    void poke(Addr line_addr, LineValue value);

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    /** Total bytes transferred (reads + writes). */
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Is the bank/row-buffer model active? */
    bool bankModelEnabled() const { return bank_.enabled(); }
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    std::uint64_t rowConflicts() const { return rowConflicts_; }

  private:
    /** Per-bank row-buffer state (bank model only). */
    struct Bank
    {
        Tick freeAt = 0;
        std::uint64_t openRow = 0;
        bool open = false;
    };

    std::uint32_t channelOf(Addr addr) const;

    /** Bank-model access: activate/precharge timing + bank busy. */
    Tick bankServiceAt(Tick when, std::uint32_t bytes, Addr addr);

    EventQueue &eq_;
    Tick accessLatency_;
    double bytesPerNsPerChannel_;
    DramBankTiming bank_;
    std::vector<Tick> channelFree_;
    std::vector<Bank> banks_; ///< channels x banksPerChannel
    /** Sparse functional payload store, probed once per DRAM access. */
    FlatMap<LineValue> store_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowMisses_ = 0;
    std::uint64_t rowConflicts_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_MEM_DRAM_H
