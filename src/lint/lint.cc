#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <mutex>
#include <stdexcept>

namespace skybyte {

namespace {

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string
trimCopy(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Marker every pragma comment carries. */
constexpr const char *kPragmaTag = "skybyte-lint:";

/**
 * Parse the pragma out of one comment's text (the text after the
 * comment marker). Returns false when the comment is not a pragma.
 */
bool
parsePragma(const std::string &comment, LintLine &line)
{
    const std::size_t tag = comment.find(kPragmaTag);
    if (tag == std::string::npos)
        return false;
    line.hasPragma = true;
    std::size_t pos = tag + std::string(kPragmaTag).size();
    while (pos < comment.size()
           && std::isspace(static_cast<unsigned char>(comment[pos])))
        ++pos;
    const std::string kAllow = "allow(";
    if (comment.compare(pos, kAllow.size(), kAllow) != 0) {
        line.pragmaMalformed = true;
        return true;
    }
    pos += kAllow.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
        line.pragmaMalformed = true;
        return true;
    }
    std::string name;
    for (std::size_t i = pos; i <= close; ++i) {
        const char c = comment[i];
        if (c == ',' || c == ')') {
            name = trimCopy(name);
            if (name.empty()) {
                line.pragmaMalformed = true;
                return true;
            }
            line.pragmaRules.push_back(name);
            name.clear();
        } else {
            name.push_back(c);
        }
    }
    line.pragmaJustification = trimCopy(comment.substr(close + 1));
    return true;
}

/** Multi-line scanner state carried across newlines. */
enum class ScanState { Normal, BlockComment, RawString };

} // namespace

SourceFile
scanSource(std::string path, const std::string &text)
{
    SourceFile file;
    file.path = std::move(path);

    ScanState state = ScanState::Normal;
    std::string rawDelim; // closing delimiter of an open raw string

    std::size_t begin = 0;
    while (begin <= text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        LintLine line;
        line.raw = text.substr(begin, end - begin);
        if (!line.raw.empty() && line.raw.back() == '\r')
            line.raw.pop_back();
        line.code = line.raw;

        std::string &code = line.code;
        // Only // comments can carry pragmas (the documented grammar),
        // so block-comment prose ABOUT the pragma syntax never parses
        // as one.
        std::string comment; // accumulated line-comment text
        std::size_t i = 0;
        while (i < code.size()) {
            switch (state) {
            case ScanState::BlockComment: {
                const std::size_t close = code.find("*/", i);
                const std::size_t blankEnd =
                    close == std::string::npos ? code.size() : close + 2;
                for (std::size_t k = i; k < blankEnd; ++k)
                    code[k] = ' ';
                i = blankEnd;
                if (close != std::string::npos)
                    state = ScanState::Normal;
                break;
            }
            case ScanState::RawString: {
                const std::size_t close = code.find(rawDelim, i);
                const std::size_t blankEnd =
                    close == std::string::npos
                        ? code.size()
                        : close + rawDelim.size();
                for (std::size_t k = i; k < blankEnd; ++k)
                    code[k] = ' ';
                i = blankEnd;
                if (close != std::string::npos)
                    state = ScanState::Normal;
                break;
            }
            case ScanState::Normal: {
                const char c = code[i];
                if (c == '/' && i + 1 < code.size()
                    && code[i + 1] == '/') {
                    comment += code.substr(i + 2);
                    for (std::size_t k = i; k < code.size(); ++k)
                        code[k] = ' ';
                    i = code.size();
                    break;
                }
                if (c == '/' && i + 1 < code.size()
                    && code[i + 1] == '*') {
                    code[i] = ' ';
                    code[i + 1] = ' ';
                    i += 2;
                    state = ScanState::BlockComment;
                    break;
                }
                if (c == 'R' && i + 1 < code.size()
                    && code[i + 1] == '"'
                    && (i == 0 || !identChar(code[i - 1]))) {
                    // R"delim( ... )delim"
                    const std::size_t open = code.find('(', i + 2);
                    if (open != std::string::npos) {
                        rawDelim = ")" + code.substr(i + 2, open - i - 2)
                                   + "\"";
                        for (std::size_t k = i; k <= open; ++k)
                            code[k] = ' ';
                        i = open + 1;
                        state = ScanState::RawString;
                        break;
                    }
                    ++i;
                    break;
                }
                if (c == '\'' && i > 0 && identChar(code[i - 1])) {
                    // Digit separator (100'000) or literal suffix,
                    // not a char literal.
                    ++i;
                    break;
                }
                if (c == '"' || c == '\'') {
                    // Keep the quotes, blank the body. A quote with no
                    // closer on the line (should not happen outside
                    // raw strings) blanks to end of line.
                    std::size_t j = i + 1;
                    while (j < code.size()) {
                        if (code[j] == '\\' && j + 1 < code.size()) {
                            j += 2;
                            continue;
                        }
                        if (code[j] == c)
                            break;
                        ++j;
                    }
                    const std::size_t close =
                        j < code.size() ? j : code.size();
                    for (std::size_t k = i + 1; k < close; ++k)
                        code[k] = ' ';
                    i = close + 1;
                    break;
                }
                ++i;
                break;
            }
            }
        }
        if (!comment.empty())
            parsePragma(comment, line);
        file.lines.push_back(std::move(line));
        if (end == text.size())
            break;
        begin = end + 1;
    }
    // A trailing newline produces a final empty line; drop it so line
    // counts match what editors show.
    if (!file.lines.empty() && file.lines.back().raw.empty())
        file.lines.pop_back();
    return file;
}

bool
containsIdentifier(const std::string &code, const std::string &ident)
{
    if (ident.empty())
        return false;
    std::size_t pos = 0;
    while ((pos = code.find(ident, pos)) != std::string::npos) {
        const bool openOk = pos == 0 || !identChar(code[pos - 1]);
        const std::size_t after = pos + ident.size();
        const bool closeOk =
            after >= code.size() || !identChar(code[after]);
        if (openOk && closeOk)
            return true;
        pos = after;
    }
    return false;
}

std::vector<std::size_t>
identifierLines(const SourceFile &file, const std::string &ident)
{
    std::vector<std::size_t> lines;
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
        if (containsIdentifier(file.lines[i].code, ident))
            lines.push_back(i + 1);
    }
    return lines;
}

// ------------------------------------------------------------ registry

namespace detail {
/** Defined in rules.cc: the builtin rule families. */
void registerBuiltinLintRules();
} // namespace detail

namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, LintRule> &
registryLocked()
{
    static std::map<std::string, LintRule> rules;
    return rules;
}

void
insertRule(LintRule rule)
{
    if (rule.name.empty())
        throw std::invalid_argument("lint rule name must not be empty");
    if (!rule.check) {
        throw std::invalid_argument("lint rule " + rule.name
                                    + " has no check");
    }
    auto [it, inserted] =
        registryLocked().emplace(rule.name, std::move(rule));
    if (!inserted) {
        throw std::invalid_argument("duplicate lint rule name: "
                                    + it->first);
    }
}

void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::lock_guard<std::mutex> lock(registryMutex());
        detail::registerBuiltinLintRules();
    });
}

} // namespace

namespace detail {

/** Registration hook shared with rules.cc (not public API). */
void
registerLintRuleUnlocked(LintRule rule)
{
    insertRule(std::move(rule));
}

} // namespace detail

void
registerLintRule(LintRule rule)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    insertRule(std::move(rule));
}

const LintRule *
findLintRule(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    auto it = registryLocked().find(name);
    return it == registryLocked().end() ? nullptr : &it->second;
}

std::vector<const LintRule *>
registeredLintRules()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<const LintRule *> rules;
    rules.reserve(registryLocked().size());
    for (const auto &[name, rule] : registryLocked())
        rules.push_back(&rule);
    return rules;
}

// -------------------------------------------------------------- runner

std::vector<LintFinding>
lintFile(const SourceFile &file)
{
    std::vector<LintFinding> findings;
    for (const LintRule *rule : registeredLintRules()) {
        if (rule->inScope && !rule->inScope(file.path))
            continue;
        rule->check(file, findings);
    }
    for (LintFinding &f : findings) {
        f.file = file.path;
        if (f.line >= 1 && f.line <= file.lines.size())
            f.code = trimCopy(file.lines[f.line - 1].raw);
    }

    // Effective pragma per line: its own, or a pragma on the
    // comment-only line directly above.
    auto pragmaFor = [&](std::size_t lineNo) -> const LintLine * {
        const LintLine &self = file.lines[lineNo - 1];
        if (self.hasPragma)
            return &self;
        if (lineNo >= 2) {
            const LintLine &above = file.lines[lineNo - 2];
            if (above.hasPragma
                && trimCopy(above.code).empty())
                return &above;
        }
        return nullptr;
    };

    std::vector<LintFinding> kept;
    for (LintFinding &f : findings) {
        const LintLine *pragma =
            f.line >= 1 && f.line <= file.lines.size()
                ? pragmaFor(f.line)
                : nullptr;
        const bool suppressed =
            pragma != nullptr && !pragma->pragmaMalformed
            && !pragma->pragmaJustification.empty()
            && std::find(pragma->pragmaRules.begin(),
                         pragma->pragmaRules.end(),
                         f.rule)
                   != pragma->pragmaRules.end();
        if (!suppressed)
            kept.push_back(std::move(f));
    }

    // Pragma hygiene: these findings are never themselves
    // pragma-suppressible.
    for (std::size_t i = 0; i < file.lines.size(); ++i) {
        const LintLine &line = file.lines[i];
        if (!line.hasPragma)
            continue;
        auto emit = [&](const std::string &message) {
            LintFinding f;
            f.rule = "pragma";
            f.file = file.path;
            f.line = i + 1;
            f.code = trimCopy(line.raw);
            f.message = message;
            kept.push_back(std::move(f));
        };
        if (line.pragmaMalformed) {
            emit("malformed skybyte-lint pragma (expected: "
                 "skybyte-lint: allow(<rule>[,<rule>]) "
                 "<justification>)");
            continue;
        }
        if (line.pragmaJustification.empty()) {
            emit("allow pragma requires a justification after the "
                 "rule list");
        }
        for (const std::string &name : line.pragmaRules) {
            if (name == "pragma") {
                emit("the pragma rule itself cannot be allowed");
            } else if (findLintRule(name) == nullptr) {
                emit("unknown rule '" + name + "' in allow pragma");
            }
        }
    }

    std::sort(kept.begin(), kept.end(),
              [](const LintFinding &a, const LintFinding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
    return kept;
}

std::vector<LintFinding>
lintFiles(const std::vector<SourceFile> &files)
{
    std::vector<LintFinding> findings;
    for (const SourceFile &file : files) {
        std::vector<LintFinding> f = lintFile(file);
        findings.insert(findings.end(),
                        std::make_move_iterator(f.begin()),
                        std::make_move_iterator(f.end()));
    }
    return findings;
}

std::vector<std::string>
collectLintFiles(const std::string &root)
{
    namespace fs = std::filesystem;
    const fs::path base(root.empty() ? "." : root);
    if (!fs::is_directory(base / "src")) {
        throw std::runtime_error("not a skybyte tree (no src/ under "
                                 + base.string() + ")");
    }
    std::vector<std::string> paths;
    for (const char *top : {"src", "tools", "bench"}) {
        const fs::path dir = base / top;
        if (!fs::is_directory(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".h" && ext != ".cc")
                continue;
            paths.push_back(
                fs::relative(entry.path(), base).generic_string());
        }
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

// ------------------------------------------------------------ baseline

std::string
baselineKey(const LintFinding &finding)
{
    return finding.rule + "\t" + finding.file + "\t" + finding.code;
}

LintBaseline
parseLintBaseline(const std::string &text)
{
    LintBaseline baseline;
    std::size_t begin = 0;
    std::size_t lineNo = 0;
    while (begin < text.size()) {
        std::size_t end = text.find('\n', begin);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(begin, end - begin);
        begin = end + 1;
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::string trimmed = trimCopy(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        // A key is rule \t file \t code; the code part may itself
        // contain anything but a newline.
        const std::size_t t1 = line.find('\t');
        const std::size_t t2 =
            t1 == std::string::npos ? std::string::npos
                                    : line.find('\t', t1 + 1);
        if (t1 == std::string::npos || t2 == std::string::npos
            || t1 == 0 || t2 == t1 + 1) {
            throw std::invalid_argument(
                "baseline line " + std::to_string(lineNo)
                + ": expected rule<TAB>file<TAB>code");
        }
        baseline.entries[line] += 1;
    }
    return baseline;
}

std::string
formatLintBaseline(const std::vector<LintFinding> &findings)
{
    std::map<std::string, std::size_t> counts;
    for (const LintFinding &f : findings)
        counts[baselineKey(f)] += 1;
    std::string out;
    out += "# skybyte_lint baseline: grandfathered findings, one\n";
    out += "# rule<TAB>file<TAB>code key per occurrence. New findings\n";
    out += "# fail the lint; when a listed finding is fixed its line\n";
    out += "# must be deleted (stale entries fail too), so this file\n";
    out += "# only shrinks. Regenerate: skybyte_lint --update-baseline\n";
    for (const auto &[key, count] : counts) {
        for (std::size_t i = 0; i < count; ++i) {
            out += key;
            out += '\n';
        }
    }
    return out;
}

BaselineDiff
diffAgainstBaseline(const std::vector<LintFinding> &findings,
                    const LintBaseline &baseline)
{
    BaselineDiff diff;
    std::map<std::string, std::size_t> seen;
    for (const LintFinding &f : findings) {
        const std::string key = baselineKey(f);
        auto it = baseline.entries.find(key);
        const std::size_t allowed =
            it == baseline.entries.end() ? 0 : it->second;
        if (++seen[key] > allowed)
            diff.fresh.push_back(f);
    }
    for (const auto &[key, count] : baseline.entries) {
        auto it = seen.find(key);
        const std::size_t current = it == seen.end() ? 0 : it->second;
        if (current < count)
            diff.stale.push_back(key);
    }
    return diff;
}

} // namespace skybyte
