/**
 * @file
 * skybyte_lint: source-level invariant checks for the determinism
 * discipline every PR's byte-identical SimResult fingerprints rest on.
 *
 * The simulator's correctness gates compare serialized reports byte
 * for byte, which only works while nothing nondeterministic leaks into
 * a result: no wall-clock or libc rand() in the simulated kernel, no
 * unordered-container iteration feeding serialization, no report
 * written without the common/fs.h temp+rename writers, no heap churn
 * sneaking back into the request path PR 4 made allocation-free. The
 * linter encodes those rules as a registry of source-level checks
 * (mirroring the sweep registry: every rule registered under a stable
 * name, shared by the CLI, the ctest self-lint and CI).
 *
 * The scanner is token-aware, not regex-grep: comments and the bodies
 * of string/char literals are blanked before matching, and banned
 * names match whole identifiers only — `vruntime(` does not trip the
 * `time(` ban, and a comment discussing std::rand is fine.
 *
 * Suppression is explicit and justified. A finding may be waived
 * per-line with
 *
 *     // skybyte-lint: allow(<rule>[,<rule>...]) <justification>
 *
 * either trailing the offending line or on a comment-only line
 * immediately above it. Pragmas are recognized in // comments only
 * (block-comment prose about the syntax is inert). The justification
 * text is mandatory: a pragma without one is itself a finding (rule
 * "pragma"), as is a pragma naming an unknown rule.
 *
 * Grandfathered findings live in a checked-in baseline file keyed by
 * (rule, file, exact code text) — stable across unrelated line-number
 * churn. New findings fail the build; entries whose finding disappears
 * must be deleted from the baseline (a stale entry is also a failure),
 * so the baseline can only shrink over time.
 */

#ifndef SKYBYTE_LINT_LINT_H
#define SKYBYTE_LINT_LINT_H

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace skybyte {

/** One source line, scanned. */
struct LintLine
{
    /** Verbatim text (no trailing newline). */
    std::string raw;
    /**
     * Matchable text: comments and string/char literal bodies are
     * replaced by spaces, so column positions still line up with raw.
     */
    std::string code;
    /** Rule names listed in an allow(...) pragma on this line. */
    std::vector<std::string> pragmaRules;
    /** Text after the allow(...) list; must be nonempty. */
    std::string pragmaJustification;
    /** The line carries a skybyte-lint pragma (well-formed or not). */
    bool hasPragma = false;
    /** Pragma present but unparsable (no allow(...) list). */
    bool pragmaMalformed = false;
};

/** One scanned file: repo-relative path plus its scanned lines. */
struct SourceFile
{
    /** Repo-relative path with '/' separators, e.g. "src/cpu/core.cc". */
    std::string path;
    std::vector<LintLine> lines;
};

/**
 * Scan @p text (the whole file) into lines with comments and literal
 * bodies blanked. Block comments and raw string literals may span
 * lines; the scanner carries that state across the split.
 */
SourceFile scanSource(std::string path, const std::string &text);

/** One rule violation. */
struct LintFinding
{
    std::string rule;
    std::string file;
    /** 1-based line number. */
    std::size_t line = 0;
    /** Trimmed verbatim line text: the baseline key component. */
    std::string code;
    std::string message;
};

/**
 * One registered invariant. `check` sees only files where
 * inScope(path) is true and appends findings; pragma suppression and
 * pragma validity are enforced centrally by lintFile(), not per rule.
 */
struct LintRule
{
    /** Registry key and the name used in allow(...) pragmas. */
    std::string name;
    /** One-line description shown by skybyte_lint --list. */
    std::string title;
    std::function<bool(const std::string &path)> inScope;
    std::function<void(const SourceFile &file,
                       std::vector<LintFinding> &out)>
        check;
};

/** @name Rule registry (sweep-registry idiom).
 * The builtin rule families register on first use; registerLintRule()
 * adds user-defined rules (tests) on top.
 * @{ */

/** Register @p rule. @throws std::invalid_argument on duplicate. */
void registerLintRule(LintRule rule);

/** Look up a rule; nullptr when unknown. */
const LintRule *findLintRule(const std::string &name);

/** All registered rules, name-sorted. */
std::vector<const LintRule *> registeredLintRules();
/** @} */

/**
 * Whole-identifier match: does @p code contain @p ident as a complete
 * identifier token (not as a substring of a longer one)?
 */
bool containsIdentifier(const std::string &code,
                        const std::string &ident);

/**
 * Findings of @p ident with line numbers, one per occurrence line.
 * Helper for the common "banned identifier" rule shape.
 */
std::vector<std::size_t> identifierLines(const SourceFile &file,
                                         const std::string &ident);

/**
 * Run every registered rule over @p file, apply allow(...) pragmas
 * (same line or the comment-only line above), and emit "pragma"
 * findings for pragmas without justification or naming unknown rules.
 * Findings come out in (line, rule) order.
 */
std::vector<LintFinding> lintFile(const SourceFile &file);

/** lintFile() over every file, concatenated in input order. */
std::vector<LintFinding> lintFiles(const std::vector<SourceFile> &files);

/**
 * The repo-relative paths the tree lint covers: every *.h / *.cc under
 * src/, tools/ and bench/ below @p root, sorted lexicographically so
 * scan order (and therefore output and baseline order) is independent
 * of directory enumeration order.
 * @throws std::runtime_error when @p root has no src/ directory.
 */
std::vector<std::string> collectLintFiles(const std::string &root);

/** Grandfathered findings: baseline key -> occurrence count. */
struct LintBaseline
{
    std::map<std::string, std::size_t> entries;
};

/** "rule<TAB>file<TAB>code": stable under line-number churn. */
std::string baselineKey(const LintFinding &finding);

/**
 * Parse a baseline file: '#' comments and blank lines skipped, one
 * key per line, duplicates accumulate.
 * @throws std::invalid_argument on a line that is not a valid key.
 */
LintBaseline parseLintBaseline(const std::string &text);

/** Serialize @p findings as a baseline file (sorted, deduplicated). */
std::string formatLintBaseline(const std::vector<LintFinding> &findings);

/** lintFiles() vs a baseline. */
struct BaselineDiff
{
    /** Findings not covered by the baseline: always a failure. */
    std::vector<LintFinding> fresh;
    /**
     * Baseline keys with fewer current findings than grandfathered
     * occurrences: the fixed ones must be deleted from the baseline
     * (shrink-only discipline), so these fail too.
     */
    std::vector<std::string> stale;
};

BaselineDiff diffAgainstBaseline(const std::vector<LintFinding> &findings,
                                 const LintBaseline &baseline);

} // namespace skybyte

#endif // SKYBYTE_LINT_LINT_H
