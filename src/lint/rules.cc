/**
 * @file
 * The builtin lint rule families — the repo's determinism discipline
 * as data, registered the way sweep_registry.cc registers sweeps.
 *
 * Each family is a banned-identifier scan over a path scope. The
 * scopes and allowlists are deliberately explicit lists, not
 * heuristics: when a new file legitimately needs a banned name, either
 * extend the allowlist here (reviewed like any code change) or carry a
 * justified `// skybyte-lint: allow(<rule>) why` pragma at the use.
 */

#include <array>
#include <initializer_list>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace skybyte {
namespace detail {

void registerLintRuleUnlocked(LintRule rule); // lint.cc

namespace {

bool
underAny(const std::string &path,
         std::initializer_list<const char *> prefixes)
{
    for (const char *prefix : prefixes) {
        if (path.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

/** One banned name and the message explaining the ban. */
struct BannedIdent
{
    const char *ident;
    std::string message;
};

/**
 * The shared rule shape: flag every line where a banned identifier
 * appears as a whole token, minus (file, identifier) allowlist pairs.
 */
LintRule
bannedIdentRule(std::string name, std::string title,
                std::function<bool(const std::string &)> inScope,
                std::vector<BannedIdent> banned,
                std::vector<std::pair<std::string, std::string>>
                    allowFileIdent = {})
{
    LintRule rule;
    rule.name = std::move(name);
    rule.title = std::move(title);
    rule.inScope = std::move(inScope);
    rule.check = [ruleName = rule.name, banned = std::move(banned),
                  allow = std::move(allowFileIdent)](
                     const SourceFile &file,
                     std::vector<LintFinding> &out) {
        for (const BannedIdent &b : banned) {
            bool allowed = false;
            for (const auto &[path, ident] : allow) {
                if (file.path == path && ident == b.ident) {
                    allowed = true;
                    break;
                }
            }
            if (allowed)
                continue;
            for (std::size_t line : identifierLines(file, b.ident)) {
                LintFinding f;
                f.rule = ruleName;
                f.line = line;
                f.message = b.message;
                out.push_back(std::move(f));
            }
        }
    };
    return rule;
}

/**
 * Rule family 1 — no nondeterminism in simulation code.
 *
 * A SimResult must be a pure function of (config, workload spec,
 * seed). Wall clocks, libc PRNGs and environment reads anywhere in the
 * simulation layers would break the byte-identical fingerprint gates
 * the whole verification discipline rests on. The sanctioned sources
 * are common/rng.h (seeded xoshiro streams) and EventQueue::now()
 * (simulated time).
 *
 * Allowlisted: the experiment/sweep front ends read the documented
 * SKYBYTE_* environment knobs before any simulation starts, and the
 * process-isolation driver (run_executor) measures child wall-clock
 * for timeouts/backoff — driver bookkeeping that never feeds a
 * SimResult metric.
 */
LintRule
nondeterminismRule()
{
    auto msg = [](const char *what) {
        return std::string("nondeterministic source '") + what
               + "' in simulation code: results must be a pure "
                 "function of config+workload+seed (use common/rng.h "
                 "and EventQueue time)";
    };
    std::vector<BannedIdent> banned;
    for (const char *ident :
         {"rand", "srand", "rand_r", "random", "drand48", "lrand48",
          "time", "clock", "gettimeofday", "clock_gettime",
          "system_clock", "steady_clock", "high_resolution_clock",
          "getenv"})
        banned.push_back({ident, msg(ident)});
    return bannedIdentRule(
        "nondeterminism",
        "no wall-clock/libc-rand/getenv in simulation layers",
        [](const std::string &path) {
            return underAny(path,
                            {"src/common/", "src/core/", "src/cpu/",
                             "src/cxl/", "src/mem/", "src/ssd/",
                             "src/sim/"});
        },
        std::move(banned),
        {
            // SKYBYTE_BENCH_* scale knobs, read before any sim runs.
            {"src/sim/experiment.cc", "getenv"},
            // SKYBYTE_SWEEP_SHARD / SKYBYTE_BENCH_INSTR presence test.
            {"src/sim/sweep.cc", "getenv"},
            // SKYBYTE_SIM_LANES: lane count is result-invariant (the
            // parallel kernel is bit-identical for every value), so
            // this knob can only change wall-clock.
            {"src/sim/lane_stage.cc", "getenv"},
            // SKYBYTE_BACKOFF_MS / SKYBYTE_FAULT driver knobs.
            {"src/sim/run_executor.cc", "getenv"},
            // Child wall-clock timeouts and retry backoff pacing:
            // driver scheduling, never a SimResult input.
            {"src/sim/run_executor.cc", "steady_clock"},
        });
}

/**
 * Rule family 2 — no unordered containers in result-producing code.
 *
 * std::unordered_{map,set} iteration order is standard-library
 * specific, so any traversal that feeds simulation behavior or
 * serialized output silently unpins the cross-platform fingerprints
 * (and the per-node heap churn is what PR 4's FlatMap removed from the
 * hot indices). Use common/flat_map.h, or carry a justified pragma
 * when the container is never iterated (pure membership) or feeds an
 * order-insensitive reduction.
 */
LintRule
unorderedContainerRule()
{
    auto msg = [](const char *what) {
        return std::string("'") + what
               + "' in result-producing code: iteration order is "
                 "stdlib-specific and per-node allocation is hot-path "
                 "churn; port to common/flat_map.h (FlatMap) or "
                 "justify with an allow pragma";
    };
    std::vector<BannedIdent> banned;
    for (const char *ident :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"})
        banned.push_back({ident, msg(ident)});
    return bannedIdentRule(
        "unordered-container",
        "no unordered-container use where results are produced",
        [](const std::string &path) {
            return underAny(path,
                            {"src/core/", "src/cpu/", "src/cxl/",
                             "src/mem/", "src/ssd/", "src/sim/",
                             "src/trace/"});
        },
        std::move(banned));
}

/**
 * Rule family 3 — crash-safe writes only.
 *
 * Every report/journal writer must go through common/fs.h:
 * writeFileAtomic() (temp+rename, no reader ever sees a truncated
 * file) or appendLine() (single O_APPEND write). A raw ofstream/fopen
 * reintroduces exactly the torn-file windows PR 6 closed. fs.cc
 * itself implements the helpers and is the one sanctioned user.
 */
LintRule
rawFileWriteRule()
{
    auto msg = [](const char *what) {
        return std::string("raw '") + what
               + "' write: reports and journals must use common/fs.h "
                 "(writeFileAtomic/appendLine) so a crash never "
                 "leaves a truncated file";
    };
    std::vector<BannedIdent> banned;
    for (const char *ident : {"ofstream", "fopen", "freopen"})
        banned.push_back({ident, msg(ident)});
    return bannedIdentRule(
        "raw-file-write",
        "no raw ofstream/fopen outside common/fs.cc",
        [](const std::string &path) {
            return path != "src/common/fs.cc";
        },
        std::move(banned));
}

/**
 * Rule family 4 — no heap churn in the request path.
 *
 * PR 4 made the CXL.mem request path allocation-free at steady state
 * (slab fetch records, inline callbacks, FlatMap indices); this rule
 * keeps it that way by flagging new/make_shared/make_unique in the
 * request-path files. Construction-time allocations are fine — mark
 * them with a justified allow pragma.
 */
LintRule
hotPathAllocRule()
{
    // The files on the uncore -> router -> controller -> flash demand
    // path, where a per-request allocation costs throughput.
    static const std::array<const char *, 9> kRequestPathFiles = {
        "src/core/ssd_controller.cc",
        "src/core/astriflash.cc",
        "src/core/page_cache.cc",
        "src/core/write_log.cc",
        "src/core/plb.cc",
        "src/core/reclaim.cc",
        "src/cpu/core.cc",
        "src/cpu/uncore.cc",
        "src/cpu/cache.cc",
    };
    auto msg = [](const char *what) {
        return std::string("'") + what
               + "' in a request-path file: the steady-state request "
                 "path is allocation-free (slabs, inline callbacks, "
                 "FlatMap); justify construction-time use with an "
                 "allow pragma";
    };
    std::vector<BannedIdent> banned;
    for (const char *ident : {"new", "make_shared", "make_unique"})
        banned.push_back({ident, msg(ident)});
    return bannedIdentRule(
        "hot-path-alloc",
        "no new/make_shared/make_unique in request-path files",
        [](const std::string &path) {
            for (const char *file : kRequestPathFiles) {
                if (path == file)
                    return true;
            }
            return false;
        },
        std::move(banned));
}

/**
 * Rule family 5 — no mutable `static` state in lane-concurrent code.
 *
 * The multi-lane kernel (common/lane_kernel.h) and the batch-staging
 * pipeline (sim/lane_stage.h) run workload refills and lane groups on
 * concurrent host threads. A mutable function-local or namespace-scope
 * `static` in those layers is shared state that would race (or need a
 * lock the hot path cannot afford) the moment two lanes touch it —
 * and, being invisible at the call site, it is exactly the kind of
 * hidden coupling the per-tid-state audit for concurrentRefillSafe()
 * cannot see. `static const`/`static constexpr` data is immutable and
 * fine; intentionally synchronized singletons (the workload registry)
 * carry justified allow pragmas.
 *
 * Scope is the .cc files of the lane-concurrent layers: declarations
 * in headers are member functions or `static constexpr` constants,
 * while local statics — the hazard — live in function bodies.
 */
LintRule
laneSharedStateRule()
{
    LintRule rule;
    rule.name = "lane-shared-state";
    rule.title = "no mutable `static` locals in lane-concurrent code";
    rule.inScope = [](const std::string &path) {
        if (path.size() < 3
            || path.compare(path.size() - 3, 3, ".cc") != 0) {
            return false;
        }
        return underAny(path, {"src/trace/"})
               || path == "src/sim/lane_stage.cc"
               || path == "src/common/lane_kernel.cc";
    };
    rule.check = [](const SourceFile &file,
                    std::vector<LintFinding> &out) {
        for (std::size_t i = 0; i < file.lines.size(); ++i) {
            const std::string &code = file.lines[i].code;
            if (!containsIdentifier(code, "static"))
                continue;
            // Whole-token match: static_cast/static_assert don't trip
            // the scan, and const/constexpr on the same line marks the
            // object immutable.
            if (containsIdentifier(code, "const")
                || containsIdentifier(code, "constexpr")) {
                continue;
            }
            LintFinding f;
            f.rule = "lane-shared-state";
            f.line = i + 1;
            f.message =
                "mutable 'static' in lane-concurrent code: refills and "
                "lane groups run on concurrent host threads, so hidden "
                "shared state races; make it const/constexpr, per-tid, "
                "or justify the synchronization with an allow pragma";
            out.push_back(std::move(f));
        }
    };
    return rule;
}

} // namespace

void
registerBuiltinLintRules()
{
    registerLintRuleUnlocked(nondeterminismRule());
    registerLintRuleUnlocked(unorderedContainerRule());
    registerLintRuleUnlocked(rawFileWriteRule());
    registerLintRuleUnlocked(hotPathAllocRule());
    registerLintRuleUnlocked(laneSharedStateRule());
}

} // namespace detail
} // namespace skybyte
