/**
 * @file
 * NAND flash channel model. Each channel serves read/program/erase
 * operations from a FIFO queue (the service discipline Algorithm 1's
 * latency estimator assumes [44]); garbage collection enqueues its
 * operations in the same FIFO, so it blocks later arrivals exactly as
 * described in §II-C.
 */

#ifndef SKYBYTE_SSD_FLASH_H
#define SKYBYTE_SSD_FLASH_H

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/inline_function.h"

namespace skybyte {

/** NAND operation classes. */
enum class FlashOpKind { Read, Program, Erase };

/**
 * Flash-operation completion callback, fired with the completion time.
 * Move-only with a 32-byte inline buffer: the demand-read chain
 * ([controller, lpn] captures) constructs inline; the wider GC /
 * compaction continuations fall back to one heap cell, which is fine —
 * they are amortized over whole-block operations.
 */
using FlashDoneFn = InlineFunction<void(Tick), 32>;

/**
 * One NAND channel: a shared channel bus (serial; carries 4 KB page
 * transfers) in front of a pool of dies (chips x dies, parallel; each
 * executes reads/programs/erases FIFO). Reads occupy a die for tR and
 * then the bus for the transfer; programs transfer first and then hold a
 * die for tProg; erases hold a die for tBERS. Per-kind occupancy counters
 * feed the queue-based delay estimator (Algorithm 1), which — like the
 * paper's — conservatively sums full latencies of queued operations.
 */
class FlashChannel
{
  public:
    FlashChannel(int id, const FlashConfig &cfg, EventQueue &eq);

    /**
     * Enqueue an operation at time @p when; @p on_done fires at its
     * completion time.
     */
    void enqueue(FlashOpKind kind, Tick when, FlashDoneFn on_done);

    /**
     * Algorithm 1: estimated latency a read arriving at @p now would
     * see, predicted from the channel queue status. (The paper sums full
     * latencies of queued requests on a serial channel; against this
     * die-parallel channel the equivalent prediction is the completion
     * time of a hypothetical read given current die/bus occupancy.)
     */
    Tick estimateReadDelay(Tick now) const;

    /** Pending-operation counters (Algorithm 1 inputs). @{ */
    std::uint32_t pendingReads() const { return pendingReads_; }
    std::uint32_t pendingPrograms() const { return pendingPrograms_; }
    std::uint32_t pendingErases() const { return pendingErases_; }
    /** @} */

    /** A garbage collection is occupying this channel (§III-A). */
    bool gcActive() const { return gcActive_; }
    void setGcActive(bool active) { gcActive_ = active; }

    int id() const { return id_; }
    std::uint64_t completedReads() const { return reads_; }
    std::uint64_t completedPrograms() const { return programs_; }
    std::uint64_t completedErases() const { return erases_; }
    Tick busyTicks() const { return busyTicks_; }

    /** Per-kind service latency on this channel. */
    Tick latencyOf(FlashOpKind kind) const;

    /** Earliest time any die becomes free (tests / estimators). */
    Tick earliestDieFree() const;

  private:
    /** Index of the least-loaded die. */
    std::size_t pickDie() const;

    int id_;
    const FlashConfig &cfg_;
    EventQueue &eq_;
    std::vector<Tick> dieFree_;
    Tick busFree_ = 0;
    bool gcActive_ = false;
    std::uint32_t pendingReads_ = 0;
    std::uint32_t pendingPrograms_ = 0;
    std::uint32_t pendingErases_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t programs_ = 0;
    std::uint64_t erases_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_SSD_FLASH_H
