#include "ssd/flash.h"

#include <algorithm>

namespace skybyte {

FlashChannel::FlashChannel(int id, const FlashConfig &cfg, EventQueue &eq)
    : id_(id), cfg_(cfg), eq_(eq)
{
    const std::size_t dies = static_cast<std::size_t>(cfg.chipsPerChannel)
                             * cfg.diesPerChip
                             * std::max(cfg.planesPerDie, 1u);
    dieFree_.assign(std::max<std::size_t>(dies, 1), 0);
}

Tick
FlashChannel::latencyOf(FlashOpKind kind) const
{
    switch (kind) {
      case FlashOpKind::Read:
        return cfg_.timing.readLatency + cfg_.pageTransferTime;
      case FlashOpKind::Program:
        return cfg_.timing.programLatency + cfg_.pageTransferTime;
      case FlashOpKind::Erase:
        return cfg_.timing.eraseLatency;
    }
    return 0;
}

std::size_t
FlashChannel::pickDie() const
{
    std::size_t best = 0;
    for (std::size_t d = 1; d < dieFree_.size(); ++d) {
        if (dieFree_[d] < dieFree_[best])
            best = d;
    }
    return best;
}

Tick
FlashChannel::earliestDieFree() const
{
    return dieFree_[pickDie()];
}

void
FlashChannel::enqueue(FlashOpKind kind, Tick when, FlashDoneFn on_done)
{
    const std::size_t die = pickDie();
    Tick done = when;
    switch (kind) {
      case FlashOpKind::Read: {
        // Cell read on the die, then the page crosses the channel bus.
        const Tick cell_start = std::max(when, dieFree_[die]);
        const Tick cell_done = cell_start + cfg_.timing.readLatency;
        const Tick bus_start = std::max(cell_done, busFree_);
        done = bus_start + cfg_.pageTransferTime;
        busFree_ = done;
        dieFree_[die] = done; // die holds the data until transfer ends
        pendingReads_++;
        busyTicks_ += done - cell_start;
        break;
      }
      case FlashOpKind::Program: {
        // Page crosses the bus into the die, then the die programs.
        const Tick bus_start = std::max(when, busFree_);
        const Tick bus_done = bus_start + cfg_.pageTransferTime;
        busFree_ = bus_done;
        const Tick cell_start = std::max(bus_done, dieFree_[die]);
        done = cell_start + cfg_.timing.programLatency;
        dieFree_[die] = done;
        pendingPrograms_++;
        busyTicks_ += done - bus_start;
        break;
      }
      case FlashOpKind::Erase: {
        const Tick start = std::max(when, dieFree_[die]);
        done = start + cfg_.timing.eraseLatency;
        dieFree_[die] = done;
        pendingErases_++;
        busyTicks_ += done - start;
        break;
      }
    }
    eq_.schedule(done, [this, kind, done, cb = std::move(on_done)]() mutable {
        switch (kind) {
          case FlashOpKind::Read:
            pendingReads_--;
            reads_++;
            break;
          case FlashOpKind::Program:
            pendingPrograms_--;
            programs_++;
            break;
          case FlashOpKind::Erase:
            pendingErases_--;
            erases_++;
            break;
        }
        if (cb)
            cb(done);
    });
}

Tick
FlashChannel::estimateReadDelay(Tick now) const
{
    // Algorithm 1: predict the delay of a newly arriving read from the
    // channel queue status (die availability + bus backlog).
    const Tick cell_start = std::max(now, earliestDieFree());
    const Tick cell_done = cell_start + cfg_.timing.readLatency;
    const Tick bus_start = std::max(cell_done, busFree_);
    return bus_start + cfg_.pageTransferTime - now;
}

} // namespace skybyte
