#include "ssd/ftl.h"

#include <algorithm>
#include <cassert>

namespace skybyte {

Ftl::Ftl(const FlashConfig &cfg, EventQueue &eq, std::uint64_t seed)
    : cfg_(cfg), eq_(eq), rng_(seed)
{
    channels_.resize(cfg_.channels);
    const auto blocks = static_cast<std::uint32_t>(cfg_.blocksPerChannel());
    for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
        Channel &ch = channels_[c];
        ch.flash = std::make_unique<FlashChannel>(static_cast<int>(c),
                                                  cfg_, eq_);
        ch.blocks.resize(blocks);
        for (auto &blk : ch.blocks)
            blk.slotLpn.assign(cfg_.pagesPerBlock, kInvalidLpn);
        // All blocks initially free except the first, which opens.
        for (std::uint32_t b = blocks; b > 1; --b)
            ch.freeList.push_back(b - 1);
        ch.blocks[0].isFree = false;
        ch.blocks[0].isOpen = true;
        ch.openBlock = 0;
        ch.coldLpnNext = kColdLpnBase + c;
    }
}

std::uint32_t
Ftl::gcThresholdBlocks() const
{
    return static_cast<std::uint32_t>(
        static_cast<double>(cfg_.blocksPerChannel())
        * cfg_.gcFreeBlockThreshold);
}

std::uint32_t
Ftl::freeBlocks(std::uint32_t ch) const
{
    return static_cast<std::uint32_t>(channels_[ch].freeList.size());
}

std::uint64_t
Ftl::totalPrograms() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch.flash->completedPrograms();
    return n;
}

std::uint64_t
Ftl::totalReads() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch.flash->completedReads();
    return n;
}

const FlashChannel &
Ftl::channelOf(std::uint64_t lpn) const
{
    return *channels_[channelIdx(lpn)].flash;
}

void
Ftl::ensureOpenBlock(Channel &ch)
{
    Block &open = ch.blocks[ch.openBlock];
    if (open.isOpen && open.writeCursor < cfg_.pagesPerBlock)
        return;
    open.isOpen = false;
    assert(!ch.freeList.empty() && "flash device out of free blocks");
    std::uint32_t next;
    if (cfg_.wearAwareAllocation) {
        // Dynamic wear leveling: open the least-erased free block so
        // hot rewrite streams do not keep cycling the same blocks.
        auto coldest = ch.freeList.begin();
        for (auto it = ch.freeList.begin(); it != ch.freeList.end();
             ++it) {
            if (ch.blocks[*it].eraseCount
                < ch.blocks[*coldest].eraseCount) {
                coldest = it;
            }
        }
        next = *coldest;
        ch.freeList.erase(coldest);
    } else {
        next = ch.freeList.back();
        ch.freeList.pop_back();
    }
    Block &blk = ch.blocks[next];
    blk.isFree = false;
    blk.isOpen = true;
    blk.writeCursor = 0;
    blk.validCount = 0;
    std::fill(blk.slotLpn.begin(), blk.slotLpn.end(), kInvalidLpn);
    ch.openBlock = next;
}

void
Ftl::invalidate(std::uint64_t lpn)
{
    Ppa *ppa = mapping_.find(lpn);
    if (ppa == nullptr || !ppa->valid)
        return;
    Channel &ch = channels_[channelIdx(lpn)];
    Block &blk = ch.blocks[ppa->block];
    if (blk.slotLpn[ppa->slot] == lpn) {
        blk.slotLpn[ppa->slot] = kInvalidLpn;
        if (blk.validCount > 0)
            blk.validCount--;
    }
    ppa->valid = false;
}

void
Ftl::mapToOpenBlock(Channel &ch, std::uint64_t lpn)
{
    ensureOpenBlock(ch);
    Block &blk = ch.blocks[ch.openBlock];
    const std::uint32_t slot = blk.writeCursor++;
    blk.slotLpn[slot] = lpn;
    blk.validCount++;
    mapping_[lpn] = Ppa{ch.openBlock, slot, true};
    stats_.mappingUpdates++;
}

void
Ftl::readPage(std::uint64_t lpn, Tick when, FlashDoneFn cb)
{
    Channel &ch = channels_[channelIdx(lpn)];
    const Ppa *ppa = mapping_.find(lpn);
    if (ppa == nullptr || !ppa->valid) {
        // First touch of a never-written page: map it in place
        // (the paper's simulator warms all data into the SSD first).
        invalidate(lpn);
        mapToOpenBlock(ch, lpn);
    }
    stats_.hostReads++;
    ch.flash->enqueue(FlashOpKind::Read, when, std::move(cb));
}

void
Ftl::writePage(std::uint64_t lpn, Tick when, const PageData &data,
               FlashDoneFn cb)
{
    Channel &ch = channels_[channelIdx(lpn)];
    invalidate(lpn);
    mapToOpenBlock(ch, lpn);
    pageData(lpn) = data;
    stats_.hostPrograms++;
    const std::uint32_t ch_idx = channelIdx(lpn);
    ch.flash->enqueue(FlashOpKind::Program, when,
                      [this, ch_idx, cb = std::move(cb)](Tick done) mutable {
                          if (cb)
                              cb(done);
                          maybeStartGc(ch_idx, done);
                      });
    // Also evaluate GC eagerly so back-to-back writes cannot outrun it.
    maybeStartGc(ch_idx, when);
}

Tick
Ftl::estimateReadDelay(std::uint64_t lpn, Tick now) const
{
    return channels_[channelIdx(lpn)].flash->estimateReadDelay(now);
}

bool
Ftl::gcActiveFor(std::uint64_t lpn) const
{
    return channels_[channelIdx(lpn)].flash->gcActive();
}

void
Ftl::maybeStartGc(std::uint32_t ch_idx, Tick when)
{
    Channel &ch = channels_[ch_idx];
    if (ch.gcRunning)
        return;
    if (ch.freeList.size() >= gcThresholdBlocks())
        return;
    ch.gcRunning = true;
    ch.flash->setGcActive(true);
    stats_.gcRuns++;
    gcRound(ch_idx, when);
}

void
Ftl::gcRound(std::uint32_t ch_idx, Tick when)
{
    Channel &ch = channels_[ch_idx];

    // Greedy victim: fewest valid pages among closed, non-free blocks.
    std::uint32_t victim = ~0u;
    std::uint32_t best_valid = ~0u;
    for (std::uint32_t b = 0; b < ch.blocks.size(); ++b) {
        const Block &blk = ch.blocks[b];
        if (blk.isFree || blk.isOpen || blk.writeCursor == 0)
            continue;
        if (blk.validCount < best_valid) {
            best_valid = blk.validCount;
            victim = b;
        }
    }
    // Nothing reclaimable (no victim, or only fully-valid blocks whose
    // relocation would consume as many pages as it frees): stop rather
    // than churn forever.
    if (victim == ~0u || best_valid >= cfg_.pagesPerBlock) {
        ch.gcRunning = false;
        ch.flash->setGcActive(false);
        return;
    }

    // Relocate valid pages: read + program per page, sharing the FIFO.
    Block &blk = ch.blocks[victim];
    Tick cursor = when;
    for (std::uint32_t s = 0; s < cfg_.pagesPerBlock; ++s) {
        const std::uint64_t lpn = blk.slotLpn[s];
        if (lpn == kInvalidLpn)
            continue;
        ch.flash->enqueue(FlashOpKind::Read, cursor, nullptr);
        // Remap before enqueueing the program so the open block advances.
        blk.slotLpn[s] = kInvalidLpn;
        blk.validCount--;
        mapToOpenBlock(ch, lpn);
        ch.flash->enqueue(FlashOpKind::Program, cursor, nullptr);
        stats_.gcPageMoves++;
    }

    ch.flash->enqueue(FlashOpKind::Erase, cursor,
                      [this, ch_idx, victim](Tick done) {
        Channel &chn = channels_[ch_idx];
        Block &vb = chn.blocks[victim];
        vb.isFree = true;
        vb.isOpen = false;
        vb.validCount = 0;
        vb.writeCursor = 0;
        vb.eraseCount++;
        std::fill(vb.slotLpn.begin(), vb.slotLpn.end(), kInvalidLpn);
        chn.freeList.push_back(victim);
        stats_.gcErases++;
        if (chn.freeList.size()
            < static_cast<std::size_t>(
                  static_cast<double>(cfg_.blocksPerChannel())
                  * cfg_.gcRestoreThreshold)) {
            gcRound(ch_idx, done);
        } else {
            chn.gcRunning = false;
            chn.flash->setGcActive(false);
        }
    });
}

void
Ftl::precondition(std::uint64_t footprint_pages, double rewrite_fraction)
{
    // 1. Map every host LPN once (no timing; boot-time state).
    for (std::uint64_t lpn = 0; lpn < footprint_pages; ++lpn)
        mapToOpenBlock(channels_[channelIdx(lpn)], lpn);

    // 2. Rewrite a fraction to scatter dead pages across blocks.
    const auto rewrites = static_cast<std::uint64_t>(
        static_cast<double>(footprint_pages) * rewrite_fraction);
    for (std::uint64_t i = 0; i < rewrites; ++i) {
        const std::uint64_t lpn = rng_.below(footprint_pages);
        invalidate(lpn);
        mapToOpenBlock(channels_[channelIdx(lpn)], lpn);
    }

    // 3. Pad each channel with cold data until free blocks sit just above
    //    the GC threshold, so host writes soon push it into GC. A
    //    quarter of the cold pages are dead (over-written data), leaving
    //    GC victims with reclaimable space — a steady-state device, not
    //    a pathological 100%-valid one.
    const std::uint32_t target_free = gcThresholdBlocks() + 2;
    for (auto &ch : channels_) {
        std::vector<std::uint64_t> cold_pages;
        while (ch.freeList.size() > target_free) {
            const std::uint64_t cold = ch.coldLpnNext;
            ch.coldLpnNext += cfg_.channels;
            mapToOpenBlock(ch, cold);
            cold_pages.push_back(cold);
        }
        for (std::uint64_t cold : cold_pages) {
            if (rng_.chance(0.25))
                invalidate(cold);
        }
    }
}

double
Ftl::writeAmplification() const
{
    if (stats_.hostPrograms == 0)
        return 1.0;
    return static_cast<double>(stats_.hostPrograms + stats_.gcPageMoves)
           / static_cast<double>(stats_.hostPrograms);
}

Ftl::WearSummary
Ftl::wearSummary() const
{
    WearSummary summary;
    std::uint64_t total = 0;
    std::uint64_t count = 0;
    bool first = true;
    for (const Channel &ch : channels_) {
        for (const Block &blk : ch.blocks) {
            if (first) {
                summary.minErase = blk.eraseCount;
                summary.maxErase = blk.eraseCount;
                first = false;
            }
            summary.minErase = std::min(summary.minErase,
                                        blk.eraseCount);
            summary.maxErase = std::max(summary.maxErase,
                                        blk.eraseCount);
            total += blk.eraseCount;
            count++;
        }
    }
    if (count > 0)
        summary.meanErase = static_cast<double>(total)
                            / static_cast<double>(count);
    return summary;
}

PageData &
Ftl::pageData(std::uint64_t lpn)
{
    auto &slot = data_[lpn];
    if (!slot)
        slot = std::make_unique<PageData>(PageData{});
    return *slot;
}

LineValue
Ftl::peekLine(Addr line_addr)
{
    const std::uint64_t lpn = pageNumber(line_addr);
    const auto *slot = data_.find(lpn);
    if (slot == nullptr)
        return 0;
    return (**slot)[lineInPage(line_addr)];
}

} // namespace skybyte
