/**
 * @file
 * Page-mapped flash translation layer with out-of-place updates and
 * greedy (min-valid-cost) garbage collection, plus the functional page
 * store. Logical pages stripe across channels; each channel appends into
 * an open block and GCs locally, with GC operations sharing the channel
 * FIFO so they delay host requests (§II-C).
 */

#ifndef SKYBYTE_SSD_FTL_H
#define SKYBYTE_SSD_FTL_H

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "ssd/flash.h"

namespace skybyte {

/** FTL-level statistics. */
struct FtlStats
{
    std::uint64_t hostReads = 0;      ///< data-path page reads
    std::uint64_t hostPrograms = 0;   ///< data-path page programs
    std::uint64_t gcPageMoves = 0;    ///< valid pages relocated by GC
    std::uint64_t gcErases = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t mappingUpdates = 0;
};

/**
 * The flash translation layer.
 */
class Ftl
{
  public:
    Ftl(const FlashConfig &cfg, EventQueue &eq, std::uint64_t seed);

    /**
     * Read logical page @p lpn at time @p when; @p cb fires with the
     * completion time. The page must be mapped (reads of never-written
     * pages are mapped on demand to a fresh location).
     */
    void readPage(std::uint64_t lpn, Tick when, FlashDoneFn cb);

    /**
     * Program logical page @p lpn (out-of-place) at @p when with new
     * contents @p data; @p cb fires at completion. May trigger GC.
     */
    void writePage(std::uint64_t lpn, Tick when, const PageData &data,
                   FlashDoneFn cb);

    /** Algorithm 1 delay estimate for a read of @p lpn arriving now. */
    Tick estimateReadDelay(std::uint64_t lpn, Tick now) const;

    /** Is @p lpn's channel currently running GC? */
    bool gcActiveFor(std::uint64_t lpn) const;

    /** Channel object serving @p lpn (for tests/benches). */
    const FlashChannel &channelOf(std::uint64_t lpn) const;

    /**
     * Fill the device so GC will trigger (§VI-A): maps @p footprint_pages
     * host LPNs, re-writes @p rewrite_fraction of them to create dead
     * pages, and pads remaining blocks with cold data until each
     * channel's free-block count sits just above the GC threshold.
     */
    void precondition(std::uint64_t footprint_pages,
                      double rewrite_fraction = 0.3);

    /** Functional page contents (zero-filled on first touch). */
    PageData &pageData(std::uint64_t lpn);

    /** Functional single-line peek. */
    LineValue peekLine(Addr line_addr);

    const FtlStats &stats() const { return stats_; }
    const FlashConfig &config() const { return cfg_; }

    /** Free blocks on channel @p ch (tests). */
    std::uint32_t freeBlocks(std::uint32_t ch) const;

    /** Total programs (host + GC) across all channels. */
    std::uint64_t totalPrograms() const;

    /** Total reads (host + GC) across all channels. */
    std::uint64_t totalReads() const;

    /**
     * Write amplification factor: flash pages programmed per host page
     * written (data path + GC relocation; >= 1 once GC has run).
     */
    double writeAmplification() const;

    /** Lifetime P/E wear across every block of the device. */
    struct WearSummary
    {
        std::uint32_t minErase = 0;
        std::uint32_t maxErase = 0;
        double meanErase = 0;
        /** max - min: the spread wear leveling tries to bound. */
        std::uint32_t spread() const { return maxErase - minErase; }
    };
    WearSummary wearSummary() const;

  private:
    struct Block
    {
        std::uint32_t validCount = 0;
        std::uint32_t writeCursor = 0; ///< next free page slot
        std::uint32_t eraseCount = 0;  ///< lifetime wear (P/E cycles)
        bool isFree = true;
        bool isOpen = false;
        /** LPN stored in each page slot; kInvalidLpn when dead/empty. */
        std::vector<std::uint64_t> slotLpn;
    };

    struct Channel
    {
        std::unique_ptr<FlashChannel> flash;
        std::vector<Block> blocks;
        std::vector<std::uint32_t> freeList;
        std::uint32_t openBlock = 0;
        bool gcRunning = false;
        std::uint64_t coldLpnNext = 0;
    };

    static constexpr std::uint64_t kInvalidLpn = ~0ULL;
    /** Cold preconditioning data lives in this LPN range. */
    static constexpr std::uint64_t kColdLpnBase = 1ULL << 40;

    std::uint32_t channelIdx(std::uint64_t lpn) const
    {
        return static_cast<std::uint32_t>(lpn % cfg_.channels);
    }

    /** Map/remap @p lpn to a fresh page on its channel (no timing). */
    void mapToOpenBlock(Channel &ch, std::uint64_t lpn);

    /** Invalidate @p lpn's current mapping if any. */
    void invalidate(std::uint64_t lpn);

    /** Ensure the channel has an open block with space. */
    void ensureOpenBlock(Channel &ch);

    /** Start GC on @p ch if below the free-block threshold. */
    void maybeStartGc(std::uint32_t ch_idx, Tick when);

    /** Run one GC round (victim selection + moves + erase). */
    void gcRound(std::uint32_t ch_idx, Tick when);

    std::uint32_t gcThresholdBlocks() const;

    const FlashConfig cfg_;
    EventQueue &eq_;
    Rng rng_;
    std::vector<Channel> channels_;
    /** lpn -> (channel-local block, slot); channel implied by lpn. */
    struct Ppa
    {
        std::uint32_t block = 0;
        std::uint32_t slot = 0;
        bool valid = false;
    };
    /**
     * Hot indices, probed per flash op / per functional page access.
     * data_ holds unique_ptrs so PageData addresses survive rehashes
     * (pageData() hands out references).
     */
    FlatMap<Ppa> mapping_;
    FlatMap<std::unique_ptr<PageData>> data_;
    FtlStats stats_;
};

} // namespace skybyte

#endif // SKYBYTE_SSD_FTL_H
