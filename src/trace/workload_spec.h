/**
 * @file
 * Workload spec strings: the textual front end of the workload registry.
 *
 * A spec names a registered generator and parameterizes it inline:
 *
 *   ycsb
 *   zipf:theta=0.99,footprint=8G
 *   scan:stride=256,write_ratio=0.1
 *   phased:phase_instr=20000,theta=0.9,seed=7
 *
 * Grammar: `name[:key=value[,key=value]...]`. Keys common to every
 * workload (footprint with K/M/G suffixes, threads, instr, seed)
 * override the WorkloadParams the caller supplies; the remaining keys
 * are consumed by the generator's factory, and any key nobody consumes
 * is an error, so typos cannot silently change an experiment — the
 * same contract the config-file front end enforces for its knobs.
 *
 * The reserved name `mix` is the co-location combinator: its argument
 * list is `;`-separated (child specs use `,` and `:` internally) and
 * every entry names a tenant bound to a child spec:
 *
 *   mix:a=zipf:footprint=4G;b=scan:threads=2
 *
 * Tenant names must be unique and children must not themselves be
 * mixes. The combinator semantics (thread assignment, footprint
 * namespacing) live in trace/mix_workload.h; this file owns only the
 * grammar.
 */

#ifndef SKYBYTE_TRACE_WORKLOAD_SPEC_H
#define SKYBYTE_TRACE_WORKLOAD_SPEC_H

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace skybyte {

/** A parsed workload spec: generator name + raw key=value arguments. */
struct WorkloadSpec
{
    std::string name = "uniform";
    /** Arguments in spec order (duplicate keys are a parse error). */
    std::vector<std::pair<std::string, std::string>> args;

    /** True when @p key appears in args. */
    bool has(const std::string &key) const;

    /** Raw value of @p key; empty string when absent. */
    const std::string &raw(const std::string &key) const;

    /**
     * True for the `mix:` co-location combinator, whose args are
     * tenant=child-spec bindings rather than generator arguments.
     */
    bool isMix() const { return name == "mix"; }

    /**
     * Re-render as canonical spec text (name:k=v,k=v in arg order;
     * mixes separate their tenant entries with ';').
     */
    std::string text() const;
};

/**
 * Parse `name[:key=value,...]`, or the mix combinator form
 * `mix:tenant=child-spec[;tenant=child-spec]...` (child specs are
 * validated eagerly, so a malformed child fails at parse time).
 * @throws std::invalid_argument on malformed text, duplicate keys or
 *         duplicate tenant names.
 */
WorkloadSpec parseWorkloadSpec(const std::string &text);

/** One tenant of a mix: its label and the parsed child spec. */
struct MixTenantSpec
{
    std::string tenant;
    WorkloadSpec spec;
};

/**
 * Expand a mix spec's tenant bindings into parsed child specs.
 * @throws std::invalid_argument if @p spec is not a mix, a child is
 *         malformed, or a child is itself a mix (no nesting).
 */
std::vector<MixTenantSpec> parseMixTenants(const WorkloadSpec &spec);

/**
 * Typed, consumption-tracked access to a spec's arguments. Factories
 * pull the keys they understand; requireAllConsumed() then rejects
 * leftovers so an unknown or misspelled argument fails loudly.
 */
class WorkloadSpecArgs
{
  public:
    explicit WorkloadSpecArgs(const WorkloadSpec &spec) : spec_(spec) {}

    /** Presence check; does not consume. */
    bool has(const std::string &key) const { return spec_.has(key); }

    /** @name Typed getters; consume @p key, return @p def when absent.
     * Each throws std::invalid_argument on a malformed value. @{ */
    std::uint64_t u64(const std::string &key, std::uint64_t def);
    double dbl(const std::string &key, double def);
    /** Byte count accepting K/M/G suffixes (e.g. "8G", "512K"). */
    std::uint64_t bytes(const std::string &key, std::uint64_t def);
    /** Raw string value (e.g. a file path), @p def when absent. */
    std::string str(const std::string &key, const std::string &def);
    /** @} */

    /** @throws std::invalid_argument listing any unconsumed keys. */
    void requireAllConsumed(const std::string &workload_name) const;

  private:
    const std::string *consume(const std::string &key);

    const WorkloadSpec &spec_;
    std::set<std::string> consumed_;
};

/**
 * Strict digits-only unsigned parse: rejects signs, whitespace and
 * trailing junk (std::stoull would silently wrap "-1" to 2^64-1).
 * Shared by the spec-arg getters and the config-file front end.
 * @throws std::invalid_argument naming @p what on bad input.
 */
std::uint64_t parseUnsigned(const std::string &value,
                            const std::string &what);

/** Parse a standalone byte-size value with optional K/M/G suffix. */
std::uint64_t parseByteSize(const std::string &value,
                            const std::string &what);

/**
 * Parse a QoS weight (the per-tenant `qos=` spec key): a positive
 * finite decimal. Weights are relative — a tenant's share of a
 * QoS-controlled resource is weight / sum-of-weights.
 * @throws std::invalid_argument naming @p what on bad input.
 */
double parseQosWeight(const std::string &value, const std::string &what);

} // namespace skybyte

#endif // SKYBYTE_TRACE_WORKLOAD_SPEC_H
