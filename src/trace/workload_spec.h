/**
 * @file
 * Workload spec strings: the textual front end of the workload registry.
 *
 * A spec names a registered generator and parameterizes it inline:
 *
 *   ycsb
 *   zipf:theta=0.99,footprint=8G
 *   scan:stride=256,write_ratio=0.1
 *   phased:phase_instr=20000,theta=0.9,seed=7
 *
 * Grammar: `name[:key=value[,key=value]...]`. Keys common to every
 * workload (footprint with K/M/G suffixes, threads, instr, seed)
 * override the WorkloadParams the caller supplies; the remaining keys
 * are consumed by the generator's factory, and any key nobody consumes
 * is an error, so typos cannot silently change an experiment — the
 * same contract the config-file front end enforces for its knobs.
 */

#ifndef SKYBYTE_TRACE_WORKLOAD_SPEC_H
#define SKYBYTE_TRACE_WORKLOAD_SPEC_H

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace skybyte {

/** A parsed workload spec: generator name + raw key=value arguments. */
struct WorkloadSpec
{
    std::string name = "uniform";
    /** Arguments in spec order (duplicate keys are a parse error). */
    std::vector<std::pair<std::string, std::string>> args;

    /** True when @p key appears in args. */
    bool has(const std::string &key) const;

    /** Raw value of @p key; empty string when absent. */
    const std::string &raw(const std::string &key) const;

    /** Re-render as canonical spec text (name:k=v,k=v in arg order). */
    std::string text() const;
};

/**
 * Parse `name[:key=value,...]`.
 * @throws std::invalid_argument on malformed text or duplicate keys.
 */
WorkloadSpec parseWorkloadSpec(const std::string &text);

/**
 * Typed, consumption-tracked access to a spec's arguments. Factories
 * pull the keys they understand; requireAllConsumed() then rejects
 * leftovers so an unknown or misspelled argument fails loudly.
 */
class WorkloadSpecArgs
{
  public:
    explicit WorkloadSpecArgs(const WorkloadSpec &spec) : spec_(spec) {}

    /** Presence check; does not consume. */
    bool has(const std::string &key) const { return spec_.has(key); }

    /** @name Typed getters; consume @p key, return @p def when absent.
     * Each throws std::invalid_argument on a malformed value. @{ */
    std::uint64_t u64(const std::string &key, std::uint64_t def);
    double dbl(const std::string &key, double def);
    /** Byte count accepting K/M/G suffixes (e.g. "8G", "512K"). */
    std::uint64_t bytes(const std::string &key, std::uint64_t def);
    /** @} */

    /** @throws std::invalid_argument listing any unconsumed keys. */
    void requireAllConsumed(const std::string &workload_name) const;

  private:
    const std::string *consume(const std::string &key);

    const WorkloadSpec &spec_;
    std::set<std::string> consumed_;
};

/**
 * Strict digits-only unsigned parse: rejects signs, whitespace and
 * trailing junk (std::stoull would silently wrap "-1" to 2^64-1).
 * Shared by the spec-arg getters and the config-file front end.
 * @throws std::invalid_argument naming @p what on bad input.
 */
std::uint64_t parseUnsigned(const std::string &value,
                            const std::string &what);

/** Parse a standalone byte-size value with optional K/M/G suffix. */
std::uint64_t parseByteSize(const std::string &value,
                            const std::string &what);

} // namespace skybyte

#endif // SKYBYTE_TRACE_WORKLOAD_SPEC_H
