/**
 * @file
 * Multi-threaded synthetic workload generation.
 *
 * The paper replays PIN-captured instruction traces of seven data-intensive
 * applications (Table I). We do not have those traces, so each workload is
 * reproduced as a deterministic generator that emits the same *statistical*
 * shape: memory footprint, write ratio, LLC MPKI class, and the per-page
 * spatial locality that Figures 5/6 characterise (see DESIGN.md §1).
 *
 * A trace record is "k compute instructions followed by one memory access".
 * Generators are pull-based: the core model requests the next record for a
 * thread when the pipeline has room, so no trace storage is needed (a
 * binary trace file format is provided separately in trace_file.h).
 */

#ifndef SKYBYTE_TRACE_WORKLOAD_H
#define SKYBYTE_TRACE_WORKLOAD_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace skybyte {

/** One unit of work: @c computeOps ALU instructions, then one memory op. */
struct TraceRecord
{
    std::uint32_t computeOps = 0;
    bool isWrite = false;
    Addr vaddr = 0;
};

/** Construction parameters common to all workloads. */
struct WorkloadParams
{
    int numThreads = 8;
    /** Total instructions (compute + memory) each thread executes. */
    std::uint64_t instrPerThread = 1'000'000;
    /** 0 selects the workload's default (1/64 of the paper's footprint). */
    std::uint64_t footprintBytes = 0;
    std::uint64_t seed = 42;
};

/**
 * Abstract multi-threaded workload. All threads share one virtual address
 * space; the shared data region is what lands in the CXL-SSD.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Bytes of shared application data (maps to the CXL-SSD). */
    virtual std::uint64_t footprintBytes() const = 0;

    /** Base virtual address of the shared data region. */
    static constexpr Addr kDataBase = 0x4000'0000ULL;

    /** Base of per-thread private regions (maps to host DRAM). */
    static constexpr Addr kPrivateBase = 0x40'0000'0000ULL;

    /** Private-region stride between threads. */
    static constexpr Addr kPrivateStride = 64ULL * 1024 * 1024;

    virtual int numThreads() const = 0;

    /**
     * Produce the next record for thread @p tid.
     * @retval false when the thread's instruction budget is exhausted.
     */
    virtual bool next(int tid, TraceRecord &rec) = 0;

    /** Instructions already emitted for @p tid (compute + memory). */
    virtual std::uint64_t instructionsEmitted(int tid) const = 0;
};

/**
 * Instantiate a workload by name: "bc", "bfs-dense", "dlrm", "radix",
 * "srad", "tpcc", "ycsb", or the extra "uniform" microworkload.
 * @throws std::invalid_argument for unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadParams &params);

/** The seven Table I workload names, in the paper's order. */
const std::vector<std::string> &paperWorkloadNames();

/** Paper-reported characteristics, for Table I reporting. */
struct WorkloadInfo
{
    std::string suite;
    double paperFootprintGb;
    double paperWriteRatio;
    double paperLlcMpki;
};

/** Lookup Table I metadata for @p name. */
const WorkloadInfo &workloadInfo(const std::string &name);

} // namespace skybyte

#endif // SKYBYTE_TRACE_WORKLOAD_H
