/**
 * @file
 * Multi-threaded workload generation: the batched trace-stream API and
 * the self-registering workload registry.
 *
 * The paper replays PIN-captured instruction traces of seven data-intensive
 * applications (Table I). We do not have those traces, so each workload is
 * reproduced as a deterministic generator that emits the same *statistical*
 * shape: memory footprint, write ratio, LLC MPKI class, and the per-page
 * spatial locality that Figures 5/6 characterise (see DESIGN.md §1).
 *
 * A trace record is "k compute instructions followed by one memory access".
 * Generators are pull-based and **batched**: the front end refills a
 * fixed-capacity per-thread TraceBatch in one virtual call, and the core
 * model consumes it as a flat pointer walk (ThreadContext::fetch is an
 * inline array read). The record stream per thread is identical to
 * fetching records one at a time — batching is a wall-clock optimization
 * with no simulated-behaviour effect, which the equivalence tests in
 * tests/test_workload_spec.cc pin via SimResult fingerprints.
 *
 * Workloads are instantiated from spec strings (workload_spec.h) through
 * a global registry: all seven paper workloads plus parameterized
 * synthetic scenarios (zipf, scan, ptrchase, phased, uniform) register
 * themselves, and user code can registerWorkload() its own generators,
 * making them available to skybyte_sim, skybyte_sweep, the config-file
 * front end and the trace tools without touching the core.
 */

#ifndef SKYBYTE_TRACE_WORKLOAD_H
#define SKYBYTE_TRACE_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/workload_spec.h"

namespace skybyte {

/** One unit of work: @c computeOps ALU instructions, then one memory op. */
struct TraceRecord
{
    std::uint32_t computeOps = 0;
    bool isWrite = false;
    Addr vaddr = 0;
};

/**
 * A fixed-capacity block of trace records for one thread: the unit of
 * transfer across the Workload virtual boundary. refill() overwrites
 * records[0..count) and resets cursor; consumers walk records[cursor]
 * upward. 256 records (4 KB) amortize the virtual call and stay
 * cache-resident.
 */
struct TraceBatch
{
    static constexpr std::uint32_t kCapacity = 256;

    TraceRecord records[kCapacity];
    std::uint32_t count = 0;  ///< filled records
    std::uint32_t cursor = 0; ///< next record to consume

    bool drained() const { return cursor >= count; }
};

/** Construction parameters common to all workloads. */
struct WorkloadParams
{
    int numThreads = 8;
    /** Total instructions (compute + memory) each thread executes. */
    std::uint64_t instrPerThread = 1'000'000;
    /** 0 selects the workload's default (1/64 of the paper's footprint). */
    std::uint64_t footprintBytes = 0;
    std::uint64_t seed = 42;
};

/**
 * Abstract multi-threaded workload. All threads share one virtual address
 * space; the shared data region is what lands in the CXL-SSD.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Bytes of shared application data (maps to the CXL-SSD). */
    virtual std::uint64_t footprintBytes() const = 0;

    /** Base virtual address of the shared data region. */
    static constexpr Addr kDataBase = 0x4000'0000ULL;

    /** Base of per-thread private regions (maps to host DRAM). */
    static constexpr Addr kPrivateBase = 0x40'0000'0000ULL;

    /** Private-region stride between threads. */
    static constexpr Addr kPrivateStride = 64ULL * 1024 * 1024;

    virtual int numThreads() const = 0;

    /**
     * Refill @p batch with the next records for thread @p tid:
     * overwrite records[0..n), set count = n, reset cursor, return n.
     * May return fewer than kCapacity records while the stream is
     * live; 0 means the thread's budget is exhausted (and every later
     * call must keep returning 0). The per-thread record sequence must
     * not depend on refill granularity.
     */
    virtual std::uint32_t refill(int tid, TraceBatch &batch) = 0;

    /** Instructions already generated for @p tid (compute + memory). */
    virtual std::uint64_t instructionsEmitted(int tid) const = 0;

    /**
     * May refill() be called for *distinct* tids from different host
     * threads concurrently? The lane-parallel kernel (sim/lane_stage.h)
     * prestages batches on worker threads only when this holds; the
     * conservative default keeps unknown user workloads on the serial
     * path. Implementations returning true must keep all cross-thread
     * state immutable after construction (or internally synchronized)
     * and all mutable refill state strictly per-tid.
     */
    virtual bool concurrentRefillSafe() const { return false; }
};

/**
 * Indirection point for where a thread's next TraceBatch comes from:
 * the serial path calls Workload::refill() at consumption time, while
 * the lane-parallel staging pipeline (sim/lane_stage.h) hands out
 * batches that were produced ahead of time on worker threads. Both
 * must yield the byte-identical record stream — staging may only move
 * *where* a batch is produced, never its contents.
 */
class BatchSource
{
  public:
    virtual ~BatchSource() = default;

    /** Fill @p batch for @p tid; same contract as Workload::refill. */
    virtual std::uint32_t nextBatch(int tid, TraceBatch &batch) = 0;
};

/**
 * Single-record pull over one thread of a batched workload: the
 * convenience view for offline consumers (trace capture, statistics,
 * cache warmup, tests). next() is an inline array walk; the virtual
 * refill runs once per kCapacity records.
 */
class TraceCursor
{
  public:
    TraceCursor(Workload &workload, int tid)
        : workload_(&workload), tid_(tid)
    {}

    /** @retval false once the thread's stream is exhausted. */
    bool
    next(TraceRecord &rec)
    {
        if (batch_.drained()) {
            if (done_ || workload_->refill(tid_, batch_) == 0) {
                done_ = true;
                return false;
            }
        }
        rec = batch_.records[batch_.cursor++];
        return true;
    }

  private:
    Workload *workload_;
    int tid_;
    bool done_ = false;
    TraceBatch batch_;
};

/**
 * Reference adapter reproducing the seed's per-record contract: wraps
 * any workload and refills exactly one record per virtual call. The
 * batching-equivalence tests run a full System against this wrapper
 * and require a bit-identical SimResult fingerprint, and
 * bench_workload_stream measures the per-record virtual overhead the
 * batched API removes.
 */
class SingleRecordWorkload : public Workload
{
  public:
    explicit SingleRecordWorkload(std::unique_ptr<Workload> inner)
        : inner_(std::move(inner))
    {
        cursors_.reserve(
            static_cast<std::size_t>(inner_->numThreads()));
        for (int t = 0; t < inner_->numThreads(); ++t)
            cursors_.emplace_back(*inner_, t);
    }

    std::string name() const override { return inner_->name(); }
    std::uint64_t footprintBytes() const override
    {
        return inner_->footprintBytes();
    }
    int numThreads() const override { return inner_->numThreads(); }
    std::uint64_t instructionsEmitted(int tid) const override
    {
        return inner_->instructionsEmitted(tid);
    }

    std::uint32_t
    refill(int tid, TraceBatch &batch) override
    {
        batch.cursor = 0;
        batch.count = 0;
        TraceRecord rec;
        if (!cursors_[static_cast<std::size_t>(tid)].next(rec))
            return 0;
        batch.records[0] = rec;
        batch.count = 1;
        return 1;
    }

  private:
    std::unique_ptr<Workload> inner_;
    std::vector<TraceCursor> cursors_;
};

/** Paper-reported characteristics, for Table I reporting. */
struct WorkloadInfo
{
    std::string suite;
    double paperFootprintGb;
    double paperWriteRatio;
    double paperLlcMpki;
};

/** @name Workload registry.
 * Every generator registers under a stable name; the built-in set
 * (seven Table I workloads + the synthetic scenarios) registers on
 * first use, and registerWorkload() adds user-defined generators on
 * top — they become reachable from every front end that accepts a
 * workload spec string.
 * @{ */

/** One registry entry. */
struct WorkloadRegistration
{
    /** Registry key (the spec-string name). */
    std::string name;
    /** One-line description for usage/help output. */
    std::string summary;
    /** Spec-arg help, e.g. "theta=,write_ratio=,compute=". */
    std::string argHelp;
    /** One of the seven Table I workloads. */
    bool paper = false;
    /**
     * Replays an external capture file rather than generating records:
     * not constructible without arguments and carrying no pinnable
     * default behaviour, so the registry-sweep tests skip it.
     */
    bool replay = false;
    /** Table I metadata (synthetic scenarios carry nominal values). */
    WorkloadInfo info;
    /**
     * Build an instance. @p args gives typed access to the spec
     * arguments (common keys footprint/threads/instr/seed are already
     * applied to @p params); unconsumed keys are rejected afterwards.
     */
    std::function<std::unique_ptr<Workload>(WorkloadSpecArgs &args,
                                            const WorkloadParams &params)>
        make;
};

/** Register @p reg. @throws std::invalid_argument on duplicate name. */
void registerWorkload(WorkloadRegistration reg);

/** Look up a registration; nullptr when unknown. */
const WorkloadRegistration *findWorkload(const std::string &name);

/** All registered workload names, sorted. */
std::vector<std::string> registeredWorkloadNames();
/** @} */

/**
 * Instantiate a workload from a parsed spec. Common spec args
 * (footprint/threads/instr/seed) override @p params; remaining args
 * parameterize the generator.
 * @throws std::invalid_argument for unknown names (the message lists
 *         the registered names) or bad/unknown arguments.
 */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec,
                                       const WorkloadParams &params);

/** Parse @p spec_text (name or name:k=v,...) and instantiate. */
std::unique_ptr<Workload> makeWorkload(const std::string &spec_text,
                                       const WorkloadParams &params);

/** The seven Table I workload names, in the paper's order. */
const std::vector<std::string> &paperWorkloadNames();

/** Lookup Table I metadata for @p name (must be registered). */
const WorkloadInfo &workloadInfo(const std::string &name);

} // namespace skybyte

#endif // SKYBYTE_TRACE_WORKLOAD_H
