/**
 * @file
 * Implementations of the seven Table I workload generators plus a uniform
 * microworkload. Each generator reproduces the published footprint (scaled
 * 1/64 by default), write ratio and locality class of its namesake; the
 * mixes below are tuned so the measured write ratios and LLC MPKI ordering
 * match Table I (verified by tests/test_trace.cc and bench_table1).
 */

#include "trace/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "common/rng.h"

namespace skybyte {

namespace {

/** Scale factor from paper footprints to the default simulated ones. */
constexpr double kFootprintScale = 1.0 / 64.0;

constexpr std::uint64_t
defaultFootprint(double paper_gb)
{
    return static_cast<std::uint64_t>(paper_gb * kFootprintScale
                                      * 1024.0 * 1024.0 * 1024.0);
}

/**
 * Shared skeleton: per-thread RNG, instruction accounting, and address
 * helpers. Subclasses implement emit().
 */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(const WorkloadParams &params, double paper_gb)
        : params_(params)
    {
        footprint_ = params.footprintBytes != 0
                         ? params.footprintBytes
                         : defaultFootprint(paper_gb);
        // Round to a whole number of pages.
        footprint_ = std::max<std::uint64_t>(footprint_, 16 * kPageBytes);
        footprint_ = (footprint_ / kPageBytes) * kPageBytes;
        threads_.resize(params.numThreads);
        for (int t = 0; t < params.numThreads; ++t) {
            threads_[t].rng.reseed(params.seed * 0x9e3779b9ULL + t + 1);
            threads_[t].tid = t;
        }
    }

    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override { return params_.numThreads; }

    std::uint64_t
    instructionsEmitted(int tid) const override
    {
        return threads_[tid].instrCount;
    }

    bool
    next(int tid, TraceRecord &rec) override
    {
        ThreadState &ts = threads_[tid];
        if (ts.instrCount >= params_.instrPerThread)
            return false;
        emit(ts, rec);
        ts.instrCount += rec.computeOps + 1;
        return true;
    }

  protected:
    struct ThreadState
    {
        Rng rng;
        int tid = 0;
        std::uint64_t instrCount = 0;
        // generic per-thread cursors used differently by each workload
        std::uint64_t cursor = 0;
        std::uint64_t burstLeft = 0;
        Addr burstAddr = 0;
        bool burstWrite = false;
        std::uint64_t phase = 0;
    };

    /** Produce one record (compute count + memory op) for @p ts. */
    virtual void emit(ThreadState &ts, TraceRecord &rec) = 0;

    /** Address of byte offset @p off within the shared data region. */
    Addr data(std::uint64_t off) const
    {
        return kDataBase + (off % footprint_);
    }

    /** A hot per-thread private address (stack/locals; host DRAM). */
    Addr
    privateAddr(ThreadState &ts, std::uint64_t span = 32 * 1024)
    {
        return kPrivateBase + ts.tid * kPrivateStride
               + lineAlign(ts.rng.below(span));
    }

    WorkloadParams params_;
    std::uint64_t footprint_ = 0;
    std::vector<ThreadState> threads_;
};

/**
 * bc — GAP betweenness centrality. Power-law vertex reads (zipf) over a
 * vertex array plus sequential edge-list bursts; 11% writes are score
 * updates. Heavily memory-bound (paper MPKI 39.4).
 */
class BcWorkload : public SyntheticWorkload
{
  public:
    explicit BcWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 8.18),
          vertexRegion_(footprint_ / 4),
          zipf_(std::max<std::uint64_t>(vertexRegion_ / kCachelineBytes, 64),
                0.70)
    {}

    std::string name() const override { return "bc"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            // Sequential edge-list scan.
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {rng.below(3) == 0 ? 3u : 2u, false, data(ts.burstAddr)};
            return;
        }
        // Edge bursts emit several read records per draw, so the write
        // branch probability is scaled up to keep writes at ~11% of all
        // memory operations (Table I).
        const double dice = rng.uniform();
        if (dice < 0.38) {
            // Score update: write to a zipf-chosen vertex line.
            const Addr v = zipf_.sample(rng) * kCachelineBytes;
            rec = {4, true, data(v)};
        } else if (dice < 0.62) {
            // Vertex metadata read.
            const Addr v = zipf_.sample(rng) * kCachelineBytes;
            rec = {3, false, data(v)};
        } else {
            // Edge burst: bursts start at the edge lists of zipf-chosen
            // vertices, so hub vertices' edges are rescanned often.
            const std::uint64_t edge_bytes = footprint_ - vertexRegion_;
            const std::uint64_t frac = zipf_.sample(rng);
            ts.burstAddr = vertexRegion_
                           + lineAlign((frac * 977) * kCachelineBytes
                                       % edge_bytes);
            ts.burstLeft = 2 + rng.below(10);
            rec = {2, false, data(ts.burstAddr)};
        }
    }

  private:
    std::uint64_t vertexRegion_;
    ZipfSampler zipf_;
};

/**
 * bfs-dense — Rodinia BFS on a dense graph. Frontier scans with random
 * neighbour visits and a randomly updated visited map; very low compute
 * per access (paper MPKI 122.9, 25% writes).
 */
class BfsWorkload : public SyntheticWorkload
{
  public:
    explicit BfsWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.13),
          zipf_(std::max<std::uint64_t>(footprint_ / kCachelineBytes, 64),
                0.80)
    {}

    std::string name() const override { return "bfs-dense"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            // Adjacency-row scan.
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {1, false, data(ts.burstAddr)};
            return;
        }
        // Real graphs are power-law: high-degree vertices are revisited
        // constantly, so probes/visited-map updates follow a zipf.
        // Burst dilution compensation as in bc: target 25% writes.
        const double dice = rng.uniform();
        if (dice < 0.47) {
            // Mark a vertex visited / update its level.
            rec = {1, true, data(zipf_.sample(rng) * kCachelineBytes)};
        } else if (dice < 0.62) {
            // Neighbour probe.
            rec = {1, false, data(zipf_.sample(rng) * kCachelineBytes)};
        } else {
            // Short adjacency burst.
            ts.burstAddr = zipf_.sample(rng) * kCachelineBytes;
            ts.burstLeft = 1 + rng.below(4);
            rec = {1, false, data(ts.burstAddr)};
        }
    }

  private:
    ZipfSampler zipf_;
};

/**
 * dlrm — embedding-table gathers (single-line random reads over most of
 * the footprint) alternating with dense MLP phases over a small reused
 * weight region; 32% writes from activations/gradients and sparse
 * embedding updates (paper MPKI 5.1).
 */
class DlrmWorkload : public SyntheticWorkload
{
  public:
    explicit DlrmWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 12.35),
          tableRegion_(footprint_ * 9 / 10),
          mlpRegion_(footprint_ - footprint_ * 9 / 10),
          zipf_(std::max<std::uint64_t>(tableRegion_ / kCachelineBytes,
                                        64),
                0.60)
    {}

    std::string name() const override { return "dlrm"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        // phase counts down gather ops, then MLP ops.
        if (ts.phase == 0) {
            ts.phase = 26 + rng.below(8);     // gathers per sample
            ts.cursor = 160 + rng.below(64);  // MLP ops per sample
        }
        if (ts.phase > 0 && ts.phase != kMlpMarker) {
            ts.phase--;
            // Embedding lookups are famously skewed (popular items).
            const Addr a = zipf_.sample(rng) * kCachelineBytes;
            if (rng.chance(0.18)) {
                // Sparse embedding-gradient update.
                rec = {6, true, data(a)};
            } else {
                rec = {6, false, data(a)};
            }
            if (ts.phase == 0)
                ts.phase = kMlpMarker;
            return;
        }
        // MLP phase: sequential weight reads (cache friendly) +
        // activation writes to a hot private buffer.
        if (ts.cursor == 0) {
            ts.phase = 0;
            emit(ts, rec);
            return;
        }
        ts.cursor--;
        if (rng.chance(0.40)) {
            rec = {5, true, privateAddr(ts, 256 * 1024)};
        } else {
            ts.burstAddr = (ts.burstAddr + kCachelineBytes) % mlpRegion_;
            rec = {5, false, data(tableRegion_ + ts.burstAddr)};
        }
    }

  private:
    static constexpr std::uint64_t kMlpMarker = ~0ULL;
    std::uint64_t tableRegion_;
    std::uint64_t mlpRegion_;
    ZipfSampler zipf_;
};

/**
 * radix — SPLASH-3 radix sort. Alternates sequential key reads with
 * scattered bucket writes (29% writes, paper MPKI 7.1). Each thread owns a
 * contiguous key slice; bucket writes scatter over the whole output half.
 */
class RadixWorkload : public SyntheticWorkload
{
  public:
    explicit RadixWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.60),
          half_(footprint_ / 2)
    {}

    std::string name() const override { return "radix"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        const std::uint64_t slice = half_ / params_.numThreads;
        const std::uint64_t slice_base = slice * ts.tid;
        // Three reads per key (key + histogram/prefix), then ~1.2 writes.
        switch (ts.phase % 4) {
          case 0:
          case 1: {
            // Sequential key-slice read.
            ts.cursor = (ts.cursor + kCachelineBytes) % slice;
            rec = {3, false, data(slice_base + ts.cursor)};
            break;
          }
          case 2: {
            // Histogram read: small hot region (cache resident).
            rec = {4, false, privateAddr(ts, 64 * 1024)};
            break;
          }
          default: {
            // Scattered bucket write into the output half.
            const Addr dst = half_ + lineAlign(rng.below(half_));
            rec = {3, true, data(dst)};
            break;
          }
        }
        ts.phase++;
    }

  private:
    std::uint64_t half_;
};

/**
 * srad — Rodinia speckle-reducing anisotropic diffusion. Column-strided
 * 2-D stencil sweep: reads of the 4 neighbours (two of them one full row
 * away) and a strided write of the centre element, which makes the dirty
 * lines per flushed page sparse — the behaviour SkyByte-W exploits
 * (paper: 24% writes, MPKI 7.5).
 */
class SradWorkload : public SyntheticWorkload
{
  public:
    explicit SradWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 8.16)
    {
        // Square-ish grid of 64 B cells.
        const std::uint64_t cells = footprint_ / kCachelineBytes;
        rowLines_ = 1;
        while (rowLines_ * rowLines_ < cells)
            rowLines_ <<= 1;
        colLines_ = std::max<std::uint64_t>(cells / rowLines_, 1);
    }

    std::string name() const override { return "srad"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        // Column-major traversal: consecutive cells are a row apart, so
        // consecutive writes land in different pages (sparse dirtiness).
        const std::uint64_t cells = rowLines_ * colLines_;
        const std::uint64_t slice = cells / params_.numThreads;
        const std::uint64_t idx = slice * ts.tid + (ts.cursor % slice);
        const std::uint64_t col = idx / colLines_;
        const std::uint64_t row = idx % colLines_;
        const auto cellAddr = [&](std::uint64_t r, std::uint64_t c) {
            return data(((r % colLines_) * rowLines_ + (c % rowLines_))
                        * kCachelineBytes);
        };
        switch (ts.phase % 5) {
          case 0: rec = {3, false, cellAddr(row, col)}; break;        // C
          case 1: rec = {2, false, cellAddr(row + 1, col)}; break;    // S
          case 2: rec = {2, false, cellAddr(row, col + 1)}; break;    // E
          case 3: rec = {2, false, cellAddr(row + colLines_ - 1, col)};
                  break;                                              // N
          default:
            rec = {3, true, cellAddr(row, col)};                      // W
            ts.cursor++;
            break;
        }
        ts.phase++;
    }

  private:
    std::uint64_t rowLines_ = 0;
    std::uint64_t colLines_ = 0;
};

/**
 * tpcc — WHISPER TPC-C on an in-memory store. Mostly hits in hot
 * warehouse/district tables with heavy business-logic compute (paper MPKI
 * is only 1.0) plus random stock/customer updates giving the highest
 * write ratio of the suite (36%).
 */
class TpccWorkload : public SyntheticWorkload
{
  public:
    explicit TpccWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 15.77),
          hotRegion_(footprint_ / 256)
    {}

    std::string name() const override { return "tpcc"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        const double dice = rng.uniform();
        // 36% of memory ops are writes; most traffic stays in hot tables.
        if (dice < 0.28) {
            // Hot-table update (district/warehouse counters).
            rec = {24, true, data(lineAlign(rng.below(hotRegion_)))};
        } else if (dice < 0.36) {
            // Cold random update (stock/customer) + order-line append.
            if (rng.chance(0.5)) {
                rec = {20, true, data(lineAlign(rng.below(footprint_)))};
            } else {
                ts.cursor += kCachelineBytes;
                rec = {20, true,
                       data(hotRegion_ + ts.cursor % (footprint_ / 2))};
            }
        } else if (dice < 0.86) {
            // Hot-table read.
            rec = {22, false, data(lineAlign(rng.below(hotRegion_)))};
        } else {
            // Cold random read (customer lookup, stock check).
            rec = {26, false, data(lineAlign(rng.below(footprint_)))};
        }
    }

  private:
    std::uint64_t hotRegion_;
};

/**
 * ycsb — WHISPER YCSB workload B (95/5 read/update) over zipfian keys
 * with 1 KB records; reads touch a few lines of the record, updates dirty
 * one or two (paper: 5% writes, MPKI 92.2).
 */
class YcsbWorkload : public SyntheticWorkload
{
  public:
    explicit YcsbWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.61),
          records_(std::max<std::uint64_t>(footprint_ / kRecordBytes, 64)),
          zipf_(records_, 0.99)
    {}

    std::string name() const override { return "ycsb"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {2, ts.burstWrite, data(ts.burstAddr)};
            return;
        }
        const std::uint64_t key = zipf_.sample(rng);
        ts.burstAddr = key * kRecordBytes
                       + rng.below(kRecordBytes / kCachelineBytes / 2)
                             * kCachelineBytes;
        ts.burstWrite = rng.chance(0.05);
        ts.burstLeft = ts.burstWrite ? rng.below(2) : 1 + rng.below(3);
        rec = {3, ts.burstWrite, data(ts.burstAddr)};
    }

  private:
    static constexpr std::uint64_t kRecordBytes = 1024;
    std::uint64_t records_;
    ZipfSampler zipf_;
};

/** uniform — single-line uniform random microworkload for tests/examples. */
class UniformWorkload : public SyntheticWorkload
{
  public:
    explicit UniformWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 0.25)
    {}

    std::string name() const override { return "uniform"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        rec = {4, rng.chance(0.25), data(lineAlign(rng.below(footprint_)))};
    }
};

const std::unordered_map<std::string, WorkloadInfo> &
infoTable()
{
    static const std::unordered_map<std::string, WorkloadInfo> table = {
        {"bfs-dense", {"Rodinia", 9.13, 0.25, 122.9}},
        {"bc", {"GAP", 8.18, 0.11, 39.4}},
        {"radix", {"Splashv3", 9.60, 0.29, 7.1}},
        {"srad", {"Rodinia", 8.16, 0.24, 7.5}},
        {"ycsb", {"WHISPER", 9.61, 0.05, 92.2}},
        {"tpcc", {"WHISPER", 15.77, 0.36, 1.0}},
        {"dlrm", {"DLRM", 12.35, 0.32, 5.1}},
        {"uniform", {"micro", 0.25, 0.25, 50.0}},
    };
    return table;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "bc")
        return std::make_unique<BcWorkload>(params);
    if (name == "bfs-dense")
        return std::make_unique<BfsWorkload>(params);
    if (name == "dlrm")
        return std::make_unique<DlrmWorkload>(params);
    if (name == "radix")
        return std::make_unique<RadixWorkload>(params);
    if (name == "srad")
        return std::make_unique<SradWorkload>(params);
    if (name == "tpcc")
        return std::make_unique<TpccWorkload>(params);
    if (name == "ycsb")
        return std::make_unique<YcsbWorkload>(params);
    if (name == "uniform")
        return std::make_unique<UniformWorkload>(params);
    throw std::invalid_argument("unknown workload: " + name);
}

const std::vector<std::string> &
paperWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bc", "bfs-dense", "dlrm", "radix", "srad", "tpcc", "ycsb",
    };
    return names;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    auto it = infoTable().find(name);
    if (it == infoTable().end())
        throw std::invalid_argument("unknown workload: " + name);
    return it->second;
}

} // namespace skybyte
