/**
 * @file
 * The workload registry and its built-in generators: the seven Table I
 * workloads plus the parameterized synthetic scenarios (uniform, zipf,
 * scan, ptrchase, phased). Each Table I generator reproduces the
 * published footprint (scaled 1/64 by default), write ratio and locality
 * class of its namesake; the mixes below are tuned so the measured write
 * ratios and LLC MPKI ordering match Table I (verified by
 * tests/test_trace.cc and bench_table1).
 *
 * Generators derive from SyntheticWorkload and implement a per-record
 * emit(); the base class batches emit() into TraceBatch refills, so the
 * virtual front-end boundary is crossed once per 256 records while the
 * per-thread record stream stays bit-identical to one-at-a-time
 * generation.
 */

#include "trace/workload.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "common/rng.h"
#include "trace/mix_workload.h"
#include "trace/trace_log/trace_log_workload.h"

namespace skybyte {

namespace {

/** Scale factor from paper footprints to the default simulated ones. */
constexpr double kFootprintScale = 1.0 / 64.0;

constexpr std::uint64_t
defaultFootprint(double paper_gb)
{
    return static_cast<std::uint64_t>(paper_gb * kFootprintScale
                                      * 1024.0 * 1024.0 * 1024.0);
}

/**
 * Shared skeleton: per-thread RNG, instruction accounting, address
 * helpers, and the emit()-batching refill(). Subclasses implement
 * emit().
 */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(const WorkloadParams &params, double paper_gb)
        : params_(params)
    {
        footprint_ = params.footprintBytes != 0
                         ? params.footprintBytes
                         : defaultFootprint(paper_gb);
        // Round to a whole number of pages.
        footprint_ = std::max<std::uint64_t>(footprint_, 16 * kPageBytes);
        footprint_ = (footprint_ / kPageBytes) * kPageBytes;
        threads_.resize(params.numThreads);
        for (int t = 0; t < params.numThreads; ++t) {
            threads_[t].rng.reseed(params.seed * 0x9e3779b9ULL + t + 1);
            threads_[t].tid = t;
        }
    }

    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override { return params_.numThreads; }

    /**
     * All mutable refill state lives in the per-tid ThreadState (RNG,
     * cursors, instruction count); params_/footprint_ are const after
     * construction, so distinct tids may refill concurrently.
     */
    bool concurrentRefillSafe() const override { return true; }

    std::uint64_t
    instructionsEmitted(int tid) const override
    {
        return threads_[tid].instrCount;
    }

    std::uint32_t
    refill(int tid, TraceBatch &batch) override
    {
        ThreadState &ts = threads_[tid];
        std::uint32_t n = 0;
        while (n < TraceBatch::kCapacity
               && ts.instrCount < params_.instrPerThread) {
            TraceRecord &rec = batch.records[n++];
            emit(ts, rec);
            ts.instrCount += rec.computeOps + 1;
        }
        batch.count = n;
        batch.cursor = 0;
        return n;
    }

  protected:
    struct ThreadState
    {
        Rng rng;
        int tid = 0;
        std::uint64_t instrCount = 0;
        // generic per-thread cursors used differently by each workload
        std::uint64_t cursor = 0;
        std::uint64_t burstLeft = 0;
        Addr burstAddr = 0;
        bool burstWrite = false;
        std::uint64_t phase = 0;
    };

    /** Produce one record (compute count + memory op) for @p ts. */
    virtual void emit(ThreadState &ts, TraceRecord &rec) = 0;

    /** Address of byte offset @p off within the shared data region. */
    Addr data(std::uint64_t off) const
    {
        return kDataBase + (off % footprint_);
    }

    /** A hot per-thread private address (stack/locals; host DRAM). */
    Addr
    privateAddr(ThreadState &ts, std::uint64_t span = 32 * 1024)
    {
        return kPrivateBase + ts.tid * kPrivateStride
               + lineAlign(ts.rng.below(span));
    }

    WorkloadParams params_;
    std::uint64_t footprint_ = 0;
    std::vector<ThreadState> threads_;
};

/**
 * bc — GAP betweenness centrality. Power-law vertex reads (zipf) over a
 * vertex array plus sequential edge-list bursts; 11% writes are score
 * updates. Heavily memory-bound (paper MPKI 39.4).
 */
class BcWorkload : public SyntheticWorkload
{
  public:
    explicit BcWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 8.18),
          vertexRegion_(footprint_ / 4),
          zipf_(std::max<std::uint64_t>(vertexRegion_ / kCachelineBytes, 64),
                0.70)
    {}

    std::string name() const override { return "bc"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            // Sequential edge-list scan.
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {rng.below(3) == 0 ? 3u : 2u, false, data(ts.burstAddr)};
            return;
        }
        // Edge bursts emit several read records per draw, so the write
        // branch probability is scaled up to keep writes at ~11% of all
        // memory operations (Table I).
        const double dice = rng.uniform();
        if (dice < 0.38) {
            // Score update: write to a zipf-chosen vertex line.
            const Addr v = zipf_.sample(rng) * kCachelineBytes;
            rec = {4, true, data(v)};
        } else if (dice < 0.62) {
            // Vertex metadata read.
            const Addr v = zipf_.sample(rng) * kCachelineBytes;
            rec = {3, false, data(v)};
        } else {
            // Edge burst: bursts start at the edge lists of zipf-chosen
            // vertices, so hub vertices' edges are rescanned often.
            const std::uint64_t edge_bytes = footprint_ - vertexRegion_;
            const std::uint64_t frac = zipf_.sample(rng);
            ts.burstAddr = vertexRegion_
                           + lineAlign((frac * 977) * kCachelineBytes
                                       % edge_bytes);
            ts.burstLeft = 2 + rng.below(10);
            rec = {2, false, data(ts.burstAddr)};
        }
    }

  private:
    std::uint64_t vertexRegion_;
    ZipfSampler zipf_;
};

/**
 * bfs-dense — Rodinia BFS on a dense graph. Frontier scans with random
 * neighbour visits and a randomly updated visited map; very low compute
 * per access (paper MPKI 122.9, 25% writes).
 */
class BfsWorkload : public SyntheticWorkload
{
  public:
    explicit BfsWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.13),
          zipf_(std::max<std::uint64_t>(footprint_ / kCachelineBytes, 64),
                0.80)
    {}

    std::string name() const override { return "bfs-dense"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            // Adjacency-row scan.
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {1, false, data(ts.burstAddr)};
            return;
        }
        // Real graphs are power-law: high-degree vertices are revisited
        // constantly, so probes/visited-map updates follow a zipf.
        // Burst dilution compensation as in bc: target 25% writes.
        const double dice = rng.uniform();
        if (dice < 0.47) {
            // Mark a vertex visited / update its level.
            rec = {1, true, data(zipf_.sample(rng) * kCachelineBytes)};
        } else if (dice < 0.62) {
            // Neighbour probe.
            rec = {1, false, data(zipf_.sample(rng) * kCachelineBytes)};
        } else {
            // Short adjacency burst.
            ts.burstAddr = zipf_.sample(rng) * kCachelineBytes;
            ts.burstLeft = 1 + rng.below(4);
            rec = {1, false, data(ts.burstAddr)};
        }
    }

  private:
    ZipfSampler zipf_;
};

/**
 * dlrm — embedding-table gathers (single-line random reads over most of
 * the footprint) alternating with dense MLP phases over a small reused
 * weight region; 32% writes from activations/gradients and sparse
 * embedding updates (paper MPKI 5.1).
 */
class DlrmWorkload : public SyntheticWorkload
{
  public:
    explicit DlrmWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 12.35),
          tableRegion_(footprint_ * 9 / 10),
          mlpRegion_(footprint_ - footprint_ * 9 / 10),
          zipf_(std::max<std::uint64_t>(tableRegion_ / kCachelineBytes,
                                        64),
                0.60)
    {}

    std::string name() const override { return "dlrm"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        // phase counts down gather ops, then MLP ops.
        if (ts.phase == 0) {
            ts.phase = 26 + rng.below(8);     // gathers per sample
            ts.cursor = 160 + rng.below(64);  // MLP ops per sample
        }
        if (ts.phase > 0 && ts.phase != kMlpMarker) {
            ts.phase--;
            // Embedding lookups are famously skewed (popular items).
            const Addr a = zipf_.sample(rng) * kCachelineBytes;
            if (rng.chance(0.18)) {
                // Sparse embedding-gradient update.
                rec = {6, true, data(a)};
            } else {
                rec = {6, false, data(a)};
            }
            if (ts.phase == 0)
                ts.phase = kMlpMarker;
            return;
        }
        // MLP phase: sequential weight reads (cache friendly) +
        // activation writes to a hot private buffer.
        if (ts.cursor == 0) {
            ts.phase = 0;
            emit(ts, rec);
            return;
        }
        ts.cursor--;
        if (rng.chance(0.40)) {
            rec = {5, true, privateAddr(ts, 256 * 1024)};
        } else {
            ts.burstAddr = (ts.burstAddr + kCachelineBytes) % mlpRegion_;
            rec = {5, false, data(tableRegion_ + ts.burstAddr)};
        }
    }

  private:
    static constexpr std::uint64_t kMlpMarker = ~0ULL;
    std::uint64_t tableRegion_;
    std::uint64_t mlpRegion_;
    ZipfSampler zipf_;
};

/**
 * radix — SPLASH-3 radix sort. Alternates sequential key reads with
 * scattered bucket writes (29% writes, paper MPKI 7.1). Each thread owns a
 * contiguous key slice; bucket writes scatter over the whole output half.
 */
class RadixWorkload : public SyntheticWorkload
{
  public:
    explicit RadixWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.60),
          half_(footprint_ / 2)
    {}

    std::string name() const override { return "radix"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        const std::uint64_t slice = half_ / params_.numThreads;
        const std::uint64_t slice_base = slice * ts.tid;
        // Three reads per key (key + histogram/prefix), then ~1.2 writes.
        switch (ts.phase % 4) {
          case 0:
          case 1: {
            // Sequential key-slice read.
            ts.cursor = (ts.cursor + kCachelineBytes) % slice;
            rec = {3, false, data(slice_base + ts.cursor)};
            break;
          }
          case 2: {
            // Histogram read: small hot region (cache resident).
            rec = {4, false, privateAddr(ts, 64 * 1024)};
            break;
          }
          default: {
            // Scattered bucket write into the output half.
            const Addr dst = half_ + lineAlign(rng.below(half_));
            rec = {3, true, data(dst)};
            break;
          }
        }
        ts.phase++;
    }

  private:
    std::uint64_t half_;
};

/**
 * srad — Rodinia speckle-reducing anisotropic diffusion. Column-strided
 * 2-D stencil sweep: reads of the 4 neighbours (two of them one full row
 * away) and a strided write of the centre element, which makes the dirty
 * lines per flushed page sparse — the behaviour SkyByte-W exploits
 * (paper: 24% writes, MPKI 7.5).
 */
class SradWorkload : public SyntheticWorkload
{
  public:
    explicit SradWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 8.16)
    {
        // Square-ish grid of 64 B cells.
        const std::uint64_t cells = footprint_ / kCachelineBytes;
        rowLines_ = 1;
        while (rowLines_ * rowLines_ < cells)
            rowLines_ <<= 1;
        colLines_ = std::max<std::uint64_t>(cells / rowLines_, 1);
    }

    std::string name() const override { return "srad"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        // Column-major traversal: consecutive cells are a row apart, so
        // consecutive writes land in different pages (sparse dirtiness).
        const std::uint64_t cells = rowLines_ * colLines_;
        const std::uint64_t slice = cells / params_.numThreads;
        const std::uint64_t idx = slice * ts.tid + (ts.cursor % slice);
        const std::uint64_t col = idx / colLines_;
        const std::uint64_t row = idx % colLines_;
        const auto cellAddr = [&](std::uint64_t r, std::uint64_t c) {
            return data(((r % colLines_) * rowLines_ + (c % rowLines_))
                        * kCachelineBytes);
        };
        switch (ts.phase % 5) {
          case 0: rec = {3, false, cellAddr(row, col)}; break;        // C
          case 1: rec = {2, false, cellAddr(row + 1, col)}; break;    // S
          case 2: rec = {2, false, cellAddr(row, col + 1)}; break;    // E
          case 3: rec = {2, false, cellAddr(row + colLines_ - 1, col)};
                  break;                                              // N
          default:
            rec = {3, true, cellAddr(row, col)};                      // W
            ts.cursor++;
            break;
        }
        ts.phase++;
    }

  private:
    std::uint64_t rowLines_ = 0;
    std::uint64_t colLines_ = 0;
};

/**
 * tpcc — WHISPER TPC-C on an in-memory store. Mostly hits in hot
 * warehouse/district tables with heavy business-logic compute (paper MPKI
 * is only 1.0) plus random stock/customer updates giving the highest
 * write ratio of the suite (36%).
 */
class TpccWorkload : public SyntheticWorkload
{
  public:
    explicit TpccWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 15.77),
          hotRegion_(footprint_ / 256)
    {}

    std::string name() const override { return "tpcc"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        const double dice = rng.uniform();
        // 36% of memory ops are writes; most traffic stays in hot tables.
        if (dice < 0.28) {
            // Hot-table update (district/warehouse counters).
            rec = {24, true, data(lineAlign(rng.below(hotRegion_)))};
        } else if (dice < 0.36) {
            // Cold random update (stock/customer) + order-line append.
            if (rng.chance(0.5)) {
                rec = {20, true, data(lineAlign(rng.below(footprint_)))};
            } else {
                ts.cursor += kCachelineBytes;
                rec = {20, true,
                       data(hotRegion_ + ts.cursor % (footprint_ / 2))};
            }
        } else if (dice < 0.86) {
            // Hot-table read.
            rec = {22, false, data(lineAlign(rng.below(hotRegion_)))};
        } else {
            // Cold random read (customer lookup, stock check).
            rec = {26, false, data(lineAlign(rng.below(footprint_)))};
        }
    }

  private:
    std::uint64_t hotRegion_;
};

/**
 * ycsb — WHISPER YCSB workload B (95/5 read/update) over zipfian keys
 * with 1 KB records; reads touch a few lines of the record, updates dirty
 * one or two (paper: 5% writes, MPKI 92.2).
 */
class YcsbWorkload : public SyntheticWorkload
{
  public:
    explicit YcsbWorkload(const WorkloadParams &p)
        : SyntheticWorkload(p, 9.61),
          records_(std::max<std::uint64_t>(footprint_ / kRecordBytes, 64)),
          zipf_(records_, 0.99)
    {}

    std::string name() const override { return "ycsb"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft > 0) {
            ts.burstLeft--;
            ts.burstAddr += kCachelineBytes;
            rec = {2, ts.burstWrite, data(ts.burstAddr)};
            return;
        }
        const std::uint64_t key = zipf_.sample(rng);
        ts.burstAddr = key * kRecordBytes
                       + rng.below(kRecordBytes / kCachelineBytes / 2)
                             * kCachelineBytes;
        ts.burstWrite = rng.chance(0.05);
        ts.burstLeft = ts.burstWrite ? rng.below(2) : 1 + rng.below(3);
        rec = {3, ts.burstWrite, data(ts.burstAddr)};
    }

  private:
    static constexpr std::uint64_t kRecordBytes = 1024;
    std::uint64_t records_;
    ZipfSampler zipf_;
};

/**
 * uniform — single-line uniform random microworkload.
 * Spec args: write_ratio= (default 0.25), compute= (default 4).
 */
class UniformWorkload : public SyntheticWorkload
{
  public:
    UniformWorkload(const WorkloadParams &p, double write_ratio,
                    std::uint32_t compute)
        : SyntheticWorkload(p, 0.25), writeRatio_(write_ratio),
          compute_(compute)
    {}

    std::string name() const override { return "uniform"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        rec = {compute_, rng.chance(writeRatio_),
               data(lineAlign(rng.below(footprint_)))};
    }

  private:
    double writeRatio_;
    std::uint32_t compute_;
};

/**
 * zipf — single-line zipf-skewed accesses over the whole footprint: the
 * canonical hot-set scenario for migration/caching studies.
 * Spec args: theta= (skew in (0,1), default 0.99), write_ratio=
 * (default 0.2), compute= (default 4).
 */
class ZipfScenarioWorkload : public SyntheticWorkload
{
  public:
    ZipfScenarioWorkload(const WorkloadParams &p, double theta,
                         double write_ratio, std::uint32_t compute)
        : SyntheticWorkload(p, 4.0),
          zipf_(std::max<std::uint64_t>(footprint_ / kCachelineBytes, 64),
                theta),
          writeRatio_(write_ratio), compute_(compute)
    {}

    std::string name() const override { return "zipf"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        rec = {compute_, rng.chance(writeRatio_),
               data(zipf_.sample(rng) * kCachelineBytes)};
    }

  private:
    ZipfSampler zipf_;
    double writeRatio_;
    std::uint32_t compute_;
};

/**
 * scan — streaming sequential sweep: each thread walks its own slice of
 * the footprint at a fixed stride, wrapping around; the worst case for
 * any hot-set policy and the best case for prefetch-free page caches.
 * Spec args: stride= (bytes, default 64), write_ratio= (default 0.0),
 * compute= (default 2).
 */
class ScanWorkload : public SyntheticWorkload
{
  public:
    ScanWorkload(const WorkloadParams &p, std::uint64_t stride,
                 double write_ratio, std::uint32_t compute)
        : SyntheticWorkload(p, 4.0), stride_(stride),
          writeRatio_(write_ratio), compute_(compute)
    {
        slice_ = footprint_ / static_cast<std::uint64_t>(
                     std::max(params_.numThreads, 1));
        slice_ = std::max<std::uint64_t>(lineAlign(slice_),
                                         kCachelineBytes);
    }

    std::string name() const override { return "scan"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        const Addr addr = slice_ * ts.tid + (ts.cursor % slice_);
        ts.cursor += stride_;
        rec = {compute_, ts.rng.chance(writeRatio_), data(addr)};
    }

  private:
    std::uint64_t stride_;
    std::uint64_t slice_ = 0;
    double writeRatio_;
    std::uint32_t compute_;
};

/**
 * ptrchase — dependent pointer chasing: each access is a hash of the
 * previous one, so there is no spatial locality and no MLP — the
 * latency-bound scenario where device-triggered context switches pay
 * off most. Periodically rehomes to an rng-chosen chain start.
 * Spec args: chain= (hops per chain, default 64), write_ratio=
 * (default 0.05), compute= (default 1).
 */
class PtrChaseWorkload : public SyntheticWorkload
{
  public:
    PtrChaseWorkload(const WorkloadParams &p, std::uint64_t chain,
                     double write_ratio, std::uint32_t compute)
        : SyntheticWorkload(p, 2.0), chain_(chain),
          writeRatio_(write_ratio), compute_(compute)
    {}

    std::string name() const override { return "ptrchase"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        if (ts.burstLeft == 0) {
            // Jump to a fresh chain head.
            ts.cursor = rng.below(footprint_);
            ts.burstLeft = chain_;
        }
        ts.burstLeft--;
        // splitmix64-style scramble: the next hop depends on the
        // current one, like dereferencing the stored pointer.
        std::uint64_t z = ts.cursor + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        ts.cursor = z ^ (z >> 31);
        rec = {compute_, rng.chance(writeRatio_),
               data(lineAlign(ts.cursor % footprint_))};
    }

  private:
    std::uint64_t chain_;
    double writeRatio_;
    std::uint32_t compute_;
};

/**
 * phased — alternates a streaming-scan phase with a zipf hot-set phase,
 * stressing the adaptivity of migration/caching policies (a policy
 * tuned for either steady state mispredicts at every transition).
 * Spec args: phase_instr= (instructions per phase, default 20000),
 * theta= (zipf skew, default 0.9), write_ratio= (default 0.2),
 * compute= (default 3).
 */
class PhasedWorkload : public SyntheticWorkload
{
  public:
    PhasedWorkload(const WorkloadParams &p, std::uint64_t phase_instr,
                   double theta, double write_ratio,
                   std::uint32_t compute)
        : SyntheticWorkload(p, 4.0),
          zipf_(std::max<std::uint64_t>(footprint_ / kCachelineBytes, 64),
                theta),
          phaseInstr_(std::max<std::uint64_t>(phase_instr, 1)),
          writeRatio_(write_ratio), compute_(compute)
    {
        slice_ = std::max<std::uint64_t>(
            lineAlign(footprint_ / static_cast<std::uint64_t>(
                          std::max(params_.numThreads, 1))),
            kCachelineBytes);
    }

    std::string name() const override { return "phased"; }

  protected:
    void
    emit(ThreadState &ts, TraceRecord &rec) override
    {
        Rng &rng = ts.rng;
        const bool scan_phase =
            (ts.instrCount / phaseInstr_) % 2 == 0;
        if (scan_phase) {
            // Each thread scans within its own slice so lanes differ
            // and never drift into a neighbour's slice on long runs.
            ts.cursor += kCachelineBytes;
            rec = {compute_, false,
                   data(slice_ * ts.tid + ts.cursor % slice_)};
        } else {
            rec = {compute_, rng.chance(writeRatio_),
                   data(zipf_.sample(rng) * kCachelineBytes)};
        }
    }

  private:
    ZipfSampler zipf_;
    std::uint64_t phaseInstr_;
    std::uint64_t slice_ = 0;
    double writeRatio_;
    std::uint32_t compute_;
};

double
thetaArg(WorkloadSpecArgs &args, double def)
{
    const double theta = args.dbl("theta", def);
    if (theta <= 0.0 || theta >= 1.0) {
        throw std::invalid_argument(
            "workload arg theta must be in (0, 1)");
    }
    return theta;
}

double
ratioArg(WorkloadSpecArgs &args, const std::string &key, double def)
{
    const double ratio = args.dbl(key, def);
    if (ratio < 0.0 || ratio > 1.0) {
        throw std::invalid_argument("workload arg " + key
                                    + " must be in [0, 1]");
    }
    return ratio;
}

std::uint32_t
computeArg(WorkloadSpecArgs &args, std::uint32_t def)
{
    const std::uint64_t v = args.u64("compute", def);
    // A record must fit the 32-bit computeOps field with headroom for
    // the +1 memory slot; a narrowing cast would silently wrap.
    if (v > 0x7fffffffULL) {
        throw std::invalid_argument(
            "workload arg compute out of range: " + std::to_string(v));
    }
    return static_cast<std::uint32_t>(v);
}

/** Registration for a Table I workload (no generator-specific args). */
template <typename W>
WorkloadRegistration
paperEntry(const char *name, const char *summary, WorkloadInfo info)
{
    WorkloadRegistration reg;
    reg.name = name;
    reg.summary = summary;
    reg.paper = true;
    reg.info = std::move(info);
    reg.make = [](WorkloadSpecArgs &, const WorkloadParams &params) {
        return std::make_unique<W>(params);
    };
    return reg;
}

std::mutex &
registryMutex()
{
    // skybyte-lint: allow(lane-shared-state) the registry lock itself
    static std::mutex m;
    return m;
}

std::map<std::string, WorkloadRegistration> &
registryLocked()
{
    // skybyte-lint: allow(lane-shared-state) guarded by registryMutex()
    static std::map<std::string, WorkloadRegistration> entries;
    return entries;
}

void
insertRegistration(WorkloadRegistration reg)
{
    if (reg.name.empty())
        throw std::invalid_argument("workload name must not be empty");
    if (reg.name == "mix") {
        throw std::invalid_argument(
            "\"mix\" is reserved for the co-location combinator");
    }
    if (!reg.make) {
        throw std::invalid_argument("workload " + reg.name
                                    + " has no factory");
    }
    auto [it, inserted] =
        registryLocked().emplace(reg.name, std::move(reg));
    if (!inserted) {
        throw std::invalid_argument("duplicate workload name: "
                                    + it->first);
    }
}

void
registerBuiltinWorkloads()
{
    insertRegistration(paperEntry<BcWorkload>(
        "bc", "GAP betweenness centrality (zipf vertices + edge bursts)",
        {"GAP", 8.18, 0.11, 39.4}));
    insertRegistration(paperEntry<BfsWorkload>(
        "bfs-dense", "Rodinia BFS, dense graph (lowest compute/access)",
        {"Rodinia", 9.13, 0.25, 122.9}));
    insertRegistration(paperEntry<DlrmWorkload>(
        "dlrm", "embedding gathers alternating with dense MLP phases",
        {"DLRM", 12.35, 0.32, 5.1}));
    insertRegistration(paperEntry<RadixWorkload>(
        "radix", "SPLASH-3 radix sort (sequential reads, scatter writes)",
        {"Splashv3", 9.60, 0.29, 7.1}));
    insertRegistration(paperEntry<SradWorkload>(
        "srad", "Rodinia SRAD stencil (column-strided sparse writes)",
        {"Rodinia", 8.16, 0.24, 7.5}));
    insertRegistration(paperEntry<TpccWorkload>(
        "tpcc", "WHISPER TPC-C (hot tables, highest write ratio)",
        {"WHISPER", 15.77, 0.36, 1.0}));
    insertRegistration(paperEntry<YcsbWorkload>(
        "ycsb", "WHISPER YCSB-B (zipf keys, 1 KB records, 5% updates)",
        {"WHISPER", 9.61, 0.05, 92.2}));

    WorkloadRegistration uniform;
    uniform.name = "uniform";
    uniform.summary = "uniform random single-line microworkload";
    uniform.argHelp = "write_ratio=,compute=";
    uniform.info = {"micro", 0.25, 0.25, 50.0};
    uniform.make = [](WorkloadSpecArgs &args,
                      const WorkloadParams &params) {
        const double wr = ratioArg(args, "write_ratio", 0.25);
        const std::uint32_t compute = computeArg(args, 4);
        return std::make_unique<UniformWorkload>(params, wr, compute);
    };
    insertRegistration(std::move(uniform));

    WorkloadRegistration zipf;
    zipf.name = "zipf";
    zipf.summary = "zipf-skewed hot-set accesses over the footprint";
    zipf.argHelp = "theta=,write_ratio=,compute=";
    zipf.info = {"synthetic", 4.0, 0.20, 60.0};
    zipf.make = [](WorkloadSpecArgs &args, const WorkloadParams &params) {
        const double theta = thetaArg(args, 0.99);
        const double wr = ratioArg(args, "write_ratio", 0.20);
        const std::uint32_t compute = computeArg(args, 4);
        return std::make_unique<ZipfScenarioWorkload>(params, theta, wr,
                                                      compute);
    };
    insertRegistration(std::move(zipf));

    WorkloadRegistration scan;
    scan.name = "scan";
    scan.summary = "per-thread streaming sequential sweep";
    scan.argHelp = "stride=,write_ratio=,compute=";
    scan.info = {"synthetic", 4.0, 0.0, 30.0};
    scan.make = [](WorkloadSpecArgs &args, const WorkloadParams &params) {
        const std::uint64_t stride =
            args.bytes("stride", kCachelineBytes);
        // Fail loudly rather than silently rounding the stride: two
        // sweep points labeled stride=32 and stride=100 must not run
        // the same experiment.
        if (stride == 0 || stride % kCachelineBytes != 0) {
            throw std::invalid_argument(
                "workload arg stride must be a positive multiple of "
                + std::to_string(kCachelineBytes));
        }
        const double wr = ratioArg(args, "write_ratio", 0.0);
        const std::uint32_t compute = computeArg(args, 2);
        return std::make_unique<ScanWorkload>(params, stride, wr,
                                              compute);
    };
    insertRegistration(std::move(scan));

    WorkloadRegistration ptrchase;
    ptrchase.name = "ptrchase";
    ptrchase.summary = "dependent pointer chase (no locality, no MLP)";
    ptrchase.argHelp = "chain=,write_ratio=,compute=";
    ptrchase.info = {"synthetic", 2.0, 0.05,
                     100.0};
    ptrchase.make = [](WorkloadSpecArgs &args,
                       const WorkloadParams &params) {
        const std::uint64_t chain = args.u64("chain", 64);
        if (chain == 0) {
            throw std::invalid_argument(
                "workload arg chain must be >= 1");
        }
        const double wr = ratioArg(args, "write_ratio", 0.05);
        const std::uint32_t compute = computeArg(args, 1);
        return std::make_unique<PtrChaseWorkload>(params, chain, wr,
                                                  compute);
    };
    insertRegistration(std::move(ptrchase));

    WorkloadRegistration phased;
    phased.name = "phased";
    phased.summary = "alternating scan / zipf hot-set phases";
    phased.argHelp = "phase_instr=,theta=,write_ratio=,compute=";
    phased.info = {"synthetic", 4.0, 0.10,
                   45.0};
    phased.make = [](WorkloadSpecArgs &args,
                     const WorkloadParams &params) {
        const std::uint64_t phase_instr =
            args.u64("phase_instr", 20'000);
        if (phase_instr == 0) {
            throw std::invalid_argument(
                "workload arg phase_instr must be >= 1");
        }
        const double theta = thetaArg(args, 0.9);
        const double wr = ratioArg(args, "write_ratio", 0.20);
        const std::uint32_t compute = computeArg(args, 3);
        return std::make_unique<PhasedWorkload>(params, phase_instr,
                                                theta, wr, compute);
    };
    insertRegistration(std::move(phased));

    WorkloadRegistration tracelog;
    tracelog.name = "tracelog";
    tracelog.summary =
        "replay a trace capture (STRC streaming or flat, by magic)";
    tracelog.argHelp = "path=";
    tracelog.replay = true;
    tracelog.info = {"replay", 0.0, 0.0, 0.0};
    tracelog.make = [](WorkloadSpecArgs &args,
                       const WorkloadParams &) {
        const std::string path = args.str("path", "");
        if (path.empty()) {
            throw std::invalid_argument(
                "workload tracelog requires path= (a capture from "
                "skybyte_tracegen or skybyte_tracepack)");
        }
        // Thread count, footprint and record streams all come from the
        // capture itself. The common keys were already consumed by the
        // generic layer, so reject them here — silently ignoring
        // threads=4 would run a different experiment than the spec
        // claims.
        for (const char *key : {"threads", "instr", "footprint", "seed"}) {
            if (args.has(key)) {
                throw std::invalid_argument(
                    std::string("workload tracelog does not take ") + key
                    + "= (the capture defines it)");
            }
        }
        return makeTraceReplayWorkload(path);
    };
    insertRegistration(std::move(tracelog));
}

void
ensureBuiltins()
{
    // skybyte-lint: allow(lane-shared-state) call_once is the sync
    static std::once_flag once;
    std::call_once(once, [] {
        std::lock_guard<std::mutex> lock(registryMutex());
        registerBuiltinWorkloads();
    });
}

} // namespace

void
registerWorkload(WorkloadRegistration reg)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    insertRegistration(std::move(reg));
}

const WorkloadRegistration *
findWorkload(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto &entries = registryLocked();
    const auto it = entries.find(name);
    return it == entries.end() ? nullptr : &it->second;
}

std::vector<std::string>
registeredWorkloadNames()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::string> names;
    for (const auto &[name, reg] : registryLocked())
        names.push_back(name);
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec, const WorkloadParams &params)
{
    if (spec.isMix()) {
        // The co-location combinator: args are tenant=child-spec
        // bindings, not generator arguments, so the registry's common
        // key handling below does not apply at the mix level (each
        // child applies its own footprint/threads/instr/seed args).
        return std::make_unique<MixWorkload>(spec, params);
    }
    const WorkloadRegistration *reg = findWorkload(spec.name);
    if (reg == nullptr) {
        std::string known;
        for (const std::string &name : registeredWorkloadNames()) {
            if (!known.empty())
                known += ", ";
            known += name;
        }
        throw std::invalid_argument("unknown workload: " + spec.name
                                    + " (registered: " + known + ")");
    }
    WorkloadSpecArgs args(spec);
    WorkloadParams p = params;
    // Common spec args override the caller's params so a spec string is
    // a self-contained experiment input.
    p.footprintBytes = args.bytes("footprint", p.footprintBytes);
    if (args.has("threads")) {
        const std::uint64_t threads = args.u64("threads", 0);
        // Bound before the cast to int: a huge value must error, not
        // silently wrap to some small thread count.
        if (threads == 0 || threads > 65536) {
            throw std::invalid_argument(
                "workload arg threads must be in [1, 65536], got "
                + std::to_string(threads));
        }
        p.numThreads = static_cast<int>(threads);
    }
    p.instrPerThread = args.u64("instr", p.instrPerThread);
    p.seed = args.u64("seed", p.seed);
    if (p.numThreads <= 0)
        throw std::invalid_argument("workload threads must be >= 1");
    auto workload = reg->make(args, p);
    args.requireAllConsumed(spec.name);
    return workload;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &spec_text, const WorkloadParams &params)
{
    return makeWorkload(parseWorkloadSpec(spec_text), params);
}

const std::vector<std::string> &
paperWorkloadNames()
{
    static const std::vector<std::string> names = {
        "bc", "bfs-dense", "dlrm", "radix", "srad", "tpcc", "ycsb",
    };
    return names;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    const WorkloadRegistration *reg = findWorkload(name);
    if (reg == nullptr)
        throw std::invalid_argument("unknown workload: " + name);
    return reg->info;
}

} // namespace skybyte
