#include "trace/mix_workload.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace skybyte {

namespace {

/**
 * Per-tenant seed decorrelation stride (golden-ratio odd constant).
 * Tenant 0 keeps the caller's seed unchanged so a single-tenant mix is
 * bit-identical to the plain workload; later tenants are shifted far
 * apart so two identically-parameterized tenants do not replay the
 * same RNG streams. An explicit seed= in a child spec still overrides.
 */
constexpr std::uint64_t kTenantSeedStride = 0x9e3779b97f4a7c15ULL;

std::uint64_t
pageRoundUp(std::uint64_t bytes)
{
    return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
}

/**
 * Peek each tenant's explicit threads= count (-1 when implicit).
 * makeWorkload re-applies the same arg onto the child params later, so
 * the peek and the construction always agree.
 */
std::vector<int>
requestedThreads(const std::vector<MixTenantSpec> &tenant_specs)
{
    std::vector<int> requested;
    requested.reserve(tenant_specs.size());
    for (const MixTenantSpec &ts : tenant_specs) {
        if (!ts.spec.has("threads")) {
            requested.push_back(-1);
            continue;
        }
        const std::uint64_t threads = parseUnsigned(
            ts.spec.raw("threads"),
            "mix tenant " + ts.tenant + " arg threads");
        if (threads == 0 || threads > 65536) {
            throw std::invalid_argument(
                "mix tenant " + ts.tenant
                + " arg threads must be in [1, 65536], got "
                + std::to_string(threads));
        }
        requested.push_back(static_cast<int>(threads));
    }
    return requested;
}

} // namespace

std::vector<int>
mixTenantThreadCounts(int total_threads,
                      const std::vector<int> &requested)
{
    if (requested.empty())
        throw std::invalid_argument("mix needs at least one tenant");
    int explicit_sum = 0;
    int implicit = 0;
    for (const int r : requested) {
        if (r < 0)
            implicit++;
        else
            explicit_sum += r;
    }
    std::vector<int> counts = requested;
    if (implicit == 0) {
        // Every tenant pinned threads=: the mix defines its own total,
        // like a plain spec's threads= overriding WorkloadParams.
        return counts;
    }
    const int remainder = total_threads - explicit_sum;
    if (remainder < implicit) {
        throw std::invalid_argument(
            "mix thread over-subscription: explicit threads= take "
            + std::to_string(explicit_sum) + " of "
            + std::to_string(total_threads) + ", leaving "
            + std::to_string(remainder > 0 ? remainder : 0) + " for "
            + std::to_string(implicit) + " implicit tenant(s)");
    }
    // Round-robin the remainder: every implicit tenant gets the base
    // share, the first remainder-mod-k (declaration order) one extra.
    const int base = remainder / implicit;
    int extra = remainder % implicit;
    for (int &c : counts) {
        if (c < 0) {
            c = base + (extra > 0 ? 1 : 0);
            if (extra > 0)
                extra--;
        }
    }
    return counts;
}

std::vector<int>
mixThreadAssignment(const std::vector<int> &counts)
{
    const int total = std::accumulate(counts.begin(), counts.end(), 0);
    std::vector<int> remaining = counts;
    std::vector<int> assignment(static_cast<std::size_t>(total));
    std::size_t cursor = 0;
    const std::size_t k = counts.size();
    for (int tid = 0; tid < total; ++tid) {
        while (remaining[cursor % k] == 0)
            cursor++;
        assignment[static_cast<std::size_t>(tid)] =
            static_cast<int>(cursor % k);
        remaining[cursor % k]--;
        cursor++;
    }
    return assignment;
}

std::string
describeMixTenant(const MixTenant &tenant)
{
    char line[256];
    std::snprintf(line, sizeof(line),
                  "tenant %-12s %2d thread%s  %8.1f MB @ +0x%llx  %s\n",
                  tenant.name.c_str(), tenant.threads,
                  tenant.threads == 1 ? " " : "s",
                  static_cast<double>(tenant.footprintBytes)
                      / (1024.0 * 1024.0),
                  static_cast<unsigned long long>(tenant.deviceBase),
                  tenant.specText.c_str());
    return line;
}

int
mixMinimumThreads(const WorkloadSpec &spec)
{
    int minimum = 0;
    for (const int r : requestedThreads(parseMixTenants(spec)))
        minimum += r < 0 ? 1 : r;
    return minimum;
}

MixWorkload::MixWorkload(const WorkloadSpec &spec,
                         const WorkloadParams &params)
{
    const std::vector<MixTenantSpec> tenant_specs = parseMixTenants(spec);
    const std::vector<int> requested = requestedThreads(tenant_specs);
    const std::vector<int> counts =
        mixTenantThreadCounts(std::max(params.numThreads, 1), requested);

    threadTenant_ = mixThreadAssignment(counts);
    threadLocal_.resize(threadTenant_.size());
    std::vector<int> next_local(counts.size(), 0);
    for (std::size_t tid = 0; tid < threadTenant_.size(); ++tid) {
        threadLocal_[tid] =
            next_local[static_cast<std::size_t>(threadTenant_[tid])]++;
    }

    for (std::size_t i = 0; i < tenant_specs.size(); ++i) {
        const MixTenantSpec &ts = tenant_specs[i];
        WorkloadParams child_params = params;
        child_params.numThreads = counts[i];
        child_params.seed =
            params.seed + kTenantSeedStride * static_cast<std::uint64_t>(i);
        // qos= is a mix-level key: peel it off the spec the child is
        // constructed from (generator factories reject unknown keys),
        // but keep the original text for reporting.
        WorkloadSpec child_spec = ts.spec;
        double qos_weight = 1.0;
        if (child_spec.has("qos")) {
            qos_weight = parseQosWeight(child_spec.raw("qos"),
                                        "mix tenant " + ts.tenant);
            child_spec.args.erase(
                std::remove_if(
                    child_spec.args.begin(), child_spec.args.end(),
                    [](const std::pair<std::string, std::string> &kv) {
                        return kv.first == "qos";
                    }),
                child_spec.args.end());
        }
        std::unique_ptr<Workload> child;
        try {
            child = makeWorkload(child_spec, child_params);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument("mix tenant " + ts.tenant + ": "
                                        + e.what());
        }
        MixTenant tenant;
        tenant.name = ts.tenant;
        tenant.specText = ts.spec.text();
        tenant.qosWeight = qos_weight;
        tenant.threads = counts[i];
        tenant.explicitThreads = requested[i] >= 0;
        tenant.footprintBytes = pageRoundUp(child->footprintBytes());
        tenant.deviceBase = footprint_;
        footprint_ += tenant.footprintBytes;
        tenants_.push_back(std::move(tenant));
        children_.push_back(std::move(child));
    }
}

std::uint32_t
MixWorkload::refill(int tid, TraceBatch &batch)
{
    const std::size_t t =
        static_cast<std::size_t>(threadTenant_[static_cast<std::size_t>(tid)]);
    const int local = threadLocal_[static_cast<std::size_t>(tid)];
    const std::uint32_t n = children_[t]->refill(local, batch);
    const MixTenant &tenant = tenants_[t];

    // Relocate the child's addresses into the mix's namespaces: shared
    // data shifts by the tenant's device base, the child-local private
    // region rebases to the global thread's. A single-tenant mix (and
    // any tenant-0 thread whose global id equals its local id) rewrites
    // nothing, so records pass through bit-identically.
    const Addr data_lo = kDataBase;
    const Addr data_hi = kDataBase + children_[t]->footprintBytes();
    const Addr priv_lo =
        kPrivateBase + static_cast<Addr>(local) * kPrivateStride;
    const Addr priv_dst =
        kPrivateBase + static_cast<Addr>(tid) * kPrivateStride;
    for (std::uint32_t i = 0; i < n; ++i) {
        Addr &va = batch.records[i].vaddr;
        if (va >= data_lo && va < data_hi) {
            va += tenant.deviceBase;
        } else if (va >= priv_lo && va < priv_lo + kPrivateStride) {
            va = priv_dst + (va - priv_lo);
        }
    }
    return n;
}

std::uint64_t
MixWorkload::instructionsEmitted(int tid) const
{
    const std::size_t t =
        static_cast<std::size_t>(threadTenant_[static_cast<std::size_t>(tid)]);
    return children_[t]->instructionsEmitted(
        threadLocal_[static_cast<std::size_t>(tid)]);
}

bool
MixWorkload::concurrentRefillSafe() const
{
    for (const auto &child : children_) {
        if (!child->concurrentRefillSafe())
            return false;
    }
    return true;
}

int
MixWorkload::tenantOfDeviceOffset(Addr dev) const
{
    int t = static_cast<int>(tenants_.size()) - 1;
    while (t > 0 && dev < tenants_[static_cast<std::size_t>(t)].deviceBase)
        t--;
    return t;
}

std::vector<Addr>
MixWorkload::tenantDeviceStarts() const
{
    std::vector<Addr> starts;
    starts.reserve(tenants_.size());
    for (const MixTenant &tenant : tenants_)
        starts.push_back(tenant.deviceBase);
    return starts;
}

std::vector<double>
MixWorkload::tenantQosWeights() const
{
    std::vector<double> weights;
    weights.reserve(tenants_.size());
    for (const MixTenant &tenant : tenants_)
        weights.push_back(tenant.qosWeight);
    return weights;
}

} // namespace skybyte
