/**
 * @file
 * Multi-workload co-location: the `mix:` combinator workload.
 *
 * A MixWorkload owns one child workload per tenant and presents them as
 * a single Workload to the System, so heterogeneous tenants share one
 * simulated machine (cores, caches, CXL link, SSD) and contend for the
 * write log, PLB and migration budget — the colocation scenarios the
 * single-workload front end cannot express.
 *
 * Thread assignment: the mix's total thread count is the caller's
 * WorkloadParams::numThreads when any tenant leaves its thread count
 * implicit, or the sum of the explicit `threads=` counts when every
 * tenant pins one. Explicit tenants get exactly their count; the
 * remaining threads are spread round-robin over the implicit tenants
 * (declaration order, first `R mod k` tenants take the extra thread).
 * Global thread ids are then dealt round-robin across the tenants, so
 * tenant lanes interleave on the cores the way co-scheduled processes
 * would. Every tenant must end up with at least one thread; explicit
 * over-subscription is an error.
 *
 * Footprint namespacing: tenant k's shared-data region is placed at a
 * page-aligned offset after tenants 0..k-1, so tenants never alias
 * device pages; the mix footprint is the sum of the (page-rounded)
 * child footprints. Private per-thread regions are rebased from the
 * child's local thread id to the global one. refill(tid, batch)
 * forwards to the owning child and rewrites addresses in place — the
 * per-thread record stream is the child's stream, relocated, so it
 * stays independent of refill granularity.
 *
 * A single-tenant mix is a pass-through (zero offsets, identity thread
 * map): `mix:a=zipf` produces bit-identical simulation results to
 * plain `zipf`, which tests/test_mix_workload.cc pins. Per-tenant stat
 * buckets (SimResult::tenants) are populated only for mixes with two
 * or more tenants — a degenerate mix reports like the plain workload.
 */

#ifndef SKYBYTE_TRACE_MIX_WORKLOAD_H
#define SKYBYTE_TRACE_MIX_WORKLOAD_H

#include <memory>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace skybyte {

/** One tenant of a constructed mix (reporting/classification view). */
struct MixTenant
{
    /** Tenant label from the spec (the report bucket name). */
    std::string name;
    /** Child spec text (canonical form). */
    std::string specText;
    /** Threads assigned to this tenant. */
    int threads = 0;
    /** True when the child spec pinned threads= explicitly. */
    bool explicitThreads = false;
    /** Child footprint rounded up to whole pages (region size). */
    std::uint64_t footprintBytes = 0;
    /** Offset of this tenant's region within the mix device space. */
    Addr deviceBase = 0;
    /**
     * Relative QoS weight (`qos=` spec key, default 1.0). Weights only
     * matter when a QosConfig control is enabled; each control gives
     * the tenant a weight / sum-of-weights share of its resource.
     */
    double qosWeight = 1.0;
};

/** @name Thread-assignment policy (exposed for property tests).
 * @{ */

/**
 * Resolve per-tenant thread counts. @p requested holds each tenant's
 * explicit `threads=` count, or -1 for implicit tenants, in
 * declaration order. Implicit tenants share `total_threads` minus the
 * explicit sum round-robin (first `R mod k` get one extra); when every
 * tenant is explicit the total is their sum and @p total_threads is
 * ignored.
 * @throws std::invalid_argument when the explicit counts over-subscribe
 *         @p total_threads or any tenant would get zero threads.
 */
std::vector<int> mixTenantThreadCounts(int total_threads,
                                       const std::vector<int> &requested);

/**
 * Deal global thread ids round-robin across tenants with the given
 * counts: walk tid 0..sum-1 cycling over tenants in declaration order,
 * skipping tenants whose quota is spent. Returns tid -> tenant index.
 */
std::vector<int> mixThreadAssignment(const std::vector<int> &counts);

/**
 * Smallest total thread count @p spec can be built with (the explicit
 * `threads=` sum plus one per implicit tenant). The config-file front
 * end's parse-time typecheck constructs a throwaway instance at this
 * size, so a valid mix never trips the over-subscription guard there.
 * @throws std::invalid_argument on a malformed mix spec.
 */
int mixMinimumThreads(const WorkloadSpec &spec);
/** @} */

/**
 * One human-readable layout row for a tenant (threads, footprint,
 * device window, child spec), newline-terminated — shared by the trace
 * tools that expand mixes.
 */
std::string describeMixTenant(const MixTenant &tenant);

/**
 * The `mix:` combinator: child workloads behind one Workload facade.
 * Construct through makeWorkload("mix:...", params) in normal use.
 */
class MixWorkload : public Workload
{
  public:
    /**
     * Build children from @p spec (a parsed mix spec). Child
     * WorkloadParams inherit @p params with the tenant's thread count
     * and a per-tenant-decorrelated seed (tenant 0 keeps the caller's
     * seed, so a single-tenant mix reproduces the plain workload).
     * @throws std::invalid_argument on bad tenant specs or thread
     *         assignment errors.
     */
    MixWorkload(const WorkloadSpec &spec, const WorkloadParams &params);

    std::string name() const override { return "mix"; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override
    {
        return static_cast<int>(threadTenant_.size());
    }
    std::uint32_t refill(int tid, TraceBatch &batch) override;
    std::uint64_t instructionsEmitted(int tid) const override;

    /**
     * True iff every child is. The mix's own routing tables
     * (threadTenant_/threadLocal_, tenant bases) are const after
     * construction; refill() only forwards per-tid and rewrites
     * addresses in the caller's batch.
     */
    bool concurrentRefillSafe() const override;

    /** Tenants in declaration order. */
    const std::vector<MixTenant> &tenants() const { return tenants_; }

    /** Tenant owning global thread @p tid. */
    int tenantOfThread(int tid) const
    {
        return threadTenant_[static_cast<std::size_t>(tid)];
    }

    /** Tenant owning device-space offset @p dev (< footprintBytes()). */
    int tenantOfDeviceOffset(Addr dev) const;

    /**
     * Ascending first-byte offsets of each tenant's device region
     * (starts[0] == 0) — the bounds the SSD controller's per-tenant
     * counters classify by.
     */
    std::vector<Addr> tenantDeviceStarts() const;

    /** Per-tenant QoS weights in declaration order (default 1.0). */
    std::vector<double> tenantQosWeights() const;

  private:
    std::vector<std::unique_ptr<Workload>> children_;
    std::vector<MixTenant> tenants_;
    std::vector<int> threadTenant_; ///< global tid -> tenant index
    std::vector<int> threadLocal_;  ///< global tid -> child-local tid
    std::uint64_t footprint_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_TRACE_MIX_WORKLOAD_H
