/**
 * @file
 * Binary trace file format, mirroring the role of the MacSim trace files
 * in the original artifact: one file per thread of fixed-size records,
 * with a small header carrying thread count and footprint. Lets users
 * capture a generated (or custom) trace once and replay it repeatedly.
 */

#ifndef SKYBYTE_TRACE_TRACE_FILE_H
#define SKYBYTE_TRACE_TRACE_FILE_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/workload.h"

namespace skybyte {

/** On-disk record layout (packed, little-endian). */
struct TraceFileRecord
{
    std::uint64_t vaddr;
    std::uint32_t computeOps;
    std::uint32_t isWrite; // 0/1; padded to keep the record 16 bytes
};
static_assert(sizeof(TraceFileRecord) == 16);

/**
 * Write a whole workload to @p path (single file, per-thread sections).
 * @return number of records written.
 * @throws std::runtime_error on I/O failure.
 */
std::uint64_t writeTraceFile(const std::string &path, Workload &workload);

/**
 * A Workload backed by a trace file previously produced by
 * writeTraceFile(). The raw per-thread record sections are loaded
 * eagerly (intended for modest test/example traces) and decoded into
 * TraceRecords a batch at a time in refill(), so the replay front end
 * pays the same once-per-batch cost as the synthetic generators.
 */
class TraceFileWorkload : public Workload
{
  public:
    /** @throws std::runtime_error on parse/I/O failure. */
    explicit TraceFileWorkload(const std::string &path);

    std::string name() const override { return name_; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override
    {
        return static_cast<int>(perThread_.size());
    }
    std::uint32_t refill(int tid, TraceBatch &batch) override;
    std::uint64_t instructionsEmitted(int tid) const override
    {
        return emitted_[tid];
    }

    /** Per-tid cursor/emitted vectors; sections are read-only. */
    bool concurrentRefillSafe() const override { return true; }

  private:
    std::string name_;
    std::uint64_t footprint_ = 0;
    std::vector<std::vector<TraceFileRecord>> perThread_;
    std::vector<std::uint64_t> cursor_;
    std::vector<std::uint64_t> emitted_;
};

} // namespace skybyte

#endif // SKYBYTE_TRACE_TRACE_FILE_H
