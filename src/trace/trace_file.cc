#include "trace/trace_file.h"

#include <cstring>
#include <stdexcept>

namespace skybyte {

namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'T', 'R', 'C', '0', '1'};

struct FileHeader
{
    char magic[8];
    std::uint32_t numThreads;
    std::uint32_t nameLen;
    std::uint64_t footprintBytes;
};
static_assert(sizeof(FileHeader) == 24);

} // namespace

std::uint64_t
writeTraceFile(const std::string &path, Workload &workload)
{
    // skybyte-lint: allow(raw-file-write) streamed multi-GB trace artifact, regenerable from its spec; buffering it for temp+rename is infeasible
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot open trace file: " + path);

    const std::string name = workload.name();
    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.numThreads = static_cast<std::uint32_t>(workload.numThreads());
    hdr.nameLen = static_cast<std::uint32_t>(name.size());
    hdr.footprintBytes = workload.footprintBytes();
    out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));

    std::uint64_t total = 0;
    for (int t = 0; t < workload.numThreads(); ++t) {
        std::vector<TraceFileRecord> records;
        TraceCursor cursor(workload, t);
        TraceRecord rec;
        while (cursor.next(rec)) {
            records.push_back({rec.vaddr, rec.computeOps,
                               rec.isWrite ? 1u : 0u});
        }
        const auto n = static_cast<std::uint64_t>(records.size());
        out.write(reinterpret_cast<const char *>(&n), sizeof(n));
        out.write(reinterpret_cast<const char *>(records.data()),
                  static_cast<std::streamsize>(records.size()
                                               * sizeof(TraceFileRecord)));
        total += n;
    }
    if (!out)
        throw std::runtime_error("short write to trace file: " + path);
    return total;
}

TraceFileWorkload::TraceFileWorkload(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace file: " + path);

    // All length fields below come from the file; bound every
    // allocation by what the file could actually contain so a corrupt
    // header cannot demand terabytes.
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0, std::ios::beg);

    FileHeader hdr{};
    in.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!in || std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("bad trace file header: " + path);
    if (hdr.nameLen > file_size - sizeof(hdr))
        throw std::runtime_error("bad trace file header: " + path);
    // Each thread section carries at least its 8-byte record count.
    if (hdr.numThreads > (file_size - sizeof(hdr) - hdr.nameLen) / 8)
        throw std::runtime_error("bad trace file header: " + path);

    name_.resize(hdr.nameLen);
    in.read(name_.data(), hdr.nameLen);
    footprint_ = hdr.footprintBytes;

    perThread_.resize(hdr.numThreads);
    for (auto &records : perThread_) {
        std::uint64_t n = 0;
        in.read(reinterpret_cast<char *>(&n), sizeof(n));
        if (!in || n > file_size / sizeof(TraceFileRecord))
            throw std::runtime_error("truncated trace file: " + path);
        records.resize(n);
        in.read(reinterpret_cast<char *>(records.data()),
                static_cast<std::streamsize>(n * sizeof(TraceFileRecord)));
        if (!in)
            throw std::runtime_error("truncated trace file: " + path);
    }
    cursor_.assign(hdr.numThreads, 0);
    emitted_.assign(hdr.numThreads, 0);
}

std::uint32_t
TraceFileWorkload::refill(int tid, TraceBatch &batch)
{
    const auto &records = perThread_[tid];
    std::uint64_t &cur = cursor_[tid];
    std::uint32_t n = 0;
    while (n < TraceBatch::kCapacity && cur < records.size()) {
        const TraceFileRecord &r = records[cur++];
        batch.records[n++] = {r.computeOps, r.isWrite != 0, r.vaddr};
        emitted_[tid] += r.computeOps + 1;
    }
    batch.count = n;
    batch.cursor = 0;
    return n;
}

} // namespace skybyte
