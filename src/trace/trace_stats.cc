#include "trace/trace_stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
// skybyte-lint: allow(unordered-container) offline trace analysis; every iteration below is an order-independent reduction
#include <unordered_map>

namespace skybyte {

namespace {

/** Per-page line coverage and access counting. */
struct PageTouch
{
    std::uint64_t touched = 0; ///< line bitmap, any access
    std::uint64_t written = 0; ///< line bitmap, writes
    std::uint64_t accesses = 0;
};

std::array<double, 10>
// skybyte-lint: allow(unordered-container) bucket counts are exact integer adds in double: any iteration order sums identically
coverageCdf(const std::unordered_map<std::uint64_t, PageTouch> &pages,
            std::uint64_t PageTouch::*mask)
{
    std::array<double, 10> cdf{};
    if (pages.empty())
        return cdf;
    for (const auto &[lpn, touch] : pages) {
        const int lines = std::popcount(touch.*mask);
        const double frac =
            static_cast<double>(lines) / kLinesPerPage;
        // Bucket i accumulates pages with frac <= (i+1)/10.
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            if (frac <= static_cast<double>(i + 1) / 10.0)
                cdf[i] += 1.0;
        }
    }
    for (double &bucket : cdf)
        bucket /= static_cast<double>(pages.size());
    return cdf;
}

} // namespace

TraceSummary
summarizeWorkload(Workload &workload, std::uint64_t max_records)
{
    TraceSummary summary;
    // skybyte-lint: allow(unordered-container) offline analysis scratch; consumed via order-independent sums and a value-sorted vector
    std::unordered_map<std::uint64_t, PageTouch> pages;
    double touched_sum = 0;
    double written_sum = 0;

    // One batch cursor per thread; the round-robin interleave mirrors
    // how the simulator overlaps threads (and keeps the max_records
    // cutoff sampling every thread evenly).
    std::vector<TraceCursor> cursors;
    cursors.reserve(static_cast<std::size_t>(workload.numThreads()));
    for (int t = 0; t < workload.numThreads(); ++t)
        cursors.emplace_back(workload, t);

    TraceRecord rec;
    bool progressed = true;
    while (progressed && summary.records < max_records) {
        progressed = false;
        for (int tid = 0; tid < workload.numThreads()
                          && summary.records < max_records;
             ++tid) {
            if (!cursors[tid].next(rec))
                continue;
            progressed = true;
            summary.records++;
            summary.instructions += rec.computeOps + 1;
            (rec.isWrite ? summary.memWrites : summary.memReads)++;
            const bool device =
                rec.vaddr >= Workload::kDataBase
                && rec.vaddr < Workload::kDataBase
                                   + workload.footprintBytes();
            if (!device)
                continue;
            summary.deviceAccesses++;
            const Addr dev = rec.vaddr - Workload::kDataBase;
            PageTouch &touch = pages[pageNumber(dev)];
            touch.accesses++;
            const std::uint64_t bit = 1ULL << lineInPage(dev);
            touch.touched |= bit;
            if (rec.isWrite)
                touch.written |= bit;
        }
    }

    summary.uniquePages = pages.size();
    if (!pages.empty()) {
        std::vector<std::uint64_t> access_counts;
        access_counts.reserve(pages.size());
        std::uint64_t total_accesses = 0;
        for (const auto &[lpn, touch] : pages) {
            touched_sum += std::popcount(touch.touched);
            written_sum += std::popcount(touch.written);
            access_counts.push_back(touch.accesses);
            total_accesses += touch.accesses;
        }
        const auto denom =
            static_cast<double>(pages.size()) * kLinesPerPage;
        summary.meanLinesTouched = touched_sum / denom;
        summary.meanLinesWritten = written_sum / denom;
        summary.touchedCdf = coverageCdf(pages, &PageTouch::touched);
        summary.writtenCdf = coverageCdf(pages, &PageTouch::written);

        std::sort(access_counts.begin(), access_counts.end(),
                  std::greater<>());
        const std::size_t top =
            std::max<std::size_t>(1, access_counts.size() / 10);
        std::uint64_t top_accesses = 0;
        for (std::size_t i = 0; i < top; ++i)
            top_accesses += access_counts[i];
        summary.hotTop10PctShare =
            total_accesses == 0
                ? 0.0
                : static_cast<double>(top_accesses)
                      / static_cast<double>(total_accesses);
    }
    return summary;
}

std::string
formatSummary(const TraceSummary &summary, const std::string &name)
{
    char buf[512];
    std::string out;
    std::snprintf(buf, sizeof(buf), "trace %s\n", name.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  records            %llu (%.1f%% writes)\n",
                  static_cast<unsigned long long>(summary.records),
                  summary.writeRatio() * 100.0);
    out += buf;
    std::snprintf(buf, sizeof(buf), "  instructions       %llu\n",
                  static_cast<unsigned long long>(summary.instructions));
    out += buf;
    std::snprintf(
        buf, sizeof(buf), "  device accesses    %llu over %llu pages\n",
        static_cast<unsigned long long>(summary.deviceAccesses),
        static_cast<unsigned long long>(summary.uniquePages));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  lines touched/page %.1f%% (written %.1f%%)\n",
                  summary.meanLinesTouched * 100.0,
                  summary.meanLinesWritten * 100.0);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  hottest 10%% pages  %.1f%% of accesses\n",
                  summary.hotTop10PctShare * 100.0);
    out += buf;
    out += "  touched-lines CDF  ";
    for (std::size_t i = 0; i < summary.touchedCdf.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s<=%d%%:%.2f",
                      i == 0 ? "" : " ", static_cast<int>((i + 1) * 10),
                      summary.touchedCdf[i]);
        out += buf;
    }
    out += "\n  written-lines CDF  ";
    for (std::size_t i = 0; i < summary.writtenCdf.size(); ++i) {
        std::snprintf(buf, sizeof(buf), "%s<=%d%%:%.2f",
                      i == 0 ? "" : " ", static_cast<int>((i + 1) * 10),
                      summary.writtenCdf[i]);
        out += buf;
    }
    out += "\n";
    return out;
}

} // namespace skybyte
