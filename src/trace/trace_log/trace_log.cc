#include "trace/trace_log/trace_log.h"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace skybyte {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'R', 'C', 'L', 'O', 'G', '1'};
constexpr char kEndMagic[8] = {'S', 'T', 'R', 'C', 'E', 'N', 'D', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxThreads = 65536;
constexpr std::uint32_t kMaxBlockRecords = 1u << 20;
constexpr std::uint32_t kMaxNameLen = 1u << 20;

constexpr std::uint32_t kEncodingRaw = 0;
constexpr std::uint32_t kEncodingSlz = 1;

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t numThreads;
    std::uint64_t footprintBytes;
    std::uint32_t nameLen;
    std::uint32_t blockRecords;
};
static_assert(sizeof(FileHeader) == 32);

struct BlockHeader
{
    std::uint32_t tid;
    std::uint32_t recordCount;
    std::uint32_t rawSize;    ///< decompressed payload bytes
    std::uint32_t storedSize; ///< payload bytes as stored on disk
    std::uint32_t encoding;   ///< kEncodingRaw or kEncodingSlz
    std::uint32_t crc;        ///< CRC-32 of the stored payload
};
static_assert(sizeof(BlockHeader) == 24);

struct Trailer
{
    std::uint64_t indexOffset;
    std::uint64_t indexSize;
    std::uint32_t indexCrc;
    std::uint32_t reserved;
    char magic[8];
};
static_assert(sizeof(Trailer) == 32);

/** Worst-case raw (columnar, pre-compression) payload size: 10-byte
 *  vaddr varint + 5-byte computeOps varint per record, plus the
 *  isWrite bitmap. Anything larger in a block header is corrupt. */
std::uint64_t
maxRawSize(std::uint64_t record_count)
{
    return record_count * 15 + (record_count + 7) / 8;
}

/** Pack one block's records into the columnar raw payload. */
std::vector<std::uint8_t>
encodePayload(const TraceRecord *records, std::size_t count)
{
    std::vector<std::uint8_t> raw;
    raw.reserve(count * 4 + count / 8 + 16);
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t v = records[i].vaddr;
        putVarint(raw, zigzagEncode(static_cast<std::int64_t>(v - prev)));
        prev = v;
    }
    for (std::size_t i = 0; i < count; ++i)
        putVarint(raw, records[i].computeOps);
    std::uint8_t bits = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (records[i].isWrite)
            bits |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7 || i + 1 == count) {
            raw.push_back(bits);
            bits = 0;
        }
    }
    return raw;
}

/** Inverse of encodePayload(); fully validates the byte layout. */
std::vector<TraceRecord>
decodePayload(const std::uint8_t *raw, std::size_t raw_size,
              std::size_t count)
{
    std::vector<TraceRecord> records(count);
    std::size_t pos = 0;
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::int64_t delta = zigzagDecode(getVarint(raw, raw_size,
                                                          pos));
        prev += static_cast<std::uint64_t>(delta);
        records[i].vaddr = prev;
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t ops = getVarint(raw, raw_size, pos);
        if (ops > 0xffffffffu)
            throw TraceLogError("computeOps overflows 32 bits");
        records[i].computeOps = static_cast<std::uint32_t>(ops);
    }
    const std::size_t bitmap_len = (count + 7) / 8;
    if (raw_size - pos != bitmap_len)
        throw TraceLogError("block payload size mismatch");
    for (std::size_t i = 0; i < count; ++i)
        records[i].isWrite = (raw[pos + i / 8] >> (i % 8)) & 1;
    return records;
}

std::atomic<std::uint64_t> g_liveBlocks{0};
std::atomic<std::uint64_t> g_peakBlocks{0};

} // namespace

std::uint64_t
liveDecodedBlocks()
{
    return g_liveBlocks.load(std::memory_order_relaxed);
}

std::uint64_t
peakLiveDecodedBlocks()
{
    return g_peakBlocks.load(std::memory_order_relaxed);
}

void
resetPeakLiveDecodedBlocks()
{
    g_peakBlocks.store(g_liveBlocks.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

namespace detail {

BlockGauge::BlockGauge()
{
    const std::uint64_t live =
        g_liveBlocks.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = g_peakBlocks.load(std::memory_order_relaxed);
    while (live > peak
           && !g_peakBlocks.compare_exchange_weak(
               peak, live, std::memory_order_relaxed)) {
    }
}

BlockGauge &
BlockGauge::operator=(BlockGauge &&other) noexcept
{
    if (this != &other) {
        release();
        armed_ = other.armed_;
        other.armed_ = false;
    }
    return *this;
}

BlockGauge::~BlockGauge() { release(); }

void
BlockGauge::release() noexcept
{
    if (armed_) {
        g_liveBlocks.fetch_sub(1, std::memory_order_relaxed);
        armed_ = false;
    }
}

} // namespace detail

// --- Writer -----------------------------------------------------------

TraceLogWriter::TraceLogWriter(const std::string &path,
                               const std::string &name,
                               std::uint64_t footprint_bytes,
                               int num_threads,
                               std::uint32_t block_records)
    : out_(path), blockRecords_(block_records)
{
    if (num_threads < 1
        || static_cast<std::uint32_t>(num_threads) > kMaxThreads)
        throw std::invalid_argument("trace log thread count out of "
                                    "range");
    if (block_records < 1 || block_records > kMaxBlockRecords)
        throw std::invalid_argument("trace log block size out of range");
    if (name.size() > kMaxNameLen)
        throw std::invalid_argument("trace log workload name too long");

    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.version = kVersion;
    hdr.numThreads = static_cast<std::uint32_t>(num_threads);
    hdr.footprintBytes = footprint_bytes;
    hdr.nameLen = static_cast<std::uint32_t>(name.size());
    hdr.blockRecords = block_records;
    out_.write(&hdr, sizeof(hdr));
    out_.write(name.data(), name.size());

    threads_.resize(static_cast<std::size_t>(num_threads));
    for (auto &t : threads_)
        t.pending.reserve(block_records);
}

void
TraceLogWriter::append(int tid, const TraceRecord &rec)
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
        throw std::invalid_argument("trace log append: bad tid");
    PerThread &t = threads_[static_cast<std::size_t>(tid)];
    t.pending.push_back(rec);
    if (t.pending.size() == blockRecords_)
        flushBlock(tid);
}

void
TraceLogWriter::flushBlock(int tid)
{
    PerThread &t = threads_[static_cast<std::size_t>(tid)];
    const std::vector<std::uint8_t> raw =
        encodePayload(t.pending.data(), t.pending.size());
    const std::vector<std::uint8_t> packed =
        slzCompress(raw.data(), raw.size());
    const bool use_slz = packed.size() < raw.size();
    const std::vector<std::uint8_t> &stored = use_slz ? packed : raw;

    BlockHeader hdr{};
    hdr.tid = static_cast<std::uint32_t>(tid);
    hdr.recordCount = static_cast<std::uint32_t>(t.pending.size());
    hdr.rawSize = static_cast<std::uint32_t>(raw.size());
    hdr.storedSize = static_cast<std::uint32_t>(stored.size());
    hdr.encoding = use_slz ? kEncodingSlz : kEncodingRaw;
    hdr.crc = crc32(stored.data(), stored.size());

    t.blockOffsets.push_back(out_.bytesWritten());
    t.blockCounts.push_back(hdr.recordCount);
    t.totalRecords += hdr.recordCount;
    out_.write(&hdr, sizeof(hdr));
    out_.write(stored.data(), stored.size());
    t.pending.clear();
}

std::uint64_t
TraceLogWriter::finish()
{
    if (finished_)
        throw std::runtime_error("trace log writer already finished");
    for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
        if (!threads_[tid].pending.empty())
            flushBlock(static_cast<int>(tid));
    }

    std::vector<std::uint8_t> index;
    std::uint64_t total = 0;
    for (const PerThread &t : threads_) {
        putVarint(index, t.blockOffsets.size());
        putVarint(index, t.totalRecords);
        std::uint64_t prev = 0;
        for (std::size_t b = 0; b < t.blockOffsets.size(); ++b) {
            // Offsets are strictly increasing per thread; deltas keep
            // the index tiny even for million-block captures.
            putVarint(index, t.blockOffsets[b] - prev);
            putVarint(index, t.blockCounts[b]);
            prev = t.blockOffsets[b];
        }
        total += t.totalRecords;
    }

    Trailer trailer{};
    trailer.indexOffset = out_.bytesWritten();
    trailer.indexSize = index.size();
    trailer.indexCrc = crc32(index.data(), index.size());
    std::memcpy(trailer.magic, kEndMagic, sizeof(kEndMagic));
    out_.write(index.data(), index.size());
    out_.write(&trailer, sizeof(trailer));
    out_.commit();
    finished_ = true;
    return total;
}

std::uint64_t
writeTraceLog(const std::string &path, Workload &workload,
              std::uint32_t block_records)
{
    TraceLogWriter writer(path, workload.name(),
                          workload.footprintBytes(),
                          workload.numThreads(), block_records);
    for (int tid = 0; tid < workload.numThreads(); ++tid) {
        TraceCursor cursor(workload, tid);
        TraceRecord rec;
        while (cursor.next(rec))
            writer.append(tid, rec);
    }
    return writer.finish();
}

// --- Reader -----------------------------------------------------------

TraceLogReader::TraceLogReader(const std::string &path)
    : pathLabel_(path)
{
    file_.open(path, std::ios::binary);
    if (!file_)
        throw std::runtime_error("cannot open trace log: " + path);
    file_.seekg(0, std::ios::end);
    fileSize_ = static_cast<std::uint64_t>(file_.tellg());
    parse();
}

TraceLogReader::TraceLogReader(std::vector<std::uint8_t> bytes)
    : buf_(std::move(bytes)), fromBuffer_(true),
      pathLabel_("<memory>"), fileSize_(buf_.size())
{
    parse();
}

void
TraceLogReader::readAt(std::uint64_t offset, void *dest,
                       std::size_t size)
{
    if (offset > fileSize_ || size > fileSize_ - offset)
        throw TraceLogError("read past end of " + pathLabel_);
    if (fromBuffer_) {
        std::memcpy(dest, buf_.data() + offset, size);
        return;
    }
    file_.seekg(static_cast<std::streamoff>(offset));
    file_.read(static_cast<char *>(dest),
               static_cast<std::streamsize>(size));
    if (!file_ || file_.gcount() != static_cast<std::streamsize>(size))
        throw TraceLogError("short read from " + pathLabel_);
}

void
TraceLogReader::parse()
{
    if (fileSize_ < sizeof(FileHeader) + sizeof(Trailer))
        throw TraceLogError("trace log too small: " + pathLabel_);

    FileHeader hdr{};
    readAt(0, &hdr, sizeof(hdr));
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        throw TraceLogError("bad trace log magic: " + pathLabel_);
    if (hdr.version != kVersion)
        throw TraceLogError("unsupported trace log version");
    if (hdr.numThreads < 1 || hdr.numThreads > kMaxThreads)
        throw TraceLogError("trace log thread count out of range");
    if (hdr.blockRecords < 1 || hdr.blockRecords > kMaxBlockRecords)
        throw TraceLogError("trace log block size out of range");
    if (hdr.nameLen > kMaxNameLen
        || hdr.nameLen
               > fileSize_ - sizeof(FileHeader) - sizeof(Trailer))
        throw TraceLogError("trace log name overruns file");
    footprint_ = hdr.footprintBytes;
    blockRecords_ = hdr.blockRecords;
    name_.resize(hdr.nameLen);
    readAt(sizeof(FileHeader), name_.data(), hdr.nameLen);
    const std::uint64_t data_begin = sizeof(FileHeader) + hdr.nameLen;

    Trailer trailer{};
    readAt(fileSize_ - sizeof(Trailer), &trailer, sizeof(trailer));
    if (std::memcmp(trailer.magic, kEndMagic, sizeof(kEndMagic)) != 0)
        throw TraceLogError("bad trace log trailer: " + pathLabel_);
    // Reserved must be zero so every trailer byte is load-bearing —
    // the corruption tests flip arbitrary bytes and expect rejection.
    if (trailer.reserved != 0)
        throw TraceLogError("trace log trailer reserved bits set");
    if (trailer.indexOffset < data_begin
        || trailer.indexOffset > fileSize_ - sizeof(Trailer)
        || trailer.indexSize
               > fileSize_ - sizeof(Trailer) - trailer.indexOffset)
        throw TraceLogError("trace log index out of bounds");
    dataEnd_ = trailer.indexOffset;

    std::vector<std::uint8_t> index(trailer.indexSize);
    readAt(trailer.indexOffset, index.data(), index.size());
    if (crc32(index.data(), index.size()) != trailer.indexCrc)
        throw TraceLogError("trace log index CRC mismatch");

    threads_.resize(hdr.numThreads);
    std::size_t pos = 0;
    for (PerThread &t : threads_) {
        const std::uint64_t blocks =
            getVarint(index.data(), index.size(), pos);
        // Every block costs at least its header, so the block count is
        // bounded by the data region size however corrupt the index.
        if (blocks > (dataEnd_ - data_begin) / sizeof(BlockHeader) + 1)
            throw TraceLogError("trace log block count out of range");
        t.totalRecords = getVarint(index.data(), index.size(), pos);
        t.blockOffsets.reserve(blocks);
        t.blockCounts.reserve(blocks);
        std::uint64_t offset = 0;
        std::uint64_t records = 0;
        for (std::uint64_t b = 0; b < blocks; ++b) {
            offset += getVarint(index.data(), index.size(), pos);
            const std::uint64_t count =
                getVarint(index.data(), index.size(), pos);
            if (offset < data_begin
                || offset > dataEnd_ - sizeof(BlockHeader))
                throw TraceLogError("trace log block offset out of "
                                    "bounds");
            if (count < 1 || count > blockRecords_)
                throw TraceLogError("trace log block record count out "
                                    "of range");
            // O(1) seek depends on every non-final block being full.
            if (b + 1 < blocks && count != blockRecords_)
                throw TraceLogError("trace log interior block not "
                                    "full");
            t.blockOffsets.push_back(offset);
            t.blockCounts.push_back(
                static_cast<std::uint32_t>(count));
            records += count;
        }
        if (records != t.totalRecords)
            throw TraceLogError("trace log index record total "
                                "mismatch");
        t.curIdx = 0; // cursor starts at the first block
    }
    if (pos != index.size())
        throw TraceLogError("trace log index has trailing bytes");
}

DecodedBlock
TraceLogReader::readBlock(int tid, std::uint64_t block_idx)
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
        throw TraceLogError("trace log readBlock: bad tid");
    const PerThread &t = threads_[static_cast<std::size_t>(tid)];
    if (block_idx >= t.blockOffsets.size())
        throw TraceLogError("trace log readBlock: bad block index");
    const std::uint64_t offset = t.blockOffsets[block_idx];

    BlockHeader hdr{};
    readAt(offset, &hdr, sizeof(hdr));
    if (hdr.tid != static_cast<std::uint32_t>(tid)
        || hdr.recordCount != t.blockCounts[block_idx])
        throw TraceLogError("trace log block disagrees with index");
    if (hdr.rawSize > maxRawSize(hdr.recordCount))
        throw TraceLogError("trace log block raw size out of range");
    if (hdr.storedSize > dataEnd_ - offset - sizeof(BlockHeader))
        throw TraceLogError("trace log block overruns data region");
    if (hdr.encoding == kEncodingRaw) {
        if (hdr.storedSize != hdr.rawSize)
            throw TraceLogError("trace log raw block size mismatch");
    } else if (hdr.encoding != kEncodingSlz) {
        throw TraceLogError("trace log block has unknown encoding");
    }

    std::vector<std::uint8_t> stored(hdr.storedSize);
    readAt(offset + sizeof(BlockHeader), stored.data(), stored.size());
    if (crc32(stored.data(), stored.size()) != hdr.crc)
        throw TraceLogError("trace log block CRC mismatch");

    DecodedBlock block;
    block.tid = tid;
    block.firstRecord = block_idx * blockRecords_;
    block.rawBytes = hdr.rawSize;
    block.storedBytes = hdr.storedSize;
    block.compressed = hdr.encoding == kEncodingSlz;
    if (block.compressed) {
        const std::vector<std::uint8_t> raw =
            slzDecompress(stored.data(), stored.size(), hdr.rawSize);
        block.records = decodePayload(raw.data(), raw.size(),
                                      hdr.recordCount);
    } else {
        block.records = decodePayload(stored.data(), stored.size(),
                                      hdr.recordCount);
    }
    ++blocksDecoded_;
    return block;
}

void
TraceLogReader::seek(int tid, std::uint64_t record_index)
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
        throw TraceLogError("trace log seek: bad tid");
    PerThread &t = threads_[static_cast<std::size_t>(tid)];
    if (record_index >= t.totalRecords) {
        t.cur.reset();
        t.curIdx = t.blockOffsets.size();
        t.pos = 0;
        return;
    }
    const std::uint64_t block_idx = record_index / blockRecords_;
    t.cur = std::make_unique<DecodedBlock>(readBlock(tid, block_idx));
    t.curIdx = block_idx;
    t.pos = static_cast<std::size_t>(record_index
                                     - t.cur->firstRecord);
}

bool
TraceLogReader::next(int tid, TraceRecord &rec)
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
        throw TraceLogError("trace log next: bad tid");
    PerThread &t = threads_[static_cast<std::size_t>(tid)];
    if (t.cur == nullptr || t.pos >= t.cur->records.size()) {
        const std::uint64_t next_idx =
            t.cur == nullptr ? t.curIdx : t.curIdx + 1;
        if (next_idx >= t.blockOffsets.size()) {
            t.cur.reset();
            t.curIdx = t.blockOffsets.size();
            return false;
        }
        t.cur = std::make_unique<DecodedBlock>(readBlock(tid,
                                                         next_idx));
        t.curIdx = next_idx;
        t.pos = 0;
    }
    rec = t.cur->records[t.pos++];
    return true;
}

bool
isTraceLogFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic)
           && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

} // namespace skybyte
