/**
 * @file
 * Streaming replay of STRC captures: a producer-consumer Workload
 * whose single background thread owns the TraceLogReader, decodes
 * blocks ahead of the simulation, and parks them in bounded
 * per-thread ring buffers. refill() only moves records out of an
 * already decoded block — it never touches the filesystem, so the
 * simulated cores never stall on I/O or decompression, and peak
 * memory is O(threads × ring depth) blocks regardless of trace size.
 *
 * The record stream per thread is byte-identical to what
 * TraceFileWorkload yields for a flat capture of the same workload —
 * the fingerprint tests in tests/test_trace_log.cc pin that, which is
 * what makes the two encodings interchangeable in sweep specs.
 *
 * makeTraceReplayWorkload() sniffs the file magic and returns the
 * matching replay workload (STRC → TraceLogWorkload, flat SKYTRC01 →
 * TraceFileWorkload), so the `tracelog:path=...` spec replays either
 * encoding — CI uses that to diff sweep reports across formats
 * without the spec text (and thus the point labels) changing.
 */

#ifndef SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_WORKLOAD_H
#define SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_WORKLOAD_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace_log/trace_log.h"
#include "trace/workload.h"

namespace skybyte {

/** Producer-consumer replay of one STRC capture. */
class TraceLogWorkload : public Workload
{
  public:
    /** Decoded blocks buffered per thread before the producer waits. */
    static constexpr std::size_t kDefaultRingBlocks = 4;

    /** @throws TraceLogError / std::runtime_error on a bad capture. */
    explicit TraceLogWorkload(const std::string &path,
                              std::size_t ring_blocks =
                                  kDefaultRingBlocks);
    ~TraceLogWorkload() override;

    std::string name() const override { return name_; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override
    {
        return static_cast<int>(rings_.size());
    }
    std::uint32_t refill(int tid, TraceBatch &batch) override;
    std::uint64_t instructionsEmitted(int tid) const override
    {
        return emitted_[static_cast<std::size_t>(tid)];
    }

    /**
     * The producer hand-off is already mutex-guarded per ring, and
     * cur_/pos_/emitted_ are strictly per-tid, so distinct tids may
     * refill from different host threads.
     */
    bool concurrentRefillSafe() const override { return true; }

    /** Blocks the producer has decoded so far (monotonic). */
    std::uint64_t blocksDecoded() const;

  private:
    struct Ring
    {
        std::deque<DecodedBlock> blocks;
        bool done = false; ///< producer has delivered the last block
    };

    void producerLoop();

    std::string name_;
    std::uint64_t footprint_ = 0;
    std::size_t ringBlocks_;

    mutable std::mutex mu_;
    std::condition_variable producerCv_; ///< space freed / stop
    std::condition_variable consumerCv_; ///< block delivered / done
    std::vector<Ring> rings_;
    std::exception_ptr error_;
    bool stop_ = false;
    std::uint64_t blocksDecoded_ = 0;

    /** @name Consumer-side state (one simulated thread each). @{ */
    std::vector<std::unique_ptr<DecodedBlock>> cur_;
    std::vector<std::size_t> pos_;
    std::vector<std::uint64_t> emitted_;
    /** @} */

    std::unique_ptr<TraceLogReader> reader_; ///< producer-owned
    std::thread producer_;
};

/**
 * Open a capture for replay, sniffing the format from the file magic:
 * STRC → streaming TraceLogWorkload, flat SKYTRC01 →
 * TraceFileWorkload.
 * @throws std::runtime_error when the file has neither magic.
 */
std::unique_ptr<Workload>
makeTraceReplayWorkload(const std::string &path);

} // namespace skybyte

#endif // SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_WORKLOAD_H
