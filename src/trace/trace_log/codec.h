/**
 * @file
 * Self-contained byte codecs for the STRC block trace format
 * (trace/trace_log/trace_log.h): LEB128 varints with zigzag for the
 * delta-encoded address column, CRC-32 for per-block and index
 * integrity, and SLZ — a small LZ77 codec in the LZ4 token idiom
 * (literal runs + 16-bit-offset matches over a 64 KB window) with no
 * external dependencies. Compression is deterministic (fixed hash,
 * greedy matcher), so a capture's bytes are a pure function of the
 * record stream; decompression is fully bounds-checked and reports
 * malformed input by throwing, never by over-reading.
 */

#ifndef SKYBYTE_TRACE_TRACE_LOG_CODEC_H
#define SKYBYTE_TRACE_TRACE_LOG_CODEC_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace skybyte {

/** Malformed trace-log bytes (bad magic/CRC/varint/LZ stream/...). */
class TraceLogError : public std::runtime_error
{
  public:
    explicit TraceLogError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** @name LEB128 varints (zigzag for signed deltas). @{ */

/** Append @p value to @p out as a LEB128 varint (1-10 bytes). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t value);

/**
 * Decode the varint at @p pos (advanced past it).
 * @throws TraceLogError on truncation or a >10-byte encoding.
 */
std::uint64_t getVarint(const std::uint8_t *data, std::size_t size,
                        std::size_t &pos);

/** Map a signed delta to an unsigned varint payload (zigzag). */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1)
           ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}
/** @} */

/** CRC-32 (IEEE 802.3 polynomial, as in gzip/zip) of @p size bytes. */
std::uint32_t crc32(const void *data, std::size_t size);

/** @name SLZ: LZ4-style token stream over a 64 KB window.
 *
 * A sequence is `token [lit-ext]* literals [offset matchlen-ext*]`:
 * the token's high nibble is the literal count (15 = extension bytes
 * follow, each 0-255, 255 continues), the low nibble the match length
 * minus 4 (same extension rule); `offset` is 16-bit little-endian,
 * >= 1 and <= bytes decoded so far. The final sequence carries
 * literals only — the stream ends exactly when the declared raw size
 * has been produced. @{ */

/** Compress @p size bytes. Output may exceed the input for
 *  incompressible data; block writers fall back to storing raw. */
std::vector<std::uint8_t> slzCompress(const std::uint8_t *data,
                                      std::size_t size);

/**
 * Decompress exactly @p raw_size bytes.
 * @throws TraceLogError when the stream is truncated, overruns
 *         @p raw_size, or references data before the output start.
 */
std::vector<std::uint8_t> slzDecompress(const std::uint8_t *data,
                                        std::size_t size,
                                        std::size_t raw_size);
/** @} */

} // namespace skybyte

#endif // SKYBYTE_TRACE_TRACE_LOG_CODEC_H
