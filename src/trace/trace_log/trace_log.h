/**
 * @file
 * STRC: the seekable compressed trace-log format, the "real trace
 * pipeline" successor to the flat SKYTRC01 file (trace/trace_file.h).
 * A capture is a fixed header, per-thread record streams chunked into
 * independently decodable blocks, and a footer index that maps
 * (thread, record range) to a file offset so seek(tid, recordIndex)
 * is O(1):
 *
 *   [header | name][block]...[block][index][trailer]
 *
 * Every block but a thread's last holds exactly blockRecords()
 * records, so the block containing record r of thread t is simply
 * r / blockRecords() — no search. Inside a block the three record
 * columns are packed separately (zigzag-varint vaddr deltas, varint
 * computeOps, a packed isWrite bitmap) and the whole payload is
 * SLZ-compressed when that wins, stored raw when it does not; either
 * way a CRC-32 covers the stored bytes. The footer index itself is
 * varint-packed and CRC-protected, and a fixed 32-byte trailer at EOF
 * locates it, so readers never scan the file.
 *
 * TraceLogWriter streams blocks through common/fs AtomicFileWriter
 * (temp + rename), so an interrupted capture never leaves a torn file
 * at the destination path, and buffers only one pending block per
 * thread plus the (tiny) index. TraceLogReader validates header,
 * index and per-block CRCs, decodes one block at a time, and counts
 * live decoded blocks process-wide (liveDecodedBlocks()) so tests can
 * assert replay memory stays O(blocks in flight), not O(trace).
 */

#ifndef SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_H
#define SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fs.h"
#include "trace/trace_log/codec.h"
#include "trace/workload.h"

namespace skybyte {

/** Records per block unless the writer is told otherwise. 4096
 *  records ≈ 64 KB raw payload: large enough to compress well, small
 *  enough that a handful of in-flight blocks is megabytes. */
constexpr std::uint32_t kTraceLogDefaultBlockRecords = 4096;

/** @name Process-wide decoded-block accounting.
 * Every live DecodedBlock increments the gauge; the peak is the
 * bounded-memory witness the replay tests assert on. @{ */
std::uint64_t liveDecodedBlocks();
std::uint64_t peakLiveDecodedBlocks();
/** Reset the peak to the current live count (test isolation). */
void resetPeakLiveDecodedBlocks();
/** @} */

namespace detail {

/** RAII tick on the live-decoded-block gauge (move transfers it). */
class BlockGauge
{
  public:
    BlockGauge();
    BlockGauge(BlockGauge &&other) noexcept : armed_(other.armed_)
    {
        other.armed_ = false;
    }
    BlockGauge &operator=(BlockGauge &&other) noexcept;
    BlockGauge(const BlockGauge &) = delete;
    BlockGauge &operator=(const BlockGauge &) = delete;
    ~BlockGauge();

  private:
    void release() noexcept;

    bool armed_ = true;
};

} // namespace detail

/** One decompressed block: a contiguous slice of a thread's stream. */
struct DecodedBlock
{
    int tid = 0;
    /** Stream index of records[0] within thread @c tid. */
    std::uint64_t firstRecord = 0;
    std::vector<TraceRecord> records;
    /** @name Storage stats (for skybyte_traceinfo). @{ */
    std::uint32_t rawBytes = 0;
    std::uint32_t storedBytes = 0;
    bool compressed = false;
    /** @} */

  private:
    friend class TraceLogReader;
    detail::BlockGauge gauge_;
};

/**
 * Streaming STRC writer. append() buffers at most one block per
 * thread and flushes full blocks straight to the temp file; finish()
 * flushes the tails, writes index + trailer, and commits the rename.
 * A writer destroyed before finish() leaves no file behind.
 */
class TraceLogWriter
{
  public:
    /** @throws std::runtime_error / std::invalid_argument on a bad
     *  destination or out-of-range parameters. */
    TraceLogWriter(const std::string &path, const std::string &name,
                   std::uint64_t footprint_bytes, int num_threads,
                   std::uint32_t block_records =
                       kTraceLogDefaultBlockRecords);

    void append(int tid, const TraceRecord &rec);

    /** @return total records written. @throws on I/O failure. */
    std::uint64_t finish();

  private:
    void flushBlock(int tid);

    struct PerThread
    {
        std::vector<TraceRecord> pending;
        std::vector<std::uint64_t> blockOffsets;
        std::vector<std::uint32_t> blockCounts;
        std::uint64_t totalRecords = 0;
    };

    AtomicFileWriter out_;
    std::uint32_t blockRecords_;
    std::vector<PerThread> threads_;
    bool finished_ = false;
};

/**
 * Capture all of @p workload into an STRC file at @p path.
 * @return number of records written.
 */
std::uint64_t writeTraceLog(const std::string &path, Workload &workload,
                            std::uint32_t block_records =
                                kTraceLogDefaultBlockRecords);

/**
 * STRC reader: header + footer index are parsed (and CRC-checked)
 * up front; record data is fetched one block at a time, either via
 * readBlock() or the per-thread seek()/next() cursor. Not
 * thread-safe — the replay workload gives it to one decode thread.
 */
class TraceLogReader
{
  public:
    /** @throws TraceLogError / std::runtime_error on open or parse
     *  failure — a truncated or corrupt file never yields a reader. */
    explicit TraceLogReader(const std::string &path);

    /** In-memory variant (fuzz and unit tests). */
    explicit TraceLogReader(std::vector<std::uint8_t> bytes);

    const std::string &name() const { return name_; }
    std::uint64_t footprintBytes() const { return footprint_; }
    int numThreads() const
    {
        return static_cast<int>(threads_.size());
    }
    std::uint32_t blockRecords() const { return blockRecords_; }
    std::uint64_t totalRecords(int tid) const
    {
        return threads_[static_cast<std::size_t>(tid)].totalRecords;
    }
    std::uint64_t blockCount(int tid) const
    {
        return threads_[static_cast<std::size_t>(tid)]
            .blockOffsets.size();
    }
    std::uint64_t fileSize() const { return fileSize_; }
    /** Blocks decoded by this reader over its lifetime. */
    std::uint64_t blocksDecoded() const { return blocksDecoded_; }

    /** Fetch and decode one block. @throws TraceLogError on a bad
     *  block header, CRC mismatch, or malformed payload. */
    DecodedBlock readBlock(int tid, std::uint64_t block_idx);

    /**
     * Position thread @p tid's cursor at @p record_index — O(1): the
     * footer index maps straight to the containing block, which is
     * the only one decoded. An index at/past the end of the stream is
     * allowed and makes next() return false.
     */
    void seek(int tid, std::uint64_t record_index);

    /** Pull the next record for @p tid; false at end of stream. */
    bool next(int tid, TraceRecord &rec);

  private:
    struct PerThread
    {
        std::vector<std::uint64_t> blockOffsets;
        std::vector<std::uint32_t> blockCounts;
        std::uint64_t totalRecords = 0;
        /** @name Cursor state. @{ */
        std::unique_ptr<DecodedBlock> cur;
        std::uint64_t curIdx = 0;
        std::size_t pos = 0;
        /** @} */
    };

    void readAt(std::uint64_t offset, void *dest, std::size_t size);
    void parse();

    std::ifstream file_;
    std::vector<std::uint8_t> buf_; ///< in-memory source when non-file
    bool fromBuffer_ = false;
    std::string pathLabel_;
    std::uint64_t fileSize_ = 0;

    std::string name_;
    std::uint64_t footprint_ = 0;
    std::uint32_t blockRecords_ = 0;
    std::uint64_t dataEnd_ = 0; ///< first byte past the last block
    std::vector<PerThread> threads_;
    std::uint64_t blocksDecoded_ = 0;
};

/** True when the file at @p path starts with the STRC magic. */
bool isTraceLogFile(const std::string &path);

} // namespace skybyte

#endif // SKYBYTE_TRACE_TRACE_LOG_TRACE_LOG_H
