#include "trace/trace_log/trace_log_workload.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "trace/trace_file.h"

namespace skybyte {

TraceLogWorkload::TraceLogWorkload(const std::string &path,
                                   std::size_t ring_blocks)
    : ringBlocks_(ring_blocks < 1 ? 1 : ring_blocks)
{
    // Header + index parse happens here on the caller's thread so a
    // corrupt capture fails at construction; only block decode runs
    // behind the producer.
    reader_ = std::make_unique<TraceLogReader>(path);
    name_ = reader_->name();
    footprint_ = reader_->footprintBytes();
    const auto threads =
        static_cast<std::size_t>(reader_->numThreads());
    rings_ = std::vector<Ring>(threads);
    cur_.resize(threads);
    pos_.assign(threads, 0);
    emitted_.assign(threads, 0);
    producer_ = std::thread([this] { producerLoop(); });
}

TraceLogWorkload::~TraceLogWorkload()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    producerCv_.notify_all();
    consumerCv_.notify_all();
    if (producer_.joinable())
        producer_.join();
}

void
TraceLogWorkload::producerLoop()
{
    // Next block index per simulated thread; advance round-robin so no
    // ring starves while another consumer runs ahead.
    std::vector<std::uint64_t> next(rings_.size(), 0);
    try {
        for (;;) {
            int target = -1;
            {
                std::unique_lock<std::mutex> lock(mu_);
                producerCv_.wait(lock, [&] {
                    if (stop_)
                        return true;
                    for (std::size_t t = 0; t < rings_.size(); ++t) {
                        if (!rings_[t].done
                            && rings_[t].blocks.size() < ringBlocks_)
                            return true;
                    }
                    return false;
                });
                if (stop_)
                    return;
                for (std::size_t t = 0; t < rings_.size(); ++t) {
                    if (!rings_[t].done
                        && rings_[t].blocks.size() < ringBlocks_) {
                        target = static_cast<int>(t);
                        break;
                    }
                }
            }
            if (target < 0)
                return; // every stream delivered

            const auto t = static_cast<std::size_t>(target);
            if (next[t] >= reader_->blockCount(target)) {
                std::lock_guard<std::mutex> lock(mu_);
                rings_[t].done = true;
                consumerCv_.notify_all();
                continue;
            }
            // Decode outside the lock: this is the expensive part and
            // the whole point of the producer thread.
            DecodedBlock block = reader_->readBlock(target, next[t]);
            ++next[t];
            {
                std::lock_guard<std::mutex> lock(mu_);
                rings_[t].blocks.push_back(std::move(block));
                ++blocksDecoded_;
                if (next[t] >= reader_->blockCount(target))
                    rings_[t].done = true;
            }
            consumerCv_.notify_all();
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::current_exception();
        for (Ring &r : rings_)
            r.done = true;
        consumerCv_.notify_all();
    }
}

std::uint32_t
TraceLogWorkload::refill(int tid, TraceBatch &batch)
{
    const auto t = static_cast<std::size_t>(tid);
    batch.count = 0;
    batch.cursor = 0;

    if (cur_[t] == nullptr || pos_[t] >= cur_[t]->records.size()) {
        cur_[t].reset(); // drop the drained block before waiting
        std::unique_lock<std::mutex> lock(mu_);
        consumerCv_.wait(lock, [&] {
            return stop_ || error_ != nullptr
                   || !rings_[t].blocks.empty() || rings_[t].done;
        });
        if (error_ != nullptr)
            std::rethrow_exception(error_);
        if (rings_[t].blocks.empty())
            return 0; // stream exhausted (or tearing down)
        cur_[t] = std::make_unique<DecodedBlock>(
            std::move(rings_[t].blocks.front()));
        rings_[t].blocks.pop_front();
        pos_[t] = 0;
        lock.unlock();
        producerCv_.notify_all();
    }

    const DecodedBlock &block = *cur_[t];
    std::uint32_t n = 0;
    while (n < TraceBatch::kCapacity
           && pos_[t] < block.records.size()) {
        const TraceRecord &rec = block.records[pos_[t]++];
        batch.records[n++] = rec;
        emitted_[t] += rec.computeOps + 1;
    }
    batch.count = n;
    return n;
}

std::uint64_t
TraceLogWorkload::blocksDecoded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return blocksDecoded_;
}

std::unique_ptr<Workload>
makeTraceReplayWorkload(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open trace capture: " + path);
    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic))
        throw std::runtime_error("trace capture too small: " + path);
    in.close();
    if (std::memcmp(magic, "STRCLOG1", sizeof(magic)) == 0)
        return std::make_unique<TraceLogWorkload>(path);
    if (std::memcmp(magic, "SKYTRC01", sizeof(magic)) == 0)
        return std::make_unique<TraceFileWorkload>(path);
    throw std::runtime_error("not a trace capture (unknown magic): "
                             + path);
}

} // namespace skybyte
