#include "trace/trace_log/codec.h"

#include <array>
#include <cstring>

namespace skybyte {

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
getVarint(const std::uint8_t *data, std::size_t size, std::size_t &pos)
{
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= size)
            throw TraceLogError("truncated varint");
        const std::uint8_t byte = data[pos++];
        // Byte 10 encodes at most the top u64 bit: anything else would
        // silently wrap a 64-bit value.
        if (shift == 63 && (byte & ~1u) != 0)
            throw TraceLogError("varint overflows 64 bits");
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return value;
    }
    throw TraceLogError("varint longer than 10 bytes");
}

namespace {

constexpr std::array<std::uint32_t, 256>
crcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static constexpr std::array<std::uint32_t, 256> kTable = crcTable();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        c = kTable[(c ^ bytes[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xffff;
constexpr unsigned kHashBits = 13;

inline std::uint32_t
read32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint32_t
hash4(std::uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Emit one count in the token's nibble-plus-extensions encoding. */
void
putCount(std::vector<std::uint8_t> &out, std::size_t count)
{
    // The nibble itself was already written by the caller; this only
    // appends the extension bytes for counts >= 15.
    if (count < 15)
        return;
    count -= 15;
    while (count >= 255) {
        out.push_back(255);
        count -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(count));
}

void
emitSequence(std::vector<std::uint8_t> &out, const std::uint8_t *lit,
             std::size_t lit_len, std::size_t offset,
             std::size_t match_len)
{
    const std::size_t lit_code = lit_len < 15 ? lit_len : 15;
    const std::size_t match_code =
        match_len == 0 ? 0
                       : (match_len - kMinMatch < 15
                              ? match_len - kMinMatch
                              : 15);
    out.push_back(static_cast<std::uint8_t>((lit_code << 4)
                                            | match_code));
    putCount(out, lit_len);
    out.insert(out.end(), lit, lit + lit_len);
    if (match_len == 0)
        return; // final literals-only sequence
    out.push_back(static_cast<std::uint8_t>(offset & 0xff));
    out.push_back(static_cast<std::uint8_t>(offset >> 8));
    putCount(out, match_len - kMinMatch);
}

} // namespace

std::vector<std::uint8_t>
slzCompress(const std::uint8_t *data, std::size_t size)
{
    std::vector<std::uint8_t> out;
    out.reserve(size / 2 + 16);
    // Positions of previously seen 4-byte sequences, keyed by hash.
    // ~0 marks an empty slot; stale entries are verified before use.
    std::vector<std::size_t> table(std::size_t{1} << kHashBits,
                                   ~std::size_t{0});
    std::size_t lit_start = 0;
    std::size_t pos = 0;
    // The last kMinMatch bytes can never start a match; always emit
    // them as literals so the decoder's end condition is exact.
    while (size >= kMinMatch && pos + kMinMatch <= size) {
        const std::uint32_t seq = read32(data + pos);
        const std::uint32_t h = hash4(seq);
        const std::size_t cand = table[h];
        table[h] = pos;
        if (cand == ~std::size_t{0} || pos - cand > kMaxOffset
            || read32(data + cand) != seq) {
            ++pos;
            continue;
        }
        std::size_t len = kMinMatch;
        while (pos + len < size && data[cand + len] == data[pos + len])
            ++len;
        emitSequence(out, data + lit_start, pos - lit_start, pos - cand,
                     len);
        pos += len;
        lit_start = pos;
    }
    // Trailing literals, if any. When a match consumed the input
    // exactly, the stream simply ends — the decoder stops at raw_size.
    if (lit_start < size)
        emitSequence(out, data + lit_start, size - lit_start, 0, 0);
    return out;
}

namespace {

std::size_t
getCount(const std::uint8_t *data, std::size_t size, std::size_t &pos,
         std::size_t nibble)
{
    std::size_t count = nibble;
    if (nibble != 15)
        return count;
    for (;;) {
        if (pos >= size)
            throw TraceLogError("truncated SLZ length");
        const std::uint8_t b = data[pos++];
        count += b;
        if (b != 255)
            return count;
    }
}

} // namespace

std::vector<std::uint8_t>
slzDecompress(const std::uint8_t *data, std::size_t size,
              std::size_t raw_size)
{
    std::vector<std::uint8_t> out;
    out.reserve(raw_size);
    std::size_t pos = 0;
    while (out.size() < raw_size) {
        if (pos >= size)
            throw TraceLogError("truncated SLZ stream");
        const std::uint8_t token = data[pos++];
        const std::size_t lit_len =
            getCount(data, size, pos, token >> 4);
        if (lit_len > size - pos)
            throw TraceLogError("SLZ literal run past input end");
        if (lit_len > raw_size - out.size())
            throw TraceLogError("SLZ literal run past declared size");
        out.insert(out.end(), data + pos, data + pos + lit_len);
        pos += lit_len;
        if (out.size() == raw_size) {
            // The final sequence is literals-only; trailing bytes
            // would mean the block header lied about one size.
            if (pos != size)
                throw TraceLogError("SLZ stream continues past "
                                    "declared size");
            break;
        }
        if (pos + 2 > size)
            throw TraceLogError("truncated SLZ match offset");
        const std::size_t offset =
            static_cast<std::size_t>(data[pos])
            | (static_cast<std::size_t>(data[pos + 1]) << 8);
        pos += 2;
        if (offset == 0 || offset > out.size())
            throw TraceLogError("SLZ match offset out of range");
        const std::size_t match_len =
            getCount(data, size, pos, token & 0x0f) + kMinMatch;
        if (match_len > raw_size - out.size())
            throw TraceLogError("SLZ match past declared size");
        // Byte-at-a-time: matches may overlap their own output (the
        // RLE case offset < length).
        std::size_t src = out.size() - offset;
        for (std::size_t i = 0; i < match_len; ++i)
            out.push_back(out[src + i]);
    }
    if (pos != size)
        throw TraceLogError("SLZ stream continues past declared size");
    return out;
}

} // namespace skybyte
