#include "trace/workload_spec.h"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace skybyte {

namespace {

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-'
            && c != '_' && c != '.') {
            return false;
        }
    }
    return true;
}

} // namespace

bool
WorkloadSpec::has(const std::string &key) const
{
    for (const auto &[k, v] : args) {
        if (k == key)
            return true;
    }
    return false;
}

const std::string &
WorkloadSpec::raw(const std::string &key) const
{
    static const std::string empty;
    for (const auto &[k, v] : args) {
        if (k == key)
            return v;
    }
    return empty;
}

std::string
WorkloadSpec::text() const
{
    // Mix entries are tenant=child-spec bindings whose values contain
    // ',' and ':', so the mix level separates with ';'.
    const char sep = isMix() ? ';' : ',';
    std::string out = name;
    for (std::size_t i = 0; i < args.size(); ++i) {
        out += i == 0 ? ':' : sep;
        out += args[i].first;
        out += '=';
        out += args[i].second;
    }
    return out;
}

WorkloadSpec
parseWorkloadSpec(const std::string &text)
{
    WorkloadSpec spec;
    const auto colon = text.find(':');
    spec.name = text.substr(0, colon);
    if (!validName(spec.name)) {
        throw std::invalid_argument("bad workload spec name: \"" + text
                                    + "\"");
    }
    if (colon == std::string::npos) {
        if (spec.isMix()) {
            throw std::invalid_argument(
                "mix spec needs at least one tenant=child-spec entry: \""
                + text + "\"");
        }
        return spec;
    }

    const std::string body = text.substr(colon + 1);
    if (body.empty()) {
        throw std::invalid_argument("workload spec has empty argument "
                                    "list: \"" + text + "\"");
    }
    // Mix bodies split on ';' (tenant entries); plain bodies on ','.
    const char sep = spec.isMix() ? ';' : ',';
    std::size_t pos = 0;
    while (pos <= body.size()) {
        const auto end = body.find(sep, pos);
        const std::string arg =
            body.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        const auto eq = arg.find('=');
        if (eq == 0 || eq == std::string::npos) {
            throw std::invalid_argument(
                "workload spec argument must be key=value, got \"" + arg
                + "\" in \"" + text + "\"");
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (value.empty()) {
            throw std::invalid_argument("empty value for workload arg "
                                        + key + " in \"" + text + "\"");
        }
        if (spec.has(key)) {
            throw std::invalid_argument(
                std::string(spec.isMix() ? "duplicate mix tenant "
                                         : "duplicate workload arg ")
                + key + " in \"" + text + "\"");
        }
        spec.args.emplace_back(key, value);
        if (end == std::string::npos)
            break;
        pos = end + 1;
    }
    if (spec.isMix()) {
        // Child specs are validated eagerly so a malformed tenant fails
        // at parse time with its config line number, not at run time.
        parseMixTenants(spec);
    }
    return spec;
}

std::vector<MixTenantSpec>
parseMixTenants(const WorkloadSpec &spec)
{
    if (!spec.isMix()) {
        throw std::invalid_argument("not a mix spec: \"" + spec.text()
                                    + "\"");
    }
    std::vector<MixTenantSpec> tenants;
    tenants.reserve(spec.args.size());
    for (const auto &[tenant, child_text] : spec.args) {
        if (!validName(tenant)) {
            throw std::invalid_argument("bad mix tenant name \"" + tenant
                                        + "\" in \"" + spec.text()
                                        + "\"");
        }
        MixTenantSpec entry;
        entry.tenant = tenant;
        try {
            entry.spec = parseWorkloadSpec(child_text);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument("mix tenant " + tenant + ": "
                                        + e.what());
        }
        if (entry.spec.isMix()) {
            throw std::invalid_argument(
                "mix tenant " + tenant
                + " must not itself be a mix (no nesting)");
        }
        tenants.push_back(std::move(entry));
    }
    return tenants;
}

std::uint64_t
parseUnsigned(const std::string &value, const std::string &what)
{
    try {
        // Digits only: stoull would silently wrap "-1" to 2^64-1.
        if (value.empty()
            || value.find_first_not_of("0123456789")
                   != std::string::npos)
            throw std::invalid_argument("not a digit string");
        return std::stoull(value, nullptr, 10);
    } catch (const std::exception &) {
        throw std::invalid_argument("bad integer for " + what + ": "
                                    + value);
    }
}

std::uint64_t
parseByteSize(const std::string &value, const std::string &what)
{
    if (value.empty())
        throw std::invalid_argument("empty byte size for " + what);
    std::uint64_t multiplier = 1;
    std::string digits = value;
    switch (value.back()) {
      case 'k': case 'K': multiplier = 1024ULL; break;
      case 'm': case 'M': multiplier = 1024ULL * 1024; break;
      case 'g': case 'G': multiplier = 1024ULL * 1024 * 1024; break;
      default: break;
    }
    if (multiplier != 1)
        digits.pop_back();
    std::uint64_t count = 0;
    try {
        count = parseUnsigned(digits, what);
    } catch (const std::exception &) {
        throw std::invalid_argument("bad byte size for " + what + ": "
                                    + value);
    }
    if (count > ~0ULL / multiplier) {
        // The multiply would wrap mod 2^64 and silently run a
        // different experiment.
        throw std::invalid_argument("byte size overflows for " + what
                                    + ": " + value);
    }
    return count * multiplier;
}

double
parseQosWeight(const std::string &value, const std::string &what)
{
    double weight = 0.0;
    try {
        std::size_t end = 0;
        weight = std::stod(value, &end);
        if (end != value.size())
            throw std::invalid_argument("trailing junk");
    } catch (const std::exception &) {
        throw std::invalid_argument("bad qos weight for " + what + ": "
                                    + value);
    }
    // NaN fails every comparison, inf breaks share arithmetic, and a
    // non-positive weight would zero a tenant's resource share.
    if (!std::isfinite(weight) || weight <= 0.0) {
        throw std::invalid_argument("qos weight for " + what
                                    + " must be a positive finite "
                                      "number: " + value);
    }
    return weight;
}

const std::string *
WorkloadSpecArgs::consume(const std::string &key)
{
    if (!spec_.has(key))
        return nullptr;
    consumed_.insert(key);
    return &spec_.raw(key);
}

std::uint64_t
WorkloadSpecArgs::u64(const std::string &key, std::uint64_t def)
{
    const std::string *value = consume(key);
    if (value == nullptr)
        return def;
    return parseUnsigned(*value, "workload arg " + key);
}

double
WorkloadSpecArgs::dbl(const std::string &key, double def)
{
    const std::string *value = consume(key);
    if (value == nullptr)
        return def;
    try {
        std::size_t end = 0;
        const double v = std::stod(*value, &end);
        if (end != value->size())
            throw std::invalid_argument("trailing junk");
        // nan/inf would slip through range guards (every comparison
        // against NaN is false) and silently degenerate a generator.
        if (!std::isfinite(v))
            throw std::invalid_argument("not finite");
        return v;
    } catch (const std::exception &) {
        throw std::invalid_argument("bad number for workload arg " + key
                                    + ": " + *value);
    }
}

std::string
WorkloadSpecArgs::str(const std::string &key, const std::string &def)
{
    const std::string *value = consume(key);
    return value == nullptr ? def : *value;
}

std::uint64_t
WorkloadSpecArgs::bytes(const std::string &key, std::uint64_t def)
{
    const std::string *value = consume(key);
    if (value == nullptr)
        return def;
    return parseByteSize(*value, "workload arg " + key);
}

void
WorkloadSpecArgs::requireAllConsumed(
    const std::string &workload_name) const
{
    std::string unknown;
    for (const auto &[k, v] : spec_.args) {
        if (consumed_.count(k) == 0) {
            if (!unknown.empty())
                unknown += ", ";
            unknown += k;
        }
    }
    if (!unknown.empty()) {
        // Name the key AND the full spec text: the spec may be buried
        // in a sweep axis or a mix tenant, and the config-file front
        // end prefixes its source line number on top of this message.
        throw std::invalid_argument("workload " + workload_name
                                    + " does not take arg(s): " + unknown
                                    + " (in spec \"" + spec_.text()
                                    + "\")");
    }
}

} // namespace skybyte
