/**
 * @file
 * Offline trace analysis: the workload-side statistics the paper uses to
 * motivate SkyByte (Table I's write ratio, Figure 5/6's per-page
 * cacheline-coverage CDFs, hot-page concentration for §III-C's migration
 * policy). Works on any Workload, including TraceFileWorkload replays,
 * and backs the skybyte_traceinfo tool.
 */

#ifndef SKYBYTE_TRACE_TRACE_STATS_H
#define SKYBYTE_TRACE_TRACE_STATS_H

#include <array>
#include <cstdint>
#include <vector>

#include "trace/workload.h"

namespace skybyte {

/** Aggregate statistics of one trace. */
struct TraceSummary
{
    std::uint64_t records = 0;
    std::uint64_t instructions = 0; ///< compute + memory
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t deviceAccesses = 0; ///< records in the shared region
    std::uint64_t uniquePages = 0;    ///< distinct shared 4 KB pages

    /** Mean fraction of a page's 64 lines ever touched / written. */
    double meanLinesTouched = 0;
    double meanLinesWritten = 0;

    /**
     * CDF over pages of the fraction of lines touched: bucket i holds
     * the fraction of pages with <= (i+1)*10% of their lines touched
     * (the shape of Figure 5; writtenCdf mirrors Figure 6).
     */
    std::array<double, 10> touchedCdf{};
    std::array<double, 10> writtenCdf{};

    /** Share of device accesses landing on the hottest 10% of pages. */
    double hotTop10PctShare = 0;

    double
    writeRatio() const
    {
        const std::uint64_t mem = memReads + memWrites;
        return mem == 0 ? 0.0
                        : static_cast<double>(memWrites)
                              / static_cast<double>(mem);
    }
};

/**
 * Drain up to @p max_records records from every thread of @p workload
 * (round-robin, mirroring how the simulator interleaves threads) and
 * summarize them. The workload is consumed.
 */
TraceSummary summarizeWorkload(Workload &workload,
                               std::uint64_t max_records = ~0ULL);

/** Render @p summary as the table skybyte_traceinfo prints. */
std::string formatSummary(const TraceSummary &summary,
                          const std::string &name);

} // namespace skybyte

#endif // SKYBYTE_TRACE_TRACE_STATS_H
