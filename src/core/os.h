/**
 * @file
 * The CXL-aware OS thread scheduler (§III-A). When a core raises the
 * SkyByte Long Delay Exception its handler yields the CPU and asks this
 * scheduler for the next runnable thread under one of the three policies
 * the paper evaluates (Figure 10): Round-Robin, Random, or CFS
 * (smallest received execution time first). Yielded threads re-enter the
 * run queue, so they are scheduled again later (§III-A "OS support").
 */

#ifndef SKYBYTE_CORE_OS_H
#define SKYBYTE_CORE_OS_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "cpu/core.h"
#include "cpu/thread.h"

namespace skybyte {

/**
 * Global run queue + policy. One instance serves all cores.
 */
class CxlAwareScheduler : public Scheduler
{
  public:
    CxlAwareScheduler(SchedPolicy policy, std::uint64_t seed);

    /** Register a thread (before start()). */
    void addThread(ThreadContext *thread);

    /** Register the cores (before start()). */
    void setCores(std::vector<Core *> cores);

    /** Dispatch initial threads onto cores at time @p now. */
    void start(Tick now);

    ThreadContext *pickNext(int core_id, ThreadContext *yielding,
                            Tick now) override;

    void threadFinished(ThreadContext *thread, Tick now) override;

    bool
    allFinished() const
    {
        return finishedCount_ == threads_.size();
    }

    /** Latest thread completion time (the run's execution time). */
    Tick lastFinishTime() const { return lastFinish_; }

    std::size_t runQueueDepth() const { return runQueue_.size(); }
    std::uint64_t dispatches() const { return dispatches_; }

  private:
    void enqueue(ThreadContext *thread);
    ThreadContext *dequeue();
    void wakeIdleCores(Tick now);

    SchedPolicy policy_;
    Rng rng_;
    std::vector<ThreadContext *> threads_;
    std::vector<Core *> cores_;
    std::deque<ThreadContext *> runQueue_;
    std::size_t finishedCount_ = 0;
    Tick lastFinish_ = 0;
    std::uint64_t dispatches_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_OS_H
