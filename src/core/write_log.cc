#include "core/write_log.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace skybyte {

LogPageTable::LogPageTable(std::uint32_t initial_entries, double max_load)
    : maxLoad_(max_load)
{
    std::uint32_t cap = 1;
    while (cap < std::max(initial_entries, 1u))
        cap <<= 1;
    slots_.assign(cap, kEmpty);
}

void
LogPageTable::grow()
{
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    count_ = 0;
    for (std::uint32_t packed : old) {
        if (packed != kEmpty)
            put(packed >> 26, packed & kLogOffMask);
    }
}

void
LogPageTable::put(std::uint32_t line_off, std::uint32_t log_off)
{
    assert(line_off < kLinesPerPage);
    const std::uint32_t mask = capacity() - 1;
    std::uint32_t idx = (line_off * 0x9e37u) & mask;
    for (;;) {
        std::uint32_t &slot = slots_[idx];
        if (slot == kEmpty) {
            slot = (line_off << 26) | (log_off & kLogOffMask);
            count_++;
            if (static_cast<double>(count_)
                > maxLoad_ * static_cast<double>(capacity())) {
                grow();
            }
            return;
        }
        if ((slot >> 26) == line_off) {
            slot = (line_off << 26) | (log_off & kLogOffMask);
            return;
        }
        idx = (idx + 1) & mask;
    }
}

std::optional<std::uint32_t>
LogPageTable::get(std::uint32_t line_off) const
{
    const std::uint32_t mask = capacity() - 1;
    std::uint32_t idx = (line_off * 0x9e37u) & mask;
    for (std::uint32_t probes = 0; probes <= mask; ++probes) {
        const std::uint32_t slot = slots_[idx];
        if (slot == kEmpty)
            return std::nullopt;
        if ((slot >> 26) == line_off)
            return slot & kLogOffMask;
        idx = (idx + 1) & mask;
    }
    return std::nullopt;
}

WriteLogBuffer::WriteLogBuffer(std::uint64_t capacity_bytes,
                               std::uint32_t initial_entries,
                               double max_load)
    : capacityEntries_(std::max<std::uint64_t>(
          capacity_bytes / kCachelineBytes, 4)),
      initialEntries_(initial_entries), maxLoad_(max_load)
{}

void
WriteLogBuffer::setTenantCount(std::size_t n)
{
    tenantEntries_.assign(n, 0);
}

bool
WriteLogBuffer::append(Addr line_addr, LineValue value, int tenant)
{
    if (tenant >= 0
        && static_cast<std::size_t>(tenant) < tenantEntries_.size())
        tenantEntries_[static_cast<std::size_t>(tenant)]++;
    const std::uint64_t lpa = pageNumber(line_addr);
    const std::uint32_t off = lineInPage(line_addr);
    const auto log_off = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back({line_addr, value});
    auto [table, inserted] =
        index_.tryEmplace(lpa, initialEntries_, maxLoad_);
    // Incremental accounting: a new first-level entry costs 16 B plus
    // its fresh second-level table; put() may double the table.
    if (inserted)
        indexBytes_ += 16;
    const std::uint32_t cap_before = inserted ? 0 : table->capacity();
    const bool superseded = !inserted && table->get(off).has_value();
    table->put(off, log_off);
    indexBytes_ +=
        static_cast<std::uint64_t>(table->capacity() - cap_before) * 4;
    return superseded;
}

std::optional<LineValue>
WriteLogBuffer::lookup(Addr line_addr) const
{
    return valueAt(pageNumber(line_addr), lineInPage(line_addr));
}

std::optional<LineValue>
WriteLogBuffer::valueAt(std::uint64_t lpa, std::uint32_t line_off) const
{
    const LogPageTable *table = index_.find(lpa);
    if (table == nullptr)
        return std::nullopt;
    auto log_off = table->get(line_off);
    if (!log_off)
        return std::nullopt;
    return entries_[*log_off].value;
}

std::uint64_t
WriteLogBuffer::mergePageInto(std::uint64_t lpa, PageData &data) const
{
    const LogPageTable *table = index_.find(lpa);
    if (table == nullptr)
        return 0;
    std::uint64_t mask = 0;
    table->forEach([&](std::uint32_t off, std::uint32_t log_off) {
        data[off] = entries_[log_off].value;
        mask |= 1ULL << off;
    });
    return mask;
}

std::uint32_t
WriteLogBuffer::invalidatePage(std::uint64_t lpa)
{
    const LogPageTable *table = index_.find(lpa);
    if (table == nullptr)
        return 0;
    const std::uint32_t dropped = table->count();
    indexBytes_ -=
        16 + static_cast<std::uint64_t>(table->capacity()) * 4;
    index_.erase(lpa);
    return dropped;
}

std::uint64_t
WriteLogBuffer::indexBytesRecomputed() const
{
    // 16 B per first-level entry + 4 B per allocated second-level slot.
    std::uint64_t bytes = index_.size() * 16;
    index_.forEach([&bytes](std::uint64_t, const LogPageTable &table) {
        bytes += static_cast<std::uint64_t>(table.capacity()) * 4;
    });
    return bytes;
}

void
WriteLogBuffer::clear()
{
    entries_.clear();
    index_.clear();
    indexBytes_ = 0;
    std::fill(tenantEntries_.begin(), tenantEntries_.end(), 0);
}

WriteLog::WriteLog(std::uint64_t capacity_bytes,
                   std::uint32_t initial_entries, double max_load)
    : active_(capacity_bytes, initial_entries, max_load),
      standby_(capacity_bytes, initial_entries, max_load)
{}

void
WriteLog::append(Addr line_addr, LineValue value, int tenant)
{
    if (active_.full())
        stats_.overflowAppends++;
    if (active_.append(line_addr, value, tenant))
        stats_.updateHits++;
    stats_.appends++;
    stats_.indexBytesPeak = std::max(stats_.indexBytesPeak, indexBytes());
}

void
WriteLog::setTenantQuotas(std::vector<std::uint64_t> quotas)
{
    tenantQuotas_ = std::move(quotas);
    active_.setTenantCount(tenantQuotas_.size());
    standby_.setTenantCount(tenantQuotas_.size());
}

std::optional<LineValue>
WriteLog::lookup(Addr line_addr)
{
    if (auto v = active_.lookup(line_addr)) {
        stats_.lookupHits++;
        return v;
    }
    if (drainInProgress_) {
        if (auto v = standby_.lookup(line_addr)) {
            stats_.lookupHits++;
            return v;
        }
    }
    return std::nullopt;
}

std::uint64_t
WriteLog::mergePageInto(std::uint64_t lpa, PageData &data)
{
    std::uint64_t mask = 0;
    if (drainInProgress_)
        mask |= standby_.mergePageInto(lpa, data);
    mask |= active_.mergePageInto(lpa, data); // newest wins
    // Each distinct logged line would have been one lookup() hit.
    stats_.lookupHits += static_cast<std::uint64_t>(std::popcount(mask));
    return mask;
}

WriteLogBuffer &
WriteLog::beginCompaction()
{
    assert(!drainInProgress_);
    std::swap(active_, standby_);
    drainInProgress_ = true;
    stats_.compactions++;
    return standby_;
}

void
WriteLog::finishCompaction()
{
    standby_.clear();
    drainInProgress_ = false;
}

void
WriteLog::invalidatePage(std::uint64_t lpa)
{
    stats_.invalidatedLines += active_.invalidatePage(lpa);
    if (drainInProgress_)
        stats_.invalidatedLines += standby_.invalidatePage(lpa);
}

} // namespace skybyte
