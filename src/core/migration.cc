#include "core/migration.h"

#include <algorithm>

namespace skybyte {

MigrationEngine::MigrationEngine(const SimConfig &cfg, EventQueue &eq,
                                 SsdController &ssd, DramModel &host_dram,
                                 CxlLink &link)
    : cfg_(cfg), eq_(eq), ssd_(ssd), hostDram_(host_dram), link_(link),
      rng_(cfg.seed ^ 0x711fULL), plb_(cfg.hostMem.plbEntries)
{
    if (cfg_.hostMem.hugePageBytes >= kPageBytes) {
        regionPages_ = static_cast<std::uint32_t>(
            cfg_.hostMem.hugePageBytes / kPageBytes);
    }
    if (cfg_.policy.migration == MigrationMechanism::SkyByte) {
        ssd_.setHotPageHook([this](std::uint64_t lpn, Tick now) {
            return onHotPage(lpn, now);
        });
    }
}

MigrationEngine::~MigrationEngine()
{
    // The slab frees its chunks wholesale but never runs destructors
    // for still-live records; each region owns a dirty-page vector, so
    // drain the survivors explicitly.
    promoted_.forEach([this](std::uint64_t, PromotedRegion *region) {
        regionSlab_.release(region);
    });
}

void
MigrationEngine::markDirty(std::vector<std::uint64_t> &pages,
                           std::uint64_t lpn)
{
    const auto it = std::lower_bound(pages.begin(), pages.end(), lpn);
    if (it == pages.end() || *it != lpn)
        pages.insert(it, lpn);
}

PageHome
MigrationEngine::route(std::uint64_t lpn, std::uint32_t line, Tick now,
                       bool is_write)
{
    if (const Plb::Entry *entry = plb_.find(lpn)) {
        // Region under promotion (§III-C): reads are served from the
        // SSD DRAM; only writes whose migrated bit is set chase the
        // fresh host copy.
        if (!is_write)
            return PageHome::Ssd;
        const auto chunk =
            static_cast<std::uint32_t>(lpn - entry->baseLpn);
        // Either way the write only survives in the host copy once the
        // migration completes (the SSD drops its log/cache state), so
        // the page must demote dirty later.
        markDirty(migratingDirty_[entry->baseLpn], lpn);
        if (entry->lineMigrated(chunk, line)) {
            migStats_.inflightWriteRedirects++;
            return PageHome::Host;
        }
        return PageHome::Ssd; // copy of this line picks the write up
    }
    const std::uint64_t base = regionBase(lpn);
    if (PromotedRegion *const *slot = promoted_.find(base)) {
        PromotedRegion &region = **slot;
        region.lastUse = now;
        if (is_write)
            markDirty(region.dirtyPages, lpn);
        // Per-access recency upkeep for whichever structure the active
        // reclaim policy consults for victims; the unused one only
        // needs the unlink-on-demote invariant, not fresh order.
        if (cfg_.hostMem.reclaim == ReclaimPolicy::ActiveInactive)
            lists_.touch(base, now);
        else
            lruTouch(region);
        return PageHome::Host;
    }
    return PageHome::Ssd;
}

bool
MigrationEngine::onHotPage(std::uint64_t lpn, Tick now)
{
    const std::uint64_t base = regionBase(lpn);
    // Pinned pages stay on the device for persistence (§IV).
    if (regionPinned(base))
        return true; // latch: never a candidate
    if (promoted_.contains(base) || plb_.find(lpn) != nullptr)
        return true; // already handled; latch it
    if (plb_.full()) {
        migStats_.rejectedPlbFull++;
        return false;
    }
    // SkyByte only migrates pages resident in the SSD data cache
    // (§III-C), since those are the verified-hot candidates. For huge
    // pages the residency test applies to the 4 KB page that tripped
    // the threshold (§IV: the host migrates the enclosing huge page).
    if (!ssd_.isPageCached(lpn)) {
        migStats_.rejectedNotCached++;
        return false;
    }
    return promote(base, now, 0);
}

void
MigrationEngine::onSsdAccess(std::uint64_t lpn, Tick now)
{
    if (cfg_.policy.migration != MigrationMechanism::Tpp)
        return;
    const std::uint64_t base = regionBase(lpn);
    if (regionPinned(base))
        return; // pinned for persistence (§IV)
    if (promoted_.contains(base) || plb_.find(lpn) != nullptr)
        return;
    // NUMA-hint-fault style sampling: 1/16 of accesses are observed.
    if (!rng_.chance(1.0 / 16.0))
        return;
    if (++tppScores_[base] < 2)
        return;
    tppScores_.erase(base);
    if (plb_.full()) {
        migStats_.rejectedPlbFull++;
        return;
    }
    // TPP pays a software page-fault + kernel-migration cost on top of
    // the copy itself.
    promote(base, now, usToTicks(3.0));
}

void
MigrationEngine::setTenantShares(std::vector<Addr> device_starts,
                                 std::vector<std::uint64_t> share_bytes)
{
    tenantStarts_ = std::move(device_starts);
    tenantShareBytes_ = std::move(share_bytes);
    tenantPromotedBytes_.assign(tenantShareBytes_.size(), 0);
}

std::size_t
MigrationEngine::tenantOfBase(std::uint64_t base) const
{
    const Addr dev = base * kPageBytes;
    std::size_t t = tenantStarts_.size() - 1;
    while (t > 0 && dev < tenantStarts_[t])
        t--;
    return t;
}

bool
MigrationEngine::promote(std::uint64_t base, Tick now, Tick extra_cost)
{
    const std::uint64_t region_bytes =
        static_cast<std::uint64_t>(regionPages_) * kPageBytes;
    // Per-tenant share cap first: a promotion the cap will reject must
    // not demote other tenants' regions on its way to the rejection.
    if (!tenantShareBytes_.empty()) {
        const std::size_t t = tenantOfBase(base);
        if (tenantPromotedBytes_[t] + region_bytes
            > tenantShareBytes_[t]) {
            migStats_.rejectedTenantShare++;
            return false;
        }
    }
    // Anti-thrash guard: when the host budget is full, only displace a
    // region that has been idle for a while. If even the coldest
    // promoted region is recently used, the hot set exceeds the budget
    // and migrating would just churn (page copies + TLB shootdowns), so
    // the candidate is rejected and stays eligible for later.
    while (promotedBytes() + region_bytes > cfg_.hostMem.promotedBytesMax
           && !promoted_.empty()) {
        if (!demoteColdest(now, kAntiThrashIdle))
            return false;
    }
    if (promotedBytes() + region_bytes > cfg_.hostMem.promotedBytesMax)
        return false;

    Plb::Entry *entry = plb_.allocate(base, regionPages_);
    if (entry == nullptr) {
        migStats_.rejectedPlbFull++;
        return false;
    }

    // Timing: MSI-X to the host, then the copy proceeds in cacheline
    // bursts tracked by the PLB entry (chunk-by-chunk for huge pages).
    const Tick t_irq = now + cfg_.hostMem.msixLatency + extra_cost;
    scheduleBurst(base, 0, t_irq);
    // The PLB entry already holds host DRAM, so the share is charged
    // from the start of the copy, mirroring promotedPages().
    if (!tenantShareBytes_.empty())
        tenantPromotedBytes_[tenantOfBase(base)] += region_bytes;
    return true;
}

void
MigrationEngine::scheduleBurst(std::uint64_t base, std::uint64_t line_idx,
                               Tick when)
{
    const std::uint64_t total_lines =
        static_cast<std::uint64_t>(regionPages_) * kLinesPerPage;
    const auto burst = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(
            std::max<std::uint32_t>(cfg_.hostMem.plbBurstLines, 1),
            total_lines - line_idx));
    const Tick t_done =
        link_.deliverToHost(when, burst * kCachelineBytes);
    eq_.schedule(t_done, [this, base, line_idx, burst] {
        completeBurst(base, line_idx, burst);
    });
}

void
MigrationEngine::completeBurst(std::uint64_t base, std::uint64_t line_idx,
                               std::uint32_t lines)
{
    Plb::Entry *entry = plb_.find(base);
    if (entry == nullptr)
        return; // released concurrently: stale event
    bool done = false;
    for (std::uint32_t i = 0; i < lines; ++i) {
        const std::uint64_t global = line_idx + i;
        const auto chunk = static_cast<std::uint32_t>(
            global / kLinesPerPage);
        const auto off = static_cast<std::uint32_t>(
            global % kLinesPerPage);
        const std::uint64_t lpn = base + chunk;
        // The SSD still holds the freshest value for an unmigrated
        // line (writes kept landing there), so copying now is exact.
        hostDram_.poke(hostKeyOf(lpn, off),
                       ssd_.peekLine(lpn * kPageBytes
                                     + static_cast<Addr>(off)
                                           * kCachelineBytes));
        done = plb_.markLine(*entry, chunk, off);
    }
    if (!done) {
        scheduleBurst(base, line_idx + lines, eq_.now());
        return;
    }
    finishMigration(base);
}

void
MigrationEngine::finishMigration(std::uint64_t base)
{
    // PTE update (+ custom NVMe notify for huge pages, §IV) before the
    // region becomes host-resident.
    Tick t_done = eq_.now() + nsToTicks(500.0);
    const bool huge = regionPages_ > 1;
    if (huge)
        t_done += cfg_.hostMem.nvmeNotifyLatency;
    eq_.schedule(t_done, [this, base, huge] {
        const Tick now = eq_.now();
        plb_.release(base);
        auto [slot, inserted] = promoted_.tryEmplace(base, nullptr);
        if (inserted)
            *slot = regionSlab_.alloc();
        PromotedRegion &region = **slot;
        if (!inserted) {
            // Defensive: re-promotion of a live base (unreachable while
            // route()/promote() guard on promoted_). Match the seed's
            // wholesale replacement: stale dirty pages must not leak
            // into the fresh residency.
            lruUnlink(region);
            region.dirtyPages.clear();
        }
        region.lastUse = now;
        region.base = base;
        if (std::vector<std::uint64_t> *dirty =
                migratingDirty_.find(base)) {
            region.dirtyPages = std::move(*dirty);
            migratingDirty_.erase(base);
        }
        lruInsertByLastUse(region);
        for (std::uint32_t p = 0; p < regionPages_; ++p)
            ssd_.dropMigratedPage(base + p);
        if (huge)
            migStats_.nvmeNotifies++;
        if (cfg_.hostMem.reclaim == ReclaimPolicy::ActiveInactive)
            lists_.insert(base, now);
        migStats_.promotions++;
        migStats_.tlbShootdowns++;
        if (shootdownHook_)
            shootdownHook_(cfg_.hostMem.tlbShootdownCost);
    });
}

void
MigrationEngine::lruUnlink(PromotedRegion &region)
{
    if (region.lruPrev != nullptr)
        region.lruPrev->lruNext = region.lruNext;
    else if (lruHead_ == &region)
        lruHead_ = region.lruNext;
    if (region.lruNext != nullptr)
        region.lruNext->lruPrev = region.lruPrev;
    else if (lruTail_ == &region)
        lruTail_ = region.lruPrev;
    region.lruPrev = region.lruNext = nullptr;
}

void
MigrationEngine::lruInsertByLastUse(PromotedRegion &region)
{
    // Ticks from interleaved core quanta are only nearly sorted, so
    // find the slot by walking back from the tail; insertion after
    // nodes with an equal lastUse keeps the tie-break deterministic
    // (earlier-inserted region demotes first).
    PromotedRegion *after = lruTail_;
    while (after != nullptr && after->lastUse > region.lastUse)
        after = after->lruPrev;
    region.lruPrev = after;
    region.lruNext = after != nullptr ? after->lruNext : lruHead_;
    if (region.lruNext != nullptr)
        region.lruNext->lruPrev = &region;
    else
        lruTail_ = &region;
    if (after != nullptr)
        after->lruNext = &region;
    else
        lruHead_ = &region;
}

bool
MigrationEngine::selectVictimLru(Tick now, Tick min_idle,
                                 std::uint64_t &victim)
{
    // The list is kept sorted by lastUse, so the head is the exact
    // minimum the seed found by scanning every promoted region (ties
    // break by insertion order rather than the seed's hash order).
    if (lruHead_ == nullptr)
        return false;
    if (min_idle > 0 && lruHead_->lastUse + min_idle > now)
        return false; // even the coldest region is hot: do not churn
    victim = lruHead_->base;
    return true;
}

bool
MigrationEngine::demoteColdest(Tick now, Tick min_idle)
{
    std::uint64_t victim = 0;
    if (cfg_.hostMem.reclaim == ReclaimPolicy::ActiveInactive) {
        if (!lists_.selectVictim(now, min_idle, victim))
            return false;
    } else if (!selectVictimLru(now, min_idle, victim)) {
        return false;
    }
    demoteRegion(victim, now);
    return true;
}

void
MigrationEngine::demoteRegion(std::uint64_t base, Tick now)
{
    PromotedRegion *const *slot = promoted_.find(base);
    if (slot == nullptr)
        return;
    PromotedRegion *region = *slot;
    lruUnlink(*region);
    // Copy the host copy back into fresh SSD pages (§III-C eviction).
    // Clean pages need no copy at all: flash still holds their data.
    // dirtyPages is sorted, so the copy-back order is the ascending
    // page order regardless of the order the writes arrived in.
    for (std::uint64_t lpn : region->dirtyPages) {
        PageData data{};
        for (std::uint32_t off = 0; off < kLinesPerPage; ++off)
            data[off] = hostDram_.peek(hostKeyOf(lpn, off));
        ssd_.writePageFromHost(lpn, data, now);
    }
    promoted_.erase(base);
    regionSlab_.release(region);
    if (cfg_.hostMem.reclaim == ReclaimPolicy::ActiveInactive)
        lists_.erase(base); // no-op when chosen via selectVictim
    if (!tenantShareBytes_.empty()) {
        const std::uint64_t region_bytes =
            static_cast<std::uint64_t>(regionPages_) * kPageBytes;
        std::uint64_t &held =
            tenantPromotedBytes_[tenantOfBase(base)];
        held -= std::min(held, region_bytes);
    }

    migStats_.demotions++;
    migStats_.tlbShootdowns++;
    if (shootdownHook_)
        shootdownHook_(cfg_.hostMem.tlbShootdownCost);
}

} // namespace skybyte
