#include "core/page_cache.h"

#include <algorithm>

namespace skybyte {

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint32_t ways)
{
    ways_ = std::max<std::uint32_t>(ways, 1);
    capacityPages_ = std::max<std::uint64_t>(capacity_bytes / kPageBytes,
                                             ways_);
    std::uint64_t sets = capacityPages_ / ways_;
    std::uint32_t pow2 = 1;
    while (static_cast<std::uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    numSets_ = pow2;
    capacityPages_ = static_cast<std::uint64_t>(numSets_) * ways_;
    entries_.assign(capacityPages_, CachedPage{});
}

std::uint32_t
PageCache::setOf(std::uint64_t lpn) const
{
    std::uint64_t x = lpn;
    x ^= x >> 15;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x & (numSets_ - 1));
}

CachedPage *
PageCache::lookup(std::uint64_t lpn)
{
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            set[w].lru = ++lruClock_;
            hits_++;
            return &set[w];
        }
    }
    misses_++;
    return nullptr;
}

const CachedPage *
PageCache::probe(std::uint64_t lpn) const
{
    const CachedPage *set =
        &entries_[static_cast<std::size_t>(setOf(lpn)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn)
            return &set[w];
    }
    return nullptr;
}

PageEvict
PageCache::fill(std::uint64_t lpn, const PageData &data)
{
    PageEvict out;
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    CachedPage *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            // Refresh in place (racing fills).
            set[w].data = data;
            set[w].lru = ++lruClock_;
            return out;
        }
    }
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim == nullptr || set[w].lru < victim->lru)
            victim = &set[w];
    }
    if (victim->valid) {
        out.evicted = true;
        out.dirty = victim->dirty;
        out.lpn = victim->lpn;
        out.touchedMask = victim->touchedMask;
        out.dirtyMask = victim->dirtyMask;
        out.data = victim->data;
    } else {
        resident_++;
    }
    victim->lpn = lpn;
    victim->valid = true;
    victim->dirty = false;
    victim->touchedMask = 0;
    victim->dirtyMask = 0;
    victim->lru = ++lruClock_;
    victim->data = data;
    return out;
}

bool
PageCache::invalidate(std::uint64_t lpn, PageEvict *out)
{
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            if (out != nullptr) {
                out->evicted = true;
                out->dirty = set[w].dirty;
                out->lpn = lpn;
                out->touchedMask = set[w].touchedMask;
                out->dirtyMask = set[w].dirtyMask;
                out->data = set[w].data;
            }
            set[w].valid = false;
            resident_--;
            return true;
        }
    }
    return false;
}

void
PageCache::forEach(const std::function<void(CachedPage &)> &fn)
{
    for (auto &page : entries_) {
        if (page.valid)
            fn(page);
    }
}

} // namespace skybyte
