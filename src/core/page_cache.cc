#include "core/page_cache.h"

#include <algorithm>

namespace skybyte {

PageCache::PageCache(std::uint64_t capacity_bytes, std::uint32_t ways)
{
    ways_ = std::max<std::uint32_t>(ways, 1);
    capacityPages_ = std::max<std::uint64_t>(capacity_bytes / kPageBytes,
                                             ways_);
    std::uint64_t sets = capacityPages_ / ways_;
    std::uint32_t pow2 = 1;
    while (static_cast<std::uint64_t>(pow2) * 2 <= sets)
        pow2 *= 2;
    numSets_ = pow2;
    capacityPages_ = static_cast<std::uint64_t>(numSets_) * ways_;
    entries_.assign(capacityPages_, CachedPage{});
}

std::uint32_t
PageCache::setOf(std::uint64_t lpn) const
{
    std::uint64_t x = lpn;
    x ^= x >> 15;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 31;
    return static_cast<std::uint32_t>(x & (numSets_ - 1));
}

CachedPage *
PageCache::lookup(std::uint64_t lpn)
{
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            set[w].lru = ++lruClock_;
            hits_++;
            return &set[w];
        }
    }
    misses_++;
    return nullptr;
}

const CachedPage *
PageCache::probe(std::uint64_t lpn) const
{
    const CachedPage *set =
        &entries_[static_cast<std::size_t>(setOf(lpn)) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn)
            return &set[w];
    }
    return nullptr;
}

CachedPage *
PageCache::fill(std::uint64_t lpn, PageEvict &ev, PageData *victim_data)
{
    ev = PageEvict{};
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    CachedPage *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            // Refresh in place (racing fills); masks survive.
            set[w].lru = ++lruClock_;
            return &set[w];
        }
    }
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (victim == nullptr || set[w].lru < victim->lru)
            victim = &set[w];
    }
    if (victim->valid) {
        ev.evicted = true;
        ev.dirty = victim->dirty;
        ev.lpn = victim->lpn;
        ev.touchedMask = victim->touchedMask;
        ev.dirtyMask = victim->dirtyMask;
        // Only a dirty victim needs its payload preserved (writeback);
        // clean evictions drop the page without touching the 4 KB.
        if (victim->dirty && victim_data != nullptr)
            *victim_data = victim->data;
    } else {
        resident_++;
    }
    victim->lpn = lpn;
    victim->valid = true;
    victim->dirty = false;
    victim->touchedMask = 0;
    victim->dirtyMask = 0;
    victim->lru = ++lruClock_;
    return victim;
}

bool
PageCache::invalidate(std::uint64_t lpn, PageEvict *ev,
                      PageData *victim_data)
{
    CachedPage *set = &entries_[static_cast<std::size_t>(setOf(lpn))
                                * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].lpn == lpn) {
            if (ev != nullptr) {
                ev->evicted = true;
                ev->dirty = set[w].dirty;
                ev->lpn = lpn;
                ev->touchedMask = set[w].touchedMask;
                ev->dirtyMask = set[w].dirtyMask;
            }
            if (victim_data != nullptr)
                *victim_data = set[w].data;
            set[w].valid = false;
            resident_--;
            return true;
        }
    }
    return false;
}

} // namespace skybyte
