/**
 * @file
 * The CXL-SSD controller (§III-B, Figure 11): serves CXL.mem reads and
 * writes out of the SSD DRAM (write log + page-granular data cache),
 * fetches pages from flash through the FTL on misses, decides when to
 * send SkyByte-Delay hints (Algorithm 1), runs background log compaction
 * (Figure 13), and exposes the page-granular interface used by
 * AstriFlash and page migration.
 *
 * In Base-CSSD mode (write log disabled) it behaves like the
 * state-of-the-art CXL-SSD of [32],[62]: page-granular caching with
 * sequential prefetch, write-allocate read-modify-write on write misses,
 * and dirty-page writebacks on eviction.
 *
 * Request-path design: the steady state is allocation-free. In-flight
 * fetches are slab records (common/slab.h) carrying intrusive FIFO
 * chains of waiter records instead of per-fetch vectors; the fetch
 * table and the hot-page access counters are open-addressing FlatMaps
 * (common/flat_map.h); and completion callbacks are move-only
 * InlineFunctions (common/inline_function.h) constructed in place in
 * waiter records and event-queue slots, never cloned. Record addresses
 * are slab-stable, so a fetch handle survives table rehashes (the old
 * unordered_map port re-looked-up after every possible insert).
 */

#ifndef SKYBYTE_CORE_SSD_CONTROLLER_H
#define SKYBYTE_CORE_SSD_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/inline_function.h"
#include "common/slab.h"
#include "common/stats.h"
#include "cpu/mem_backend.h"
#include "core/page_cache.h"
#include "core/write_log.h"
#include "cxl/cxl.h"
#include "mem/dram.h"
#include "ssd/ftl.h"

namespace skybyte {

/**
 * Page-read completion callback (page-granular host interface), fired
 * with the delivery time and the merged page payload.
 */
using PageReadFn = InlineFunction<void(Tick, const PageData &), 32>;

/** Controller statistics (feeds Figs 5/6, 16, 17, 18 and Table III). */
struct SsdStats
{
    std::uint64_t readHitsLog = 0;
    std::uint64_t readHitsCache = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writes = 0;
    std::uint64_t delayHintsSent = 0;
    std::uint64_t rmwFetches = 0;     ///< Base-CSSD write-miss page fetches
    std::uint64_t prefetches = 0;
    std::uint64_t dirtyEvictions = 0; ///< Base-CSSD dirty page writebacks
    std::uint64_t compactionPagesFlushed = 0;
    std::uint64_t compactionFlashReads = 0;
    Tick compactionTicksTotal = 0;
    std::uint64_t compactionRuns = 0;
    std::uint64_t pagePromotionsSignalled = 0;

    /** AMAT component sums over completed demand reads (ticks). */
    std::uint64_t amatReads = 0;
    double protocolTicks = 0;
    double indexingTicks = 0;
    double ssdDramTicks = 0;
    double flashTicks = 0;

    /** Flash read latency observed by demand fetches (Table III). */
    LatencyHistogram flashReadLatency;
    /** Fraction of lines touched per page leaving the cache (Fig 5). */
    RatioHistogram readLocality;
    /** Fraction of dirty lines per page programmed to flash (Fig 6). */
    RatioHistogram writeLocality;
};

/**
 * Per-tenant device-side counters for co-located (mix:) workloads.
 * Tenants own disjoint, contiguous device-address regions, so every
 * line request classifies to exactly one tenant and the buckets
 * partition the aggregate SsdStats counts — the invariant
 * tests/test_system.cc pins. Pure accounting: enabling tenants never
 * changes simulated behaviour.
 */
struct SsdTenantCounters
{
    std::uint64_t readHitsLog = 0;
    std::uint64_t readHitsCache = 0;
    std::uint64_t readMisses = 0;
    std::uint64_t writes = 0;
    std::uint64_t logAppends = 0;
    /** Flash page arrivals for this tenant's pages (incl. prefetch). */
    std::uint64_t flashPageReads = 0;
    /** Summed flash read latency of those arrivals (ticks). */
    double flashReadTicks = 0;
    /** @name QoS enforcement effects (zero unless configureQos ran). @{ */
    std::uint64_t delayedReads = 0;  ///< reads held by admission credits
    std::uint64_t delayedWrites = 0; ///< writes held by admission credits
    std::uint64_t throttleDelayTicks = 0; ///< total admission hold time
    std::uint64_t logOverQuota = 0; ///< writes arriving past the quota
    /** @} */
};

/**
 * The memory-semantic SSD device.
 */
class SsdController
{
  public:
    SsdController(const SimConfig &cfg, EventQueue &eq, CxlLink &link);
    ~SsdController();

    SsdController(const SsdController &) = delete;
    SsdController &operator=(const SsdController &) = delete;

    /**
     * CXL.mem MemRd for a device-relative line address, sent by the host
     * at @p when. @p cb fires host-side with Data or DelayHint.
     */
    void read(Addr dev_line_addr, Tick when, MemCallback cb);

    /** CXL.mem MemWr (posted) for a device-relative line address. */
    void write(Addr dev_line_addr, LineValue value, Tick when);

    /** Page-granular host read (AstriFlash / migration copies). */
    void readPageToHost(std::uint64_t lpn, Tick when, PageReadFn cb);

    /** Page-granular host write (AstriFlash eviction / demotion). */
    void writePageFromHost(std::uint64_t lpn, const PageData &data,
                           Tick when);

    /** Is @p lpn resident in the data cache (migration precondition)? */
    bool isPageCached(std::uint64_t lpn) const;

    /** Merged functional view of a page (cache/flash + log overlay). */
    void snapshotPage(std::uint64_t lpn, PageData &out);

    /** Convenience by-value form (tests). */
    PageData
    snapshotPage(std::uint64_t lpn)
    {
        PageData out;
        snapshotPage(lpn, out);
        return out;
    }

    /** Migration completed: drop the page from SSD DRAM (§III-C). */
    void dropMigratedPage(std::uint64_t lpn);

    /**
     * Hook invoked when a cached page crosses the hot threshold
     * (§III-C). Returns true if the migration engine accepted the page;
     * on rejection (PLB full, budget full) the counter stays eligible
     * so a later access can retry.
     */
    void
    setHotPageHook(std::function<bool(std::uint64_t, Tick)> hook)
    {
        hotPageHook_ = std::move(hook);
    }

    /** Functional single-line peek through log, cache, then flash. */
    LineValue peekLine(Addr dev_line_addr);

    /**
     * Boot-time warm fill of the data cache (no timing, no flash ops):
     * used by the warmup pass the paper applies before measurement.
     */
    void warmFill(std::uint64_t lpn);

    Ftl &ftl() { return ftl_; }
    const Ftl &ftlc() const { return ftl_; }
    PageCache &cache() { return cache_; }
    WriteLog *writeLog() { return log_.get(); }
    const SsdStats &stats() const { return stats_; }
    DramModel &dram() { return dram_; }

    /**
     * Enable per-tenant counters. @p starts holds each tenant's first
     * device-byte offset in ascending order (starts[0] == 0); tenant i
     * owns [starts[i], starts[i+1]), the last up to @p end_bytes.
     * Addresses at or past @p end_bytes belong to no tenant (e.g.
     * sequential prefetches running off the end of the mix footprint).
     * Empty @p starts (the default) disables the accounting entirely.
     */
    void setTenantBounds(std::vector<Addr> starts, Addr end_bytes);

    /** Per-tenant buckets, aligned with the setTenantBounds order. */
    const std::vector<SsdTenantCounters> &tenantCounters() const
    {
        return tenantStats_;
    }

    /**
     * Arm the per-tenant QoS controls (§ QoS extension). @p weights are
     * the relative tenant weights in setTenantBounds order; they are
     * normalised internally. With QosConfig::weightedAdmission each
     * tenant gets max(1, creditsPerEpoch x share) admission credits per
     * epochTicks window, and requests beyond the budget are admitted at
     * the start of the first epoch with spare credit. With
     * QosConfig::writeLogQuota each tenant's live write-log entries are
     * capped at capacity x share; over-quota writes pay a one-credit
     * admission surcharge. Requires setTenantBounds to have run first.
     */
    void configureQos(const QosConfig &qos,
                      const std::vector<double> &weights);

  private:
    /** One line read waiting on an in-flight fetch (intrusive FIFO). */
    struct Waiter
    {
        Waiter *next = nullptr;
        std::uint32_t lineOff = 0;
        Tick readyAt = 0; ///< time the request finished indexing
        MemCallback cb;
    };

    /** One page read waiting on an in-flight fetch (intrusive FIFO). */
    struct PageWaiter
    {
        PageWaiter *next = nullptr;
        Tick readyAt = 0;
        PageReadFn cb;
    };

    /** Base-CSSD write-allocate line buffered until the page arrives. */
    struct PendingWrite
    {
        PendingWrite *next = nullptr;
        std::uint32_t off = 0;
        LineValue value = 0;
    };

    /**
     * One in-flight flash fetch. Slab-allocated; the three waiter
     * FIFOs replay in arrival order on completion (the event-queue
     * seq tie-break depends on it).
     */
    struct PendingFetch
    {
        Tick expectedDone = 0;
        Tick startedAt = 0;
        bool prefetch = false;
        IntrusiveFifo<Waiter> waiters;
        IntrusiveFifo<PageWaiter> pageWaiters;
        IntrusiveFifo<PendingWrite> pendingWrites;
    };

    bool logEnabled() const { return log_ != nullptr; }
    Tick indexLatency() const;

    /** Start (or join) the flash fetch of @p lpn at device time @p t. */
    PendingFetch *startFetch(std::uint64_t lpn, Tick t, bool prefetch);

    /** Append a line waiter to @p pf (FIFO). */
    void addWaiter(PendingFetch &pf, std::uint32_t off, Tick ready_at,
                   MemCallback cb);

    /** Append a page waiter to @p pf (FIFO). */
    void addPageWaiter(PendingFetch &pf, Tick ready_at, PageReadFn cb);

    /** Append a buffered write-allocate line to @p pf (FIFO). */
    void addPendingWrite(PendingFetch &pf, std::uint32_t off,
                         LineValue value);

    /** Destroy a fetch record and its chains (drops callbacks). */
    void releaseFetch(PendingFetch *pf);

    void onPageArrived(std::uint64_t lpn, Tick done);

    /** Apply log overlay onto @p data for page @p lpn. */
    void mergeLogInto(std::uint64_t lpn, PageData &data);

    /**
     * Handle a page evicted from the data cache. @p victim_data is the
     * evicted payload when @p ev.dirty (nullptr otherwise).
     */
    void handleEviction(const PageEvict &ev, const PageData *victim_data,
                        Tick when);

    /** Respond with data to one line waiter (consumes its callback). */
    void respondLine(Waiter &w, std::uint64_t lpn, Tick t_page,
                     const PageData &data);

    /** Send the SkyByte-Delay NDR back to the host. */
    void sendDelayHint(Tick t, MemCallback cb);

    /** Count an access for hot-page tracking. */
    void touchForPromotion(std::uint64_t lpn, Tick now);

    /** Algorithm 1 + GC check: should this miss trigger a switch? */
    bool shouldHint(std::uint64_t lpn, Tick now, Tick est) const;

    void maybeStartCompaction(Tick now);
    void issueCompactionJob(std::uint32_t ch, Tick when);
    void compactionJobDone(std::uint32_t ch, Tick done);

    /**
     * Tenant bucket for device byte offset @p dev, or nullptr when
     * tenant accounting is disabled. Linear scan: mixes hold a handful
     * of tenants.
     */
    SsdTenantCounters *tenantFor(Addr dev);

    /** Tenant index for @p dev, or -1 when accounting is disabled. */
    int tenantIndexFor(Addr dev) const;

    /**
     * Deterministic epoch token bucket: spend @p cost credits of
     * @p tenant and return the admission time for a request arriving at
     * @p t_arr. Identity when weighted admission is off or the address
     * belongs to no tenant.
     */
    Tick admit(int tenant, Tick t_arr, std::uint32_t cost = 1);

    const SimConfig &cfg_;
    EventQueue &eq_;
    CxlLink &link_;
    DramModel dram_;
    Ftl ftl_;
    PageCache cache_;
    std::unique_ptr<WriteLog> log_;

    /** In-flight fetch index: lpn -> slab record (address-stable). */
    FlatMap<PendingFetch *> fetches_;
    Slab<PendingFetch> fetchSlab_;
    Slab<Waiter> waiterSlab_;
    Slab<PageWaiter> pageWaiterSlab_;
    Slab<PendingWrite> pendingWriteSlab_;

    std::function<bool(std::uint64_t, Tick)> hotPageHook_;
    /** Per-page access counters for §III-C hot-page detection. */
    FlatMap<std::uint32_t> accessCounts_;

    /** Compaction state: per-channel pending page jobs. */
    std::vector<std::deque<std::uint64_t>> compactJobs_;
    std::uint32_t compactOutstanding_ = 0;
    Tick compactStart_ = 0;
    bool compacting_ = false;

    SsdStats stats_;

    /** Per-tenant accounting (empty = disabled; see setTenantBounds). */
    std::vector<Addr> tenantStarts_;
    Addr tenantEnd_ = 0;
    std::vector<SsdTenantCounters> tenantStats_;

    /** Per-tenant admission token-bucket state (see admit()). */
    struct AdmissionState
    {
        std::uint64_t epoch = 0;  ///< last epoch with credit spent
        std::uint32_t used = 0;   ///< credits spent in that epoch
        std::uint32_t budget = 0; ///< credits granted per epoch
    };
    bool weightedAdmission_ = false;
    Tick qosEpochTicks_ = 1;
    std::vector<AdmissionState> admission_;

    /** Request/response header payload sizes on the link (bytes). */
    static constexpr std::uint32_t kHeaderBytes = 16;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_SSD_CONTROLLER_H
