/**
 * @file
 * Adaptive page migration (§III-C) plus the TPP-style alternative of
 * §VI-H and the huge-page extension of §IV.
 *
 * SkyByte mode: the SSD controller counts per-page accesses and signals
 * pages that cross the hot threshold; only data-cache-resident pages are
 * promoted. A migration sends an MSI-X interrupt, then copies the region
 * to the host DRAM in cacheline bursts tracked by a Promotion Look-aside
 * Buffer entry (src/core/plb.h). While the copy is in flight, reads are
 * still served from the SSD DRAM and only writes whose PLB migrated bit
 * is set are redirected to the fresh host copy — writes of unmigrated
 * lines land in the SSD and are picked up when their line copies later.
 * On completion the PTE is updated, TLBs are shot down, and the SSD
 * drops the region from its DRAM structures (for huge pages via the
 * custom NVMe notify command of §IV).
 *
 * When the host budget is exhausted, a demotion victim is chosen either
 * by an exact-LRU scan or by Linux-style active/inactive lists
 * (src/core/reclaim.h), per HostMemConfig::reclaim. Clean regions demote
 * for free; dirty pages are copied back into fresh SSD pages.
 *
 * TPP mode [43]: hotness is estimated host-side by sampling CXL accesses
 * (less accurate than the SSD's per-page counters, as §VI-H observes),
 * promotion does not require data-cache residency, and each migration
 * pays an extra software fault cost.
 */

#ifndef SKYBYTE_CORE_MIGRATION_H
#define SKYBYTE_CORE_MIGRATION_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/slab.h"
#include "core/plb.h"
#include "core/reclaim.h"
#include "core/ssd_controller.h"
#include "cxl/cxl.h"
#include "mem/dram.h"

namespace skybyte {

/** Where a cacheline access should be served right now. */
enum class PageHome { Ssd, Host };

/** Migration statistics. */
struct MigrationStats
{
    std::uint64_t promotions = 0; ///< regions (pages unless huge mode)
    std::uint64_t demotions = 0;
    std::uint64_t rejectedPlbFull = 0;
    std::uint64_t rejectedNotCached = 0;
    std::uint64_t tlbShootdowns = 0;
    std::uint64_t inflightWriteRedirects = 0; ///< writes sent to host copy
    std::uint64_t nvmeNotifies = 0;           ///< huge-page drops (§IV)
    /** Promotions rejected by a per-tenant share cap (QoS). */
    std::uint64_t rejectedTenantShare = 0;
};

/**
 * Page-migration engine shared by the SkyByte and TPP policies.
 */
class MigrationEngine
{
  public:
    MigrationEngine(const SimConfig &cfg, EventQueue &eq,
                    SsdController &ssd, DramModel &host_dram,
                    CxlLink &link);

    ~MigrationEngine();

    /** Hook charging TLB-shootdown cost to every core. */
    void
    setShootdownHook(std::function<void(Tick)> hook)
    {
        shootdownHook_ = std::move(hook);
    }

    /**
     * Route decision for an access to cacheline @p line of SSD page
     * @p lpn; refreshes the promoted region's recency and dirtiness.
     * During an in-flight migration the PLB decides per line (§III-C).
     */
    PageHome route(std::uint64_t lpn, std::uint32_t line, Tick now,
                   bool is_write);

    /**
     * SkyByte policy entry: the SSD found @p lpn hot (§III-C).
     * @retval true if a migration was started (the SSD latches the page)
     */
    bool onHotPage(std::uint64_t lpn, Tick now);

    /** TPP policy entry: sample an SSD access host-side. */
    void onSsdAccess(std::uint64_t lpn, Tick now);

    /**
     * Per-tenant migration-budget shares (QosConfig::migrationShare):
     * tenant t (device regions starting at @p device_starts[t]) may
     * hold at most @p share_bytes[t] bytes of promoted host DRAM;
     * promotions beyond the share are rejected and counted in
     * MigrationStats::rejectedTenantShare. Both vectors are indexed by
     * tenant in declaration order; empty share vectors disable the cap.
     */
    void setTenantShares(std::vector<Addr> device_starts,
                         std::vector<std::uint64_t> share_bytes);

    /** Promoted bytes currently attributed to @p tenant (QoS view). */
    std::uint64_t tenantPromotedBytes(std::size_t tenant) const
    {
        return tenant < tenantPromotedBytes_.size()
                   ? tenantPromotedBytes_[tenant]
                   : 0;
    }

    /** 4 KB pages per migrated region (1, or 512 in huge-page mode). */
    std::uint32_t regionPages() const { return regionPages_; }

    /** Host-resident pages, including regions still copying: both hold
     *  host DRAM, so both count against the promotion budget. */
    std::uint64_t promotedPages() const
    {
        return (promoted_.size() + plb_.occupancy()) * regionPages_;
    }
    std::uint64_t promotedBytes() const
    {
        return promotedPages() * kPageBytes;
    }
    bool isPromoted(std::uint64_t lpn) const
    {
        return promoted_.contains(regionBase(lpn));
    }
    const MigrationStats &stats() const { return migStats_; }
    const Plb &plb() const { return plb_; }
    const ActiveInactiveLists &reclaimLists() const { return lists_; }

  private:
    /**
     * A region resident in host DRAM. Doubles as an intrusive node of
     * the recency list kept sorted by lastUse (head = coldest), so LRU
     * victim selection reads the head instead of scanning promoted_.
     * Touches arrive with per-core instruction-cursor ticks that
     * interleave non-monotonically across core quanta, so a touched
     * node is re-inserted by a backward walk from the tail; the input
     * is nearly sorted (displacement bounded by quantum interleaving),
     * making the walk amortized O(1). Node addresses are stable: nodes
     * live in regionSlab_ (chunks are never freed or compacted), and
     * promoted_ only stores pointers, so its rehashes are harmless.
     */
    struct PromotedRegion
    {
        Tick lastUse = 0;
        std::uint64_t base = 0;
        PromotedRegion *lruPrev = nullptr;
        PromotedRegion *lruNext = nullptr;
        /** Pages written while promoted (need copy-back on demotion):
         *  sorted and unique, so demotion copy-back walks ascending. */
        std::vector<std::uint64_t> dirtyPages;
    };

    /** Record @p lpn in a sorted-unique dirty-page list. */
    static void markDirty(std::vector<std::uint64_t> &pages,
                          std::uint64_t lpn);

    /** Detach @p region from the recency list. */
    void lruUnlink(PromotedRegion &region);

    /** Insert @p region in lastUse order, walking back from the tail. */
    void lruInsertByLastUse(PromotedRegion &region);

    /** Refresh recency after updating region.lastUse. */
    void
    lruTouch(PromotedRegion &region)
    {
        lruUnlink(region);
        lruInsertByLastUse(region);
    }

    /** Begin the promotion of the region at @p base (checks done). */
    bool promote(std::uint64_t base, Tick now, Tick extra_cost);

    /** Issue the next burst of line copies starting at @p line_idx. */
    void scheduleBurst(std::uint64_t base, std::uint64_t line_idx,
                       Tick when);

    /** Burst landed: poke host lines, advance the PLB entry. */
    void completeBurst(std::uint64_t base, std::uint64_t line_idx,
                       std::uint32_t lines);

    /** All lines copied: PTE update, shootdown, SSD drop. */
    void finishMigration(std::uint64_t base);

    /**
     * Demote one region back to the SSD.
     * @param min_idle refuse victims used within the last min_idle ticks
     * @retval true if a region was demoted
     */
    bool demoteColdest(Tick now, Tick min_idle = 0);

    /** Copy the host data of @p base back to the SSD and untrack it. */
    void demoteRegion(std::uint64_t base, Tick now);

    /** Exact-LRU victim pick (ReclaimPolicy::LruScan): list head. */
    bool selectVictimLru(Tick now, Tick min_idle, std::uint64_t &victim);

    std::uint64_t
    regionBase(std::uint64_t lpn) const
    {
        return lpn - (lpn % regionPages_);
    }

    bool
    regionPinned(std::uint64_t base) const
    {
        return base * kPageBytes < cfg_.hostMem.pinnedDeviceBytes;
    }

    /** Tenant owning region @p base (valid only with shares set). */
    std::size_t tenantOfBase(std::uint64_t base) const;

    /** Idle window a victim must exceed before displacement. */
    static constexpr Tick kAntiThrashIdle =
        1000 * 1000 * kTicksPerNs; // 1 ms

    Addr
    hostKeyOf(std::uint64_t lpn, std::uint32_t off) const
    {
        return lpn * kPageBytes
               + static_cast<Addr>(off) * kCachelineBytes;
    }

    const SimConfig &cfg_;
    EventQueue &eq_;
    SsdController &ssd_;
    DramModel &hostDram_;
    CxlLink &link_;
    Rng rng_;
    std::function<void(Tick)> shootdownHook_;

    std::uint32_t regionPages_ = 1;
    Plb plb_;
    ActiveInactiveLists lists_;
    /** Backing store for PromotedRegion nodes (stable addresses). */
    Slab<PromotedRegion> regionSlab_;
    FlatMap<PromotedRegion *> promoted_;
    PromotedRegion *lruHead_ = nullptr; ///< coldest promoted region
    PromotedRegion *lruTail_ = nullptr; ///< hottest promoted region
    /** Pages dirtied by redirected writes while their region migrates
     *  (sorted-unique, same invariant as PromotedRegion::dirtyPages). */
    FlatMap<std::vector<std::uint64_t>> migratingDirty_;
    FlatMap<std::uint32_t> tppScores_;
    MigrationStats migStats_;
    /** @name Per-tenant share state (empty = shares disabled). @{ */
    std::vector<Addr> tenantStarts_;
    std::vector<std::uint64_t> tenantShareBytes_;
    std::vector<std::uint64_t> tenantPromotedBytes_;
    /** @} */
};

} // namespace skybyte

#endif // SKYBYTE_CORE_MIGRATION_H
