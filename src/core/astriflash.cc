#include "core/astriflash.h"

namespace skybyte {

AstriFlashCache::AstriFlashCache(const SimConfig &cfg, EventQueue &eq,
                                 SsdController &ssd, DramModel &host_dram)
    : cfg_(cfg), eq_(eq), ssd_(ssd), hostDram_(host_dram),
      tags_(cfg.hostMem.promotedBytesMax, 8)
{}

void
AstriFlashCache::respond(const LineWaiter &w, std::uint64_t lpn,
                         const PageData &data, Tick t_page)
{
    const Addr line_addr = lpn * kPageBytes
                           + static_cast<Addr>(w.off) * kCachelineBytes;
    const Tick t_data =
        hostDram_.serviceAt(t_page, kCachelineBytes, line_addr);
    MemResponse resp;
    resp.kind = MemResponseKind::Data;
    resp.lineAddr = line_addr;
    resp.value = data[w.off];
    eq_.schedule(t_data, [cb = w.cb, resp] { cb(resp); });
}

void
AstriFlashCache::read(Addr dev_line_addr, Tick when, MemCallback cb)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);

    if (CachedPage *page = tags_.lookup(lpn)) {
        astriStats_.hostHits++;
        page->touchedMask |= 1ULL << off;
        const Tick t_data =
            hostDram_.serviceAt(when, kCachelineBytes, dev_line_addr);
        MemResponse resp;
        resp.kind = MemResponseKind::Data;
        resp.lineAddr = dev_line_addr;
        resp.value = page->data[off];
        eq_.schedule(t_data, [cb = std::move(cb), resp] { cb(resp); });
        return;
    }

    astriStats_.hostMisses++;
    const bool filling = pending_.count(lpn) != 0;
    if (!filling)
        startFill(lpn, when);

    if (cfg_.policy.deviceTriggeredCtxSwitch) {
        // AstriFlash switches user-level threads on every host DRAM
        // miss; the preset sets a sub-microsecond switch overhead.
        astriStats_.userSwitchHints++;
        MemResponse resp;
        resp.kind = MemResponseKind::DelayHint;
        resp.lineAddr = dev_line_addr;
        eq_.schedule(when + nsToTicks(20.0),
                     [cb = std::move(cb), resp] { cb(resp); });
        return;
    }
    pending_[lpn].readers.push_back({off, when, std::move(cb)});
}

void
AstriFlashCache::write(Addr dev_line_addr, LineValue value, Tick when)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);

    if (CachedPage *page = tags_.lookup(lpn)) {
        hostDram_.serviceAt(when, kCachelineBytes, dev_line_addr);
        page->data[off] = value;
        page->dirty = true;
        page->dirtyMask |= 1ULL << off;
        page->touchedMask |= 1ULL << off;
        return;
    }
    // Write-allocate at page granularity.
    auto it = pending_.find(lpn);
    if (it == pending_.end()) {
        astriStats_.hostMisses++;
        startFill(lpn, when);
        it = pending_.find(lpn);
    }
    it->second.writes.emplace_back(off, value);
}

void
AstriFlashCache::startFill(std::uint64_t lpn, Tick when)
{
    pending_.try_emplace(lpn);
    ssd_.readPageToHost(lpn, when,
                        [this, lpn](Tick t, const PageData &data) {
        auto node = pending_.extract(lpn);
        astriStats_.pageFills++;

        PageData merged = data;
        if (!node.empty()) {
            for (const auto &[off, value] : node.mapped().writes)
                merged[off] = value;
        }

        const Tick t_ins = hostDram_.serviceAt(t, kPageBytes,
                                               lpn * kPageBytes);
        PageEvict ev = tags_.fill(lpn, merged);
        if (CachedPage *page = tags_.lookup(lpn)) {
            if (!node.empty()) {
                for (const auto &[off, value] : node.mapped().writes) {
                    page->dirty = true;
                    page->dirtyMask |= 1ULL << off;
                    page->touchedMask |= 1ULL << off;
                    (void)value;
                }
            }
        }
        if (ev.evicted && ev.dirty) {
            astriStats_.dirtyWritebacks++;
            ssd_.writePageFromHost(ev.lpn, ev.data, t_ins);
        }
        if (!node.empty()) {
            for (const auto &w : node.mapped().readers)
                respond(w, lpn, merged, t_ins);
        }
    });
}

LineValue
AstriFlashCache::peekLine(Addr dev_line_addr)
{
    if (const CachedPage *page = tags_.probe(pageNumber(dev_line_addr)))
        return page->data[lineInPage(dev_line_addr)];
    return ssd_.peekLine(dev_line_addr);
}

} // namespace skybyte
