#include "core/astriflash.h"

namespace skybyte {

AstriFlashCache::AstriFlashCache(const SimConfig &cfg, EventQueue &eq,
                                 SsdController &ssd, DramModel &host_dram)
    : cfg_(cfg), eq_(eq), ssd_(ssd), hostDram_(host_dram),
      tags_(cfg.hostMem.promotedBytesMax, 8)
{}

AstriFlashCache::~AstriFlashCache()
{
    pending_.forEach([this](std::uint64_t, PendingFill *&fill) {
        releaseFill(fill);
    });
}

void
AstriFlashCache::releaseFill(PendingFill *fill)
{
    fill->readers.drainTo(readerSlab_);
    fill->writes.drainTo(writeSlab_);
    fillSlab_.release(fill);
}

void
AstriFlashCache::addReader(PendingFill &fill, std::uint32_t off,
                           Tick issued_at, MemCallback cb)
{
    LineWaiter *w = readerSlab_.alloc();
    w->off = off;
    w->issuedAt = issued_at;
    w->cb = std::move(cb);
    fill.readers.append(w);
}

void
AstriFlashCache::addWrite(PendingFill &fill, std::uint32_t off,
                          LineValue value)
{
    BufferedWrite *bw = writeSlab_.alloc();
    bw->off = off;
    bw->value = value;
    fill.writes.append(bw);
}

void
AstriFlashCache::respond(LineWaiter &w, std::uint64_t lpn,
                         const PageData &data, Tick t_page)
{
    const Addr line_addr = lpn * kPageBytes
                           + static_cast<Addr>(w.off) * kCachelineBytes;
    const Tick t_data =
        hostDram_.serviceAt(t_page, kCachelineBytes, line_addr);
    MemResponse resp;
    resp.kind = MemResponseKind::Data;
    resp.lineAddr = line_addr;
    resp.value = data[w.off];
    eq_.schedule(t_data,
                 [cb = std::move(w.cb), resp]() mutable { cb(resp); });
}

void
AstriFlashCache::read(Addr dev_line_addr, Tick when, MemCallback cb)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);

    if (CachedPage *page = tags_.lookup(lpn)) {
        astriStats_.hostHits++;
        page->touchedMask |= 1ULL << off;
        const Tick t_data =
            hostDram_.serviceAt(when, kCachelineBytes, dev_line_addr);
        MemResponse resp;
        resp.kind = MemResponseKind::Data;
        resp.lineAddr = dev_line_addr;
        resp.value = page->data[off];
        eq_.schedule(t_data,
                     [cb = std::move(cb), resp]() mutable { cb(resp); });
        return;
    }

    astriStats_.hostMisses++;
    PendingFill **slot = pending_.find(lpn);
    PendingFill *fill = slot != nullptr ? *slot : startFill(lpn, when);

    if (cfg_.policy.deviceTriggeredCtxSwitch) {
        // AstriFlash switches user-level threads on every host DRAM
        // miss; the preset sets a sub-microsecond switch overhead.
        astriStats_.userSwitchHints++;
        MemResponse resp;
        resp.kind = MemResponseKind::DelayHint;
        resp.lineAddr = dev_line_addr;
        eq_.schedule(when + nsToTicks(20.0),
                     [cb = std::move(cb), resp]() mutable { cb(resp); });
        return;
    }
    addReader(*fill, off, when, std::move(cb));
}

void
AstriFlashCache::write(Addr dev_line_addr, LineValue value, Tick when)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);

    if (CachedPage *page = tags_.lookup(lpn)) {
        hostDram_.serviceAt(when, kCachelineBytes, dev_line_addr);
        page->data[off] = value;
        page->dirty = true;
        page->dirtyMask |= 1ULL << off;
        page->touchedMask |= 1ULL << off;
        return;
    }
    // Write-allocate at page granularity.
    PendingFill **slot = pending_.find(lpn);
    PendingFill *fill;
    if (slot == nullptr) {
        astriStats_.hostMisses++;
        fill = startFill(lpn, when);
    } else {
        fill = *slot;
    }
    addWrite(*fill, off, value);
}

AstriFlashCache::PendingFill *
AstriFlashCache::startFill(std::uint64_t lpn, Tick when)
{
    PendingFill *fill = fillSlab_.alloc();
    pending_.tryEmplace(lpn, fill);
    ssd_.readPageToHost(lpn, when,
                        [this, lpn](Tick t, const PageData &data) {
        PendingFill **slot = pending_.find(lpn);
        PendingFill *node = slot != nullptr ? *slot : nullptr;
        if (node != nullptr)
            pending_.erase(lpn);
        astriStats_.pageFills++;

        const Tick t_ins = hostDram_.serviceAt(t, kPageBytes,
                                               lpn * kPageBytes);
        PageEvict ev;
        PageData victim_data;
        CachedPage *page = tags_.fill(lpn, ev, &victim_data);
        page->data = data;
        if (node != nullptr) {
            for (BufferedWrite *bw = node->writes.head; bw != nullptr;
                 bw = bw->next) {
                page->data[bw->off] = bw->value;
                page->dirty = true;
                page->dirtyMask |= 1ULL << bw->off;
                page->touchedMask |= 1ULL << bw->off;
            }
        }
        if (ev.evicted && ev.dirty) {
            astriStats_.dirtyWritebacks++;
            ssd_.writePageFromHost(ev.lpn, victim_data, t_ins);
        }
        if (node != nullptr) {
            for (LineWaiter *w = node->readers.head; w != nullptr;
                 w = w->next) {
                respond(*w, lpn, page->data, t_ins);
            }
            releaseFill(node);
        }
    });
    return fill;
}

LineValue
AstriFlashCache::peekLine(Addr dev_line_addr)
{
    if (const CachedPage *page = tags_.probe(pageNumber(dev_line_addr)))
        return page->data[lineInPage(dev_line_addr)];
    return ssd_.peekLine(dev_line_addr);
}

} // namespace skybyte
