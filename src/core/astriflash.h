/**
 * @file
 * AstriFlash-CXL baseline (§VI-H, [23]): the host DRAM acts as a
 * hardware-managed set-associative cache of the SSD at 4 KB page
 * granularity. A host-DRAM miss triggers a cheap user-level thread
 * switch (modelled as a DelayHint whose switch overhead the AstriFlash
 * preset configures to ~500 ns) while the page is fetched from the SSD;
 * dirty victim pages are written back to the SSD whole. The SSD is
 * treated as a black box accessed only at page granularity — no write
 * log integration, exactly as the paper argues.
 */

#ifndef SKYBYTE_CORE_ASTRIFLASH_H
#define SKYBYTE_CORE_ASTRIFLASH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "core/page_cache.h"
#include "core/ssd_controller.h"
#include "cpu/mem_backend.h"
#include "mem/dram.h"

namespace skybyte {

/** AstriFlash statistics. */
struct AstriFlashStats
{
    std::uint64_t hostHits = 0;
    std::uint64_t hostMisses = 0;
    std::uint64_t pageFills = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t userSwitchHints = 0;
};

/**
 * Host-side page cache front-end for the SSD.
 */
class AstriFlashCache
{
  public:
    AstriFlashCache(const SimConfig &cfg, EventQueue &eq,
                    SsdController &ssd, DramModel &host_dram);

    /** Demand read of a device line through the host page cache. */
    void read(Addr dev_line_addr, Tick when, MemCallback cb);

    /** Posted write of a device line through the host page cache. */
    void write(Addr dev_line_addr, LineValue value, Tick when);

    /** Functional peek (host copy wins while resident). */
    LineValue peekLine(Addr dev_line_addr);

    const AstriFlashStats &stats() const { return astriStats_; }

  private:
    struct LineWaiter
    {
        std::uint32_t off;
        Tick issuedAt;
        MemCallback cb;
    };

    struct PendingFill
    {
        std::vector<LineWaiter> readers;
        std::vector<std::pair<std::uint32_t, LineValue>> writes;
    };

    void startFill(std::uint64_t lpn, Tick when);
    void respond(const LineWaiter &w, std::uint64_t lpn,
                 const PageData &data, Tick t_page);

    const SimConfig &cfg_;
    EventQueue &eq_;
    SsdController &ssd_;
    DramModel &hostDram_;
    PageCache tags_;
    std::unordered_map<std::uint64_t, PendingFill> pending_;
    AstriFlashStats astriStats_;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_ASTRIFLASH_H
