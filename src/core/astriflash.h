/**
 * @file
 * AstriFlash-CXL baseline (§VI-H, [23]): the host DRAM acts as a
 * hardware-managed set-associative cache of the SSD at 4 KB page
 * granularity. A host-DRAM miss triggers a cheap user-level thread
 * switch (modelled as a DelayHint whose switch overhead the AstriFlash
 * preset configures to ~500 ns) while the page is fetched from the SSD;
 * dirty victim pages are written back to the SSD whole. The SSD is
 * treated as a black box accessed only at page granularity — no write
 * log integration, exactly as the paper argues.
 *
 * The fill path mirrors the SSD controller's request-path layout:
 * in-flight fills are slab records with intrusive FIFO chains of
 * readers/buffered writes, indexed by an open-addressing FlatMap.
 */

#ifndef SKYBYTE_CORE_ASTRIFLASH_H
#define SKYBYTE_CORE_ASTRIFLASH_H

#include <cstdint>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/flat_map.h"
#include "common/slab.h"
#include "core/page_cache.h"
#include "core/ssd_controller.h"
#include "cpu/mem_backend.h"
#include "mem/dram.h"

namespace skybyte {

/** AstriFlash statistics. */
struct AstriFlashStats
{
    std::uint64_t hostHits = 0;
    std::uint64_t hostMisses = 0;
    std::uint64_t pageFills = 0;
    std::uint64_t dirtyWritebacks = 0;
    std::uint64_t userSwitchHints = 0;
};

/**
 * Host-side page cache front-end for the SSD.
 */
class AstriFlashCache
{
  public:
    AstriFlashCache(const SimConfig &cfg, EventQueue &eq,
                    SsdController &ssd, DramModel &host_dram);
    ~AstriFlashCache();

    AstriFlashCache(const AstriFlashCache &) = delete;
    AstriFlashCache &operator=(const AstriFlashCache &) = delete;

    /** Demand read of a device line through the host page cache. */
    void read(Addr dev_line_addr, Tick when, MemCallback cb);

    /** Posted write of a device line through the host page cache. */
    void write(Addr dev_line_addr, LineValue value, Tick when);

    /** Functional peek (host copy wins while resident). */
    LineValue peekLine(Addr dev_line_addr);

    const AstriFlashStats &stats() const { return astriStats_; }

  private:
    /** One read waiting on an in-flight fill (intrusive FIFO). */
    struct LineWaiter
    {
        LineWaiter *next = nullptr;
        std::uint32_t off = 0;
        Tick issuedAt = 0;
        MemCallback cb;
    };

    /** One write-allocate line buffered until the fill lands. */
    struct BufferedWrite
    {
        BufferedWrite *next = nullptr;
        std::uint32_t off = 0;
        LineValue value = 0;
    };

    /** One in-flight page fill (slab-allocated, address-stable). */
    struct PendingFill
    {
        IntrusiveFifo<LineWaiter> readers;
        IntrusiveFifo<BufferedWrite> writes;
    };

    PendingFill *startFill(std::uint64_t lpn, Tick when);
    void addReader(PendingFill &fill, std::uint32_t off, Tick issued_at,
                   MemCallback cb);
    void addWrite(PendingFill &fill, std::uint32_t off, LineValue value);
    void releaseFill(PendingFill *fill);
    void respond(LineWaiter &w, std::uint64_t lpn, const PageData &data,
                 Tick t_page);

    const SimConfig &cfg_;
    EventQueue &eq_;
    SsdController &ssd_;
    DramModel &hostDram_;
    PageCache tags_;
    FlatMap<PendingFill *> pending_;
    Slab<PendingFill> fillSlab_;
    Slab<LineWaiter> readerSlab_;
    Slab<BufferedWrite> writeSlab_;
    AstriFlashStats astriStats_;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_ASTRIFLASH_H
