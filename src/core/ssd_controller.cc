#include "core/ssd_controller.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "cxl/ndr.h"

namespace skybyte {

SsdController::SsdController(const SimConfig &cfg, EventQueue &eq,
                             CxlLink &link)
    : cfg_(cfg), eq_(eq), link_(link), dram_(eq, cfg.ssdDram),
      ftl_(cfg.flash, eq, cfg.seed ^ 0xf7a5ULL),
      cache_(cfg.ssdCache.dataCacheBytes, cfg.ssdCache.dataCacheWays)
{
    if (cfg.policy.writeLogEnable) {
        // skybyte-lint: allow(hot-path-alloc) one-time construction; steady-state appends reuse the log's own slabs
        log_ = std::make_unique<WriteLog>(
            cfg.ssdCache.writeLogBytes,
            cfg.ssdCache.logIndexInitialEntries,
            cfg.ssdCache.logIndexLoadFactor);
    }
    compactJobs_.resize(cfg.flash.channels);
}

SsdController::~SsdController()
{
    // Fetches still in flight at teardown (timed-out runs) own waiter
    // records whose callbacks may hold heap fallbacks: drain them.
    fetches_.forEach([this](std::uint64_t, PendingFetch *&pf) {
        releaseFetch(pf);
    });
}

void
SsdController::releaseFetch(PendingFetch *pf)
{
    pf->waiters.drainTo(waiterSlab_);
    pf->pageWaiters.drainTo(pageWaiterSlab_);
    pf->pendingWrites.drainTo(pendingWriteSlab_);
    fetchSlab_.release(pf);
}

void
SsdController::addWaiter(PendingFetch &pf, std::uint32_t off,
                         Tick ready_at, MemCallback cb)
{
    Waiter *w = waiterSlab_.alloc();
    w->lineOff = off;
    w->readyAt = ready_at;
    w->cb = std::move(cb);
    pf.waiters.append(w);
}

void
SsdController::addPageWaiter(PendingFetch &pf, Tick ready_at,
                             PageReadFn cb)
{
    PageWaiter *pw = pageWaiterSlab_.alloc();
    pw->readyAt = ready_at;
    pw->cb = std::move(cb);
    pf.pageWaiters.append(pw);
}

void
SsdController::addPendingWrite(PendingFetch &pf, std::uint32_t off,
                               LineValue value)
{
    PendingWrite *wr = pendingWriteSlab_.alloc();
    wr->off = off;
    wr->value = value;
    pf.pendingWrites.append(wr);
}

void
SsdController::setTenantBounds(std::vector<Addr> starts, Addr end_bytes)
{
    if (!starts.empty()
        && (starts.front() != 0
            || !std::is_sorted(starts.begin(), starts.end())
            || starts.back() >= end_bytes)) {
        throw std::invalid_argument(
            "tenant bounds must start at 0, ascend, and end before "
            "end_bytes");
    }
    tenantStarts_ = std::move(starts);
    tenantEnd_ = end_bytes;
    tenantStats_.assign(tenantStarts_.size(), SsdTenantCounters{});
}

int
SsdController::tenantIndexFor(Addr dev) const
{
    // Addresses past the last tenant's region (a sequential prefetch
    // running off the end of the mix footprint) belong to nobody.
    if (tenantStarts_.empty() || dev >= tenantEnd_)
        return -1;
    std::size_t t = tenantStarts_.size() - 1;
    while (t > 0 && dev < tenantStarts_[t])
        t--;
    return static_cast<int>(t);
}

SsdTenantCounters *
SsdController::tenantFor(Addr dev)
{
    const int t = tenantIndexFor(dev);
    return t < 0 ? nullptr : &tenantStats_[static_cast<std::size_t>(t)];
}

void
SsdController::configureQos(const QosConfig &qos,
                            const std::vector<double> &weights)
{
    double total = 0.0;
    for (const double w : weights)
        total += w;
    if (weights.size() != tenantStarts_.size() || total <= 0.0)
        throw std::invalid_argument(
            "configureQos needs one positive weight per tenant bound");
    if (qos.weightedAdmission) {
        weightedAdmission_ = true;
        qosEpochTicks_ = std::max<Tick>(qos.epochTicks, 1);
        admission_.assign(weights.size(), AdmissionState{});
        for (std::size_t t = 0; t < weights.size(); ++t) {
            admission_[t].budget = std::max<std::uint32_t>(
                1, static_cast<std::uint32_t>(
                       static_cast<double>(qos.creditsPerEpoch)
                       * weights[t] / total));
        }
    }
    if (qos.writeLogQuota && log_ != nullptr) {
        const auto cap = static_cast<double>(
            log_->activeBuffer().capacityEntries());
        std::vector<std::uint64_t> quotas(weights.size());
        for (std::size_t t = 0; t < weights.size(); ++t) {
            quotas[t] = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(cap * weights[t] / total));
        }
        log_->setTenantQuotas(std::move(quotas));
    }
}

Tick
SsdController::admit(int tenant, Tick t_arr, std::uint32_t cost)
{
    if (!weightedAdmission_ || tenant < 0
        || static_cast<std::size_t>(tenant) >= admission_.size())
        return t_arr;
    AdmissionState &st = admission_[static_cast<std::size_t>(tenant)];
    const std::uint64_t e = t_arr / qosEpochTicks_;
    // Epochs only move forward: a same-tick replay of queued lane events
    // must spend from the same bucket it spent from the first time.
    if (e > st.epoch) {
        st.epoch = e;
        st.used = 0;
    }
    for (std::uint32_t c = 0; c < cost; ++c) {
        while (st.used >= st.budget) {
            st.epoch++;
            st.used = 0;
        }
        st.used++;
    }
    // Pace the spent credit to its slot WITHIN the epoch rather than
    // admitting every held request at the epoch boundary: a boundary
    // release synchronizes the whole backlog into one burst whose
    // queueing spike hits the other tenants' tail latency — the exact
    // thing the throttle exists to protect.
    const Tick slot = st.epoch * qosEpochTicks_
                      + static_cast<Tick>(st.used - 1)
                            * (qosEpochTicks_ / st.budget);
    return std::max<Tick>(t_arr, slot);
}

Tick
SsdController::indexLatency() const
{
    // Log and cache indexes are probed in parallel (§III-B); the write
    // log index is the slower of the two on the FPGA prototype (§V).
    return logEnabled() ? std::max(cfg_.ssdCache.writeLogIndexLatency,
                                   cfg_.ssdCache.dataCacheIndexLatency)
                        : cfg_.ssdCache.dataCacheIndexLatency;
}

bool
SsdController::shouldHint(std::uint64_t lpn, Tick now, Tick est) const
{
    if (!cfg_.policy.deviceTriggeredCtxSwitch)
        return false;
    // GC blocks the channel for milliseconds: always switch (§III-A).
    if (ftl_.gcActiveFor(lpn))
        return true;
    (void)now;
    return est > cfg_.policy.csThreshold;
}

void
SsdController::sendDelayHint(Tick t, MemCallback cb)
{
    stats_.delayHintsSent++;
    // The hint travels as a Figure 8 NDR flit with the SkyByte-Delay
    // opcode: encoded device-side, decoded host-side. The tag is the
    // link transaction tag of the blocked MemRd (C1/C2).
    NdrMessage ndr;
    ndr.valid = true;
    ndr.opcode = CxlNdrOpcode::SkyByteDelay;
    ndr.tag = link_.nextTag();
    const NdrFlit flit = encodeNdr(ndr);
    const Tick t_host = link_.deliverToHost(t, kHeaderBytes);
    eq_.schedule(t_host, [cb = std::move(cb), flit]() mutable {
        const auto decoded = decodeNdr(flit);
        assert(decoded
               && decoded->opcode == CxlNdrOpcode::SkyByteDelay);
        MemResponse resp;
        resp.kind = MemResponseKind::DelayHint;
        resp.tag = decoded ? decoded->tag : 0;
        cb(resp);
    });
}

void
SsdController::touchForPromotion(std::uint64_t lpn, Tick now)
{
    if (!hotPageHook_
        || cfg_.policy.migration != MigrationMechanism::SkyByte) {
        return;
    }
    auto &count = accessCounts_[lpn];
    if (count == ~0u)
        return; // promotion already in flight / done
    if (count < ~0u)
        ++count;
    // Only cache-resident pages are candidates (§III-C); a rejected
    // candidate stays eligible and retries on a later access.
    if (count >= cfg_.policy.hotPageThreshold && isPageCached(lpn)) {
        if (hotPageHook_(lpn, now)) {
            // The hook can demote other regions synchronously, and
            // their writePageFromHost copy-backs erase counters from
            // this open-addressing table — relocating slots. Re-find
            // instead of writing through the pre-hook reference.
            if (auto *latch = accessCounts_.find(lpn))
                *latch = ~0u;
            stats_.pagePromotionsSignalled++;
        }
    }
}

void
SsdController::read(Addr dev_line_addr, Tick when, MemCallback cb)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);
    const Tick t_link = link_.deliverToDevice(when, kHeaderBytes);
    const int tenant_idx = tenantIndexFor(dev_line_addr);
    // Weighted admission (QoS): a tenant past its epoch credit budget
    // has the request held at the device front end; the late response
    // backpressures that tenant's cores through their ROB/MSHR limits.
    const Tick t_arr = admit(tenant_idx, t_link);
    const Tick t_idx = t_arr + indexLatency();
    touchForPromotion(lpn, t_arr);

    // Parallel probe of write log and data cache (R1/R2 in Fig 11).
    std::optional<LineValue> log_val;
    if (logEnabled())
        log_val = log_->lookup(dev_line_addr);
    CachedPage *page = cache_.lookup(lpn);

    SsdTenantCounters *tenant =
        tenant_idx < 0
            ? nullptr
            : &tenantStats_[static_cast<std::size_t>(tenant_idx)];
    if (tenant != nullptr && t_arr > t_link) {
        tenant->delayedReads++;
        tenant->throttleDelayTicks += t_arr - t_link;
    }

    if (page != nullptr || log_val.has_value()) {
        LineValue value;
        if (page != nullptr) {
            page->touchedMask |= 1ULL << off;
            value = log_val.value_or(page->data[off]);
            stats_.readHitsCache++;
            if (tenant != nullptr)
                tenant->readHitsCache++;
        } else {
            value = *log_val;
            stats_.readHitsLog++;
            if (tenant != nullptr)
                tenant->readHitsLog++;
        }
        const Tick t_data =
            dram_.serviceAt(t_idx, kCachelineBytes, dev_line_addr);
        const Tick t_resp = link_.deliverToHost(t_data, kCachelineBytes);
        stats_.amatReads++;
        // Admission hold time (t_arr - t_link) is QoS throttling, not
        // protocol: it lands in the tenant's throttleDelayTicks instead.
        stats_.protocolTicks += static_cast<double>(
            (t_link - when) + (t_resp - t_data));
        stats_.indexingTicks += static_cast<double>(indexLatency());
        stats_.ssdDramTicks += static_cast<double>(t_data - t_idx);
        MemResponse resp;
        resp.kind = MemResponseKind::Data;
        resp.lineAddr = dev_line_addr;
        resp.value = value;
        eq_.schedule(t_resp,
                     [cb = std::move(cb), resp]() mutable { cb(resp); });
        return;
    }

    // R3: flash fetch needed.
    stats_.readMisses++;
    if (tenant != nullptr)
        tenant->readMisses++;
    if (PendingFetch **slot = fetches_.find(lpn)) {
        PendingFetch *pf = *slot;
        const Tick remaining =
            pf->expectedDone > t_idx ? pf->expectedDone - t_idx : 0;
        if (cfg_.policy.deviceTriggeredCtxSwitch
            && remaining > cfg_.policy.csThreshold) {
            sendDelayHint(t_idx, std::move(cb));
            return;
        }
        pf->prefetch = false;
        addWaiter(*pf, off, t_idx, std::move(cb));
        return;
    }

    const Tick est = ftl_.estimateReadDelay(lpn, t_idx);
    const bool hint = shouldHint(lpn, t_idx, est);
    // Slab records are address-stable: pf survives the prefetch's
    // fetch-table insert below (the map only stores the pointer).
    PendingFetch *pf = startFetch(lpn, t_idx, false);

    // Sequential next-page prefetch (Base-CSSD optimization [32],[62]),
    // throttled so useless prefetches cannot saturate a busy channel.
    if (cfg_.ssdCache.baseCssdPrefetch) {
        const std::uint64_t next = lpn + 1;
        if (cache_.probe(next) == nullptr && !fetches_.contains(next)
            && next * kPageBytes < cfg_.flash.totalBytes()
            && ftl_.channelOf(next).pendingReads() < 2
            && !ftl_.gcActiveFor(next)) {
            stats_.prefetches++;
            startFetch(next, t_idx, true);
        }
    }

    if (hint) {
        sendDelayHint(t_idx, std::move(cb));
        return;
    }
    addWaiter(*pf, off, t_idx, std::move(cb));
}

SsdController::PendingFetch *
SsdController::startFetch(std::uint64_t lpn, Tick t, bool prefetch)
{
    auto [slot, inserted] = fetches_.tryEmplace(lpn, nullptr);
    if (inserted)
        *slot = fetchSlab_.alloc();
    PendingFetch *pf = *slot;
    pf->startedAt = t;
    pf->prefetch = prefetch;
    pf->expectedDone = t + ftl_.estimateReadDelay(lpn, t);
    ftl_.readPage(lpn, t, [this, lpn](Tick done) {
        onPageArrived(lpn, done);
    });
    return pf;
}

void
SsdController::mergeLogInto(std::uint64_t lpn, PageData &data)
{
    if (!logEnabled())
        return;
    log_->mergePageInto(lpn, data);
}

void
SsdController::handleEviction(const PageEvict &ev,
                              const PageData *victim_data, Tick when)
{
    if (!ev.evicted)
        return;
    stats_.readLocality.record(
        static_cast<double>(std::popcount(ev.touchedMask))
        / kLinesPerPage);
    if (ev.dirty && !logEnabled()) {
        // Base-CSSD: write the whole dirty page back to flash.
        assert(victim_data != nullptr);
        stats_.dirtyEvictions++;
        stats_.writeLocality.record(
            static_cast<double>(std::popcount(ev.dirtyMask))
            / kLinesPerPage);
        ftl_.writePage(ev.lpn, when, *victim_data, nullptr);
    }
}

void
SsdController::respondLine(Waiter &w, std::uint64_t lpn, Tick t_page,
                           const PageData &data)
{
    const Addr line_addr = lpn * kPageBytes
                           + static_cast<Addr>(w.lineOff) * kCachelineBytes;
    const Tick t_data = dram_.serviceAt(t_page, kCachelineBytes, line_addr);
    const Tick t_resp = link_.deliverToHost(t_data, kCachelineBytes);
    stats_.amatReads++;
    stats_.protocolTicks +=
        static_cast<double>(link_.protocolLatency() * 2);
    stats_.indexingTicks += static_cast<double>(indexLatency());
    stats_.ssdDramTicks += static_cast<double>(t_data - t_page);
    stats_.flashTicks += static_cast<double>(
        t_page > w.readyAt ? t_page - w.readyAt : 0);
    MemResponse resp;
    resp.kind = MemResponseKind::Data;
    resp.lineAddr = line_addr;
    resp.value = data[w.lineOff];
    eq_.schedule(t_resp,
                 [cb = std::move(w.cb), resp]() mutable { cb(resp); });
}

void
SsdController::onPageArrived(std::uint64_t lpn, Tick done)
{
    PendingFetch **slot = fetches_.find(lpn);
    if (slot == nullptr)
        return;
    PendingFetch *pf = *slot;
    fetches_.erase(lpn);

    stats_.flashReadLatency.record(done - pf->startedAt);
    if (SsdTenantCounters *tenant = tenantFor(lpn * kPageBytes)) {
        tenant->flashPageReads++;
        tenant->flashReadTicks +=
            static_cast<double>(done - pf->startedAt);
    }

    // Install into the data cache (a 4 KB SSD DRAM write). The payload
    // is written directly into the claimed slot: no transient PageData.
    const Tick t_ins = dram_.serviceAt(done, kPageBytes, lpn * kPageBytes);
    PageEvict ev;
    PageData victim_data;
    CachedPage *page =
        cache_.fill(lpn, ev, logEnabled() ? nullptr : &victim_data);
    page->data = ftl_.pageData(lpn);
    mergeLogInto(lpn, page->data);
    handleEviction(ev, ev.dirty ? &victim_data : nullptr, t_ins);

    // Waiters respond from the fetched snapshot, BEFORE the buffered
    // write-allocate lines apply: those writes arrived after the reads
    // they would otherwise leak into.
    for (Waiter *w = pf->waiters.head; w != nullptr; w = w->next) {
        page->touchedMask |= 1ULL << w->lineOff;
        respondLine(*w, lpn, t_ins, page->data);
        // The page is resident now, so hot-page promotion can trigger
        // even for pages whose popularity was only visible via misses.
        touchForPromotion(lpn, t_ins);
    }
    for (PageWaiter *pw = pf->pageWaiters.head; pw != nullptr;
         pw = pw->next) {
        const Tick t_data = dram_.serviceAt(t_ins, kPageBytes,
                                            lpn * kPageBytes);
        const Tick t_resp = link_.deliverToHost(t_data, kPageBytes);
        eq_.schedule(t_resp, [cb = std::move(pw->cb), t_resp,
                              data = page->data]() mutable {
            cb(t_resp, data);
        });
    }

    // Base-CSSD write-allocate: apply buffered line writes.
    if (!pf->pendingWrites.empty()) {
        PageData &flash = ftl_.pageData(lpn);
        for (PendingWrite *wr = pf->pendingWrites.head; wr != nullptr;
             wr = wr->next) {
            page->data[wr->off] = wr->value;
            page->dirty = true;
            page->dirtyMask |= 1ULL << wr->off;
            page->touchedMask |= 1ULL << wr->off;
            flash[wr->off] = wr->value;
        }
    }
    releaseFetch(pf);
}

void
SsdController::write(Addr dev_line_addr, LineValue value, Tick when)
{
    const std::uint64_t lpn = pageNumber(dev_line_addr);
    const std::uint32_t off = lineInPage(dev_line_addr);
    const Tick t_link = link_.deliverToDevice(when, kCachelineBytes);
    const int tenant_idx = tenantIndexFor(dev_line_addr);
    SsdTenantCounters *tenant =
        tenant_idx < 0
            ? nullptr
            : &tenantStats_[static_cast<std::size_t>(tenant_idx)];
    // Over-quota log residency pays a one-credit admission surcharge,
    // so a tenant hogging the write log drains its epoch budget twice
    // as fast (QosConfig::writeLogQuota).
    std::uint32_t cost = 1;
    if (logEnabled() && tenant_idx >= 0
        && log_->overQuota(static_cast<std::size_t>(tenant_idx))) {
        cost = 2;
        if (tenant != nullptr)
            tenant->logOverQuota++;
    }
    const Tick t_arr = admit(tenant_idx, t_link, cost);
    const Tick t_idx = t_arr + indexLatency();
    if (tenant != nullptr && t_arr > t_link) {
        tenant->delayedWrites++;
        tenant->throttleDelayTicks += t_arr - t_link;
    }
    stats_.writes++;
    if (tenant != nullptr)
        tenant->writes++;
    touchForPromotion(lpn, t_arr);

    if (logEnabled()) {
        // W1: append to the log; W2: parallel update of a cached copy;
        // W3: index update (inside append).
        log_->append(dev_line_addr, value, tenant_idx);
        if (tenant != nullptr)
            tenant->logAppends++;
        dram_.serviceAt(t_idx, kCachelineBytes, dev_line_addr);
        if (CachedPage *page = cache_.lookup(lpn)) {
            page->data[off] = value;
            page->touchedMask |= 1ULL << off;
            // Not marked dirty: the log owns the dirty data.
        }
        maybeStartCompaction(t_idx);
        return;
    }

    // Base-CSSD: page-granular write-allocate.
    if (CachedPage *page = cache_.lookup(lpn)) {
        page->data[off] = value;
        page->dirty = true;
        page->dirtyMask |= 1ULL << off;
        page->touchedMask |= 1ULL << off;
        dram_.serviceAt(t_idx, kCachelineBytes, dev_line_addr);
        ftl_.pageData(lpn)[off] = value;
        return;
    }
    if (PendingFetch **slot = fetches_.find(lpn)) {
        addPendingWrite(**slot, off, value);
        return;
    }
    stats_.rmwFetches++;
    addPendingWrite(*startFetch(lpn, t_idx, false), off, value);
}

void
SsdController::maybeStartCompaction(Tick now)
{
    if (!logEnabled() || compacting_ || !log_->needCompaction())
        return;

    WriteLogBuffer &buf = log_->beginCompaction();
    compacting_ = true;
    compactStart_ = now;
    stats_.compactionRuns++;

    // Enumerate the draining buffer's pages in ascending-LPA order:
    // the flat index iterates in (deterministic but layout-defined)
    // slot order, and the per-channel job order below is part of the
    // simulation's observable timing, so it must not depend on hash
    // container internals.
    std::vector<std::uint64_t> lpas;
    lpas.reserve(buf.pageCount());
    buf.forEachPage([&lpas](std::uint64_t lpa, const LogPageTable &) {
        lpas.push_back(lpa);
    });
    std::sort(lpas.begin(), lpas.end());
    for (std::uint64_t lpa : lpas)
        compactJobs_[lpa % cfg_.flash.channels].push_back(lpa);

    compactOutstanding_ = 0;
    for (std::uint32_t ch = 0; ch < cfg_.flash.channels; ++ch) {
        if (!compactJobs_[ch].empty()) {
            compactOutstanding_++;
            issueCompactionJob(ch, now);
        }
    }
    if (compactOutstanding_ == 0) {
        log_->finishCompaction();
        compacting_ = false;
    }
}

void
SsdController::issueCompactionJob(std::uint32_t ch, Tick when)
{
    // One in-flight job per channel paces compaction so demand reads
    // interleave with background programs (§III-B "background").
    while (!compactJobs_[ch].empty()) {
        const std::uint64_t lpa = compactJobs_[ch].front();
        compactJobs_[ch].pop_front();

        // Gather the logged lines from the DRAINING buffer; the page may
        // have been migrated away mid-drain, in which case we skip it.
        PageData merged{};
        const std::uint64_t mask = log_->gatherDraining(lpa, merged);
        const auto dirty_lines =
            static_cast<std::uint32_t>(std::popcount(mask));
        if (dirty_lines == 0)
            continue;
        stats_.writeLocality.record(
            static_cast<double>(dirty_lines) / kLinesPerPage);

        if (CachedPage *page = cache_.lookup(lpa)) {
            // L2: merge into the cached copy and flush it.
            for (std::uint32_t off = 0; off < kLinesPerPage; ++off) {
                if (mask & (1ULL << off))
                    page->data[off] = merged[off];
            }
            stats_.compactionPagesFlushed++;
            ftl_.writePage(lpa, when, page->data, [this, ch](Tick t) {
                compactionJobDone(ch, t);
            });
            return;
        }
        if (dirty_lines == kLinesPerPage) {
            // Fully covered: program directly, no flash read.
            stats_.compactionPagesFlushed++;
            ftl_.writePage(lpa, when, merged, [this, ch](Tick t) {
                compactionJobDone(ch, t);
            });
            return;
        }
        // L3-L5: read into the coalescing buffer, merge, program.
        stats_.compactionFlashReads++;
        ftl_.readPage(lpa, when, [this, ch, lpa, mask, merged](Tick t) {
            PageData full = ftl_.pageData(lpa);
            for (std::uint32_t off = 0; off < kLinesPerPage; ++off) {
                if (mask & (1ULL << off))
                    full[off] = merged[off];
            }
            stats_.compactionPagesFlushed++;
            ftl_.writePage(lpa, t, full, [this, ch](Tick t2) {
                compactionJobDone(ch, t2);
            });
        });
        return;
    }
    // Channel drained.
    compactOutstanding_--;
    if (compactOutstanding_ == 0) {
        log_->finishCompaction();
        compacting_ = false;
        stats_.compactionTicksTotal += eq_.now() - compactStart_;
        maybeStartCompaction(eq_.now()); // active may already be full
    }
    (void)when;
}

void
SsdController::compactionJobDone(std::uint32_t ch, Tick done)
{
    issueCompactionJob(ch, done);
}

void
SsdController::readPageToHost(std::uint64_t lpn, Tick when, PageReadFn cb)
{
    const Tick t_arr = link_.deliverToDevice(when, kHeaderBytes);
    const Tick t_idx = t_arr + indexLatency();

    if (CachedPage *page = cache_.lookup(lpn)) {
        PageData data = page->data;
        mergeLogInto(lpn, data);
        const Tick t_data = dram_.serviceAt(t_idx, kPageBytes,
                                            lpn * kPageBytes);
        const Tick t_resp = link_.deliverToHost(t_data, kPageBytes);
        eq_.schedule(t_resp, [cb = std::move(cb), t_resp,
                              data]() mutable { cb(t_resp, data); });
        return;
    }
    if (PendingFetch **slot = fetches_.find(lpn)) {
        addPageWaiter(**slot, t_idx, std::move(cb));
        return;
    }
    addPageWaiter(*startFetch(lpn, t_idx, false), t_idx, std::move(cb));
}

void
SsdController::writePageFromHost(std::uint64_t lpn, const PageData &data,
                                 Tick when)
{
    const Tick t_arr = link_.deliverToDevice(when, kPageBytes);
    if (CachedPage *page = cache_.lookup(lpn)) {
        page->data = data;
        page->dirty = false;
        page->dirtyMask = 0;
    }
    if (logEnabled())
        log_->invalidatePage(lpn);
    // The host rewrote the page wholesale; its SSD-side access history
    // is moot. A counter can only exist here if the page was never
    // promoted (promotion completion already erased it), so this keeps
    // the counter table from accumulating entries for pages the host
    // owns. No-op in AstriFlash/TPP modes, which never populate it.
    accessCounts_.erase(lpn);
    stats_.writeLocality.record(1.0);
    ftl_.writePage(lpn, t_arr, data, nullptr);
}

bool
SsdController::isPageCached(std::uint64_t lpn) const
{
    return cache_.probe(lpn) != nullptr;
}

void
SsdController::snapshotPage(std::uint64_t lpn, PageData &out)
{
    if (const CachedPage *page = cache_.probe(lpn))
        out = page->data;
    else
        out = ftl_.pageData(lpn);
    mergeLogInto(lpn, out);
}

void
SsdController::dropMigratedPage(std::uint64_t lpn)
{
    cache_.invalidate(lpn);
    if (logEnabled())
        log_->invalidatePage(lpn);
    // Invalidation must drop the hot-page counter too: the migrated
    // page's count is latched at ~0u and would otherwise be a dead
    // entry forever. Counters of merely-evicted pages survive by
    // design (§III-C: popularity seen via misses still promotes).
    accessCounts_.erase(lpn);
}

void
SsdController::warmFill(std::uint64_t lpn)
{
    if (cache_.probe(lpn) != nullptr)
        return;
    PageEvict ev;
    CachedPage *page = cache_.fill(lpn, ev);
    page->data = ftl_.pageData(lpn);
}

LineValue
SsdController::peekLine(Addr dev_line_addr)
{
    if (logEnabled()) {
        if (auto v = log_->lookup(dev_line_addr))
            return *v;
    }
    if (const CachedPage *page = cache_.probe(pageNumber(dev_line_addr)))
        return page->data[lineInPage(dev_line_addr)];
    return ftl_.peekLine(dev_line_addr);
}

} // namespace skybyte
