/**
 * @file
 * Page-granular read-write data cache in SSD DRAM (§III-B). Set
 * associative with true LRU (the paper notes LRU keeps a requested page
 * resident until its thread resumes). Each entry tracks per-line
 * touched/dirty bitmaps so evictions can feed the Figure 5/6 locality
 * histograms and Base-CSSD's dirty-page writebacks.
 *
 * The fill path is copy-free: fill() returns the (possibly recycled)
 * slot and the caller writes the 4 KB payload directly into it, instead
 * of passing a page by value that the cache copies again. Evictions
 * report metadata only; the victim payload is copied out solely when it
 * was dirty and the caller supplied a buffer for the writeback.
 */

#ifndef SKYBYTE_CORE_PAGE_CACHE_H
#define SKYBYTE_CORE_PAGE_CACHE_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ssd/ftl.h"

namespace skybyte {

/** One resident page. */
struct CachedPage
{
    std::uint64_t lpn = 0;
    bool valid = false;
    bool dirty = false;          ///< any line dirty (Base-CSSD mode)
    std::uint64_t touchedMask = 0; ///< lines read/written while resident
    std::uint64_t dirtyMask = 0;   ///< lines written while resident
    std::uint64_t lru = 0;
    PageData data{};
};

/** Eviction metadata of an insert/invalidate (no payload; see fill). */
struct PageEvict
{
    bool evicted = false;
    bool dirty = false;
    std::uint64_t lpn = 0;
    std::uint64_t touchedMask = 0;
    std::uint64_t dirtyMask = 0;
};

/**
 * Set-associative cache of 4 KB pages.
 */
class PageCache
{
  public:
    PageCache(std::uint64_t capacity_bytes, std::uint32_t ways);

    /** Find @p lpn (updates LRU). */
    CachedPage *lookup(std::uint64_t lpn);

    /** Find @p lpn without touching LRU. */
    const CachedPage *probe(std::uint64_t lpn) const;

    /**
     * Claim the slot for @p lpn, evicting LRU if needed, and return it
     * for the caller to write `->data` in place. On a re-fill of a
     * resident page the slot keeps its masks (refresh). @p ev reports
     * what was evicted; a dirty victim's payload is copied into
     * @p victim_data when non-null (the caller owns the writeback).
     */
    CachedPage *fill(std::uint64_t lpn, PageEvict &ev,
                     PageData *victim_data = nullptr);

    /**
     * Remove @p lpn (migration completion). @retval true if present.
     * @p ev / @p victim_data as in fill().
     */
    bool invalidate(std::uint64_t lpn, PageEvict *ev = nullptr,
                    PageData *victim_data = nullptr);

    std::uint64_t capacityPages() const { return capacityPages_; }
    std::uint64_t residentPages() const { return resident_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Iterate resident pages (statically dispatched; no std::function). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &page : entries_) {
            if (page.valid)
                fn(page);
        }
    }

  private:
    std::uint32_t setOf(std::uint64_t lpn) const;

    std::uint64_t capacityPages_;
    std::uint32_t ways_;
    std::uint32_t numSets_;
    std::vector<CachedPage> entries_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t resident_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_PAGE_CACHE_H
