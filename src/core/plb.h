/**
 * @file
 * Promotion Look-aside Buffer (PLB, §III-C and §IV).
 *
 * The PLB sits in the host root complex and tracks every page migration
 * in flight. A 4 KB entry is 24 B: source and destination page addresses
 * (8 B each), an 8 B bitmap of the cachelines already copied to the host,
 * and a valid bit. While an entry is live, reads of the page are served
 * from the SSD DRAM; a write whose migrated bit is set is forwarded to
 * the fresh host copy instead (the copy order guarantees the host copy is
 * never stale for a migrated line).
 *
 * Huge pages (§IV) would need a 4 KB bitmap per entry to track all 32,768
 * cachelines of a 2 MB page, so the PLB becomes two-level instead: the
 * first-level entry carries a 64 B bitmap of *4 KB chunks* already
 * migrated, and a single second-level 8 B bitmap tracks the cachelines of
 * the one chunk currently under migration. Chunks migrate strictly in
 * order, so one second-level bitmap suffices.
 */

#ifndef SKYBYTE_CORE_PLB_H
#define SKYBYTE_CORE_PLB_H

#include <array>
#include <cstdint>

#include "common/flat_map.h"
#include "common/types.h"

namespace skybyte {

/** PLB occupancy / traffic statistics. */
struct PlbStats
{
    std::uint64_t allocations = 0;
    std::uint64_t rejectedFull = 0;
    std::uint64_t lineCopies = 0;
    std::uint64_t chunkCompletions = 0;
    std::uint64_t releases = 0;
    std::uint64_t peakOccupancy = 0;
};

/**
 * The promotion look-aside buffer. Entries are keyed by the first 4 KB
 * logical page number of the migrating region (the region is one page
 * for 4 KB migrations, 512 pages for 2 MB huge pages).
 */
class Plb
{
  public:
    /** One in-flight migration. */
    struct Entry
    {
        std::uint64_t baseLpn = 0;     ///< first 4 KB page of the region
        std::uint32_t regionPages = 1; ///< 4 KB chunks in the region
        /** Second-level bitmap: lines copied in the in-flight chunk. */
        std::uint64_t lineBitmap = 0;
        /** Chunk currently under migration (always 0 for 4 KB pages). */
        std::uint32_t currentChunk = 0;
        /** First-level 64 B bitmap: chunks fully migrated (§IV). */
        std::array<std::uint64_t, 8> chunkBitmap{};

        bool huge() const { return regionPages > 1; }

        /** Has the cacheline @p line of chunk @p chunk been copied? */
        bool lineMigrated(std::uint32_t chunk, std::uint32_t line) const;

        /** Chunks fully migrated so far. */
        std::uint32_t chunksDone() const;

        /**
         * Hardware state this entry occupies: 24 B for a 4 KB entry; a
         * two-level huge entry adds the 64 B first-level bitmap (§IV).
         */
        std::uint32_t hardwareBytes() const;
    };

    explicit Plb(std::uint32_t entries) : capacity_(entries) {}

    /**
     * Start tracking a migration of @p region_pages 4 KB pages beginning
     * at @p base_lpn.
     * @return the live entry, or nullptr when the PLB is full.
     */
    Entry *allocate(std::uint64_t base_lpn, std::uint32_t region_pages);

    /** Entry covering 4 KB page @p lpn, or nullptr. */
    Entry *find(std::uint64_t lpn);
    const Entry *find(std::uint64_t lpn) const;

    /**
     * Record that line @p line of chunk @p chunk finished copying.
     * Chunks must complete in order (the §IV single second-level entry).
     * @retval true once every line of the whole region has migrated
     */
    bool markLine(Entry &entry, std::uint32_t chunk, std::uint32_t line);

    /** Drop the entry for the region at @p base_lpn (migration done). */
    void release(std::uint64_t base_lpn);

    bool full() const { return entries_.size() >= capacity_; }
    std::uint64_t occupancy() const { return entries_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    const PlbStats &stats() const { return stats_; }

  private:
    std::uint32_t capacity_;
    /**
     * Live entries by baseLpn. Open addressing: entry pointers are
     * invalidated by a later allocate()/release(); callers hold them
     * only within one migration step (completeBurst re-finds).
     */
    FlatMap<Entry> entries_;
    /** 4 KB page -> region base, for O(1) find() on huge regions. */
    FlatMap<std::uint64_t> pageIndex_;
    PlbStats stats_;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_PLB_H
