#include "core/os.h"

#include <algorithm>
#include <cassert>

namespace skybyte {

CxlAwareScheduler::CxlAwareScheduler(SchedPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed ^ 0x05ced01eULL)
{}

void
CxlAwareScheduler::addThread(ThreadContext *thread)
{
    threads_.push_back(thread);
}

void
CxlAwareScheduler::setCores(std::vector<Core *> cores)
{
    cores_ = std::move(cores);
}

void
CxlAwareScheduler::start(Tick now)
{
    assert(!cores_.empty());
    std::size_t next = 0;
    for (Core *core : cores_) {
        if (next >= threads_.size())
            break;
        core->assignThread(threads_[next++], now);
    }
    for (; next < threads_.size(); ++next)
        runQueue_.push_back(threads_[next]);
}

void
CxlAwareScheduler::enqueue(ThreadContext *thread)
{
    runQueue_.push_back(thread);
}

ThreadContext *
CxlAwareScheduler::dequeue()
{
    if (runQueue_.empty())
        return nullptr;
    std::size_t idx = 0;
    switch (policy_) {
      case SchedPolicy::RoundRobin:
        idx = 0;
        break;
      case SchedPolicy::Random:
        idx = rng_.below(runQueue_.size());
        break;
      case SchedPolicy::Cfs: {
        Tick best = kTickMax;
        for (std::size_t i = 0; i < runQueue_.size(); ++i) {
            if (runQueue_[i]->vruntime() < best) {
                best = runQueue_[i]->vruntime();
                idx = i;
            }
        }
        break;
      }
    }
    ThreadContext *picked = runQueue_[idx];
    runQueue_.erase(runQueue_.begin() + static_cast<std::ptrdiff_t>(idx));
    dispatches_++;
    return picked;
}

ThreadContext *
CxlAwareScheduler::pickNext(int core_id, ThreadContext *yielding, Tick now)
{
    (void)core_id;
    if (yielding != nullptr && !yielding->finished())
        enqueue(yielding);
    ThreadContext *next = dequeue();
    // If other threads remain runnable, hand them to idle cores.
    wakeIdleCores(now);
    return next;
}

void
CxlAwareScheduler::wakeIdleCores(Tick now)
{
    for (Core *core : cores_) {
        if (runQueue_.empty())
            return;
        if (core->idle()) {
            ThreadContext *t = dequeue();
            if (t == nullptr)
                return;
            core->assignThread(t, now);
        }
    }
}

void
CxlAwareScheduler::threadFinished(ThreadContext *thread, Tick now)
{
    (void)thread;
    finishedCount_++;
    lastFinish_ = std::max(lastFinish_, now);
}

} // namespace skybyte
