#include "core/plb.h"

#include <algorithm>
#include <bit>

namespace skybyte {

bool
Plb::Entry::lineMigrated(std::uint32_t chunk, std::uint32_t line) const
{
    if (chunk >= regionPages || line >= kLinesPerPage)
        return false;
    if ((chunkBitmap[chunk / 64] >> (chunk % 64)) & 1ULL)
        return true; // whole chunk done (first level, §IV)
    if (chunk != currentChunk)
        return false; // chunks migrate in order; later chunks untouched
    return (lineBitmap >> line) & 1ULL;
}

std::uint32_t
Plb::Entry::chunksDone() const
{
    std::uint32_t done = 0;
    for (std::uint64_t word : chunkBitmap)
        done += static_cast<std::uint32_t>(std::popcount(word));
    return done;
}

std::uint32_t
Plb::Entry::hardwareBytes() const
{
    // 4 KB entry (§III-C): 8 B src + 8 B dst + 8 B line bitmap + valid.
    constexpr std::uint32_t kFlatEntry = 24;
    if (!huge())
        return kFlatEntry;
    // Two-level entry (§IV): 64 B first-level chunk bitmap plus the one
    // 8 B second-level line bitmap shared across the region.
    return kFlatEntry + 64;
}

Plb::Entry *
Plb::allocate(std::uint64_t base_lpn, std::uint32_t region_pages)
{
    if (full()) {
        stats_.rejectedFull++;
        return nullptr;
    }
    Entry entry;
    entry.baseLpn = base_lpn;
    entry.regionPages = std::max<std::uint32_t>(region_pages, 1);
    auto [slot, inserted] = entries_.tryEmplace(base_lpn, entry);
    if (!inserted)
        return nullptr; // already migrating: caller bug, refuse quietly
    for (std::uint32_t p = 0; p < entry.regionPages; ++p)
        pageIndex_[base_lpn + p] = base_lpn;
    stats_.allocations++;
    stats_.peakOccupancy =
        std::max<std::uint64_t>(stats_.peakOccupancy, entries_.size());
    return slot;
}

Plb::Entry *
Plb::find(std::uint64_t lpn)
{
    const std::uint64_t *base = pageIndex_.find(lpn);
    if (base == nullptr)
        return nullptr;
    return entries_.find(*base);
}

const Plb::Entry *
Plb::find(std::uint64_t lpn) const
{
    const std::uint64_t *base = pageIndex_.find(lpn);
    if (base == nullptr)
        return nullptr;
    return entries_.find(*base);
}

bool
Plb::markLine(Entry &entry, std::uint32_t chunk, std::uint32_t line)
{
    if (chunk != entry.currentChunk || line >= kLinesPerPage)
        return false; // out-of-order chunk: ignore (§IV in-order copy)
    entry.lineBitmap |= 1ULL << line;
    stats_.lineCopies++;
    if (entry.lineBitmap != ~0ULL)
        return false;
    // The in-flight chunk is complete: latch it into the first level
    // and point the second-level bitmap at the next chunk.
    entry.chunkBitmap[chunk / 64] |= 1ULL << (chunk % 64);
    entry.lineBitmap = 0;
    entry.currentChunk++;
    stats_.chunkCompletions++;
    return entry.currentChunk >= entry.regionPages;
}

void
Plb::release(std::uint64_t base_lpn)
{
    Entry *entry = entries_.find(base_lpn);
    if (entry == nullptr)
        return;
    const std::uint32_t region_pages = entry->regionPages;
    for (std::uint32_t p = 0; p < region_pages; ++p)
        pageIndex_.erase(base_lpn + p);
    entries_.erase(base_lpn);
    stats_.releases++;
}

} // namespace skybyte
