/**
 * @file
 * Host page-reclaim victim selection (§III-C: "SkyByte leverages the
 * existing page reclamation policy in Linux to select the page for
 * eviction, finding a relatively 'cold' page tracked by the
 * active/inactive list").
 *
 * This is the two-list second-chance scheme of mm/workingset.c, reduced
 * to what matters for demotion decisions: newly promoted regions enter
 * the active list; a touch on an inactive region reactivates it; a touch
 * on an active region sets its referenced bit lazily. When the active
 * list grows past twice the inactive list, its tail is aged into the
 * inactive list (referenced entries get a second chance instead).
 * Victims are taken from the inactive tail, skipping referenced entries.
 *
 * The exact-LRU alternative the simulator also offers (ReclaimPolicy::
 * LruScan) scans all promoted regions for the smallest last-use stamp;
 * the ablation bench compares both.
 */

#ifndef SKYBYTE_CORE_RECLAIM_H
#define SKYBYTE_CORE_RECLAIM_H

#include <cstdint>
#include <list>

#include "common/flat_map.h"
#include "common/types.h"

namespace skybyte {

/** Reclaim bookkeeping statistics. */
struct ReclaimStats
{
    std::uint64_t activations = 0;   ///< inactive -> active promotions
    std::uint64_t deactivations = 0; ///< active -> inactive aging
    std::uint64_t secondChances = 0; ///< referenced entries spared
    std::uint64_t evictions = 0;
};

/**
 * Active/inactive list pair tracking promoted regions by an opaque key
 * (the region's base LPN).
 */
class ActiveInactiveLists
{
  public:
    /** Track a newly promoted region; lands at the active head. */
    void insert(std::uint64_t key, Tick now);

    /** Record a use of @p key (no-op if untracked). */
    void touch(std::uint64_t key, Tick now);

    /** Stop tracking @p key (demoted through another path). */
    void erase(std::uint64_t key);

    /**
     * Pick a demotion victim. Referenced inactive entries get a second
     * chance (reactivated); the scan gives up when every candidate was
     * used within the last @p min_idle ticks, so a hot set larger than
     * the budget does not churn.
     * @retval true @p victim holds the chosen key and was removed
     */
    bool selectVictim(Tick now, Tick min_idle, std::uint64_t &victim);

    bool tracked(std::uint64_t key) const
    {
        return index_.contains(key);
    }
    std::uint64_t size() const { return index_.size(); }
    std::uint64_t activeSize() const { return active_.size(); }
    std::uint64_t inactiveSize() const { return inactive_.size(); }
    const ReclaimStats &stats() const { return stats_; }

  private:
    struct Node
    {
        std::uint64_t key = 0;
        bool referenced = false;
        Tick lastUse = 0;
    };
    using List = std::list<Node>;

    struct Position
    {
        bool inActive = false;
        List::iterator it;
    };

    /** Age the active tail while active > 2x inactive (Linux's ratio). */
    void rebalance();

    List active_;
    List inactive_;
    /** key -> list position (std::list iterators stay valid on moves). */
    FlatMap<Position> index_;
    ReclaimStats stats_;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_RECLAIM_H
