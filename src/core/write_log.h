/**
 * @file
 * The cacheline-granular write log (§III-B, Figures 11-13).
 *
 * All host writes append 64 B entries to a circular log in SSD DRAM; a
 * two-level hash index (first level keyed by logical page address, second
 * level mapping the 6-bit in-page offset to a 26-bit log offset) gives
 * O(1) lookups and lets compaction enumerate all logged lines of a page
 * in one traversal. Second-level tables start at 4 entries and double
 * when their load factor exceeds 0.75, exactly as the paper sizes them;
 * indexBytes() reproduces the paper's memory accounting (16 B first-level
 * entries, 4 B second-level entries).
 */

#ifndef SKYBYTE_CORE_WRITE_LOG_H
#define SKYBYTE_CORE_WRITE_LOG_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace skybyte {

/**
 * Resizable second-level hash table: in-page line offset -> log offset.
 *
 * Open addressing with linear probing over packed 4 B entries (6-bit page
 * offset + 26-bit log offset), mirroring the hardware structure.
 */
class LogPageTable
{
  public:
    explicit LogPageTable(std::uint32_t initial_entries = 4,
                          double max_load = 0.75);

    /** Insert or update the log offset for @p line_off (0..63). */
    void put(std::uint32_t line_off, std::uint32_t log_off);

    /** Latest log offset for @p line_off, if any. */
    std::optional<std::uint32_t> get(std::uint32_t line_off) const;

    /** Number of distinct line offsets present. */
    std::uint32_t count() const { return count_; }

    /** Allocated entry slots (for memory accounting). */
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    /** Visit all (line_off, log_off) pairs. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint32_t packed : slots_) {
            if (packed != kEmpty)
                fn(packed >> 26, packed & kLogOffMask);
        }
    }

  private:
    static constexpr std::uint32_t kEmpty = 0xffffffffu;
    static constexpr std::uint32_t kLogOffMask = (1u << 26) - 1;

    void grow();

    std::vector<std::uint32_t> slots_;
    std::uint32_t count_ = 0;
    double maxLoad_;
};

/** Aggregate write-log statistics. */
struct WriteLogStats
{
    std::uint64_t appends = 0;
    std::uint64_t updateHits = 0;   ///< append superseded an older entry
    std::uint64_t lookupHits = 0;
    std::uint64_t invalidatedLines = 0; ///< dropped by page migration
    std::uint64_t overflowAppends = 0;  ///< appended beyond capacity
    std::uint64_t compactions = 0;
    std::uint64_t indexBytesPeak = 0;
};

/**
 * One log buffer (the design double-buffers two of these).
 */
class WriteLogBuffer
{
  public:
    /**
     * @param capacity_bytes log array capacity (64 B per entry)
     * @param initial_entries initial second-level table size
     * @param max_load second-level resize threshold
     */
    WriteLogBuffer(std::uint64_t capacity_bytes,
                   std::uint32_t initial_entries, double max_load);

    /**
     * Append one written line. Appending past capacity is allowed (the
     * caller accounts it as overflow) so that host writes never block.
     * @param tenant owning-tenant index for per-tenant QoS accounting;
     *               -1 (the default) skips it
     * @retval true if this superseded an older entry for the same line
     */
    bool append(Addr line_addr, LineValue value, int tenant = -1);

    /** Size the per-tenant append counters (resets them to zero). */
    void setTenantCount(std::size_t n);

    /** Entries appended by @p tenant since the last clear(). */
    std::uint64_t tenantEntries(std::size_t tenant) const
    {
        return tenant < tenantEntries_.size() ? tenantEntries_[tenant]
                                              : 0;
    }

    /** Latest value of @p line_addr, if logged. */
    std::optional<LineValue> lookup(Addr line_addr) const;

    /** Number of live entries appended (including superseded ones). */
    std::uint64_t size() const { return entries_.size(); }

    std::uint64_t capacityEntries() const { return capacityEntries_; }
    bool full() const { return entries_.size() >= capacityEntries_; }
    bool empty() const { return entries_.empty(); }

    /** Drop every logged line of @p lpa (page migrated away, §III-C). */
    std::uint32_t invalidatePage(std::uint64_t lpa);

    /** Distinct pages currently indexed. */
    std::size_t pageCount() const { return index_.size(); }

    /**
     * Visit each indexed page: fn(lpa, table). Used by compaction (L1
     * traversal in Figure 13). Iteration is in the flat index's slot
     * order — deterministic and platform-independent, but not sorted;
     * order-sensitive consumers sort the keys they collect (see
     * SsdController::maybeStartCompaction).
     */
    template <typename Fn>
    void
    forEachPage(Fn &&fn) const
    {
        index_.forEach([&fn](std::uint64_t lpa, const LogPageTable &t) {
            fn(lpa, t);
        });
    }

    /** Latest value for @p line_off within @p lpa via the index. */
    std::optional<LineValue> valueAt(std::uint64_t lpa,
                                     std::uint32_t line_off) const;

    /**
     * Apply every logged line of @p lpa onto @p data in one index
     * probe (the per-line valueAt loop cost 64 first-level lookups per
     * page merge). Offsets are distinct, so application order within
     * the table is immaterial.
     * @return bitmask of the line offsets applied
     */
    std::uint64_t mergePageInto(std::uint64_t lpa, PageData &data) const;

    /**
     * Index memory per the paper's accounting (§III-B). Maintained
     * incrementally on append/invalidate/clear so the per-append peak
     * tracking in WriteLog::append stays O(1); indexBytesRecomputed()
     * is the reference walk the property tests check against.
     */
    std::uint64_t indexBytes() const { return indexBytes_; }

    /** O(n) recomputation of indexBytes() (tests only). */
    std::uint64_t indexBytesRecomputed() const;

    /** Reset to empty (after compaction drains this buffer). */
    void clear();

  private:
    struct Entry
    {
        Addr lineAddr;
        LineValue value;
    };

    std::uint64_t capacityEntries_;
    std::uint32_t initialEntries_;
    double maxLoad_;
    std::vector<Entry> entries_;
    /** First-level index: lpa -> second-level table (open addressing). */
    FlatMap<LogPageTable> index_;
    std::uint64_t indexBytes_ = 0;
    /** Per-tenant appended-entry counts (empty unless QoS-configured). */
    std::vector<std::uint64_t> tenantEntries_;
};

/**
 * The double-buffered write log: an active buffer receiving appends and
 * an optional draining buffer under background compaction. Lookups probe
 * both (newest first), as §III-B requires.
 */
class WriteLog
{
  public:
    WriteLog(std::uint64_t capacity_bytes, std::uint32_t initial_entries,
             double max_load);

    /** Append to the active buffer (optionally tenant-attributed). */
    void append(Addr line_addr, LineValue value, int tenant = -1);

    /**
     * Configure per-tenant live-entry quotas (QosConfig::writeLogQuota):
     * quotas[t] is the most log entries tenant t may hold across both
     * buffers before overQuota(t) trips. Resets the per-tenant counts.
     */
    void setTenantQuotas(std::vector<std::uint64_t> quotas);

    /** Live entries (active + draining buffer) held by @p tenant. */
    std::uint64_t tenantLiveEntries(std::size_t tenant) const
    {
        return active_.tenantEntries(tenant)
               + standby_.tenantEntries(tenant);
    }

    /** True when quotas are configured and @p tenant has spent its. */
    bool overQuota(std::size_t tenant) const
    {
        return tenant < tenantQuotas_.size()
               && tenantLiveEntries(tenant) >= tenantQuotas_[tenant];
    }

    /** Probe active then draining buffer. */
    std::optional<LineValue> lookup(Addr line_addr);

    /** The active buffer reached capacity and no drain is in progress. */
    bool needCompaction() const
    {
        return active_.full() && !draining();
    }

    bool draining() const { return drainInProgress_; }

    /**
     * Swap buffers and expose the filled one for compaction.
     * Precondition: needCompaction().
     */
    WriteLogBuffer &beginCompaction();

    /** Compaction finished: reclaim the drained buffer. */
    void finishCompaction();

    /** Invalidate a migrated page in both buffers. */
    void invalidatePage(std::uint64_t lpa);

    /**
     * Value of a line in the DRAINING buffer only (the compaction
     * source); nullopt when not draining or not logged there.
     */
    std::optional<LineValue>
    drainingValueAt(std::uint64_t lpa, std::uint32_t line_off) const
    {
        if (!drainInProgress_)
            return std::nullopt;
        return standby_.valueAt(lpa, line_off);
    }

    /**
     * Gather every draining-buffer line of @p lpa into @p out in one
     * index probe (compaction's L1 traversal; no lookup stats, same as
     * drainingValueAt). @return bitmask of offsets written; 0 when not
     * draining.
     */
    std::uint64_t
    gatherDraining(std::uint64_t lpa, PageData &out) const
    {
        if (!drainInProgress_)
            return 0;
        return standby_.mergePageInto(lpa, out);
    }

    /**
     * Newest-first merged overlay of @p lpa onto @p data: draining
     * lines first, then active lines over them, counting each distinct
     * logged line as one lookup hit (matching the per-line lookup()
     * accounting this replaces).
     * @return bitmask of offsets applied
     */
    std::uint64_t mergePageInto(std::uint64_t lpa, PageData &data);

    const WriteLogStats &stats() const { return stats_; }
    const WriteLogBuffer &activeBuffer() const { return active_; }
    const WriteLogBuffer &standbyBuffer() const { return standby_; }

    /** Combined index footprint of both buffers. */
    std::uint64_t indexBytes() const
    {
        return active_.indexBytes() + standby_.indexBytes();
    }

  private:
    WriteLogBuffer active_;
    WriteLogBuffer standby_;
    bool drainInProgress_ = false;
    WriteLogStats stats_;
    /** Per-tenant live-entry quotas (empty = quotas disabled). */
    std::vector<std::uint64_t> tenantQuotas_;
};

} // namespace skybyte

#endif // SKYBYTE_CORE_WRITE_LOG_H
