#include "core/reclaim.h"

#include <iterator>

namespace skybyte {

void
ActiveInactiveLists::insert(std::uint64_t key, Tick now)
{
    if (index_.contains(key))
        return;
    active_.push_front(Node{key, false, now});
    index_[key] = Position{true, active_.begin()};
    rebalance();
}

void
ActiveInactiveLists::touch(std::uint64_t key, Tick now)
{
    Position *pos = index_.find(key);
    if (pos == nullptr)
        return;
    pos->it->lastUse = now;
    if (pos->inActive) {
        pos->it->referenced = true; // lazy: no list movement on hot path
        return;
    }
    // Inactive page referenced: activate it (mm moves it to the active
    // head and clears the referenced bit).
    Node node = *pos->it;
    inactive_.erase(pos->it);
    node.referenced = false;
    active_.push_front(node);
    *pos = Position{true, active_.begin()};
    stats_.activations++;
    rebalance();
}

void
ActiveInactiveLists::erase(std::uint64_t key)
{
    Position *pos = index_.find(key);
    if (pos == nullptr)
        return;
    (pos->inActive ? active_ : inactive_).erase(pos->it);
    index_.erase(key);
}

void
ActiveInactiveLists::rebalance()
{
    while (active_.size() > 2 * (inactive_.size() + 1)) {
        Node node = active_.back();
        active_.pop_back();
        if (node.referenced) {
            // Second chance: back to the active head, bit cleared.
            node.referenced = false;
            active_.push_front(node);
            index_[node.key] = Position{true, active_.begin()};
            stats_.secondChances++;
            continue;
        }
        inactive_.push_front(node);
        index_[node.key] = Position{false, inactive_.begin()};
        stats_.deactivations++;
    }
}

bool
ActiveInactiveLists::selectVictim(Tick now, Tick min_idle,
                                  std::uint64_t &victim)
{
    // Bound the scan: each entry is inspected at most once per call.
    std::uint64_t budget = index_.size();
    while (budget-- > 0) {
        if (inactive_.empty())
            rebalance();
        if (inactive_.empty()) {
            // Everything is active: force-age the tail so the scan can
            // make progress (mm's inactive_is_low path).
            if (active_.empty())
                return false;
            Node node = active_.back();
            active_.pop_back();
            if (node.referenced) {
                node.referenced = false;
                active_.push_front(node);
                index_[node.key] = Position{true, active_.begin()};
                stats_.secondChances++;
                continue;
            }
            inactive_.push_front(node);
            index_[node.key] = Position{false, inactive_.begin()};
            stats_.deactivations++;
        }
        Node node = inactive_.back();
        inactive_.pop_back();
        if (node.referenced) {
            node.referenced = false;
            active_.push_front(node);
            index_[node.key] = Position{true, active_.begin()};
            stats_.activations++;
            continue;
        }
        if (min_idle > 0 && node.lastUse + min_idle > now) {
            // Even the coldest unreferenced page is recent: refuse to
            // churn. Put it back where it was.
            inactive_.push_back(node);
            index_[node.key] = Position{false, std::prev(inactive_.end())};
            return false;
        }
        index_.erase(node.key);
        stats_.evictions++;
        victim = node.key;
        return true;
    }
    return false;
}

} // namespace skybyte
