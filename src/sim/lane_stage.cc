#include "sim/lane_stage.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "trace/workload_spec.h"

namespace skybyte {

std::uint32_t
resolvedKernelLanes(const KernelConfig &cfg)
{
    // Deliberate nondeterminism exception: like SKYBYTE_SWEEP_* in the
    // sweep driver, this is an operator knob that cannot change
    // simulated behaviour (lane count is result-invariant), only
    // wall-clock. skybyte_lint allowlists this file for getenv.
    const char *env = std::getenv("SKYBYTE_SIM_LANES");
    if (env == nullptr || *env == '\0')
        return cfg.lanes;
    const std::uint64_t lanes =
        parseUnsigned(env, "SKYBYTE_SIM_LANES");
    if (lanes == 0 || lanes > 64) {
        throw std::invalid_argument(
            "SKYBYTE_SIM_LANES must be in [1, 64]: "
            + std::string(env));
    }
    return static_cast<std::uint32_t>(lanes);
}

LaneBatchStager::LaneBatchStager(Workload &workload, std::size_t workers)
    : workload_(&workload), numThreads_(workload.numThreads())
{
    if (numThreads_ <= 0)
        throw std::invalid_argument("LaneBatchStager needs >= 1 thread");
    if (!workload.concurrentRefillSafe()) {
        throw std::logic_error(
            "LaneBatchStager requires concurrentRefillSafe()");
    }
    const std::size_t count = std::min<std::size_t>(
        std::max<std::size_t>(workers, 1),
        static_cast<std::size_t>(numThreads_));
    stages_ = std::vector<TidStage>(static_cast<std::size_t>(numThreads_));
    producers_.reserve(count);
    for (std::size_t w = 0; w < count; ++w)
        producers_.push_back(std::make_unique<Producer>());
    // Spawn only after every Producer exists: producerLoop indexes the
    // full vector via tid ownership arithmetic.
    for (std::size_t w = 0; w < count; ++w) {
        producers_[w]->thread =
            std::thread([this, w] { producerLoop(w); });
    }
}

LaneBatchStager::~LaneBatchStager()
{
    stop();
}

void
LaneBatchStager::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    for (auto &p : producers_) {
        {
            std::lock_guard<std::mutex> lock(p->mu);
            p->stop = true;
        }
        p->cv.notify_all();
    }
    for (auto &p : producers_) {
        if (p->thread.joinable())
            p->thread.join();
    }
}

int
LaneBatchStager::nextRefillableTid(std::size_t w) const
{
    for (int tid = static_cast<int>(w); tid < numThreads_;
         tid += static_cast<int>(producers_.size())) {
        const TidStage &st = stages_[static_cast<std::size_t>(tid)];
        if (!st.done && st.produced - st.consumed < kSlotsPerTid)
            return tid;
    }
    return -1;
}

bool
LaneBatchStager::allOwnedDone(std::size_t w) const
{
    for (int tid = static_cast<int>(w); tid < numThreads_;
         tid += static_cast<int>(producers_.size())) {
        if (!stages_[static_cast<std::size_t>(tid)].done)
            return false;
    }
    return true;
}

void
LaneBatchStager::producerLoop(std::size_t w)
{
    Producer &p = *producers_[w];
    std::unique_lock<std::mutex> lock(p.mu);
    for (;;) {
        if (p.stop)
            return;
        const int tid = nextRefillableTid(w);
        if (tid < 0) {
            if (allOwnedDone(w))
                return;
            p.cv.wait(lock);
            continue;
        }
        TidStage &st = stages_[static_cast<std::size_t>(tid)];
        const std::uint64_t slot = st.produced % kSlotsPerTid;
        // The slot is free (invariant above) and stays untouched by the
        // consumer until produced advances, so fill it unlocked — the
        // refill is the expensive part and must not serialize against
        // the simulation thread's hand-offs.
        lock.unlock();
        TraceBatch &batch = st.slots[slot];
        const std::uint32_t n = workload_->refill(tid, batch);
        std::uint64_t instr = 0;
        for (std::uint32_t i = 0; i < n; ++i)
            instr += batch.records[i].computeOps + 1;
        lock.lock();
        if (n == 0) {
            st.done = true;
        } else {
            st.slotInstr[slot] = instr;
            ++st.produced;
        }
        p.cv.notify_all();
    }
}

std::uint32_t
LaneBatchStager::nextBatch(int tid, TraceBatch &batch)
{
    TidStage &st = stages_[static_cast<std::size_t>(tid)];
    Producer &p =
        *producers_[static_cast<std::size_t>(tid) % producers_.size()];
    std::unique_lock<std::mutex> lock(p.mu);
    p.cv.wait(lock,
              [&] { return st.produced > st.consumed || st.done; });
    if (st.produced == st.consumed)
        return 0; // exhausted; stays 0 forever per the refill contract
    const std::uint64_t slot = st.consumed % kSlotsPerTid;
    const std::uint64_t instr = st.slotInstr[slot];
    // Copy out unlocked: the producer cannot reuse this slot until
    // consumed advances below.
    lock.unlock();
    batch = st.slots[slot];
    lock.lock();
    st.delivered += instr;
    ++st.consumed;
    p.cv.notify_all();
    return batch.count;
}

std::uint64_t
LaneBatchStager::instructionsDelivered(int tid) const
{
    // Simulation thread only, after its own nextBatch calls — the
    // consumer-side counter needs no lock from here.
    return stages_[static_cast<std::size_t>(tid)].delivered;
}

} // namespace skybyte
