#include "sim/experiment.h"

#include <cstdlib>

namespace skybyte {

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opt;
    if (const char *s = std::getenv("SKYBYTE_BENCH_INSTR"))
        opt.instrPerThread = std::strtoull(s, nullptr, 10);
    if (const char *s = std::getenv("SKYBYTE_BENCH_THREADS"))
        opt.threadsOverride = static_cast<int>(std::strtol(s, nullptr, 10));
    if (const char *s = std::getenv("SKYBYTE_BENCH_FOOTPRINT_MB")) {
        opt.footprintBytes =
            std::strtoull(s, nullptr, 10) * 1024ULL * 1024ULL;
    }
    return opt;
}

int
defaultThreadsFor(const SimConfig &cfg, const ExperimentOptions &opt)
{
    if (opt.threadsOverride > 0)
        return opt.threadsOverride;
    // §VI-A: 24 threads on 8 cores with coordinated context switch
    // enabled, 8 threads on 8 cores otherwise.
    return cfg.policy.deviceTriggeredCtxSwitch ? cfg.cpu.numCores * 3
                                               : cfg.cpu.numCores;
}

WorkloadParams
makeParams(const SimConfig &cfg, const ExperimentOptions &opt)
{
    WorkloadParams params;
    params.numThreads = defaultThreadsFor(cfg, opt);
    // Fixed total problem size: all traces represent the same program
    // section regardless of thread count (§VI-A), so per-thread work
    // shrinks as threads grow. instrPerThread is defined at 8 threads.
    const std::uint64_t total = opt.instrPerThread * 8;
    params.instrPerThread =
        total / static_cast<std::uint64_t>(params.numThreads);
    params.footprintBytes = opt.footprintBytes;
    params.seed = opt.seed;
    return params;
}

void
applyBenchScale(SimConfig &cfg)
{
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 128 * 1024;
    cfg.cpu.llc.sizeBytes = 2 * 1024 * 1024;
}

SimConfig
makeBenchConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    applyBenchScale(cfg);
    return cfg;
}

SimResult
runConfig(const SimConfig &cfg, const std::string &workload,
          const ExperimentOptions &opt)
{
    return runSimulation(cfg, workload, makeParams(cfg, opt));
}

SimResult
runVariant(const std::string &variant, const std::string &workload,
           const ExperimentOptions &opt)
{
    SimConfig cfg = makeBenchConfig(variant);
    cfg.seed = opt.seed;
    return runConfig(cfg, workload, opt);
}

} // namespace skybyte
