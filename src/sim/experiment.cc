#include "sim/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

namespace skybyte {

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opt;
    if (const char *s = std::getenv("SKYBYTE_BENCH_INSTR"))
        opt.instrPerThread = std::strtoull(s, nullptr, 10);
    if (const char *s = std::getenv("SKYBYTE_BENCH_THREADS"))
        opt.threadsOverride = static_cast<int>(std::strtol(s, nullptr, 10));
    if (const char *s = std::getenv("SKYBYTE_BENCH_FOOTPRINT_MB")) {
        opt.footprintBytes =
            std::strtoull(s, nullptr, 10) * 1024ULL * 1024ULL;
    }
    return opt;
}

int
defaultThreadsFor(const SimConfig &cfg, const ExperimentOptions &opt)
{
    if (opt.threadsOverride > 0)
        return opt.threadsOverride;
    // §VI-A: 24 threads on 8 cores with coordinated context switch
    // enabled, 8 threads on 8 cores otherwise.
    return cfg.policy.deviceTriggeredCtxSwitch ? cfg.cpu.numCores * 3
                                               : cfg.cpu.numCores;
}

WorkloadParams
makeParams(const SimConfig &cfg, const ExperimentOptions &opt)
{
    WorkloadParams params;
    params.numThreads = defaultThreadsFor(cfg, opt);
    // Fixed total problem size: all traces represent the same program
    // section regardless of thread count (§VI-A), so per-thread work
    // shrinks as threads grow. instrPerThread is defined at 8 threads.
    const std::uint64_t total = opt.instrPerThread * 8;
    params.instrPerThread =
        total / static_cast<std::uint64_t>(params.numThreads);
    params.footprintBytes = opt.footprintBytes;
    params.seed = opt.seed;
    return params;
}

void
applyBenchScale(SimConfig &cfg)
{
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 128 * 1024;
    cfg.cpu.llc.sizeBytes = 2 * 1024 * 1024;
}

SimConfig
makeBenchConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    applyBenchScale(cfg);
    return cfg;
}

SimResult
runConfig(const SimConfig &cfg, const std::string &workload,
          const ExperimentOptions &opt)
{
    return runSimulation(cfg, workload, makeParams(cfg, opt));
}

SimResult
runVariant(const std::string &variant, const std::string &workload,
           const ExperimentOptions &opt)
{
    SimConfig cfg = makeBenchConfig(variant);
    cfg.seed = opt.seed;
    return runConfig(cfg, workload, opt);
}

SweepPoint
makeSweepPoint(const std::string &variant, const std::string &workload,
               const ExperimentOptions &opt)
{
    SweepPoint point{makeBenchConfig(variant), workload, opt};
    point.cfg.seed = opt.seed;
    return point;
}

int
sweepThreads(int nthreads, std::size_t npoints)
{
    if (nthreads <= 0) {
        if (const char *s = std::getenv("SKYBYTE_BENCH_NTHREADS"))
            nthreads = static_cast<int>(std::strtol(s, nullptr, 10));
    }
    if (nthreads <= 0)
        nthreads = static_cast<int>(std::thread::hardware_concurrency());
    if (nthreads <= 0)
        nthreads = 1;
    return static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(nthreads),
                              std::max<std::size_t>(npoints, 1)));
}

std::vector<SimResult>
runSweep(const std::vector<SweepPoint> &points, int nthreads)
{
    std::vector<SimResult> results(points.size());
    if (points.empty())
        return results;
    const int workers = sweepThreads(nthreads, points.size());
    if (workers == 1) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            results[i] = runConfig(p.cfg, p.workload, p.opt);
        }
        return results;
    }
    // Each worker claims the next unstarted point; every System is
    // fully private to its run, so no cross-run synchronization is
    // needed beyond the claim counter.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= points.size())
                    return;
                const SweepPoint &p = points[i];
                results[i] = runConfig(p.cfg, p.workload, p.opt);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace skybyte
