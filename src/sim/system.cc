#include "sim/system.h"

#include <algorithm>

#include "common/flat_map.h"
#include "sim/lane_stage.h"
#include "trace/mix_workload.h"

namespace skybyte {

void
MemRouter::noteHost(Addr vaddr, bool is_write)
{
    if (is_write)
        hostWrites_++;
    else
        hostReads_++;
    if (tenantHostReads_.empty())
        return;
    const int t = sys_.tenantOfVaddr(vaddr);
    if (t < 0)
        return;
    if (is_write)
        tenantHostWrites_[static_cast<std::size_t>(t)]++;
    else
        tenantHostReads_[static_cast<std::size_t>(t)]++;
}

void
MemRouter::read(const MemRequest &req, Tick when, MemCallback cb)
{
    const Addr vaddr = req.lineAddr;
    if (sys_.cfg_.dramOnly || !sys_.isDeviceAddr(vaddr)) {
        noteHost(vaddr, false);
        // readAt() reports the completion tick, so the latency sum is
        // accounted here instead of by wrapping the callback (the sum
        // of integral tick deltas is exact in a double either way).
        const Tick done = sys_.hostDram_->readAt(req, when, std::move(cb));
        hostReadTicks_ += static_cast<double>(done - when);
        return;
    }

    const Addr dev = sys_.toDeviceAddr(vaddr);
    const std::uint64_t lpn = pageNumber(dev);

    const Tick t_cxl = when + sys_.numaPenalty(req.coreId);

    if (sys_.astri_ != nullptr) {
        sys_.astri_->read(dev, t_cxl, std::move(cb));
        return;
    }

    if (sys_.migration_ != nullptr) {
        sys_.migration_->onSsdAccess(lpn, when); // TPP sampling
        if (sys_.migration_->route(lpn, lineInPage(dev), when, false)
            == PageHome::Host) {
            noteHost(vaddr, false);
            MemRequest hreq = req;
            hreq.lineAddr = dev; // promoted pages keyed by device addr
            // The response's lineAddr carries the device address; the
            // uncore matches in-flight misses by its own captured line
            // address (as it already must for SSD responses), so no
            // rewrite wrap is needed.
            const Tick done =
                sys_.hostDram_->readAt(hreq, when, std::move(cb));
            hostReadTicks_ += static_cast<double>(done - when);
            return;
        }
    }
    sys_.ssd_->read(dev, t_cxl, std::move(cb));
}

void
MemRouter::write(const MemRequest &req, Tick when)
{
    const Addr vaddr = req.lineAddr;
    if (sys_.cfg_.dramOnly || !sys_.isDeviceAddr(vaddr)) {
        noteHost(vaddr, true);
        sys_.hostDram_->write(req, when);
        return;
    }
    const Addr dev = sys_.toDeviceAddr(vaddr);
    const std::uint64_t lpn = pageNumber(dev);

    const Tick t_cxl = when + sys_.numaPenalty(req.coreId);
    if (sys_.astri_ != nullptr) {
        sys_.astri_->write(dev, req.value, t_cxl);
        return;
    }
    if (sys_.migration_ != nullptr
        && sys_.migration_->route(lpn, lineInPage(dev), when, true)
               == PageHome::Host) {
        noteHost(vaddr, true);
        MemRequest hreq = req;
        hreq.lineAddr = dev;
        sys_.hostDram_->write(hreq, when);
        return;
    }
    sys_.ssd_->write(dev, req.value, t_cxl);
}

System::System(const SimConfig &cfg, const WorkloadSpec &workload,
               const WorkloadParams &params)
    : cfg_(cfg), params_(params),
      eq_(cfg_.kernel.calendarWindowTicks, cfg_.kernel.slabChunkRecords)
{
    params_.numThreads = std::max(params_.numThreads, 1);
    params_.seed = cfg_.seed;
    workload_ = makeWorkload(workload, params_);
    // Full spec text, so differently parameterized runs of one
    // generator stay distinguishable in reports.
    workloadLabel_ = workload.text();
    // A spec's threads= arg overrides params: follow the workload so
    // every generated lane gets a ThreadContext.
    params_.numThreads = workload_->numThreads();
    buildSystem([this, workload] {
        return makeWorkload(workload, params_);
    });
}

System::System(const SimConfig &cfg, const std::string &workload_spec,
               const WorkloadParams &params)
    : System(cfg, parseWorkloadSpec(workload_spec), params)
{}

System::System(const SimConfig &cfg, std::unique_ptr<Workload> workload,
               std::function<std::unique_ptr<Workload>()> warm_factory,
               std::string label)
    : cfg_(cfg),
      eq_(cfg_.kernel.calendarWindowTicks, cfg_.kernel.slabChunkRecords)
{
    workload_ = std::move(workload);
    workloadLabel_ =
        label.empty() ? workload_->name() : std::move(label);
    params_.numThreads = workload_->numThreads();
    params_.seed = cfg_.seed;
    buildSystem(warm_factory);
}

void
System::buildSystem(
    const std::function<std::unique_ptr<Workload>()> &warm_factory)
{
    link_ = std::make_unique<CxlLink>(eq_, cfg_.cxl);
    hostDram_ = std::make_unique<DramModel>(eq_, cfg_.hostDram);
    ssd_ = std::make_unique<SsdController>(cfg_, eq_, *link_);

    // Co-located run: enable per-tenant stat buckets. A single-tenant
    // mix stays unbucketed so it reports (and fingerprints) exactly
    // like the plain workload it degenerates to.
    mix_ = dynamic_cast<MixWorkload *>(workload_.get());
    if (mix_ != nullptr && mix_->tenants().size() >= 2) {
        ssd_->setTenantBounds(mix_->tenantDeviceStarts(),
                              mix_->footprintBytes());
        // QoS enforcement at the device front end (qos_policy /
        // qos_write_log_quota): weights come from the tenants' qos=
        // spec keys. All knobs default off, so plain mixes keep their
        // pinned fingerprints byte-identical.
        if (cfg_.qos.weightedAdmission || cfg_.qos.writeLogQuota)
            ssd_->configureQos(cfg_.qos, mix_->tenantQosWeights());
    }

    if (!cfg_.dramOnly && cfg_.preconditionSsd) {
        const std::uint64_t pages =
            workload_->footprintBytes() / kPageBytes;
        ssd_->ftl().precondition(pages);
    }
    if (!cfg_.dramOnly && cfg_.warmupSsdCache && warm_factory) {
        auto warm = warm_factory();
        if (warm)
            warmupSsd(*warm);
    }

    if (cfg_.policy.migration == MigrationMechanism::AstriFlash) {
        astri_ = std::make_unique<AstriFlashCache>(cfg_, eq_, *ssd_,
                                                   *hostDram_);
    } else if (cfg_.policy.promotionEnable
               && cfg_.policy.migration != MigrationMechanism::None) {
        migration_ = std::make_unique<MigrationEngine>(cfg_, eq_, *ssd_,
                                                       *hostDram_, *link_);
        if (cfg_.qos.migrationShare && mix_ != nullptr
            && mix_->tenants().size() >= 2) {
            // Each tenant's promoted-byte cap is its weight share of
            // the host promotion budget, floored at one region so no
            // tenant is locked out of host DRAM entirely.
            const std::vector<double> weights = mix_->tenantQosWeights();
            double total = 0.0;
            for (const double w : weights)
                total += w;
            std::vector<std::uint64_t> shares(weights.size());
            for (std::size_t t = 0; t < weights.size(); ++t) {
                shares[t] = std::max<std::uint64_t>(
                    static_cast<std::uint64_t>(migration_->regionPages())
                        * kPageBytes,
                    static_cast<std::uint64_t>(
                        static_cast<double>(
                            cfg_.hostMem.promotedBytesMax)
                        * weights[t] / total));
            }
            migration_->setTenantShares(mix_->tenantDeviceStarts(),
                                        std::move(shares));
        }
    }

    router_ = std::make_unique<MemRouter>(*this);
    if (mix_ != nullptr && mix_->tenants().size() >= 2)
        router_->enableTenantAccounting(mix_->tenants().size());
    uncore_ = std::make_unique<Uncore>(cfg_.cpu, eq_, *router_);
    if (mix_ != nullptr && mix_->tenants().size() >= 2) {
        // Per-tenant SLO latency histograms (pure accounting): recorded
        // beside the aggregate off-chip histogram, classified by the
        // host virtual line address.
        uncore_->enableTenantLatency(
            mix_->tenants().size(),
            [this](Addr vaddr) { return tenantOfVaddr(vaddr); });
    }

    for (int c = 0; c < cfg_.cpu.numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, cfg_.cpu, cfg_.policy,
                                                eq_, *uncore_));
    }
    for (int t = 0; t < params_.numThreads; ++t) {
        threads_.push_back(
            std::make_unique<ThreadContext>(t, workload_.get()));
    }

    sched_ = std::make_unique<CxlAwareScheduler>(cfg_.policy.schedPolicy,
                                                 cfg_.seed);
    std::vector<Core *> core_ptrs;
    for (auto &core : cores_) {
        core->setScheduler(sched_.get());
        core_ptrs.push_back(core.get());
    }
    sched_->setCores(core_ptrs);
    for (auto &thread : threads_)
        sched_->addThread(thread.get());

    if (migration_ != nullptr) {
        migration_->setShootdownHook([this](Tick cost) {
            for (auto &core : cores_)
                core->addPenalty(cost);
        });
    }

    // Lane-parallel staging: with lanes=N the simulation thread gets
    // N-1 producers prestaging trace batches. Batch content is a pure
    // function of (workload, tid, batch index), so this changes where
    // batches are produced — never their contents or consumption time —
    // and results stay bit-identical to lanes=1 (pinned by
    // tests/test_lane_kernel.cc). Workloads that cannot take
    // concurrent refills simply stay on the serial path.
    const std::uint32_t lanes = resolvedKernelLanes(cfg_.kernel);
    if (lanes > 1 && params_.numThreads > 1
        && workload_->concurrentRefillSafe()) {
        stager_ = std::make_unique<LaneBatchStager>(*workload_, lanes - 1);
        for (auto &thread : threads_)
            thread->setBatchSource(stager_.get());
    }
}

System::~System() = default;

void
System::warmupSsd(Workload &warm_ref)
{
    // Stream an identically-distributed copy of the trace (same seeds,
    // fresh generator state) and preload the SSD data cache with the
    // most-recently-touched device pages, oldest first so the LRU order
    // matches a real warm state (§VI-A). Each thread is drained through
    // its own batch cursor; the 64-record interleave matches the seed
    // pass so the LRU sequence is unchanged.
    Workload *warm = &warm_ref;

    std::vector<TraceCursor> cursors;
    cursors.reserve(static_cast<std::size_t>(warm->numThreads()));
    for (int t = 0; t < warm->numThreads(); ++t)
        cursors.emplace_back(*warm, t);

    FlatMap<std::uint64_t> last_touch;
    std::uint64_t seq = 0;
    std::uint64_t budget = 2'000'000;
    TraceRecord rec;
    bool progressed = true;
    while (progressed && budget > 0) {
        progressed = false;
        for (int t = 0; t < warm->numThreads() && budget > 0; ++t) {
            for (int k = 0; k < 64 && budget > 0; ++k) {
                if (!cursors[t].next(rec))
                    break;
                progressed = true;
                budget--;
                if (isDeviceAddr(rec.vaddr))
                    last_touch[pageNumber(toDeviceAddr(rec.vaddr))] =
                        seq++;
            }
        }
    }

    // Slot order is arbitrary; the sort below by (unique) touch seq
    // fixes the fill order, so results are identical either way.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pages;
    pages.reserve(last_touch.size());
    last_touch.forEach([&](std::uint64_t lpn, std::uint64_t s) {
        pages.emplace_back(lpn, s);
    });
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    const std::uint64_t capacity = ssd_->cache().capacityPages();
    const std::size_t start =
        pages.size() > capacity ? pages.size() - capacity : 0;
    for (std::size_t i = start; i < pages.size(); ++i)
        ssd_->warmFill(pages[i].first);
}

Tick
System::numaPenalty(int core_id) const
{
    const NumaConfig &numa = cfg_.numa;
    if (numa.sockets <= 1 || core_id < 0)
        return 0;
    const auto socket = static_cast<std::uint32_t>(
        core_id * static_cast<int>(numa.sockets) / cfg_.cpu.numCores);
    return socket == numa.ssdHomeSocket ? 0 : numa.interSocketLatency;
}

bool
System::isDeviceAddr(Addr vaddr) const
{
    return vaddr >= Workload::kDataBase
           && vaddr < Workload::kDataBase + workload_->footprintBytes();
}

Addr
System::toDeviceAddr(Addr vaddr) const
{
    return vaddr - Workload::kDataBase;
}

int
System::tenantOfVaddr(Addr vaddr) const
{
    if (mix_ == nullptr)
        return -1;
    if (isDeviceAddr(vaddr))
        return mix_->tenantOfDeviceOffset(toDeviceAddr(vaddr));
    if (vaddr >= Workload::kPrivateBase) {
        const Addr tid =
            (vaddr - Workload::kPrivateBase) / Workload::kPrivateStride;
        if (tid < threads_.size())
            return mix_->tenantOfThread(static_cast<int>(tid));
    }
    return -1;
}

SimResult
System::run(Tick max_ticks)
{
    sched_->start(eq_.now());
    bool timed_out = false;
    while (!sched_->allFinished()) {
        if (!eq_.step()) {
            // No events but threads unfinished: deadlock guard.
            timed_out = true;
            break;
        }
        if (eq_.now() > max_ticks) {
            timed_out = true;
            break;
        }
    }
    // Drain device-side background work, bounded so a busy device
    // cannot extend the run unboundedly past thread completion.
    const Tick drain_limit =
        std::min(max_ticks, eq_.now() + usToTicks(100'000.0));
    while (!timed_out && eq_.pending() > 0 && eq_.now() <= drain_limit)
        eq_.step();

    // Quiesce the staging producers before stats assembly so the run's
    // host threads are gone by the time the result is read.
    if (stager_ != nullptr)
        stager_->stop();

    SimResult res;
    res.variant = cfg_.name;
    res.workload = workloadLabel_;
    res.timedOut = timed_out;
    res.execTime = sched_->lastFinishTime();

    for (auto &core : cores_) {
        const CoreStats &cs = core->stats();
        res.committedInstructions += cs.committedInstructions;
        res.computeTicks += cs.computeTicks;
        res.memStallTicks += cs.memStallTicks;
        res.ctxSwitchTicks += cs.ctxSwitchTicks;
        res.idleTicks += cs.idleTicks;
        res.contextSwitches += cs.contextSwitches;
    }

    const SsdStats &ss = ssd_->stats();
    res.hostReads = router_->hostReads();
    res.hostWrites = router_->hostWrites();
    res.ssdReadHits = ss.readHitsLog + ss.readHitsCache;
    res.ssdReadMisses = ss.readMisses;
    res.ssdWrites = ss.writes;

    const double ssd_reads = static_cast<double>(ss.amatReads);
    const double host_reads = static_cast<double>(res.hostReads);
    const double total_reads = ssd_reads + host_reads;
    if (total_reads > 0) {
        res.amatHostTicks = router_->hostReadTicks() / total_reads;
        res.amatProtocolTicks = ss.protocolTicks / total_reads;
        res.amatIndexingTicks = ss.indexingTicks / total_reads;
        res.amatSsdDramTicks = ss.ssdDramTicks / total_reads;
        res.amatFlashTicks = ss.flashTicks / total_reads;
        res.amatTotalTicks = res.amatHostTicks + res.amatProtocolTicks
                             + res.amatIndexingTicks + res.amatSsdDramTicks
                             + res.amatFlashTicks;
    }

    const FtlStats &fs = ssd_->ftl().stats();
    res.flashHostPrograms = fs.hostPrograms;
    res.flashGcPrograms = fs.gcPageMoves;
    res.flashReads = ssd_->ftl().totalReads();
    res.gcRuns = fs.gcRuns;
    res.compactions = ss.compactionRuns;
    res.flashReadLatencyUs =
        ticksToUs(static_cast<Tick>(ss.flashReadLatency.meanTicks()));
    res.writeAmplification = ssd_->ftlc().writeAmplification();
    res.wearSpread = ssd_->ftlc().wearSummary().spread();

    if (const WriteLog *log = ssd_->writeLog()) {
        const WriteLogStats &ls = log->stats();
        res.logAppends = ls.appends;
        res.logUpdateHits = ls.updateHits;
        res.logOverflowAppends = ls.overflowAppends;
        res.logIndexBytesPeak = ls.indexBytesPeak;
    }

    if (migration_ != nullptr) {
        res.promotions = migration_->stats().promotions;
        res.demotions = migration_->stats().demotions;
        res.qosMigrationShareRejects =
            migration_->stats().rejectedTenantShare;
    }
    if (astri_ != nullptr) {
        res.astriHostHits = astri_->stats().hostHits;
        res.astriHostMisses = astri_->stats().hostMisses;
        res.promotions = astri_->stats().pageFills;
    }

    if (mix_ != nullptr && mix_->tenants().size() >= 2) {
        const std::vector<MixTenant> &tenants = mix_->tenants();
        const std::vector<SsdTenantCounters> &device =
            ssd_->tenantCounters();
        res.tenants.reserve(tenants.size());
        for (std::size_t i = 0; i < tenants.size(); ++i) {
            TenantResult tr;
            tr.name = tenants[i].name;
            tr.spec = tenants[i].specText;
            tr.threads = tenants[i].threads;
            for (std::size_t tid = 0; tid < threads_.size(); ++tid) {
                if (mix_->tenantOfThread(static_cast<int>(tid))
                    != static_cast<int>(i)) {
                    continue;
                }
                // Staged runs count at delivery time: the workload's
                // refill-time counter would include batches produced
                // ahead but never consumed (visible on timeouts).
                tr.instructions +=
                    stager_ != nullptr
                        ? stager_->instructionsDelivered(
                              static_cast<int>(tid))
                        : workload_->instructionsEmitted(
                              static_cast<int>(tid));
                tr.execTime =
                    std::max(tr.execTime, threads_[tid]->finishTime());
            }
            tr.hostReads = router_->tenantHostReads()[i];
            tr.hostWrites = router_->tenantHostWrites()[i];
            tr.ssdReadHits =
                device[i].readHitsLog + device[i].readHitsCache;
            tr.ssdReadMisses = device[i].readMisses;
            tr.ssdWrites = device[i].writes;
            tr.logAppends = device[i].logAppends;
            tr.flashPageReads = device[i].flashPageReads;
            tr.flashReadLatencyUs =
                device[i].flashPageReads == 0
                    ? 0.0
                    : ticksToUs(static_cast<Tick>(
                          device[i].flashReadTicks
                          / static_cast<double>(
                              device[i].flashPageReads)));
            tr.qosWeight = tenants[i].qosWeight;
            tr.offchipLatency = uncore_->tenantOffchipLatency()[i];
            tr.qosDelayedReads = device[i].delayedReads;
            tr.qosDelayedWrites = device[i].delayedWrites;
            tr.qosThrottleDelayUs = ticksToUs(
                static_cast<Tick>(device[i].throttleDelayTicks));
            tr.qosLogOverQuota = device[i].logOverQuota;
            res.tenants.push_back(std::move(tr));
        }
    }

    res.cxlBytes = link_->bytesTransferred();
    res.llcMisses = uncore_->llcMisses();
    res.llcAccesses = uncore_->l3c().hits() + uncore_->l3c().misses();
    res.offchipLatency = uncore_->offchipLatency();
    res.readLocality = ss.readLocality;
    res.writeLocality = ss.writeLocality;
    return res;
}

SimResult
runSimulation(const SimConfig &cfg, const std::string &workload_name,
              const WorkloadParams &params, Tick max_ticks)
{
    System sys(cfg, workload_name, params);
    return sys.run(max_ticks);
}

} // namespace skybyte
