/**
 * @file
 * Experiment presets shared by the benchmark harness, examples and
 * integration tests: variant construction, the paper's thread-count rule
 * (§VI-A: 24 threads on 8 cores when coordinated context switch is
 * enabled, 8 threads otherwise), and environment-tunable run scale.
 */

#ifndef SKYBYTE_SIM_EXPERIMENT_H
#define SKYBYTE_SIM_EXPERIMENT_H

#include <cstdint>
#include <string>

#include "sim/system.h"

namespace skybyte {

/** Scale knobs for a batch of runs. */
struct ExperimentOptions
{
    /** Instructions per thread (env SKYBYTE_BENCH_INSTR overrides). */
    std::uint64_t instrPerThread = 400'000;
    /** 0 = paper rule (24 with context switch, 8 without). */
    int threadsOverride = 0;
    /** 0 = workload default footprint (1/64 of the paper's). */
    std::uint64_t footprintBytes = 0;
    std::uint64_t seed = 42;

    /**
     * Read overrides from the environment:
     *  - SKYBYTE_BENCH_INSTR: instructions per thread
     *  - SKYBYTE_BENCH_THREADS: thread count
     *  - SKYBYTE_BENCH_FOOTPRINT_MB: workload footprint
     */
    static ExperimentOptions fromEnv();
};

/** Threads the paper runs for @p cfg (§VI-A). */
int defaultThreadsFor(const SimConfig &cfg, const ExperimentOptions &opt);

/**
 * Shrink the cache hierarchy to the bench scale (DESIGN.md §1): the
 * default workload footprints are 1/64 of the paper's, so the 16 MB LLC
 * must shrink too or no writeback ever reaches the SSD at bench trace
 * lengths. Ratios footprint:LLC and footprint:SSD-DRAM are preserved.
 */
void applyBenchScale(SimConfig &cfg);

/** makeConfig() + applyBenchScale(). */
SimConfig makeBenchConfig(const std::string &variant);

/** Build WorkloadParams for one run. */
WorkloadParams makeParams(const SimConfig &cfg,
                          const ExperimentOptions &opt);

/**
 * Run @p variant on @p workload at the options' scale.
 * Variant names are those accepted by makeConfig().
 */
SimResult runVariant(const std::string &variant,
                     const std::string &workload,
                     const ExperimentOptions &opt);

/** Run a fully custom config (already-tweaked knobs). */
SimResult runConfig(const SimConfig &cfg, const std::string &workload,
                    const ExperimentOptions &opt);

/**
 * One point of a parameter sweep: a fully-specified, self-contained
 * run. All randomness of a run derives from the point itself (cfg.seed
 * and opt.seed), never from shared state.
 */
struct SweepPoint
{
    SimConfig cfg;
    std::string workload;
    ExperimentOptions opt;
};

/** SweepPoint mirroring runVariant (cfg.seed taken from opt.seed). */
SweepPoint makeSweepPoint(const std::string &variant,
                          const std::string &workload,
                          const ExperimentOptions &opt);

/**
 * Run independent simulation points on a pool of worker threads.
 *
 * Results are positionally aligned with @p points. Each run is an
 * isolated System seeded only by its point, so the output is identical
 * to running the points serially — regardless of @p nthreads or OS
 * scheduling.
 *
 * @param nthreads worker count; <= 0 reads SKYBYTE_BENCH_NTHREADS and
 *                 falls back to the hardware concurrency
 */
std::vector<SimResult> runSweep(const std::vector<SweepPoint> &points,
                                int nthreads = 0);

/** Worker count runSweep will use for @p nthreads. */
int sweepThreads(int nthreads, std::size_t npoints);

} // namespace skybyte

#endif // SKYBYTE_SIM_EXPERIMENT_H
