#include "sim/report.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace skybyte {

namespace {

void
appendKv(std::ostringstream &os, const char *key, double value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendKv(std::ostringstream &os, const char *key, std::uint64_t value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendCdf(std::ostringstream &os, const char *key,
          const std::vector<std::pair<double, double>> &points,
          bool comma = true)
{
    os << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "[" << points[i].first << ", " << points[i].second << "]";
    }
    os << "]";
    if (comma)
        os << ",";
    os << "\n";
}

} // namespace

void
printSummary(const SimResult &res, std::ostream &out)
{
    out << "=== " << res.variant << " / " << res.workload << " ===\n"
        << "exec_time_ms        " << res.execMs() << "\n"
        << "instructions        " << res.committedInstructions << "\n"
        << "ipc                 " << res.ipc() << "\n"
        << "context_switches    " << res.contextSwitches << "\n"
        << "llc_mpki            " << res.llcMpki() << "\n"
        << "host_reads/writes   " << res.hostReads << " / "
        << res.hostWrites << "\n"
        << "ssd_read_hit/miss   " << res.ssdReadHits << " / "
        << res.ssdReadMisses << "\n"
        << "ssd_writes          " << res.ssdWrites << "\n"
        << "flash_programs      " << res.flashHostPrograms << " (+"
        << res.flashGcPrograms << " gc)\n"
        << "compactions         " << res.compactions << "\n"
        << "gc_runs             " << res.gcRuns << "\n"
        << "promotions          " << res.promotions << "\n"
        << "amat_ns             "
        << ticksToNs(static_cast<Tick>(res.amatTotalTicks)) << "\n"
        << "cxl_bandwidth_gbps  " << res.cxlBandwidthGbps() << "\n";
}

std::string
toJson(const SimResult &res)
{
    std::ostringstream os;
    os << std::setprecision(12);
    os << "{\n";
    os << "  \"variant\": \"" << res.variant << "\",\n";
    os << "  \"workload\": \"" << res.workload << "\",\n";
    os << "  \"timed_out\": " << (res.timedOut ? "true" : "false")
       << ",\n";
    appendKv(os, "exec_time_ticks", res.execTime);
    appendKv(os, "exec_time_ms", res.execMs());
    appendKv(os, "committed_instructions", res.committedInstructions);
    appendKv(os, "ipc", res.ipc());
    appendKv(os, "compute_ticks", res.computeTicks);
    appendKv(os, "mem_stall_ticks", res.memStallTicks);
    appendKv(os, "ctx_switch_ticks", res.ctxSwitchTicks);
    appendKv(os, "idle_ticks", res.idleTicks);
    appendKv(os, "context_switches", res.contextSwitches);
    appendKv(os, "host_reads", res.hostReads);
    appendKv(os, "host_writes", res.hostWrites);
    appendKv(os, "ssd_read_hits", res.ssdReadHits);
    appendKv(os, "ssd_read_misses", res.ssdReadMisses);
    appendKv(os, "ssd_writes", res.ssdWrites);
    appendKv(os, "amat_host_ticks", res.amatHostTicks);
    appendKv(os, "amat_protocol_ticks", res.amatProtocolTicks);
    appendKv(os, "amat_indexing_ticks", res.amatIndexingTicks);
    appendKv(os, "amat_ssd_dram_ticks", res.amatSsdDramTicks);
    appendKv(os, "amat_flash_ticks", res.amatFlashTicks);
    appendKv(os, "amat_total_ticks", res.amatTotalTicks);
    appendKv(os, "flash_host_programs", res.flashHostPrograms);
    appendKv(os, "flash_gc_programs", res.flashGcPrograms);
    appendKv(os, "flash_reads", res.flashReads);
    appendKv(os, "gc_runs", res.gcRuns);
    appendKv(os, "compactions", res.compactions);
    appendKv(os, "flash_read_latency_us", res.flashReadLatencyUs);
    appendKv(os, "write_amplification", res.writeAmplification);
    appendKv(os, "wear_spread",
             static_cast<std::uint64_t>(res.wearSpread));
    appendKv(os, "log_appends", res.logAppends);
    appendKv(os, "log_update_hits", res.logUpdateHits);
    appendKv(os, "log_overflow_appends", res.logOverflowAppends);
    appendKv(os, "log_index_bytes_peak", res.logIndexBytesPeak);
    appendKv(os, "promotions", res.promotions);
    appendKv(os, "demotions", res.demotions);
    appendKv(os, "astri_host_hits", res.astriHostHits);
    appendKv(os, "astri_host_misses", res.astriHostMisses);
    appendKv(os, "cxl_bytes", res.cxlBytes);
    appendKv(os, "llc_misses", res.llcMisses);
    appendKv(os, "llc_accesses", res.llcAccesses);
    appendKv(os, "llc_mpki", res.llcMpki());
    appendCdf(os, "offchip_latency_cdf_ns",
              res.offchipLatency.cdfPoints());
    appendCdf(os, "read_locality_cdf", res.readLocality.cdfPoints());
    appendCdf(os, "write_locality_cdf", res.writeLocality.cdfPoints(),
              false);
    os << "}\n";
    return os.str();
}

void
writeJsonFile(const SimResult &res, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open output file: " + path);
    out << toJson(res);
    if (!out)
        throw std::runtime_error("short write: " + path);
}

namespace {

/** Minimal scanner over the report format this file writes. */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    /** Position the cursor after the first occurrence of @p token. */
    void
    expect(const std::string &token)
    {
        const auto at = text_.find(token, pos_);
        if (at == std::string::npos)
            throw std::runtime_error("sweep report: missing " + token);
        pos_ = at + token.size();
    }

    bool
    lookingAt(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c) {
            throw std::runtime_error(
                std::string("sweep report: expected '") + c + "'");
        }
        pos_++;
    }

    std::string
    stringValue()
    {
        consume('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                pos_++; // report strings never need escapes, but cope
            out += text_[pos_++];
        }
        consume('"');
        return out;
    }

    std::uint64_t
    numberValue()
    {
        skipSpace();
        std::size_t used = 0;
        std::uint64_t v = 0;
        try {
            v = std::stoull(text_.substr(pos_, 20), &used, 10);
        } catch (const std::exception &) {
            throw std::runtime_error("sweep report: expected number");
        }
        pos_ += used;
        return v;
    }

    /**
     * The cursor sits at the '{' of an object: return its full text
     * (string-aware brace matching) and advance past it.
     */
    std::string
    objectText()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '{')
            throw std::runtime_error("sweep report: expected object");
        const std::size_t begin = pos_;
        int depth = 0;
        bool in_string = false;
        for (; pos_ < text_.size(); ++pos_) {
            const char c = text_[pos_];
            if (in_string) {
                if (c == '\\')
                    pos_++;
                else if (c == '"')
                    in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                depth++;
            } else if (c == '}') {
                if (--depth == 0) {
                    pos_++;
                    return text_.substr(begin, pos_ - begin);
                }
            }
        }
        throw std::runtime_error("sweep report: unterminated object");
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\n'
                   || text_[pos_] == '\r' || text_[pos_] == '\t')) {
            pos_++;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
sweepEntryJson(std::size_t index, const std::string &id,
               const SimResult &res)
{
    std::string result_json = toJson(res);
    // toJson ends with "}\n"; embed without the trailing newline.
    if (!result_json.empty() && result_json.back() == '\n')
        result_json.pop_back();
    std::ostringstream os;
    os << "{\n"
       << "\"index\": " << index << ",\n"
       << "\"id\": \"" << id << "\",\n"
       << "\"result\": " << result_json << "\n"
       << "}";
    return os.str();
}

std::string
toJson(const SweepReport &report)
{
    std::ostringstream os;
    os << "{\n"
       << "\"skybyte_sweep_report\": 1,\n"
       << "\"sweep\": \"" << report.sweep << "\",\n"
       << "\"total_points\": " << report.totalPoints << ",\n"
       << "\"shard_index\": " << report.shardIndex << ",\n"
       << "\"shard_count\": " << report.shardCount << ",\n"
       << "\"points\": [";
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << report.entries[i].text;
    }
    os << "\n]\n}\n";
    return os.str();
}

SweepReport
parseSweepReport(const std::string &text)
{
    SweepReport report;
    JsonScanner scan(text);
    scan.expect("\"skybyte_sweep_report\":");
    if (scan.numberValue() != 1)
        throw std::runtime_error("sweep report: unknown format version");
    scan.expect("\"sweep\":");
    report.sweep = scan.stringValue();
    scan.expect("\"total_points\":");
    report.totalPoints = scan.numberValue();
    scan.expect("\"shard_index\":");
    report.shardIndex = static_cast<std::uint32_t>(scan.numberValue());
    scan.expect("\"shard_count\":");
    report.shardCount = static_cast<std::uint32_t>(scan.numberValue());
    scan.expect("\"points\":");
    scan.consume('[');
    while (!scan.lookingAt(']')) {
        SweepReportEntry entry;
        entry.text = scan.objectText();
        // The index lives at a fixed spot inside the entry text.
        JsonScanner inner(entry.text);
        inner.expect("\"index\":");
        entry.index = inner.numberValue();
        report.entries.push_back(std::move(entry));
        if (scan.lookingAt(','))
            scan.consume(',');
    }
    return report;
}

SweepReport
mergeSweepReports(const std::vector<SweepReport> &shards)
{
    if (shards.empty())
        throw std::runtime_error("merge: no reports given");
    SweepReport merged;
    merged.sweep = shards.front().sweep;
    merged.totalPoints = shards.front().totalPoints;
    for (const SweepReport &shard : shards) {
        if (shard.sweep != merged.sweep) {
            throw std::runtime_error("merge: mixed sweeps: "
                                     + merged.sweep + " vs "
                                     + shard.sweep);
        }
        if (shard.totalPoints != merged.totalPoints) {
            throw std::runtime_error("merge: total_points mismatch in "
                                     + shard.sweep);
        }
        merged.entries.insert(merged.entries.end(),
                              shard.entries.begin(),
                              shard.entries.end());
    }
    std::sort(merged.entries.begin(), merged.entries.end(),
              [](const SweepReportEntry &a, const SweepReportEntry &b) {
                  return a.index < b.index;
              });
    if (merged.entries.size() != merged.totalPoints) {
        throw std::runtime_error(
            "merge: " + std::to_string(merged.entries.size())
            + " entries for " + std::to_string(merged.totalPoints)
            + " points (missing or extra shards?)");
    }
    for (std::size_t i = 0; i < merged.entries.size(); ++i) {
        if (merged.entries[i].index != i) {
            throw std::runtime_error(
                "merge: duplicate or missing point index "
                + std::to_string(i));
        }
    }
    return merged;
}

} // namespace skybyte
