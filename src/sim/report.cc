#include "sim/report.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace skybyte {

namespace {

void
appendKv(std::ostringstream &os, const char *key, double value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendKv(std::ostringstream &os, const char *key, std::uint64_t value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendCdf(std::ostringstream &os, const char *key,
          const std::vector<std::pair<double, double>> &points,
          bool comma = true)
{
    os << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "[" << points[i].first << ", " << points[i].second << "]";
    }
    os << "]";
    if (comma)
        os << ",";
    os << "\n";
}

} // namespace

void
printSummary(const SimResult &res, std::ostream &out)
{
    out << "=== " << res.variant << " / " << res.workload << " ===\n"
        << "exec_time_ms        " << res.execMs() << "\n"
        << "instructions        " << res.committedInstructions << "\n"
        << "ipc                 " << res.ipc() << "\n"
        << "context_switches    " << res.contextSwitches << "\n"
        << "llc_mpki            " << res.llcMpki() << "\n"
        << "host_reads/writes   " << res.hostReads << " / "
        << res.hostWrites << "\n"
        << "ssd_read_hit/miss   " << res.ssdReadHits << " / "
        << res.ssdReadMisses << "\n"
        << "ssd_writes          " << res.ssdWrites << "\n"
        << "flash_programs      " << res.flashHostPrograms << " (+"
        << res.flashGcPrograms << " gc)\n"
        << "compactions         " << res.compactions << "\n"
        << "gc_runs             " << res.gcRuns << "\n"
        << "promotions          " << res.promotions << "\n"
        << "amat_ns             "
        << ticksToNs(static_cast<Tick>(res.amatTotalTicks)) << "\n"
        << "cxl_bandwidth_gbps  " << res.cxlBandwidthGbps() << "\n";
}

std::string
toJson(const SimResult &res)
{
    std::ostringstream os;
    os << std::setprecision(12);
    os << "{\n";
    os << "  \"variant\": \"" << res.variant << "\",\n";
    os << "  \"workload\": \"" << res.workload << "\",\n";
    os << "  \"timed_out\": " << (res.timedOut ? "true" : "false")
       << ",\n";
    appendKv(os, "exec_time_ticks", res.execTime);
    appendKv(os, "exec_time_ms", res.execMs());
    appendKv(os, "committed_instructions", res.committedInstructions);
    appendKv(os, "ipc", res.ipc());
    appendKv(os, "compute_ticks", res.computeTicks);
    appendKv(os, "mem_stall_ticks", res.memStallTicks);
    appendKv(os, "ctx_switch_ticks", res.ctxSwitchTicks);
    appendKv(os, "idle_ticks", res.idleTicks);
    appendKv(os, "context_switches", res.contextSwitches);
    appendKv(os, "host_reads", res.hostReads);
    appendKv(os, "host_writes", res.hostWrites);
    appendKv(os, "ssd_read_hits", res.ssdReadHits);
    appendKv(os, "ssd_read_misses", res.ssdReadMisses);
    appendKv(os, "ssd_writes", res.ssdWrites);
    appendKv(os, "amat_host_ticks", res.amatHostTicks);
    appendKv(os, "amat_protocol_ticks", res.amatProtocolTicks);
    appendKv(os, "amat_indexing_ticks", res.amatIndexingTicks);
    appendKv(os, "amat_ssd_dram_ticks", res.amatSsdDramTicks);
    appendKv(os, "amat_flash_ticks", res.amatFlashTicks);
    appendKv(os, "amat_total_ticks", res.amatTotalTicks);
    appendKv(os, "flash_host_programs", res.flashHostPrograms);
    appendKv(os, "flash_gc_programs", res.flashGcPrograms);
    appendKv(os, "flash_reads", res.flashReads);
    appendKv(os, "gc_runs", res.gcRuns);
    appendKv(os, "compactions", res.compactions);
    appendKv(os, "flash_read_latency_us", res.flashReadLatencyUs);
    appendKv(os, "write_amplification", res.writeAmplification);
    appendKv(os, "wear_spread",
             static_cast<std::uint64_t>(res.wearSpread));
    appendKv(os, "log_appends", res.logAppends);
    appendKv(os, "log_update_hits", res.logUpdateHits);
    appendKv(os, "log_overflow_appends", res.logOverflowAppends);
    appendKv(os, "log_index_bytes_peak", res.logIndexBytesPeak);
    appendKv(os, "promotions", res.promotions);
    appendKv(os, "demotions", res.demotions);
    appendKv(os, "astri_host_hits", res.astriHostHits);
    appendKv(os, "astri_host_misses", res.astriHostMisses);
    appendKv(os, "cxl_bytes", res.cxlBytes);
    appendKv(os, "llc_misses", res.llcMisses);
    appendKv(os, "llc_accesses", res.llcAccesses);
    appendKv(os, "llc_mpki", res.llcMpki());
    appendCdf(os, "offchip_latency_cdf_ns",
              res.offchipLatency.cdfPoints());
    appendCdf(os, "read_locality_cdf", res.readLocality.cdfPoints());
    appendCdf(os, "write_locality_cdf", res.writeLocality.cdfPoints(),
              false);
    os << "}\n";
    return os.str();
}

void
writeJsonFile(const SimResult &res, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("cannot open output file: " + path);
    out << toJson(res);
    if (!out)
        throw std::runtime_error("short write: " + path);
}

} // namespace skybyte
