#include "sim/report.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/fs.h"

namespace skybyte {

namespace {

void
appendKv(std::ostringstream &os, const char *key, double value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendKv(std::ostringstream &os, const char *key, std::uint64_t value,
         bool comma = true)
{
    os << "  \"" << key << "\": " << value;
    if (comma)
        os << ",";
    os << "\n";
}

void
appendCdf(std::ostringstream &os, const char *key,
          const std::vector<std::pair<double, double>> &points,
          bool comma = true)
{
    os << "  \"" << key << "\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "[" << points[i].first << ", " << points[i].second << "]";
    }
    os << "]";
    if (comma)
        os << ",";
    os << "\n";
}

} // namespace

void
printSummary(const SimResult &res, std::ostream &out)
{
    out << "=== " << res.variant << " / " << res.workload << " ===\n"
        << "exec_time_ms        " << res.execMs() << "\n"
        << "instructions        " << res.committedInstructions << "\n"
        << "ipc                 " << res.ipc() << "\n"
        << "context_switches    " << res.contextSwitches << "\n"
        << "llc_mpki            " << res.llcMpki() << "\n"
        << "host_reads/writes   " << res.hostReads << " / "
        << res.hostWrites << "\n"
        << "ssd_read_hit/miss   " << res.ssdReadHits << " / "
        << res.ssdReadMisses << "\n"
        << "ssd_writes          " << res.ssdWrites << "\n"
        << "flash_programs      " << res.flashHostPrograms << " (+"
        << res.flashGcPrograms << " gc)\n"
        << "compactions         " << res.compactions << "\n"
        << "gc_runs             " << res.gcRuns << "\n"
        << "promotions          " << res.promotions << "\n"
        << "amat_ns             "
        << ticksToNs(static_cast<Tick>(res.amatTotalTicks)) << "\n"
        << "cxl_bandwidth_gbps  " << res.cxlBandwidthGbps() << "\n";
    for (const TenantResult &t : res.tenants) {
        out << "tenant " << t.name << " (" << t.spec << ", "
            << t.threads << " threads): ipc " << t.ipc()
            << ", host r/w " << t.hostReads << "/" << t.hostWrites
            << ", ssd hit/miss/w " << t.ssdReadHits << "/"
            << t.ssdReadMisses << "/" << t.ssdWrites
            << ", log appends " << t.logAppends
            << ", flash read us " << t.flashReadLatencyUs
            << ", offchip p50/p95/p99 ns "
            << ticksToNs(t.offchipLatency.percentileTicks(0.50)) << "/"
            << ticksToNs(t.offchipLatency.percentileTicks(0.95)) << "/"
            << ticksToNs(t.offchipLatency.percentileTicks(0.99))
            << ", qos delayed r/w " << t.qosDelayedReads << "/"
            << t.qosDelayedWrites << "\n";
    }
    if (!res.tenants.empty())
        out << "fairness_ipc        " << res.fairnessIpc() << "\n";
}

std::string
toJson(const SimResult &res)
{
    std::ostringstream os;
    os << std::setprecision(12);
    os << "{\n";
    os << "  \"variant\": \"" << res.variant << "\",\n";
    os << "  \"workload\": \"" << res.workload << "\",\n";
    os << "  \"timed_out\": " << (res.timedOut ? "true" : "false")
       << ",\n";
    appendKv(os, "exec_time_ticks", res.execTime);
    appendKv(os, "exec_time_ms", res.execMs());
    appendKv(os, "committed_instructions", res.committedInstructions);
    appendKv(os, "ipc", res.ipc());
    appendKv(os, "compute_ticks", res.computeTicks);
    appendKv(os, "mem_stall_ticks", res.memStallTicks);
    appendKv(os, "ctx_switch_ticks", res.ctxSwitchTicks);
    appendKv(os, "idle_ticks", res.idleTicks);
    appendKv(os, "context_switches", res.contextSwitches);
    appendKv(os, "host_reads", res.hostReads);
    appendKv(os, "host_writes", res.hostWrites);
    appendKv(os, "ssd_read_hits", res.ssdReadHits);
    appendKv(os, "ssd_read_misses", res.ssdReadMisses);
    appendKv(os, "ssd_writes", res.ssdWrites);
    appendKv(os, "amat_host_ticks", res.amatHostTicks);
    appendKv(os, "amat_protocol_ticks", res.amatProtocolTicks);
    appendKv(os, "amat_indexing_ticks", res.amatIndexingTicks);
    appendKv(os, "amat_ssd_dram_ticks", res.amatSsdDramTicks);
    appendKv(os, "amat_flash_ticks", res.amatFlashTicks);
    appendKv(os, "amat_total_ticks", res.amatTotalTicks);
    appendKv(os, "flash_host_programs", res.flashHostPrograms);
    appendKv(os, "flash_gc_programs", res.flashGcPrograms);
    appendKv(os, "flash_reads", res.flashReads);
    appendKv(os, "gc_runs", res.gcRuns);
    appendKv(os, "compactions", res.compactions);
    appendKv(os, "flash_read_latency_us", res.flashReadLatencyUs);
    appendKv(os, "write_amplification", res.writeAmplification);
    appendKv(os, "wear_spread",
             static_cast<std::uint64_t>(res.wearSpread));
    appendKv(os, "log_appends", res.logAppends);
    appendKv(os, "log_update_hits", res.logUpdateHits);
    appendKv(os, "log_overflow_appends", res.logOverflowAppends);
    appendKv(os, "log_index_bytes_peak", res.logIndexBytesPeak);
    appendKv(os, "promotions", res.promotions);
    appendKv(os, "demotions", res.demotions);
    appendKv(os, "astri_host_hits", res.astriHostHits);
    appendKv(os, "astri_host_misses", res.astriHostMisses);
    appendKv(os, "cxl_bytes", res.cxlBytes);
    appendKv(os, "llc_misses", res.llcMisses);
    appendKv(os, "llc_accesses", res.llcAccesses);
    appendKv(os, "llc_mpki", res.llcMpki());
    appendCdf(os, "offchip_latency_cdf_ns",
              res.offchipLatency.cdfPoints());
    appendCdf(os, "read_locality_cdf", res.readLocality.cdfPoints());
    // Per-tenant buckets exist only for >=2-tenant mix runs, so
    // single-workload reports keep their exact byte layout (the
    // checked-in reference reports and fingerprint pins rely on it).
    appendCdf(os, "write_locality_cdf", res.writeLocality.cdfPoints(),
              !res.tenants.empty());
    if (!res.tenants.empty()) {
        os << "  \"tenants\": [";
        for (std::size_t i = 0; i < res.tenants.size(); ++i) {
            const TenantResult &t = res.tenants[i];
            os << (i == 0 ? "\n" : ",\n");
            os << "    {\"name\": \"" << t.name << "\", \"spec\": \""
               << t.spec << "\", \"threads\": " << t.threads
               << ", \"instructions\": " << t.instructions
               << ", \"exec_time_ticks\": " << t.execTime
               << ", \"ipc\": " << t.ipc()
               << ", \"host_reads\": " << t.hostReads
               << ", \"host_writes\": " << t.hostWrites
               << ", \"ssd_read_hits\": " << t.ssdReadHits
               << ", \"ssd_read_misses\": " << t.ssdReadMisses
               << ", \"ssd_writes\": " << t.ssdWrites
               << ", \"log_appends\": " << t.logAppends
               << ", \"flash_page_reads\": " << t.flashPageReads
               << ", \"flash_read_latency_us\": "
               << t.flashReadLatencyUs
               << ", \"qos_weight\": " << t.qosWeight
               << ", \"offchip_p50_ns\": "
               << ticksToNs(t.offchipLatency.percentileTicks(0.50))
               << ", \"offchip_p95_ns\": "
               << ticksToNs(t.offchipLatency.percentileTicks(0.95))
               << ", \"offchip_p99_ns\": "
               << ticksToNs(t.offchipLatency.percentileTicks(0.99))
               << ", \"qos_delayed_reads\": " << t.qosDelayedReads
               << ", \"qos_delayed_writes\": " << t.qosDelayedWrites
               << ", \"qos_throttle_delay_us\": "
               << t.qosThrottleDelayUs
               << ", \"qos_log_over_quota\": " << t.qosLogOverQuota
               << ", \"offchip_latency_cdf_ns\": [";
            const auto points = t.offchipLatency.cdfPoints();
            for (std::size_t p = 0; p < points.size(); ++p) {
                if (p > 0)
                    os << ", ";
                os << "[" << points[p].first << ", "
                   << points[p].second << "]";
            }
            os << "]}";
        }
        os << "\n  ],\n";
        // SLO/fairness rollups exist only for mix runs, like the tenant
        // array itself, so single-workload reports stay byte-identical.
        appendKv(os, "qos_migration_share_rejects",
                 res.qosMigrationShareRejects);
        appendKv(os, "fairness_ipc", res.fairnessIpc(), false);
    }
    os << "}\n";
    return os.str();
}

void
writeJsonFile(const SimResult &res, const std::string &path)
{
    writeFileAtomic(path, toJson(res));
}

namespace {

/** Minimal scanner over the report format this file writes. */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    /** Position the cursor after the first occurrence of @p token. */
    void
    expect(const std::string &token)
    {
        const auto at = text_.find(token, pos_);
        if (at == std::string::npos)
            throw std::runtime_error("sweep report: missing " + token);
        pos_ = at + token.size();
    }

    bool
    lookingAt(char c)
    {
        skipSpace();
        return pos_ < text_.size() && text_[pos_] == c;
    }

    void
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c) {
            throw std::runtime_error(
                std::string("sweep report: expected '") + c + "'");
        }
        pos_++;
    }

    std::string
    stringValue()
    {
        consume('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\' && pos_ + 1 < text_.size())
                pos_++; // report strings never need escapes, but cope
            out += text_[pos_++];
        }
        consume('"');
        return out;
    }

    std::uint64_t
    numberValue()
    {
        skipSpace();
        std::size_t used = 0;
        std::uint64_t v = 0;
        try {
            v = std::stoull(text_.substr(pos_, 20), &used, 10);
        } catch (const std::exception &) {
            throw std::runtime_error("sweep report: expected number");
        }
        pos_ += used;
        return v;
    }

    /**
     * The cursor sits at the '{' of an object: return its full text
     * (string-aware brace matching) and advance past it.
     */
    std::string
    objectText()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '{')
            throw std::runtime_error("sweep report: expected object");
        const std::size_t begin = pos_;
        int depth = 0;
        bool in_string = false;
        for (; pos_ < text_.size(); ++pos_) {
            const char c = text_[pos_];
            if (in_string) {
                if (c == '\\')
                    pos_++;
                else if (c == '"')
                    in_string = false;
            } else if (c == '"') {
                in_string = true;
            } else if (c == '{') {
                depth++;
            } else if (c == '}') {
                if (--depth == 0) {
                    pos_++;
                    return text_.substr(begin, pos_ - begin);
                }
            }
        }
        throw std::runtime_error("sweep report: unterminated object");
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\n'
                   || text_[pos_] == '\r' || text_[pos_] == '\t')) {
            pos_++;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
sweepEntryJsonFromText(std::size_t index, const std::string &id,
                       const std::string &resultJson)
{
    std::string result_json = resultJson;
    // toJson ends with "}\n"; embed without the trailing newline.
    if (!result_json.empty() && result_json.back() == '\n')
        result_json.pop_back();
    std::ostringstream os;
    os << "{\n"
       << "\"index\": " << index << ",\n"
       << "\"id\": \"" << id << "\",\n"
       << "\"result\": " << result_json << "\n"
       << "}";
    return os.str();
}

std::string
sweepEntryJson(std::size_t index, const std::string &id,
               const SimResult &res)
{
    return sweepEntryJsonFromText(index, id, toJson(res));
}

namespace {

/** Escape '"' and '\\' (failure details may quote shell text). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
toJson(const SweepReport &report)
{
    std::ostringstream os;
    os << "{\n"
       << "\"skybyte_sweep_report\": 1,\n"
       << "\"sweep\": \"" << report.sweep << "\",\n"
       << "\"total_points\": " << report.totalPoints << ",\n"
       << "\"shard_index\": " << report.shardIndex << ",\n"
       << "\"shard_count\": " << report.shardCount << ",\n"
       << "\"points\": [";
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << report.entries[i].text;
    }
    os << "\n]";
    // An empty manifest is omitted entirely: complete reports keep the
    // pre-manifest byte layout (merge identity, pinned references).
    if (!report.failures.empty()) {
        os << ",\n\"failures\": [";
        for (std::size_t i = 0; i < report.failures.size(); ++i) {
            const SweepPointFailure &f = report.failures[i];
            os << (i == 0 ? "\n" : ",\n") << "{\"index\": " << f.index
               << ", \"id\": \"" << jsonEscape(f.id) << "\", \"status\": \""
               << jsonEscape(f.status) << "\", \"attempts\": " << f.attempts
               << ", \"detail\": \"" << jsonEscape(f.detail) << "\"}";
        }
        os << "\n]";
    }
    os << "\n}\n";
    return os.str();
}

SweepReport
parseSweepReport(const std::string &text)
{
    SweepReport report;
    JsonScanner scan(text);
    scan.expect("\"skybyte_sweep_report\":");
    if (scan.numberValue() != 1)
        throw std::runtime_error("sweep report: unknown format version");
    scan.expect("\"sweep\":");
    report.sweep = scan.stringValue();
    scan.expect("\"total_points\":");
    report.totalPoints = scan.numberValue();
    scan.expect("\"shard_index\":");
    report.shardIndex = static_cast<std::uint32_t>(scan.numberValue());
    scan.expect("\"shard_count\":");
    report.shardCount = static_cast<std::uint32_t>(scan.numberValue());
    scan.expect("\"points\":");
    scan.consume('[');
    while (!scan.lookingAt(']')) {
        SweepReportEntry entry;
        entry.text = scan.objectText();
        // The index lives at a fixed spot inside the entry text.
        JsonScanner inner(entry.text);
        inner.expect("\"index\":");
        entry.index = inner.numberValue();
        report.entries.push_back(std::move(entry));
        if (scan.lookingAt(','))
            scan.consume(',');
    }
    scan.consume(']');
    // Optional failure manifest (partial runs only).
    if (scan.lookingAt(',')) {
        scan.consume(',');
        scan.expect("\"failures\":");
        scan.consume('[');
        while (!scan.lookingAt(']')) {
            const std::string text = scan.objectText();
            JsonScanner inner(text);
            SweepPointFailure f;
            inner.expect("\"index\":");
            f.index = inner.numberValue();
            inner.expect("\"id\":");
            f.id = inner.stringValue();
            inner.expect("\"status\":");
            f.status = inner.stringValue();
            inner.expect("\"attempts\":");
            f.attempts = static_cast<std::uint32_t>(inner.numberValue());
            inner.expect("\"detail\":");
            f.detail = inner.stringValue();
            report.failures.push_back(std::move(f));
            if (scan.lookingAt(','))
                scan.consume(',');
        }
    }
    return report;
}

namespace {

/** One lexed token of an entry text: a number, or a literal chunk. */
struct EntryToken
{
    bool isNumber = false;
    double number = 0;
    std::string text; ///< literal chunk, or the number's spelling
};

/**
 * Split an entry text into alternating literal/number tokens. Quoted
 * strings are atomic literals (workload spec ids contain digits that
 * must compare exactly); numbers are JSON numbers outside strings.
 */
std::vector<EntryToken>
lexEntry(const std::string &text)
{
    std::vector<EntryToken> tokens;
    std::string chunk;
    std::size_t i = 0;
    auto flush = [&] {
        if (!chunk.empty()) {
            tokens.push_back({false, 0, std::move(chunk)});
            chunk.clear();
        }
    };
    while (i < text.size()) {
        const char c = text[i];
        if (c == '"') {
            chunk += c;
            for (++i; i < text.size() && text[i] != '"'; ++i) {
                if (text[i] == '\\' && i + 1 < text.size())
                    chunk += text[i++];
                chunk += text[i];
            }
            if (i < text.size())
                chunk += text[i++]; // closing quote
            continue;
        }
        const bool starts_number =
            (c >= '0' && c <= '9')
            || (c == '-' && i + 1 < text.size() && text[i + 1] >= '0'
                && text[i + 1] <= '9');
        if (starts_number) {
            std::size_t end = i + 1;
            while (end < text.size()
                   && (std::isdigit(static_cast<unsigned char>(text[end]))
                       || text[end] == '.' || text[end] == 'e'
                       || text[end] == 'E' || text[end] == '+'
                       || text[end] == '-')) {
                end++;
            }
            flush();
            EntryToken tok;
            tok.isNumber = true;
            tok.text = text.substr(i, end - i);
            tok.number = std::strtod(tok.text.c_str(), nullptr);
            tokens.push_back(std::move(tok));
            i = end;
            continue;
        }
        chunk += c;
        ++i;
    }
    flush();
    return tokens;
}

/** The last "key": spelled out in a literal chunk (drift context). */
std::string
lastKeyIn(const std::string &chunk, const std::string &fallback)
{
    const auto close = chunk.rfind("\":");
    if (close == std::string::npos)
        return fallback;
    const auto open = chunk.rfind('"', close - 1);
    if (open == std::string::npos)
        return fallback;
    return chunk.substr(open + 1, close - open - 1);
}

} // namespace

std::vector<std::string>
diffSweepReports(const SweepReport &a, const SweepReport &b,
                 double tol_pct)
{
    if (a.sweep != b.sweep) {
        throw std::runtime_error("diff: different sweeps: " + a.sweep
                                 + " vs " + b.sweep);
    }
    // Two complete reports must line up exactly; only reports carrying
    // a failure manifest get the lenient per-index comparison.
    if (a.totalPoints != b.totalPoints
        || (a.failures.empty() && b.failures.empty()
            && a.entries.size() != b.entries.size())) {
        throw std::runtime_error(
            "diff: point count mismatch in " + a.sweep + ": "
            + std::to_string(a.entries.size()) + "/"
            + std::to_string(a.totalPoints) + " vs "
            + std::to_string(b.entries.size()) + "/"
            + std::to_string(b.totalPoints));
    }
    const double tol = tol_pct / 100.0;
    std::vector<std::string> drifts;

    auto compareEntries = [&](const SweepReportEntry &ea,
                              const SweepReportEntry &eb) {
        const std::vector<EntryToken> ta = lexEntry(ea.text);
        const std::vector<EntryToken> tb = lexEntry(eb.text);
        if (ta.size() != tb.size()) {
            throw std::runtime_error(
                "diff: point " + std::to_string(ea.index)
                + " has a different layout (metric added/removed?)");
        }
        std::string key = "?";
        for (std::size_t t = 0; t < ta.size(); ++t) {
            if (!ta[t].isNumber) {
                if (ta[t].text != tb[t].text) {
                    throw std::runtime_error(
                        "diff: point " + std::to_string(ea.index)
                        + " differs structurally near \"" + ta[t].text
                        + "\"");
                }
                key = lastKeyIn(ta[t].text, key);
                continue;
            }
            const double va = ta[t].number;
            const double vb = tb[t].number;
            if (va == vb)
                continue;
            const double scale =
                std::max(std::abs(va), std::abs(vb));
            const double rel =
                scale > 0 ? std::abs(va - vb) / scale : 0.0;
            if (rel > tol) {
                std::ostringstream os;
                os << std::setprecision(12);
                os << a.sweep << "[" << ea.index << "] " << key << ": "
                   << va << " vs " << vb << " ("
                   << std::setprecision(3) << rel * 100.0
                   << "% > " << tol_pct << "%)";
                drifts.push_back(os.str());
            }
        }
    };

    std::map<std::size_t, const SweepReportEntry *> ea, eb;
    std::map<std::size_t, const SweepPointFailure *> fa, fb;
    for (const SweepReportEntry &e : a.entries)
        ea[e.index] = &e;
    for (const SweepReportEntry &e : b.entries)
        eb[e.index] = &e;
    for (const SweepPointFailure &f : a.failures)
        fa[f.index] = &f;
    for (const SweepPointFailure &f : b.failures)
        fb[f.index] = &f;

    auto disposition =
        [](const std::map<std::size_t, const SweepPointFailure *> &fails,
           std::size_t index) -> std::string {
        const auto it = fails.find(index);
        return it == fails.end() ? "absent" : it->second->status;
    };

    for (std::size_t index = 0; index < a.totalPoints; ++index) {
        const auto ita = ea.find(index);
        const auto itb = eb.find(index);
        if (ita != ea.end() && itb != eb.end()) {
            compareEntries(*ita->second, *itb->second);
            continue;
        }
        const std::string da = ita != ea.end()
                                   ? "ok"
                                   : disposition(fa, index);
        const std::string db = itb != eb.end()
                                   ? "ok"
                                   : disposition(fb, index);
        // Absent on both sides (the same unfinished shard slice) or an
        // agreeing failure is not a drift.
        if (da == db)
            continue;
        const auto itfa = fa.find(index);
        const auto itfb = fb.find(index);
        const std::string id = itfa != fa.end()   ? itfa->second->id
                               : itfb != fb.end() ? itfb->second->id
                                                  : "?";
        drifts.push_back(a.sweep + "[" + std::to_string(index) + "] "
                         + id + ": " + da + " vs " + db);
    }
    return drifts;
}

SweepReport
mergeSweepReports(const std::vector<SweepReport> &shards)
{
    if (shards.empty())
        throw std::runtime_error("merge: no reports given");
    SweepReport merged;
    merged.sweep = shards.front().sweep;
    merged.totalPoints = shards.front().totalPoints;
    for (const SweepReport &shard : shards) {
        if (shard.sweep != merged.sweep) {
            throw std::runtime_error("merge: mixed sweeps: "
                                     + merged.sweep + " vs "
                                     + shard.sweep);
        }
        if (shard.totalPoints != merged.totalPoints) {
            throw std::runtime_error("merge: total_points mismatch in "
                                     + shard.sweep);
        }
        merged.entries.insert(merged.entries.end(),
                              shard.entries.begin(),
                              shard.entries.end());
        merged.failures.insert(merged.failures.end(),
                               shard.failures.begin(),
                               shard.failures.end());
    }
    std::sort(merged.entries.begin(), merged.entries.end(),
              [](const SweepReportEntry &a, const SweepReportEntry &b) {
                  return a.index < b.index;
              });
    std::sort(merged.failures.begin(), merged.failures.end(),
              [](const SweepPointFailure &a, const SweepPointFailure &b) {
                  return a.index < b.index;
              });
    // Every point index must be covered exactly once, but a
    // failure-manifest record covers its index too: shards that
    // degraded to partial results still merge into one (explicitly
    // partial) report, while a genuinely missing slice stays an error.
    std::vector<unsigned char> covered(merged.totalPoints, 0);
    auto cover = [&](std::size_t index) {
        if (index >= merged.totalPoints) {
            throw std::runtime_error(
                "merge: point index " + std::to_string(index)
                + " out of range in " + merged.sweep);
        }
        if (covered[index]++) {
            throw std::runtime_error(
                "merge: duplicate or missing point index "
                + std::to_string(index));
        }
    };
    for (const SweepReportEntry &e : merged.entries)
        cover(e.index);
    for (const SweepPointFailure &f : merged.failures)
        cover(f.index);
    if (merged.entries.size() + merged.failures.size()
        != merged.totalPoints) {
        throw std::runtime_error(
            "merge: " + std::to_string(merged.entries.size())
            + " entries for " + std::to_string(merged.totalPoints)
            + " points (missing or extra shards?)");
    }
    return merged;
}

} // namespace skybyte
