/**
 * @file
 * Declarative sweep API: a sweep is data, not a loop nest.
 *
 * A SweepSpec names the axes of an experiment — variant, workload, knob
 * values applied through a cfg-mutating setter — and its cross product
 * expands into labeled, self-contained SweepPoints that run on the
 * runSweep() worker pool. Every figure/table/ablation sweep of the
 * paper is registered here under a stable name (registerSweeps() in
 * sweep_registry.cc), so the bench binaries, the skybyte_sweep CLI and
 * CI all execute the exact same point grids.
 *
 * Sharding: a ShardSpec ("i/N" from --shard or SKYBYTE_SWEEP_SHARD)
 * partitions the expanded points round-robin by index. Shards are
 * disjoint and complete for any N, and each point is seeded solely by
 * its own config, so the union of N shard runs is bit-identical to one
 * unsharded run — the property the mergeable JSON reports
 * (sim/report.h) rely on to recombine CI jobs.
 */

#ifndef SKYBYTE_SIM_SWEEP_H
#define SKYBYTE_SIM_SWEEP_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace skybyte {

/** One labeled value along a sweep axis. */
struct AxisValue
{
    std::string label;
    /** Mutates the point (cfg, workload or opt); may be null. */
    std::function<void(SweepPoint &)> apply;
};

/**
 * One named sweep dimension. Axes are applied to each point in
 * declaration order, so an axis that rebuilds the whole config (a
 * variant axis) must precede the knob axes that tweak it.
 */
struct SweepAxis
{
    std::string name;
    std::vector<AxisValue> values;

    /** All value labels in declaration order. */
    std::vector<std::string> labels() const;
};

/**
 * One expanded point: its position in the full cross product, the
 * per-axis value labels, and the fully-specified run.
 */
struct LabeledPoint
{
    std::size_t index = 0;
    std::vector<std::string> labels;
    SweepPoint point;

    /** First-axis label: the result-table row every bench prints. */
    const std::string &row() const { return labels.front(); }
    /** Remaining labels joined with '/': the result-table column. */
    std::string col() const;
    /** row()/col(): the stable point id used in report manifests. */
    std::string id() const;
};

/** A named, declarative parameter sweep. */
struct SweepSpec
{
    /** Registry key, e.g. "fig09", "table1", "abl_promotion". */
    std::string name;
    /** One-line description shown by skybyte_sweep --list. */
    std::string title;
    /** Config every point starts from (before any axis applies). */
    std::string baseVariant = "SkyByte-Full";
    /** Default run scale (SKYBYTE_BENCH_INSTR still overrides). */
    std::uint64_t defaultInstrPerThread = 100'000;
    std::vector<SweepAxis> axes;

    /** Size of the full cross product. */
    std::size_t pointCount() const;

    /**
     * Expand the cross product in row-major order (first axis
     * slowest). Each point starts as makeSweepPoint(baseVariant, "",
     * opt) and the axes mutate it in declaration order.
     */
    std::vector<LabeledPoint> expand(const ExperimentOptions &opt) const;

    /** ExperimentOptions::fromEnv() with this spec's default scale. */
    ExperimentOptions optionsFromEnv() const;
};

/** @name Axis factories for the common axis kinds.
 * @{ */

/**
 * Axis setting the workload. Values are workload spec strings
 * (trace/workload_spec.h) — a registered name or a parameterized
 * "name:key=value,..." — and double as the axis labels.
 */
SweepAxis workloadAxis(std::vector<std::string> names);

/** All-paper-workloads convenience (Table I order). */
SweepAxis paperWorkloadAxis();

/**
 * Axis rebuilding the config as makeBenchConfig(name) (seed preserved
 * from the point's options). Must precede knob axes.
 */
SweepAxis variantAxis(std::vector<std::string> names);

/** Axis of labeled config mutations (the general form). */
SweepAxis knobAxis(std::string name, std::vector<AxisValue> values);
/** @} */

/** @name Global sweep registry.
 * The paper's sweeps are registered on first use; registerSweep() adds
 * user-defined sweeps (tests, downstream tools) on top.
 * @{ */

/** Register @p spec. @throws std::invalid_argument on duplicate name. */
void registerSweep(SweepSpec spec);

/** Look up a sweep; nullptr when unknown. */
const SweepSpec *findSweep(const std::string &name);

/** All registered sweeps, name-sorted. */
std::vector<const SweepSpec *> registeredSweeps();
/** @} */

/** Deterministic shard selector: shard @p index of @p count. */
struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;
};

/**
 * Parse "i/N" (0 <= i < N).
 * @throws std::invalid_argument on malformed input.
 */
ShardSpec parseShard(const std::string &text);

/** SKYBYTE_SWEEP_SHARD, or the full run (0/1) when unset. */
ShardSpec shardFromEnv();

/** Round-robin ownership: shard i of N owns indices i, i+N, i+2N... */
bool shardOwns(const ShardSpec &shard, std::size_t index);

/** The points of one shard run, with results aligned to points. */
struct SweepExecution
{
    /** Points owned by the shard, in full-cross-product index order. */
    std::vector<LabeledPoint> points;
    std::vector<SimResult> results;
    /** Size of the unsharded cross product (the report manifest). */
    std::size_t totalPoints = 0;
};

/**
 * Expand @p spec and keep only the points @p shard owns, in full
 * cross-product index order. @p totalPoints receives the unsharded
 * point count. Shared by the in-process runner (runSweepShard) and
 * the process-isolated executor (sim/run_executor.h), so both walk
 * the exact same grid.
 */
std::vector<LabeledPoint> expandShard(const SweepSpec &spec,
                                      const ExperimentOptions &opt,
                                      const ShardSpec &shard,
                                      std::size_t &totalPoints);

/**
 * Expand @p spec, keep the shard's points, run them on the runSweep()
 * pool. Results are independent of @p nthreads and of how the points
 * were sharded.
 */
SweepExecution runSweepShard(const SweepSpec &spec,
                             const ExperimentOptions &opt,
                             const ShardSpec &shard = {},
                             int nthreads = 0);

} // namespace skybyte

#endif // SKYBYTE_SIM_SWEEP_H
