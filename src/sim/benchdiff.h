/**
 * @file
 * Tolerance-aware comparison of two bench JSON reports (the BENCH_*.json
 * files bench/*.cc emit): the library behind tools/skybyte_benchdiff and
 * the CI bench-baselines gate.
 *
 * The comparison is the sweep-report idiom (sim/report.h
 * diffSweepReports) applied to bench output: both documents are lexed
 * into a structural skeleton plus a sequence of numbers, the skeletons
 * must match exactly (a renamed or added metric is a structural error,
 * not a drift), and paired numbers compare under a relative tolerance.
 * Each number carries its dotted JSON key path ("scenarios.near.speedup")
 * so drifts are reported by name and a key filter can gate only the
 * machine-independent ratio metrics while ignoring absolute
 * events-per-second throughput that varies with the host.
 */

#ifndef SKYBYTE_SIM_BENCHDIFF_H
#define SKYBYTE_SIM_BENCHDIFF_H

#include <string>
#include <vector>

namespace skybyte {

/** One numeric drift beyond tolerance. */
struct BenchDrift
{
    std::string path; ///< dotted key path of the number
    double baseline = 0;
    double current = 0;
    double relPct = 0; ///< relative difference, percent
    /** Current is worse (smaller) than baseline — higher-is-better
     *  metrics only; callers using --regress-only filter on this. */
    bool regression = false;
};

struct BenchDiffOptions
{
    /** Allowed relative drift, percent. */
    double tolPct = 5.0;
    /**
     * Gate only numbers whose dotted path contains one of these
     * substrings (empty = every number). Lets CI pin ratio metrics
     * ("speedup") while ignoring host-dependent absolute throughput.
     */
    std::vector<std::string> keys;
    /** Only count drifts where current < baseline (lower = worse). */
    bool regressOnly = false;
};

/**
 * Compare two bench JSON documents.
 * @return drifts beyond tolerance (empty = within tolerance).
 * @throws std::runtime_error when the documents differ structurally
 *         (different keys, layout, or string values).
 */
std::vector<BenchDrift> diffBenchJson(const std::string &baseline,
                                      const std::string &current,
                                      const BenchDiffOptions &opt);

/** One-line rendering of @p drift for reports and CI logs. */
std::string formatBenchDrift(const BenchDrift &drift,
                             const BenchDiffOptions &opt);

} // namespace skybyte

#endif // SKYBYTE_SIM_BENCHDIFF_H
