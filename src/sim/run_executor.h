/**
 * @file
 * Hardened, process-isolated sweep execution.
 *
 * runSweep() (sim/experiment.h) runs every point of a sweep on a
 * thread pool inside one process: fast, but a single crashing, hanging
 * or OOM-killed point destroys the whole multi-hour run and leaves
 * nothing resumable on disk. This executor trades a fork() per point
 * for fault containment:
 *
 *  - each SweepPoint runs in its own child process (points are fully
 *    self-seeded, so a child needs nothing but its LabeledPoint);
 *  - a per-point wall-clock timeout SIGKILLs runaway children;
 *  - failed or timed-out points retry up to `retries` extra attempts
 *    with deterministic seeded exponential backoff + jitter;
 *  - children are scheduled under a concurrency cap (the sweepThreads()
 *    rule, same default as the in-process pool);
 *  - every attempt appends one record to an append-only journal in the
 *    run directory, and every completed point commits its SimResult
 *    JSON via write-temp-then-rename — so after a driver crash,
 *    `resume` re-runs only the points without a committed result;
 *  - a permanently failing point degrades the run to a partial report
 *    (sim/report.h failure manifest) instead of aborting it.
 *
 * Run directory layout:
 *
 *   <run-dir>/journal.jsonl     header line + one JSON line per attempt
 *   <run-dir>/points/<i>.json   committed SimResult of point index i
 *
 * The journal is written with single O_APPEND writes, so a crashed
 * driver leaves at most one truncated trailing line, which readers
 * tolerate. Result files are rename-committed, so their existence is
 * the authoritative "point is complete" predicate on resume.
 *
 * Fault injection (tests only): SKYBYTE_FAULT holds space-separated
 * `<point-id>:<action>` entries evaluated in the child before the
 * simulation starts, where action is one of
 *
 *   crash        die on SIGKILL (a segfault/OOM stand-in)
 *   hang         sleep forever (reaped by the timeout path)
 *   exit=N       _exit(N) without writing a result
 *
 * optionally suffixed `@K` to fire only on attempts <= K — so
 * `smoke/x:crash@1` exercises retry-until-success deterministically,
 * and without `@K` the fault is permanent. The point id is the report
 * id ("row/col"); ids contain ':' but never spaces, hence the
 * separators.
 *
 * A fault-free isolated run produces byte-identical report entries to
 * the in-process runner: the child writes toJson(SimResult) and the
 * driver embeds those bytes verbatim (sweepEntryJsonFromText).
 */

#ifndef SKYBYTE_SIM_RUN_EXECUTOR_H
#define SKYBYTE_SIM_RUN_EXECUTOR_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/sweep.h"

namespace skybyte {

/** Final disposition of one point after all attempts. */
enum class PointStatus { Ok, Failed, Timeout, Skipped };

/** "ok" / "failed" / "timeout" / "skipped" (manifest status names). */
const char *pointStatusName(PointStatus status);

/** One parsed SKYBYTE_FAULT entry. */
struct FaultSpec
{
    std::string pointId;
    enum class Action { Crash, Hang, Exit } action = Action::Crash;
    int exitCode = 0;
    /** Fire on attempts <= maxAttempt; 0 = every attempt. */
    std::uint32_t maxAttempt = 0;
};

/**
 * Parse a space-separated SKYBYTE_FAULT value (see file comment).
 * @throws std::invalid_argument on malformed entries.
 */
std::vector<FaultSpec> parseFaultSpecs(const std::string &text);

/** parseFaultSpecs(getenv("SKYBYTE_FAULT")), empty when unset. */
std::vector<FaultSpec> faultSpecsFromEnv();

/** Knobs of one isolated run. */
struct ExecutorOptions
{
    /** Journal + per-point result directory (required). */
    std::string runDir;
    /** Concurrency cap; <= 0 applies the sweepThreads() rule. */
    int nthreads = 0;
    /** Extra attempts after the first for failed/timed-out points. */
    std::uint32_t retries = 0;
    /** Per-point wall-clock limit; 0 = none. SIGKILL on expiry. */
    std::uint64_t timeoutMs = 0;
    /**
     * Backoff unit: the k-th failure of a point waits
     * base << min(k-1, 6) plus a seeded jitter in [0, base) before its
     * retry. SKYBYTE_BACKOFF_MS overrides the default.
     */
    std::uint64_t backoffBaseMs = 100;
    /** Re-use committed results found in runDir (after a crash). */
    bool resume = false;
};

/** ExecutorOptions with backoffBaseMs from SKYBYTE_BACKOFF_MS. */
ExecutorOptions executorOptionsFromEnv();

/** What happened to one point. */
struct PointOutcome
{
    std::size_t index = 0;
    std::string id;
    PointStatus status = PointStatus::Skipped;
    /** Attempts across all driver invocations (journal-continued). */
    std::uint32_t attempts = 0;
    /** Wall-clock of the last attempt (0 for resumed results). */
    std::uint64_t durationMs = 0;
    /** Exit detail of the last attempt ("signal 9", "exit 7", ...). */
    std::string detail;
    /** Verbatim toJson(SimResult) text when status == Ok. */
    std::string resultJson;
    /** Result was recovered from the run dir, not re-run. */
    bool resumedFromDisk = false;
    /** The (successful) result reports the in-sim safety-limit stop. */
    bool simTimedOut = false;
};

/** All outcomes of one isolated (possibly resumed) shard run. */
struct IsolatedExecution
{
    /** Positionally aligned with the input points. */
    std::vector<PointOutcome> outcomes;

    std::size_t countWith(PointStatus status) const;
    /** True when every point completed ok. */
    bool complete() const;
    /** True when any successful result hit the in-sim safety limit. */
    bool anySimTimeout() const;
};

/** Run-dir state errors (journal mismatch, clobber attempt, ...). */
class RunDirError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** First line of the journal: what run this directory belongs to. */
struct JournalHeader
{
    std::string sweep;
    std::size_t totalPoints = 0;
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
};

/** One attempt record of the journal. */
struct JournalRecord
{
    std::size_t index = 0;
    std::string id;
    std::uint32_t attempt = 0;
    std::string status; ///< "ok" | "failed" | "timeout"
    std::uint64_t durationMs = 0;
    std::string detail;
};

/**
 * Read a run-dir journal. A truncated trailing line (driver killed
 * mid-append) is silently dropped; corruption anywhere else throws.
 * @return false when the journal file does not exist
 * @throws RunDirError on a malformed header or mid-file corruption
 */
bool readJournal(const std::string &path, JournalHeader &header,
                 std::vector<JournalRecord> &records);

/** <run-dir>/journal.jsonl */
std::string journalPath(const std::string &runDir);
/** <run-dir>/points/<index>.json */
std::string pointResultPath(const std::string &runDir,
                            std::size_t index);

/**
 * Deterministic retry delay after the @p failedAttempt-th failure
 * (1-based) of point @p index: exponential in the attempt, jittered by
 * a splitmix64 stream over (seed, index, attempt).
 */
std::uint64_t backoffDelayMs(std::uint64_t baseMs,
                             std::uint32_t failedAttempt,
                             std::uint64_t seed, std::size_t index);

/**
 * Run @p points (one shard of @p sweepName, expanded to @p totalPoints
 * overall) under process isolation. Never throws for point failures —
 * those land in the outcomes; throws RunDirError for run-dir state
 * problems and std::runtime_error for driver-level I/O failures.
 */
IsolatedExecution runSweepIsolated(const std::string &sweepName,
                                   std::size_t totalPoints,
                                   const ShardSpec &shard,
                                   const std::vector<LabeledPoint> &points,
                                   const ExecutorOptions &opt);

/**
 * Assemble the (possibly partial) SweepReport of an isolated run:
 * completed points become verbatim entries, everything else goes to
 * the failure manifest. When the run is complete the report is
 * byte-identical to the in-process runner's.
 */
SweepReport buildIsolatedReport(const std::string &sweepName,
                                std::size_t totalPoints,
                                const ShardSpec &shard,
                                const IsolatedExecution &exec);

} // namespace skybyte

#endif // SKYBYTE_SIM_RUN_EXECUTOR_H
