/**
 * @file
 * Lane-parallel workload staging: the System-level consumer of the
 * `lanes` knob (SimConfig::kernel.lanes / SKYBYTE_SIM_LANES).
 *
 * The simulation proper executes one global event order, so the safe
 * way to spend extra host threads on a single run is pipeline
 * parallelism: produce each software thread's TraceBatches *ahead of
 * time* on worker threads, and let the simulation thread consume them
 * with a bounded hand-off instead of a synchronous virtual refill().
 * Batch content is a pure function of (workload, tid, batch index) —
 * Workload::refill's contract — so staging changes only *where* a
 * batch is produced, never its contents or the simulated time at which
 * it is consumed. Results are therefore bit-identical to the serial
 * path for every lane count, which tests/test_lane_kernel.cc pins via
 * SimResult fingerprints.
 *
 * Only workloads whose refill() is safe to call for distinct tids from
 * different host threads participate (Workload::concurrentRefillSafe);
 * everything else silently stays on the serial path.
 */

#ifndef SKYBYTE_SIM_LANE_STAGE_H
#define SKYBYTE_SIM_LANE_STAGE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.h"
#include "trace/workload.h"

namespace skybyte {

/**
 * Effective lane count for a run: the SKYBYTE_SIM_LANES environment
 * variable when set (strict digits-only parse, range [1, 64]; anything
 * else throws std::invalid_argument), otherwise @p cfg's `lanes` knob.
 * The env override exists so sweeps and CI can force a lane count
 * without editing every config file.
 */
std::uint32_t resolvedKernelLanes(const KernelConfig &cfg);

/**
 * Prestages TraceBatches for every software thread on a small pool of
 * producer threads. One BatchSource shared by all ThreadContexts: the
 * simulation thread is the only consumer, producer @c w owns tids
 * {w, w+P, w+2P, ...}, and each tid has a fixed 2-slot ring so a
 * producer runs at most one batch ahead per thread — bounded memory,
 * and the hand-off degenerates to a 4 KB copy when the producer keeps
 * up.
 */
class LaneBatchStager : public BatchSource
{
  public:
    /** Staged batches per tid: one being consumed, one in flight. */
    static constexpr std::uint64_t kSlotsPerTid = 2;

    /**
     * Spawns min(@p workers, numThreads) producers over @p workload's
     * threads. @p workload must outlive the stager and satisfy
     * concurrentRefillSafe(); no other caller may invoke refill() on
     * it while the stager lives.
     */
    LaneBatchStager(Workload &workload, std::size_t workers);

    ~LaneBatchStager() override;

    LaneBatchStager(const LaneBatchStager &) = delete;
    LaneBatchStager &operator=(const LaneBatchStager &) = delete;

    /**
     * Consumer side (simulation thread only): blocks until tid's next
     * batch is staged. Same contract as Workload::refill — returns 0
     * exactly when the underlying stream is exhausted.
     */
    std::uint32_t nextBatch(int tid, TraceBatch &batch) override;

    /**
     * Instructions handed to @p tid's ThreadContext so far, counted at
     * delivery time. This is the staged run's stand-in for
     * Workload::instructionsEmitted: the serial path counts at
     * refill() time, and delivery is exactly where refill() would have
     * run, so the two agree at every observation point (in particular
     * at a timeout cut-off, where the raw emitted count would include
     * batches produced ahead but never consumed).
     */
    std::uint64_t instructionsDelivered(int tid) const;

    /** Producer threads actually spawned. */
    std::size_t workers() const { return producers_.size(); }

    /** Join all producers (idempotent; the destructor calls it). */
    void stop();

  private:
    /** Per-software-thread slot ring. All fields except the slot
     * payloads are guarded by the owning producer's mutex; a slot's
     * payload is written only while it is free (produced - consumed <
     * kSlotsPerTid keeps producer and consumer on disjoint slots). */
    struct TidStage
    {
        TraceBatch slots[kSlotsPerTid];
        /** Instruction count (computeOps+1 summed) of each slot. */
        std::uint64_t slotInstr[kSlotsPerTid] = {0, 0};
        std::uint64_t produced = 0;
        std::uint64_t consumed = 0;
        /** refill() returned 0; no further slots will be produced. */
        bool done = false;
        std::uint64_t delivered = 0;
    };

    /** One producer thread plus the lock covering its owned tids. */
    struct Producer
    {
        std::mutex mu;
        /** Both directions: consumer waits for a staged slot, the
         * producer waits for a freed one. One producer plus one
         * consumer per domain, so notify_all costs nothing extra. */
        std::condition_variable cv;
        bool stop = false;
        std::thread thread;
    };

    void producerLoop(std::size_t w);

    /** Owned tid with a free slot and work left; -1 when none. Caller
     * holds the producer's mutex. */
    int nextRefillableTid(std::size_t w) const;

    /** Every owned tid exhausted? Caller holds the producer's mutex. */
    bool allOwnedDone(std::size_t w) const;

    Workload *workload_;
    int numThreads_;
    std::vector<TidStage> stages_;
    std::vector<std::unique_ptr<Producer>> producers_;
    bool stopped_ = false;
};

} // namespace skybyte

#endif // SKYBYTE_SIM_LANE_STAGE_H
