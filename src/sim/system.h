/**
 * @file
 * Full-system assembly: cores + caches + CXL link + SSD + OS + migration,
 * wired per a SimConfig, executing one multi-threaded workload to
 * completion and returning the statistics every bench and test consumes.
 *
 * The MemRouter is the host physical-address decoder: per-thread private
 * data and promoted pages go to host DRAM; everything else goes to the
 * CXL-SSD (or, for the AstriFlash baseline, through the host page
 * cache). In DRAM-Only mode everything is host DRAM (the paper's ideal).
 */

#ifndef SKYBYTE_SIM_SYSTEM_H
#define SKYBYTE_SIM_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/stats.h"
#include "core/astriflash.h"
#include "core/migration.h"
#include "core/os.h"
#include "core/ssd_controller.h"
#include "cpu/core.h"
#include "cpu/uncore.h"
#include "cxl/cxl.h"
#include "mem/dram.h"
#include "trace/workload.h"

namespace skybyte {

/**
 * Per-tenant slice of a co-located (`mix:`) run. Populated only for
 * mixes with two or more tenants; request counts partition the
 * aggregate SimResult totals exactly (every host/SSD line request is
 * owned by exactly one tenant via its namespaced address range), which
 * tests/test_system.cc pins as a property.
 */
struct TenantResult
{
    std::string name; ///< tenant label from the mix spec
    std::string spec; ///< child spec text
    int threads = 0;
    /** Instructions the tenant's threads emitted (== committed when
     *  the run finished without timing out). */
    std::uint64_t instructions = 0;
    /** Last completion among the tenant's threads. */
    Tick execTime = 0;
    std::uint64_t hostReads = 0;
    std::uint64_t hostWrites = 0;
    std::uint64_t ssdReadHits = 0; ///< log + cache hits
    std::uint64_t ssdReadMisses = 0;
    std::uint64_t ssdWrites = 0;
    /** Write-log appends for this tenant's pages (log pressure). */
    std::uint64_t logAppends = 0;
    /** Flash page arrivals for this tenant (incl. prefetch). */
    std::uint64_t flashPageReads = 0;
    /** Mean flash read latency of those arrivals (us). */
    double flashReadLatencyUs = 0;

    /** Relative QoS weight from the mix spec's qos= key (default 1). */
    double qosWeight = 1.0;
    /**
     * SLO view: off-chip demand-load latency of this tenant's lines,
     * recorded at the same sample sites as the aggregate
     * SimResult::offchipLatency, so the tenant histograms partition the
     * aggregate's tenant-owned samples exactly (pinned by
     * tests/test_system.cc).
     */
    LatencyHistogram offchipLatency;
    /** @name QoS enforcement effects (zero with QoS off). @{ */
    std::uint64_t qosDelayedReads = 0;
    std::uint64_t qosDelayedWrites = 0;
    double qosThrottleDelayUs = 0; ///< total admission hold time
    std::uint64_t qosLogOverQuota = 0;
    /** @} */

    double
    ipc() const
    {
        return execTime == 0
                   ? 0.0
                   : static_cast<double>(instructions)
                         / (static_cast<double>(execTime)
                            / static_cast<double>(kTicksPerCycle));
    }
};

/** Everything a run produces (see DESIGN.md §4 for figure mapping). */
struct SimResult
{
    std::string variant;
    std::string workload;
    bool timedOut = false;

    /** Execution time: last thread completion. */
    Tick execTime = 0;
    std::uint64_t committedInstructions = 0;

    /** Fig 4 / Fig 10 boundedness breakdown (summed over cores). */
    Tick computeTicks = 0;
    Tick memStallTicks = 0;
    Tick ctxSwitchTicks = 0;
    Tick idleTicks = 0;
    std::uint64_t contextSwitches = 0;

    /** Fig 16 request breakdown. */
    std::uint64_t hostReads = 0;
    std::uint64_t hostWrites = 0;
    std::uint64_t ssdReadHits = 0;   ///< S-R-H (log or cache)
    std::uint64_t ssdReadMisses = 0; ///< S-R-M
    std::uint64_t ssdWrites = 0;     ///< S-W

    /** Fig 17 AMAT components, as mean ticks per off-chip demand read. */
    double amatHostTicks = 0;
    double amatProtocolTicks = 0;
    double amatIndexingTicks = 0;
    double amatSsdDramTicks = 0;
    double amatFlashTicks = 0;
    double amatTotalTicks = 0;

    /** Fig 18 / Fig 20 flash write traffic (pages programmed). */
    std::uint64_t flashHostPrograms = 0;
    std::uint64_t flashGcPrograms = 0;
    std::uint64_t flashReads = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t compactions = 0;

    /** Table III: mean demand flash read latency (us). */
    double flashReadLatencyUs = 0;

    /** Flash pages programmed per host page written (>= 1 under GC). */
    double writeAmplification = 1.0;
    /** Max - min block erase count at end of run (wear leveling). */
    std::uint32_t wearSpread = 0;

    /** Write log behaviour. */
    std::uint64_t logAppends = 0;
    std::uint64_t logUpdateHits = 0;
    std::uint64_t logOverflowAppends = 0;
    std::uint64_t logIndexBytesPeak = 0;

    /** Migration / AstriFlash. */
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    /** Promotions rejected by per-tenant share caps (QoS; 0 when off). */
    std::uint64_t qosMigrationShareRejects = 0;
    std::uint64_t astriHostHits = 0;
    std::uint64_t astriHostMisses = 0;

    /** Bandwidth (Fig 15): CXL link payload bytes moved. */
    std::uint64_t cxlBytes = 0;

    /** LLC statistics (Table I MPKI). */
    std::uint64_t llcMisses = 0;
    std::uint64_t llcAccesses = 0;

    /** Fig 3: off-chip demand latency distribution. */
    LatencyHistogram offchipLatency;
    /** Fig 5 / Fig 6 locality distributions. */
    RatioHistogram readLocality;
    RatioHistogram writeLocality;

    /** Per-tenant buckets (empty unless the workload is a >=2-tenant
     *  mix, so single-workload reports are byte-unchanged). */
    std::vector<TenantResult> tenants;

    /** Derived helpers. @{ */
    double execMs() const { return ticksToNs(execTime) / 1e6; }
    double
    ipc() const
    {
        return execTime == 0
                   ? 0.0
                   : static_cast<double>(committedInstructions)
                         / (static_cast<double>(execTime)
                            / static_cast<double>(kTicksPerCycle));
    }
    /** Instructions per second of simulated time. */
    double
    throughput() const
    {
        return execTime == 0
                   ? 0.0
                   : static_cast<double>(committedInstructions)
                         / (ticksToNs(execTime) / 1e9);
    }
    /** CXL payload bandwidth in GB/s. */
    double
    cxlBandwidthGbps() const
    {
        return execTime == 0 ? 0.0
                             : static_cast<double>(cxlBytes)
                                   / ticksToNs(execTime);
    }
    double
    llcMpki() const
    {
        return committedInstructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(llcMisses)
                         / static_cast<double>(committedInstructions);
    }
    /**
     * Jain fairness index over per-tenant IPC: (sum x)^2 / (n sum x^2),
     * 1.0 when every tenant progresses equally, approaching 1/n as one
     * tenant starves the rest. 0 for non-mix runs (fewer than two
     * tenants).
     */
    double
    fairnessIpc() const
    {
        if (tenants.size() < 2)
            return 0.0;
        double sum = 0.0;
        double sumsq = 0.0;
        for (const TenantResult &t : tenants) {
            const double x = t.ipc();
            sum += x;
            sumsq += x * x;
        }
        return sumsq == 0.0
                   ? 0.0
                   : sum * sum
                         / (static_cast<double>(tenants.size()) * sumsq);
    }
    /** @} */
};

class System;
class MixWorkload;
class LaneBatchStager;

/**
 * Host physical-address router (the MemoryBackend the uncore sees).
 */
class MemRouter : public MemoryBackend
{
  public:
    explicit MemRouter(System &sys) : sys_(sys) {}

    void read(const MemRequest &req, Tick when, MemCallback cb) override;
    void write(const MemRequest &req, Tick when) override;

    std::uint64_t hostReads() const { return hostReads_; }
    std::uint64_t hostWrites() const { return hostWrites_; }
    double hostReadTicks() const { return hostReadTicks_; }

    /** Enable per-tenant host-DRAM request buckets (mix runs). */
    void
    enableTenantAccounting(std::size_t tenants)
    {
        tenantHostReads_.assign(tenants, 0);
        tenantHostWrites_.assign(tenants, 0);
    }

    const std::vector<std::uint64_t> &tenantHostReads() const
    {
        return tenantHostReads_;
    }
    const std::vector<std::uint64_t> &tenantHostWrites() const
    {
        return tenantHostWrites_;
    }

  private:
    /** Count one host-DRAM access against @p vaddr's tenant. */
    void noteHost(Addr vaddr, bool is_write);

    System &sys_;
    std::uint64_t hostReads_ = 0;
    std::uint64_t hostWrites_ = 0;
    double hostReadTicks_ = 0;
    std::vector<std::uint64_t> tenantHostReads_;
    std::vector<std::uint64_t> tenantHostWrites_;
};

/**
 * One simulated machine running one workload under one configuration.
 */
class System
{
  public:
    /**
     * Build from a parsed workload spec; common spec args (threads,
     * footprint, instr, seed) override @p params, and the system's
     * thread count follows the constructed workload.
     */
    System(const SimConfig &cfg, const WorkloadSpec &workload,
           const WorkloadParams &params);

    /** Convenience: @p workload_spec is parsed (name or name:k=v,...). */
    System(const SimConfig &cfg, const std::string &workload_spec,
           const WorkloadParams &params);

    /**
     * Bring-your-own-workload constructor (e.g., a TraceFileWorkload or
     * a user-defined generator). @p warm_factory, when given, produces
     * an identically-distributed fresh instance for the SSD cache
     * warmup pass; without it warmup is skipped for custom workloads.
     * @p label overrides the SimResult.workload string (empty = the
     * workload's name()); spec-built systems record the full spec text
     * so parameterized runs stay distinguishable in reports.
     */
    System(const SimConfig &cfg, std::unique_ptr<Workload> workload,
           std::function<std::unique_ptr<Workload>()> warm_factory =
               nullptr,
           std::string label = "");

    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run to completion (all threads finish and the device drains).
     * @param max_ticks safety limit; the result notes if it was hit.
     */
    SimResult run(Tick max_ticks = kTickMax);

    /** Component access for tests and router. @{ */
    EventQueue &eventQueue() { return eq_; }
    SsdController &ssd() { return *ssd_; }
    MigrationEngine *migration() { return migration_.get(); }
    AstriFlashCache *astriflash() { return astri_.get(); }
    DramModel &hostDram() { return *hostDram_; }
    CxlLink &cxlLink() { return *link_; }
    Workload &workload() { return *workload_; }
    const SimConfig &config() const { return cfg_; }
    CxlAwareScheduler &scheduler() { return *sched_; }
    /** @} */

    /** Address routing helpers used by MemRouter. @{ */
    bool isDeviceAddr(Addr vaddr) const;
    Addr toDeviceAddr(Addr vaddr) const;
    /** Inter-socket hop cost for @p core_id's CXL accesses (§IV). */
    Tick numaPenalty(int core_id) const;
    /** @} */

    /**
     * Tenant owning @p vaddr in a co-located run (-1 when the address
     * belongs to no tenant or the workload is not a mix). Device
     * addresses classify by the mix's namespaced regions, private
     * addresses by the owning thread's tenant.
     */
    int tenantOfVaddr(Addr vaddr) const;

  private:
    friend class MemRouter;

    /** Shared construction tail used by both constructors. */
    void buildSystem(
        const std::function<std::unique_ptr<Workload>()> &warm_factory);

    /** Preload the SSD data cache from a warmup trace pass (§VI-A). */
    void warmupSsd(Workload &warm);

    SimConfig cfg_;
    WorkloadParams params_;
    EventQueue eq_;
    std::unique_ptr<Workload> workload_;
    /** Non-null when workload_ is a mix (tenant classification). */
    MixWorkload *mix_ = nullptr;
    /** SimResult.workload string; defaults to workload_->name(). */
    std::string workloadLabel_;
    std::unique_ptr<CxlLink> link_;
    std::unique_ptr<DramModel> hostDram_;
    std::unique_ptr<SsdController> ssd_;
    std::unique_ptr<MigrationEngine> migration_;
    std::unique_ptr<AstriFlashCache> astri_;
    std::unique_ptr<MemRouter> router_;
    std::unique_ptr<Uncore> uncore_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<ThreadContext>> threads_;
    std::unique_ptr<CxlAwareScheduler> sched_;
    /**
     * Lane-parallel batch prestaging (sim/lane_stage.h); non-null only
     * when the resolved `lanes` knob is > 1 and the workload allows
     * concurrent refills. Declared after workload_ so its producer
     * threads join before the workload they refill from destructs.
     */
    std::unique_ptr<LaneBatchStager> stager_;
};

/** Convenience: build + run in one call. */
SimResult runSimulation(const SimConfig &cfg,
                        const std::string &workload_name,
                        const WorkloadParams &params,
                        Tick max_ticks = kTickMax);

} // namespace skybyte

#endif // SKYBYTE_SIM_SYSTEM_H
