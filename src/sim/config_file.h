/**
 * @file
 * Config-file front end mirroring the original artifact's interface
 * (appendix §E-G): experiments are described by small key=value files —
 * a baseline config, a workload config, and optional setting overrides —
 * using the artifact's knob names:
 *
 *   promotion_enable=1            write_log_enable=1
 *   device_triggered_ctx_swt=1    cs_threshold=2000        (ns)
 *   ssd_cache_size_byte=8388608   ssd_cache_way=16
 *   host_dram_size_byte=33554432  t_policy=FAIRNESS        (RR|RANDOM|FAIRNESS)
 *   write_log_size_byte=1048576   flash_type=ULL           (ULL|ULL2|SLC|MLC)
 *   num_cores=8                   rob_entries=256
 *   workload=ycsb                 num_threads=24
 *   instr_per_thread=100000       footprint_byte=134217728
 *   seed=42                       dram_only=0
 *   calendar_window_ticks=8192    slab_chunk_records=512
 *
 * workload= accepts any registered workload spec string
 * (trace/workload_spec.h), so parameterized synthetic scenarios work
 * straight from a config file:
 *
 *   workload=zipf:theta=0.99,footprint=64M
 *   workload=phased:phase_instr=20000,write_ratio=0.3
 *
 * Specs are parsed (and their workload name resolved against the
 * registry) at config-parse time, so a typo fails with the offending
 * line number. Lines starting with '#' are comments. Unknown keys
 * raise errors so typos cannot silently change an experiment.
 */

#ifndef SKYBYTE_SIM_CONFIG_FILE_H
#define SKYBYTE_SIM_CONFIG_FILE_H

#include <istream>
#include <string>

#include "common/config.h"
#include "trace/workload.h"

namespace skybyte {

/** A parsed experiment description. */
struct ExperimentSpec
{
    SimConfig config;
    WorkloadParams params;
    WorkloadSpec workload; ///< defaults to the "uniform" microworkload
};

/**
 * Apply key=value lines from @p in onto @p spec.
 * @throws std::invalid_argument on unknown keys or malformed values.
 */
void applyConfigStream(std::istream &in, ExperimentSpec &spec);

/**
 * Parse one config file.
 * @throws std::runtime_error if the file cannot be opened.
 */
void applyConfigFile(const std::string &path, ExperimentSpec &spec);

/** Apply a single "key=value" assignment (CLI -k overrides). */
void applyAssignment(const std::string &assignment, ExperimentSpec &spec);

} // namespace skybyte

#endif // SKYBYTE_SIM_CONFIG_FILE_H
