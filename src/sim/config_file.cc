#include "sim/config_file.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "trace/mix_workload.h"

namespace skybyte {

namespace {

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
}

bool
parseBool(const std::string &value, const std::string &key)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    throw std::invalid_argument("bad boolean for " + key + ": " + value);
}

std::uint64_t
parseU64(const std::string &value, const std::string &key)
{
    // Shared strict parse (trace/workload_spec.h): digits only, no
    // sign wrap, errors name the key.
    return parseUnsigned(value, key);
}

SchedPolicy
parsePolicy(const std::string &value)
{
    if (value == "RR")
        return SchedPolicy::RoundRobin;
    if (value == "RANDOM")
        return SchedPolicy::Random;
    if (value == "FAIRNESS" || value == "CFS")
        return SchedPolicy::Cfs;
    throw std::invalid_argument("bad t_policy: " + value);
}

NandType
parseNand(const std::string &value)
{
    if (value == "ULL")
        return NandType::ULL;
    if (value == "ULL2")
        return NandType::ULL2;
    if (value == "SLC")
        return NandType::SLC;
    if (value == "MLC")
        return NandType::MLC;
    throw std::invalid_argument("bad flash_type: " + value);
}

} // namespace

void
applyAssignment(const std::string &assignment, ExperimentSpec &spec)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos) {
        throw std::invalid_argument("expected key=value, got: "
                                    + assignment);
    }
    const std::string key = trim(assignment.substr(0, eq));
    const std::string value = trim(assignment.substr(eq + 1));
    SimConfig &cfg = spec.config;

    if (key == "promotion_enable") {
        cfg.policy.promotionEnable = parseBool(value, key);
        if (cfg.policy.promotionEnable
            && cfg.policy.migration == MigrationMechanism::None) {
            cfg.policy.migration = MigrationMechanism::SkyByte;
        }
    } else if (key == "write_log_enable") {
        cfg.policy.writeLogEnable = parseBool(value, key);
    } else if (key == "device_triggered_ctx_swt") {
        cfg.policy.deviceTriggeredCtxSwitch = parseBool(value, key);
    } else if (key == "cs_threshold") {
        cfg.policy.csThreshold =
            nsToTicks(static_cast<double>(parseU64(value, key)));
    } else if (key == "ssd_cache_size_byte") {
        cfg.ssdCache.dataCacheBytes = parseU64(value, key);
    } else if (key == "write_log_size_byte") {
        cfg.ssdCache.writeLogBytes = parseU64(value, key);
    } else if (key == "ssd_cache_way") {
        cfg.ssdCache.dataCacheWays =
            static_cast<std::uint32_t>(parseU64(value, key));
    } else if (key == "host_dram_size_byte") {
        cfg.hostMem.promotedBytesMax = parseU64(value, key);
    } else if (key == "t_policy") {
        cfg.policy.schedPolicy = parsePolicy(value);
    } else if (key == "flash_type") {
        cfg.flash.timing = nandTiming(parseNand(value));
    } else if (key == "num_cores") {
        cfg.cpu.numCores = static_cast<int>(parseU64(value, key));
    } else if (key == "rob_entries") {
        cfg.cpu.robEntries =
            static_cast<std::uint32_t>(parseU64(value, key));
    } else if (key == "hot_page_threshold") {
        cfg.policy.hotPageThreshold =
            static_cast<std::uint32_t>(parseU64(value, key));
    } else if (key == "migration_mechanism") {
        if (value == "skybyte")
            cfg.policy.migration = MigrationMechanism::SkyByte;
        else if (value == "tpp")
            cfg.policy.migration = MigrationMechanism::Tpp;
        else if (value == "astriflash")
            cfg.policy.migration = MigrationMechanism::AstriFlash;
        else if (value == "none")
            cfg.policy.migration = MigrationMechanism::None;
        else
            throw std::invalid_argument("bad migration_mechanism: "
                                        + value);
    } else if (key == "wear_aware_allocation") {
        cfg.flash.wearAwareAllocation = parseBool(value, key);
    } else if (key == "gc_threshold_pct") {
        const std::uint64_t pct = parseU64(value, key);
        if (pct == 0 || pct >= 100) {
            throw std::invalid_argument(
                "gc_threshold_pct must be in (0, 100): " + value);
        }
        cfg.flash.gcFreeBlockThreshold =
            static_cast<double>(pct) / 100.0;
        cfg.flash.gcRestoreThreshold =
            cfg.flash.gcFreeBlockThreshold + 0.05;
    } else if (key == "huge_page_byte") {
        // §IV huge-page migration granularity; 0 = plain 4 KB pages.
        const std::uint64_t bytes = parseU64(value, key);
        if (bytes != 0
            && (bytes < kPageBytes || bytes % kPageBytes != 0
                || (bytes & (bytes - 1)) != 0)) {
            throw std::invalid_argument(
                "huge_page_byte must be 0 or a power-of-two multiple "
                "of 4096: " + value);
        }
        cfg.hostMem.hugePageBytes = bytes;
    } else if (key == "plb_entries") {
        cfg.hostMem.plbEntries =
            static_cast<std::uint32_t>(parseU64(value, key));
    } else if (key == "reclaim_policy") {
        if (value == "lru")
            cfg.hostMem.reclaim = ReclaimPolicy::LruScan;
        else if (value == "active_inactive")
            cfg.hostMem.reclaim = ReclaimPolicy::ActiveInactive;
        else
            throw std::invalid_argument("bad reclaim_policy: " + value);
    } else if (key == "pinned_device_byte") {
        cfg.hostMem.pinnedDeviceBytes = parseU64(value, key);
    } else if (key == "dram_bank_model") {
        // Table II speed grades on both devices, or fixed latency.
        if (parseBool(value, key)) {
            cfg.hostDram.bank = ddr5BankTiming();
            cfg.ssdDram.bank = lpddr4BankTiming();
        } else {
            cfg.hostDram.bank = DramBankTiming{};
            cfg.ssdDram.bank = DramBankTiming{};
        }
    } else if (key == "calendar_window_ticks") {
        // Event-kernel near-window size; wall-clock tuning only.
        const std::uint64_t ticks = parseU64(value, key);
        if (ticks < 64 || ticks > 0xffffffffULL
            || (ticks & (ticks - 1)) != 0) {
            throw std::invalid_argument(
                "calendar_window_ticks must be a 32-bit power of two "
                ">= 64: " + value);
        }
        cfg.kernel.calendarWindowTicks =
            static_cast<std::uint32_t>(ticks);
    } else if (key == "lanes") {
        // Parallel-kernel worker count; results are bit-identical for
        // every value, so this is a wall-clock knob like the two above.
        const std::uint64_t lanes = parseU64(value, key);
        if (lanes == 0 || lanes > 64) {
            throw std::invalid_argument(
                "lanes must be in [1, 64]: " + value);
        }
        cfg.kernel.lanes = static_cast<std::uint32_t>(lanes);
    } else if (key == "qos_policy") {
        if (value == "none")
            cfg.qos.weightedAdmission = false;
        else if (value == "weighted")
            cfg.qos.weightedAdmission = true;
        else
            throw std::invalid_argument("bad qos_policy: " + value);
    } else if (key == "qos_epoch_us") {
        const std::uint64_t us = parseU64(value, key);
        if (us == 0 || us > 1'000'000) {
            throw std::invalid_argument(
                "qos_epoch_us must be in [1, 1000000]: " + value);
        }
        cfg.qos.epochTicks = usToTicks(static_cast<double>(us));
    } else if (key == "qos_credits_per_epoch") {
        const std::uint64_t credits = parseU64(value, key);
        if (credits == 0 || credits > 0xffffffffULL) {
            throw std::invalid_argument(
                "qos_credits_per_epoch must be in [1, 2^32): " + value);
        }
        cfg.qos.creditsPerEpoch = static_cast<std::uint32_t>(credits);
    } else if (key == "qos_write_log_quota") {
        cfg.qos.writeLogQuota = parseBool(value, key);
    } else if (key == "qos_migration_share") {
        cfg.qos.migrationShare = parseBool(value, key);
    } else if (key == "slab_chunk_records") {
        const std::uint64_t records = parseU64(value, key);
        if (records == 0 || records > 0xffffffffULL) {
            throw std::invalid_argument(
                "slab_chunk_records must be in [1, 2^32): " + value);
        }
        cfg.kernel.slabChunkRecords =
            static_cast<std::uint32_t>(records);
    } else if (key == "numa_sockets") {
        cfg.numa.sockets =
            static_cast<std::uint32_t>(parseU64(value, key));
    } else if (key == "dram_only") {
        cfg.dramOnly = parseBool(value, key);
    } else if (key == "precondition") {
        cfg.preconditionSsd = parseBool(value, key);
    } else if (key == "warmup") {
        cfg.warmupSsdCache = parseBool(value, key);
    } else if (key == "seed") {
        cfg.seed = parseU64(value, key);
        spec.params.seed = cfg.seed;
    } else if (key == "workload") {
        spec.workload = parseWorkloadSpec(value);
        // Resolve the name and typecheck the args now (construction is
        // cheap and generates no records), so a typo fails with its
        // config line number instead of at run time.
        // Mixes need at least their explicit threads= sum to
        // construct, so size the trial accordingly instead of the
        // single-thread default.
        WorkloadParams trial = spec.params;
        trial.numThreads = spec.workload.isMix()
                               ? mixMinimumThreads(spec.workload)
                               : 1;
        trial.instrPerThread = 0;
        makeWorkload(spec.workload, trial);
    } else if (key == "num_threads") {
        const std::uint64_t threads = parseU64(value, key);
        // Bound before the cast to int: a huge value must error, not
        // silently wrap (mirrors the spec-level threads= guard).
        if (threads == 0 || threads > 65536) {
            throw std::invalid_argument(
                "num_threads must be in [1, 65536]: " + value);
        }
        spec.params.numThreads = static_cast<int>(threads);
    } else if (key == "instr_per_thread") {
        spec.params.instrPerThread = parseU64(value, key);
    } else if (key == "footprint_byte") {
        spec.params.footprintBytes = parseU64(value, key);
    } else {
        throw std::invalid_argument("unknown config key: " + key);
    }
}

void
applyConfigStream(std::istream &in, ExperimentSpec &spec)
{
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#')
            continue;
        try {
            applyAssignment(t, spec);
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument("line "
                                        + std::to_string(lineno) + ": "
                                        + e.what());
        }
    }
}

void
applyConfigFile(const std::string &path, ExperimentSpec &spec)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open config file: " + path);
    applyConfigStream(in, spec);
}

} // namespace skybyte
