/**
 * @file
 * The paper's experiment grids as registered SweepSpecs — every figure,
 * table and ablation sweep under a stable name. The bench binaries,
 * skybyte_sweep and CI all execute these shared definitions, so a grid
 * change lands everywhere at once. A bench file owns only its table
 * printer; the point grid lives here.
 *
 * Axis order is apply order: axes that rebuild the config (variant and
 * combined config axes) come before knob axes that tweak it.
 */

#include <cstdio>

#include "sim/sweep.h"
#include "trace/workload.h"

namespace skybyte {
namespace detail {

void registerSweepUnlocked(SweepSpec spec); // sweep.cc

namespace {

/** Fig 9: context-switch trigger threshold (us) on SkyByte-Full. */
SweepSpec
fig09()
{
    SweepSpec s;
    s.name = "fig09";
    s.title = "context-switch trigger threshold sensitivity (2-80 us)";
    s.axes.push_back(
        workloadAxis({"bc", "bfs-dense", "srad", "tpcc"}));
    SweepAxis axis{"cs_threshold_us", {}};
    for (const double us : {2.0, 10.0, 20.0, 40.0, 60.0, 80.0}) {
        axis.values.push_back(
            {std::to_string(static_cast<int>(us)), [us](SweepPoint &p) {
                 p.cfg.policy.csThreshold = usToTicks(us);
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Fig 10: thread scheduling policies under coordinated switching. */
SweepSpec
fig10()
{
    SweepSpec s;
    s.name = "fig10";
    s.title = "thread scheduling policies (RR/Random/CFS)";
    s.axes.push_back(workloadAxis({"bc", "radix", "srad", "tpcc"}));
    SweepAxis axis{"policy", {}};
    const std::pair<const char *, SchedPolicy> policies[] = {
        {"RR", SchedPolicy::RoundRobin},
        {"Random", SchedPolicy::Random},
        {"CFS", SchedPolicy::Cfs}};
    for (const auto &[label, policy] : policies) {
        axis.values.push_back({label, [policy = policy](SweepPoint &p) {
                                   p.cfg.policy.schedPolicy = policy;
                               }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Figs 19/20: write log size with total SSD DRAM fixed. */
SweepSpec
logSizeSweep(const char *name, const char *title)
{
    SweepSpec s;
    s.name = name;
    s.title = title;
    s.axes.push_back(paperWorkloadAxis());
    SweepAxis axis{"log_kb", {}};
    for (const std::uint64_t kb : {16ULL, 64ULL, 256ULL, 1024ULL,
                                   2048ULL, 4096ULL}) {
        axis.values.push_back(
            {std::to_string(kb), [kb](SweepPoint &p) {
                 // Re-split the SSD DRAM: kb KB of log, rest cache.
                 const std::uint64_t total =
                     p.cfg.ssdCache.writeLogBytes
                     + p.cfg.ssdCache.dataCacheBytes;
                 p.cfg.ssdCache.writeLogBytes = kb * 1024;
                 p.cfg.ssdCache.dataCacheBytes = total - kb * 1024;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Fig 15: thread scaling (8 = SkyByte-WP baseline, rest Full). */
SweepSpec
fig15()
{
    SweepSpec s;
    s.name = "fig15";
    s.title = "throughput/bandwidth vs thread count (8-48)";
    s.axes.push_back(paperWorkloadAxis());
    SweepAxis axis{"threads", {}};
    for (const int t : {8, 16, 24, 32, 40, 48}) {
        // 8 threads = SkyByte-WP (no switching benefit at 1/core).
        const std::string variant =
            t == 8 ? "SkyByte-WP" : "SkyByte-Full";
        axis.values.push_back(
            {std::to_string(t), [t, variant](SweepPoint &p) {
                 p.cfg = makeBenchConfig(variant);
                 p.cfg.seed = p.opt.seed;
                 p.opt.threadsOverride = t;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Fig 21: SSD DRAM size x variant (4:1 host ratio, 1:7 log split). */
SweepSpec
fig21()
{
    SweepSpec s;
    s.name = "fig21";
    s.title = "SSD DRAM size sweep across variants";
    s.defaultInstrPerThread = 60'000;
    s.axes.push_back(paperWorkloadAxis());
    SweepAxis axis{"config", {}};
    for (const std::uint64_t mb : {2ULL, 4ULL, 8ULL, 16ULL, 32ULL}) {
        for (const char *v :
             {"Base-CSSD", "SkyByte-P", "SkyByte-W", "SkyByte-WP",
              "SkyByte-Full"}) {
            const std::string variant = v;
            axis.values.push_back(
                {variant + "@" + std::to_string(mb) + "MB",
                 [variant, mb](SweepPoint &p) {
                     p.cfg = makeBenchConfig(variant);
                     p.cfg.seed = p.opt.seed;
                     const std::uint64_t total = mb * 1024 * 1024;
                     p.cfg.ssdCache.writeLogBytes = total / 8;
                     p.cfg.ssdCache.dataCacheBytes = total - total / 8;
                     p.cfg.hostMem.promotedBytesMax = total * 4;
                 }});
        }
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Fig 22 / Table IV: NAND families x SkyByte configurations. */
SweepSpec
fig22()
{
    SweepSpec s;
    s.name = "fig22";
    s.title = "NAND flash families x SkyByte configs";
    s.defaultInstrPerThread = 60'000;
    s.axes.push_back(paperWorkloadAxis());
    SweepAxis config{"config", {}};
    struct Config
    {
        const char *label;
        const char *variant;
        int threads; // 0 = paper default
    };
    const Config configs[] = {
        {"SkyByte-P", "SkyByte-P", 0},   {"SkyByte-W", "SkyByte-W", 0},
        {"SkyByte-WP", "SkyByte-WP", 0}, {"Full-16", "SkyByte-Full", 16},
        {"Full-24", "SkyByte-Full", 24}, {"Full-32", "SkyByte-Full", 32}};
    for (const Config &c : configs) {
        const std::string v = c.variant;
        const int t = c.threads;
        config.values.push_back({c.label, [v, t](SweepPoint &p) {
                                     p.cfg = makeBenchConfig(v);
                                     p.cfg.seed = p.opt.seed;
                                     p.opt.threadsOverride = t;
                                 }});
    }
    s.axes.push_back(std::move(config));
    SweepAxis nand{"nand", {}};
    for (const NandType type : {NandType::ULL, NandType::ULL2,
                                NandType::SLC, NandType::MLC}) {
        nand.values.push_back(
            {nandTypeName(type), [type](SweepPoint &p) {
                 p.cfg.flash.timing = nandTiming(type);
             }});
    }
    s.axes.push_back(std::move(nand));
    return s;
}

/** Fig 23: page-migration mechanisms. */
SweepSpec
fig23()
{
    SweepSpec s;
    s.name = "fig23";
    s.title = "page migration mechanisms (TPP/AstriFlash/"
        "SkyByte)";
    s.axes.push_back(paperWorkloadAxis());
    SweepAxis axis{"mechanism", {}};
    for (const char *v : {"SkyByte-C", "AstriFlash-CXL", "SkyByte-CT",
                          "SkyByte-CP", "SkyByte-WCT", "SkyByte-Full"}) {
        const std::string variant = v;
        axis.values.push_back({variant, [variant](SweepPoint &p) {
                                   p.cfg = makeBenchConfig(variant);
                                   p.cfg.seed = p.opt.seed;
                                   if (variant == "AstriFlash-CXL") {
                                       // User-level switches are much
                                       // cheaper than an OS switch [23].
                                       p.cfg.policy.ctxSwitchOverhead =
                                           p.cfg.policy
                                               .astriSwitchOverhead;
                                   }
                               }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Figs 5/6: footprint:cache ratio sweep on Base-CSSD. */
SweepSpec
localitySweep(const char *name, const char *title, bool disable_log)
{
    SweepSpec s;
    s.name = name;
    s.title = title;
    s.baseVariant = "Base-CSSD";
    s.defaultInstrPerThread = 80'000;
    s.axes.push_back(workloadAxis({"bc", "dlrm", "radix", "ycsb"}));
    SweepAxis axis{"ratio", {}};
    for (const std::uint64_t n : {4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
        axis.values.push_back(
            {"1:" + std::to_string(n), [n, disable_log](SweepPoint &p) {
                 // Fix the footprint, scale the cache to footprint/n.
                 p.opt.footprintBytes = 128ULL * 1024 * 1024;
                 p.cfg.ssdCache.dataCacheBytes =
                     p.opt.footprintBytes / n;
                 if (disable_log)
                     p.cfg.ssdCache.writeLogBytes = 0;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: fixed-latency vs banked DRAM timing. */
SweepSpec
ablDramModel()
{
    SweepSpec s;
    s.name = "abl_dram_model";
    s.title = "DRAM timing model ablation (fixed vs banked)";
    s.axes.push_back(workloadAxis({"bc", "srad", "tpcc", "ycsb"}));
    s.axes.push_back(variantAxis({"Base-CSSD", "SkyByte-Full"}));
    SweepAxis axis{"dram_model", {}};
    axis.values.push_back({"fixed", nullptr});
    axis.values.push_back({"banked", [](SweepPoint &p) {
                               p.cfg.hostDram.bank = ddr5BankTiming();
                               p.cfg.ssdDram.bank = lpddr4BankTiming();
                           }});
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: GC threshold x wear-aware allocation on Base-CSSD. */
SweepSpec
ablGcWear()
{
    SweepSpec s;
    s.name = "abl_gc_wear";
    s.title = "GC threshold x wear-aware allocation ablation";
    // Base-CSSD: page-granular writebacks keep the flash programming
    // (SkyByte's write log would coalesce most GC pressure away).
    s.baseVariant = "Base-CSSD";
    s.axes.push_back(workloadAxis({"srad", "bfs-dense"}));
    SweepAxis axis{"gc", {}};
    for (const double threshold : {0.10, 0.20, 0.40}) {
        for (const bool wear : {false, true}) {
            char label[48];
            std::snprintf(label, sizeof(label), "gc=%.0f%%%s",
                          threshold * 100.0, wear ? "/wear" : "");
            axis.values.push_back(
                {label, [threshold, wear](SweepPoint &p) {
                     p.cfg.flash.gcFreeBlockThreshold = threshold;
                     p.cfg.flash.gcRestoreThreshold = threshold + 0.05;
                     p.cfg.flash.wearAwareAllocation = wear;
                 }});
        }
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: migration granularity (4 KB / 64 KB / 2 MB / none). */
SweepSpec
ablHugepage()
{
    SweepSpec s;
    s.name = "abl_hugepage";
    s.title = "migration granularity ablation "
        "(huge pages via two-level PLB)";
    s.axes.push_back(workloadAxis({"bc", "tpcc", "ycsb", "radix"}));
    SweepAxis axis{"granularity", {}};
    struct Mode
    {
        const char *label;
        std::uint64_t hugeBytes;
        bool promote;
    };
    const Mode modes[] = {{"no-migration", 0, false},
                          {"4KB-pages", 0, true},
                          {"64KB-regions", 64ULL * 1024, true},
                          {"2MB-huge", 2ULL * 1024 * 1024, true}};
    for (const Mode &mode : modes) {
        const std::uint64_t bytes = mode.hugeBytes;
        const bool promote = mode.promote;
        axis.values.push_back(
            {mode.label, [bytes, promote](SweepPoint &p) {
                 p.cfg = makeBenchConfig(promote ? "SkyByte-Full"
                                                 : "SkyByte-W");
                 p.cfg.seed = p.opt.seed;
                 p.cfg.hostMem.hugePageBytes = bytes;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: MSHR handling on context-switch squash. */
SweepSpec
ablMshrFree()
{
    SweepSpec s;
    s.name = "abl_mshr_free";
    s.title = "MSHR free-on-squash vs hold-until-fill ablation";
    s.axes.push_back(workloadAxis({"bc", "bfs-dense", "srad", "ycsb"}));
    SweepAxis axis{"mshr", {}};
    for (const bool free_mshr : {true, false}) {
        axis.values.push_back(
            {free_mshr ? "free-on-squash" : "hold-until-fill",
             [free_mshr](SweepPoint &p) {
                 p.cfg.cpu.freeMshrOnSquash = free_mshr;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: hot-page promotion threshold. */
SweepSpec
ablPromotion()
{
    SweepSpec s;
    s.name = "abl_promotion";
    s.title = "hot-page promotion threshold sensitivity";
    s.axes.push_back(workloadAxis({"bc", "tpcc", "ycsb", "bfs-dense"}));
    SweepAxis axis{"hot", {}};
    for (const std::uint32_t threshold : {2u, 8u, 32u, 128u, 512u}) {
        axis.values.push_back(
            {"hot=" + std::to_string(threshold),
             [threshold](SweepPoint &p) {
                 p.cfg.policy.hotPageThreshold = threshold;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** Ablation: demotion victim selection under a tight host budget. */
SweepSpec
ablReclaim()
{
    SweepSpec s;
    s.name = "abl_reclaim";
    s.title = "reclaim policy ablation (lru-scan vs active-inactive)";
    s.axes.push_back(workloadAxis({"bc", "tpcc", "ycsb", "dlrm"}));
    SweepAxis axis{"reclaim", {}};
    for (const ReclaimPolicy policy :
         {ReclaimPolicy::LruScan, ReclaimPolicy::ActiveInactive}) {
        axis.values.push_back(
            {policy == ReclaimPolicy::LruScan ? "lru-scan"
                                              : "active-inactive",
             [policy](SweepPoint &p) {
                 // 1/32 of the default budget plus an eager promotion
                 // threshold: the hot set must overflow the host so
                 // the reclaim path actually runs.
                 p.cfg.hostMem.promotedBytesMax /= 32;
                 p.cfg.policy.hotPageThreshold = 8;
                 p.cfg.hostMem.reclaim = policy;
             }});
    }
    s.axes.push_back(std::move(axis));
    return s;
}

/** workload x variant grid (the most common figure shape). */
SweepSpec
variantGrid(const char *name, const char *title,
            std::vector<std::string> workloads,
            std::vector<std::string> variants,
            std::uint64_t instr)
{
    SweepSpec s;
    s.name = name;
    s.title = title;
    s.defaultInstrPerThread = instr;
    s.axes.push_back(workloadAxis(std::move(workloads)));
    s.axes.push_back(variantAxis(std::move(variants)));
    return s;
}

} // namespace

void
registerBuiltinSweeps()
{
    const std::vector<std::string> paper = paperWorkloadNames();

    registerSweepUnlocked(variantGrid(
        "fig02", "DRAM vs Base-CSSD end-to-end execution time", paper,
        {"DRAM-Only", "Base-CSSD"}, 120'000));
    registerSweepUnlocked(variantGrid(
        "fig03", "off-chip access latency CDFs (DRAM vs CXL-SSD)",
        {"bc", "bfs-dense", "srad", "tpcc"},
        {"DRAM-Only", "Base-CSSD"}, 100'000));
    registerSweepUnlocked(variantGrid(
        "fig04", "memory- vs compute-bounded cycle breakdown", paper,
        {"DRAM-Only", "Base-CSSD"}, 120'000));
    registerSweepUnlocked(localitySweep(
        "fig05", "cachelines accessed per cached page (read locality)",
        true));
    registerSweepUnlocked(localitySweep(
        "fig06", "cachelines dirty per flushed page (write locality)",
        false));
    registerSweepUnlocked(fig09());
    registerSweepUnlocked(fig10());
    registerSweepUnlocked(variantGrid(
        "fig14", "headline ablation: all variants vs Base-CSSD", paper,
        allVariantNames(), 150'000));
    registerSweepUnlocked(fig15());
    registerSweepUnlocked(variantGrid(
        "fig16", "memory request breakdown under SkyByte-Full", paper,
        {"SkyByte-Full"}, 120'000));
    registerSweepUnlocked(variantGrid(
        "fig17", "AMAT and its component breakdown", paper,
        {"Base-CSSD", "SkyByte-P", "SkyByte-W", "SkyByte-WP",
         "SkyByte-Full", "DRAM-Only"},
        100'000));
    registerSweepUnlocked(variantGrid(
        "fig18", "flash write traffic by variant", paper,
        {"Base-CSSD", "SkyByte-P", "SkyByte-C", "SkyByte-W",
         "SkyByte-CP", "SkyByte-WP", "SkyByte-Full"},
        150'000));
    registerSweepUnlocked(logSizeSweep(
        "fig19", "execution time vs write log size"));
    registerSweepUnlocked(logSizeSweep(
        "fig20", "flash write traffic vs write log size"));
    registerSweepUnlocked(fig21());
    registerSweepUnlocked(fig22());
    registerSweepUnlocked(fig23());
    registerSweepUnlocked(variantGrid(
        "table1", "workload characteristics on Base-CSSD", paper,
        {"Base-CSSD"}, 120'000));
    registerSweepUnlocked(variantGrid(
        "table3", "flash read latency of SkyByte-WP demand fetches",
        paper, {"SkyByte-WP"}, 120'000));
    registerSweepUnlocked(ablDramModel());
    registerSweepUnlocked(ablGcWear());
    registerSweepUnlocked(ablHugepage());
    registerSweepUnlocked(ablMshrFree());
    registerSweepUnlocked(ablPromotion());
    registerSweepUnlocked(ablReclaim());

    // Tiny 2x2 grid for CI shard/merge checks and quick demos.
    SweepSpec smoke = variantGrid(
        "smoke", "tiny 2x2 grid for CI shard/merge checks",
        {"ycsb", "srad"}, {"Base-CSSD", "SkyByte-Full"}, 4'000);
    registerSweepUnlocked(std::move(smoke));

    // The parameterized synthetic scenarios as a workload axis of spec
    // strings — beyond-the-paper coverage, and the grid CI's
    // workload-fingerprint job diffs against a checked-in reference
    // report to catch accidental simulation or generator drift.
    registerSweepUnlocked(variantGrid(
        "scenarios",
        "parameterized synthetic scenarios (workload spec strings)",
        {"zipf:theta=0.8,footprint=32M", "scan:stride=128",
         "ptrchase:footprint=16M,chain=32",
         "phased:phase_instr=8000,write_ratio=0.3"},
        {"Base-CSSD", "SkyByte-Full"}, 4'000));

    // Multi-tenant co-location: heterogeneous mixes sharing one device
    // (write-log pressure, PLB thrash and migration churn only show up
    // with co-located tenants). Per-tenant stat buckets land in each
    // point's SimResult; CI gates the report against
    // tests/data/colocation.reference.json and proves shard/merge
    // byte-identity on this sweep too.
    registerSweepUnlocked(variantGrid(
        "colocation",
        "multi-tenant co-location mixes (mix: spec combinator)",
        {"mix:hot=zipf:theta=0.9,footprint=16M;"
         "stream=scan:stride=128,footprint=16M,threads=2",
         "mix:a=zipf:footprint=8M;"
         "b=zipf:footprint=8M,write_ratio=0.4,threads=2",
         "mix:chase=ptrchase:footprint=8M,chain=16,threads=2;"
         "oltp=tpcc:footprint=16M"},
        {"Base-CSSD", "SkyByte-W", "SkyByte-Full"}, 4'000));

    // Per-tenant QoS: a noisy random-access tenant (3 threads of
    // uniform over 24M — every access an LLC compulsory miss, high
    // MLP, weight 1) co-located with a latency-sensitive pointer chase
    // (serial dependent loads, weight 4), swept over progressively
    // stricter throttling policies. The pinned reference
    // (tests/data/qos.reference.json) demonstrates the SLO effect: the
    // lat tenant's offchip_p99_ns drops measurably once weighted
    // admission throttles the noisy tenant's device request rate.
    {
        SweepSpec qos;
        qos.name = "qos";
        qos.title =
            "per-tenant QoS throttling (noisy uniform vs ptrchase SLO)";
        qos.defaultInstrPerThread = 20'000;
        qos.axes.push_back(workloadAxis(
            {"mix:noisy=uniform:footprint=24M,write_ratio=0.2,"
             "threads=3,qos=1;lat=ptrchase:footprint=8M,chain=16,qos=4"}));
        qos.axes.push_back(variantAxis({"SkyByte-W", "SkyByte-Full"}));
        // Single-value axis: a microbenchmark-scale memory system so the
        // noisy tenant's dirty lines actually evict to the device within
        // the sweep's instruction budget (with the default 16 MB LLC
        // nothing ever spills) and the shrunken write log makes the
        // per-tenant quota reachable between log flushes.
        SweepAxis scale{"scale", {}};
        scale.values.push_back({"micro", [](SweepPoint &p) {
                                    p.cfg.cpu.l2.sizeBytes = 128 * 1024;
                                    p.cfg.cpu.llc.sizeBytes = 256 * 1024;
                                    p.cfg.ssdCache.writeLogBytes =
                                        64 * 1024;
                                }});
        qos.axes.push_back(std::move(scale));
        SweepAxis policy{"qos_policy", {}};
        policy.values.push_back({"off", [](SweepPoint &) {}});
        // 5 us epochs, 4:1 credit split (256 credits -> 204 lat / 51
        // noisy): the lat tenant's budget is ~2x its measured offered
        // load (~105 ops / 5 us on SkyByte-Full) so only its retry
        // storms get paced, while the noisy tenant's MLP bursts are
        // spread across the epoch. Tighter pools bind the lat tenant
        // and its delay-hint retries then snowball into extra spend.
        policy.values.push_back({"admission", [](SweepPoint &p) {
                                     p.cfg.qos.weightedAdmission = true;
                                     p.cfg.qos.epochTicks =
                                         usToTicks(5.0);
                                     p.cfg.qos.creditsPerEpoch = 256;
                                 }});
        policy.values.push_back(
            {"admission+quota", [](SweepPoint &p) {
                 p.cfg.qos.weightedAdmission = true;
                 p.cfg.qos.epochTicks = usToTicks(5.0);
                 p.cfg.qos.creditsPerEpoch = 256;
                 p.cfg.qos.writeLogQuota = true;
             }});
        policy.values.push_back({"full", [](SweepPoint &p) {
                                     p.cfg.qos.weightedAdmission = true;
                                     p.cfg.qos.epochTicks =
                                         usToTicks(5.0);
                                     p.cfg.qos.creditsPerEpoch = 256;
                                     p.cfg.qos.writeLogQuota = true;
                                     p.cfg.qos.migrationShare = true;
                                 }});
        qos.axes.push_back(std::move(policy));
        registerSweepUnlocked(std::move(qos));
    }

    // Trace-capture replay: the workload axis is a tracelog: spec
    // pointing at a file the runner materializes first (skybyte_
    // tracegen / tracepack). The spec replays either encoding by
    // magic, so CI runs this sweep against a flat capture, rewrites
    // the same path as STRC, reruns, and `skybyte_sweep --diff`
    // proves the two reports byte-identical.
    registerSweepUnlocked(variantGrid(
        "tracereplay",
        "replay a trace capture (flat or STRC) at ./replay.trace",
        {"tracelog:path=replay.trace"},
        {"Base-CSSD", "SkyByte-Full"}, 4'000));
}

} // namespace detail
} // namespace skybyte
