/**
 * @file
 * Result reporting: human-readable summary and JSON export of a
 * SimResult (the artifact writes result files per run; downstream
 * tooling wants machine-readable output), plus the mergeable sweep
 * report format that lets sharded sweep runs recombine.
 *
 * Sweep reports are mergeable at the byte level: each point entry is
 * serialized once (sweepEntryJson) and carried verbatim through
 * parse/merge, and the writer is fully deterministic, so merging the N
 * shard reports of a sweep reproduces the unsharded report
 * bit-identically — CI can diff the two to prove a fan-out ran the
 * same experiment.
 */

#ifndef SKYBYTE_SIM_REPORT_H
#define SKYBYTE_SIM_REPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/system.h"

namespace skybyte {

/** Write a multi-line human-readable summary. */
void printSummary(const SimResult &res, std::ostream &out);

/**
 * Serialize every scalar field plus the latency/locality CDFs as JSON.
 * Deterministic key order; no external dependencies.
 */
std::string toJson(const SimResult &res);

/**
 * Write toJson() to @p path crash-safely (write-temp-then-rename, so
 * an interrupted run never leaves a truncated JSON file).
 * @throws std::runtime_error on failure.
 */
void writeJsonFile(const SimResult &res, const std::string &path);

/**
 * One point of a sweep report: its index in the full cross product and
 * the verbatim serialized entry object. The text is the unit of
 * merging — parse and merge never re-serialize a result, so doubles
 * survive untouched.
 */
struct SweepReportEntry
{
    std::size_t index = 0;
    std::string text;
};

/**
 * Failure-manifest record of one point that produced no result: how it
 * ended ("failed" | "timeout" | "skipped"), after how many attempts,
 * and the last exit detail ("signal 9", "exit 7", "killed after
 * 5000 ms", ...). Written by the hardened executor
 * (sim/run_executor.h) so a sweep with a permanently failing point
 * still yields a usable — explicitly partial — report.
 */
struct SweepPointFailure
{
    std::size_t index = 0;
    std::string id;
    std::string status;
    std::uint32_t attempts = 0;
    std::string detail;
};

/** A (possibly partial) sweep run: manifest + per-point results. */
struct SweepReport
{
    std::string sweep;
    std::size_t totalPoints = 0;
    /** Which shard this report covers; 0/1 = a complete run. */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
    /** Entries sorted by index; a shard holds only the indices it owns. */
    std::vector<SweepReportEntry> entries;
    /**
     * Failure manifest, sorted by index, disjoint from entries. Empty
     * for a fully successful run — and an empty manifest is not
     * serialized at all, so complete reports keep the exact byte
     * layout the merge/fingerprint identities rely on.
     */
    std::vector<SweepPointFailure> failures;
};

/** Serialize one point entry (the stable layout merging relies on). */
std::string sweepEntryJson(std::size_t index, const std::string &id,
                           const SimResult &res);

/**
 * Same entry layout, but from an already-serialized toJson(SimResult)
 * text (trailing newline optional). The isolated executor uses this to
 * embed child-written result bytes verbatim, which is what makes an
 * isolated run's report byte-identical to an in-process run's.
 */
std::string sweepEntryJsonFromText(std::size_t index,
                                   const std::string &id,
                                   const std::string &resultJson);

/** Serialize a sweep report (deterministic byte layout). */
std::string toJson(const SweepReport &report);

/**
 * Parse a sweep report, keeping each point entry's text verbatim.
 * @throws std::runtime_error on malformed input.
 */
SweepReport parseSweepReport(const std::string &text);

/**
 * Combine shard reports of one sweep into the complete report
 * (shard 0/1). Entry text is reused verbatim, so the result is
 * byte-identical to an unsharded run of the same sweep. Partial shards
 * merge too: failure-manifest records count toward coverage, so every
 * point index must be covered exactly once by an entry or a failure —
 * a genuinely absent index (a lost shard) is still an error.
 * @throws std::runtime_error on sweep/total mismatch, duplicate
 *         indices, or indices covered by neither entries nor failures.
 */
SweepReport mergeSweepReports(const std::vector<SweepReport> &shards);

/**
 * Tolerance-based comparison of two sweep reports (the regression gate
 * that replaces byte-exact diffs, which a runner libm/toolchain update
 * can break through low-order float digits).
 *
 * Matched point entries are compared token-by-token: non-numeric text
 * (keys, ids, structure) must match exactly; every numeric value —
 * scalars and CDF points alike — may differ by at most @p tol_pct
 * percent relative difference (0 = numerically equal, which still
 * tolerates formatting differences like 1e3 vs 1000).
 *
 * Partial reports compare gracefully: points with entries in both
 * reports are token-compared as usual, and a point that succeeded in
 * one report but failed (or is absent) in the other — or whose failure
 * status differs — is reported as a drift instead of throwing. Two
 * complete reports with different entry counts remain incomparable.
 *
 * @return human-readable drift descriptions, empty when the reports
 *         agree within tolerance
 * @throws std::runtime_error when the reports are structurally
 *         incomparable (different sweep, point count, or entry layout)
 */
std::vector<std::string> diffSweepReports(const SweepReport &a,
                                          const SweepReport &b,
                                          double tol_pct);

} // namespace skybyte

#endif // SKYBYTE_SIM_REPORT_H
