/**
 * @file
 * Result reporting: human-readable summary and JSON export of a
 * SimResult (the artifact writes result files per run; downstream
 * tooling wants machine-readable output), plus the mergeable sweep
 * report format that lets sharded sweep runs recombine.
 *
 * Sweep reports are mergeable at the byte level: each point entry is
 * serialized once (sweepEntryJson) and carried verbatim through
 * parse/merge, and the writer is fully deterministic, so merging the N
 * shard reports of a sweep reproduces the unsharded report
 * bit-identically — CI can diff the two to prove a fan-out ran the
 * same experiment.
 */

#ifndef SKYBYTE_SIM_REPORT_H
#define SKYBYTE_SIM_REPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/system.h"

namespace skybyte {

/** Write a multi-line human-readable summary. */
void printSummary(const SimResult &res, std::ostream &out);

/**
 * Serialize every scalar field plus the latency/locality CDFs as JSON.
 * Deterministic key order; no external dependencies.
 */
std::string toJson(const SimResult &res);

/** Write toJson() to @p path. @throws std::runtime_error on failure. */
void writeJsonFile(const SimResult &res, const std::string &path);

/**
 * One point of a sweep report: its index in the full cross product and
 * the verbatim serialized entry object. The text is the unit of
 * merging — parse and merge never re-serialize a result, so doubles
 * survive untouched.
 */
struct SweepReportEntry
{
    std::size_t index = 0;
    std::string text;
};

/** A (possibly partial) sweep run: manifest + per-point results. */
struct SweepReport
{
    std::string sweep;
    std::size_t totalPoints = 0;
    /** Which shard this report covers; 0/1 = a complete run. */
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 1;
    /** Entries sorted by index; a shard holds only the indices it owns. */
    std::vector<SweepReportEntry> entries;
};

/** Serialize one point entry (the stable layout merging relies on). */
std::string sweepEntryJson(std::size_t index, const std::string &id,
                           const SimResult &res);

/** Serialize a sweep report (deterministic byte layout). */
std::string toJson(const SweepReport &report);

/**
 * Parse a sweep report, keeping each point entry's text verbatim.
 * @throws std::runtime_error on malformed input.
 */
SweepReport parseSweepReport(const std::string &text);

/**
 * Combine shard reports of one sweep into the complete report
 * (shard 0/1). Entry text is reused verbatim, so the result is
 * byte-identical to an unsharded run of the same sweep.
 * @throws std::runtime_error on sweep/total mismatch, duplicate or
 *         missing point indices.
 */
SweepReport mergeSweepReports(const std::vector<SweepReport> &shards);

/**
 * Tolerance-based comparison of two sweep reports (the regression gate
 * that replaces byte-exact diffs, which a runner libm/toolchain update
 * can break through low-order float digits).
 *
 * Matched point entries are compared token-by-token: non-numeric text
 * (keys, ids, structure) must match exactly; every numeric value —
 * scalars and CDF points alike — may differ by at most @p tol_pct
 * percent relative difference (0 = numerically equal, which still
 * tolerates formatting differences like 1e3 vs 1000).
 *
 * @return human-readable drift descriptions, empty when the reports
 *         agree within tolerance
 * @throws std::runtime_error when the reports are structurally
 *         incomparable (different sweep, point count, or entry layout)
 */
std::vector<std::string> diffSweepReports(const SweepReport &a,
                                          const SweepReport &b,
                                          double tol_pct);

} // namespace skybyte

#endif // SKYBYTE_SIM_REPORT_H
