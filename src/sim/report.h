/**
 * @file
 * Result reporting: human-readable summary and JSON export of a
 * SimResult (the artifact writes result files per run; downstream
 * tooling wants machine-readable output).
 */

#ifndef SKYBYTE_SIM_REPORT_H
#define SKYBYTE_SIM_REPORT_H

#include <ostream>
#include <string>

#include "sim/system.h"

namespace skybyte {

/** Write a multi-line human-readable summary. */
void printSummary(const SimResult &res, std::ostream &out);

/**
 * Serialize every scalar field plus the latency/locality CDFs as JSON.
 * Deterministic key order; no external dependencies.
 */
std::string toJson(const SimResult &res);

/** Write toJson() to @p path. @throws std::runtime_error on failure. */
void writeJsonFile(const SimResult &res, const std::string &path);

} // namespace skybyte

#endif // SKYBYTE_SIM_REPORT_H
