#include "sim/run_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <thread>

#include <signal.h>
#include <unistd.h>

#include "common/flat_map.h"
#include "common/fs.h"
#include "common/subprocess.h"

namespace skybyte {

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
    case PointStatus::Ok:
        return "ok";
    case PointStatus::Failed:
        return "failed";
    case PointStatus::Timeout:
        return "timeout";
    case PointStatus::Skipped:
        return "skipped";
    }
    return "?";
}

// ------------------------------------------------------------- faults

std::vector<FaultSpec>
parseFaultSpecs(const std::string &text)
{
    std::vector<FaultSpec> faults;
    std::istringstream in(text);
    std::string entry;
    while (in >> entry) {
        // Point ids contain ':' (workload specs), so the action is
        // everything after the LAST ':'.
        const auto colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0
            || colon + 1 >= entry.size()) {
            throw std::invalid_argument(
                "SKYBYTE_FAULT entry needs <point-id>:<action>, got: "
                + entry);
        }
        FaultSpec fault;
        fault.pointId = entry.substr(0, colon);
        std::string action = entry.substr(colon + 1);
        const auto at = action.rfind('@');
        if (at != std::string::npos) {
            const std::string count = action.substr(at + 1);
            char *end = nullptr;
            const unsigned long v = std::strtoul(count.c_str(), &end, 10);
            if (count.empty() || *end != '\0' || v == 0) {
                throw std::invalid_argument(
                    "SKYBYTE_FAULT attempt bound must be a positive "
                    "integer, got: " + entry);
            }
            fault.maxAttempt = static_cast<std::uint32_t>(v);
            action.resize(at);
        }
        if (action == "crash") {
            fault.action = FaultSpec::Action::Crash;
        } else if (action == "hang") {
            fault.action = FaultSpec::Action::Hang;
        } else if (action.rfind("exit=", 0) == 0) {
            const std::string code = action.substr(5);
            char *end = nullptr;
            const long v = std::strtol(code.c_str(), &end, 10);
            if (code.empty() || *end != '\0' || v < 0 || v > 255) {
                throw std::invalid_argument(
                    "SKYBYTE_FAULT exit code must be in [0, 255], "
                    "got: " + entry);
            }
            fault.action = FaultSpec::Action::Exit;
            fault.exitCode = static_cast<int>(v);
        } else {
            throw std::invalid_argument(
                "SKYBYTE_FAULT action must be crash|hang|exit=N, "
                "got: " + entry);
        }
        faults.push_back(std::move(fault));
    }
    return faults;
}

std::vector<FaultSpec>
faultSpecsFromEnv()
{
    const char *text = std::getenv("SKYBYTE_FAULT");
    if (text == nullptr || *text == '\0')
        return {};
    return parseFaultSpecs(text);
}

namespace {

/** In the child, before the simulation: act out a matching fault. */
void
applyFault(const std::vector<FaultSpec> &faults, const std::string &id,
           std::uint32_t attempt)
{
    for (const FaultSpec &fault : faults) {
        if (fault.pointId != id)
            continue;
        if (fault.maxAttempt != 0 && attempt > fault.maxAttempt)
            continue;
        switch (fault.action) {
        case FaultSpec::Action::Crash:
            // SIGKILL, not SIGSEGV: deterministic under sanitizers,
            // and to the parent both are just "died on a signal".
            ::kill(::getpid(), SIGKILL);
            for (;;)
                ::pause();
        case FaultSpec::Action::Hang:
            for (;;)
                ::pause();
        case FaultSpec::Action::Exit:
            // No result file is written: exit=0 exercises the
            // "exited clean but committed nothing" failure path.
            ::_exit(fault.exitCode);
        }
    }
}

} // namespace

// ------------------------------------------------------------ options

ExecutorOptions
executorOptionsFromEnv()
{
    ExecutorOptions opt;
    if (const char *s = std::getenv("SKYBYTE_BACKOFF_MS"))
        opt.backoffBaseMs = std::strtoull(s, nullptr, 10);
    return opt;
}

std::size_t
IsolatedExecution::countWith(PointStatus status) const
{
    std::size_t n = 0;
    for (const PointOutcome &o : outcomes)
        n += o.status == status ? 1 : 0;
    return n;
}

bool
IsolatedExecution::complete() const
{
    return countWith(PointStatus::Ok) == outcomes.size();
}

bool
IsolatedExecution::anySimTimeout() const
{
    for (const PointOutcome &o : outcomes) {
        if (o.simTimedOut)
            return true;
    }
    return false;
}

// ------------------------------------------------------------ journal

std::string
journalPath(const std::string &runDir)
{
    return runDir + "/journal.jsonl";
}

std::string
pointResultPath(const std::string &runDir, std::size_t index)
{
    return runDir + "/points/" + std::to_string(index) + ".json";
}

namespace {

/**
 * Pull `"key": <value>` out of one journal line. The journal is
 * machine-written with a fixed key order, so simple searches suffice;
 * any miss marks the line as truncated/corrupt.
 */
bool
findNumber(const std::string &line, const std::string &key,
           std::uint64_t &out)
{
    const auto at = line.find("\"" + key + "\":");
    if (at == std::string::npos)
        return false;
    const char *start = line.c_str() + at + key.size() + 3;
    char *end = nullptr;
    out = std::strtoull(start, &end, 10);
    return end != start;
}

bool
findString(const std::string &line, const std::string &key,
           std::string &out)
{
    const auto at = line.find("\"" + key + "\":");
    if (at == std::string::npos)
        return false;
    auto open = line.find('"', at + key.size() + 3);
    if (open == std::string::npos)
        return false;
    std::string value;
    for (std::size_t i = open + 1; i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
            value += line[++i];
            continue;
        }
        if (line[i] == '"') {
            out = std::move(value);
            return true;
        }
        value += line[i];
    }
    return false; // unterminated: truncated line
}

bool
parseJournalRecord(const std::string &line, JournalRecord &rec)
{
    std::uint64_t index = 0, attempt = 0, ms = 0;
    if (!findNumber(line, "point", index)
        || !findString(line, "id", rec.id)
        || !findNumber(line, "attempt", attempt)
        || !findString(line, "status", rec.status)
        || !findNumber(line, "ms", ms)
        || !findString(line, "detail", rec.detail)) {
        return false;
    }
    rec.index = index;
    rec.attempt = static_cast<std::uint32_t>(attempt);
    rec.durationMs = ms;
    return true;
}

std::string
journalHeaderLine(const JournalHeader &header)
{
    std::ostringstream os;
    os << "{\"skybyte_sweep_journal\": 1, \"sweep\": \"" << header.sweep
       << "\", \"total_points\": " << header.totalPoints
       << ", \"shard_index\": " << header.shardIndex
       << ", \"shard_count\": " << header.shardCount << "}";
    return os.str();
}

std::string
journalRecordLine(const JournalRecord &rec)
{
    std::ostringstream os;
    os << "{\"point\": " << rec.index << ", \"id\": \"" << rec.id
       << "\", \"attempt\": " << rec.attempt << ", \"status\": \""
       << rec.status << "\", \"ms\": " << rec.durationMs
       << ", \"detail\": \"" << rec.detail << "\"}";
    return os.str();
}

} // namespace

bool
readJournal(const std::string &path, JournalHeader &header,
            std::vector<JournalRecord> &records)
{
    if (!fileExists(path))
        return false;
    const std::string text = readFileText(path);
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        throw RunDirError("journal is empty: " + path);
    std::uint64_t version = 0, total = 0, sidx = 0, scount = 0;
    if (!findNumber(line, "skybyte_sweep_journal", version)
        || version != 1 || !findString(line, "sweep", header.sweep)
        || !findNumber(line, "total_points", total)
        || !findNumber(line, "shard_index", sidx)
        || !findNumber(line, "shard_count", scount)) {
        throw RunDirError("journal has a malformed header: " + path);
    }
    header.totalPoints = total;
    header.shardIndex = static_cast<std::uint32_t>(sidx);
    header.shardCount = static_cast<std::uint32_t>(scount);
    records.clear();
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JournalRecord rec;
        if (!parseJournalRecord(line, rec)) {
            // A torn record can only be the last line (single-write
            // appends); anything else is real corruption.
            if (in.peek() == std::char_traits<char>::eof())
                break;
            throw RunDirError("journal is corrupt mid-file: " + path);
        }
        records.push_back(std::move(rec));
    }
    return true;
}

// ------------------------------------------------------------ backoff

std::uint64_t
backoffDelayMs(std::uint64_t baseMs, std::uint32_t failedAttempt,
               std::uint64_t seed, std::size_t index)
{
    if (baseMs == 0)
        return 0;
    const std::uint32_t exp =
        std::min(failedAttempt == 0 ? 0u : failedAttempt - 1, 6u);
    const std::uint64_t delay = baseMs << exp;
    // Deterministic jitter in [0, baseMs): decorrelates retry storms
    // across points without sacrificing reproducibility.
    const FlatHash mix;
    const std::uint64_t jitter =
        mix(seed ^ mix(static_cast<std::uint64_t>(index) + 1)
            ^ (static_cast<std::uint64_t>(failedAttempt) << 32))
        % baseMs;
    return delay + jitter;
}

// ----------------------------------------------------------- executor

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t
msBetween(Clock::time_point a, Clock::time_point b)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
            .count());
}

bool
resultSaysSimTimedOut(const std::string &resultJson)
{
    return resultJson.find("\"timed_out\": true") != std::string::npos;
}

int
childRunPoint(const LabeledPoint &lp, const std::string &resultPath,
              std::uint32_t attempt, const std::vector<FaultSpec> &faults)
{
    applyFault(faults, lp.id(), attempt);
    try {
        const SweepPoint &p = lp.point;
        const SimResult res = runConfig(p.cfg, p.workload, p.opt);
        writeFileAtomic(resultPath, toJson(res));
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "skybyte point %s: %s\n", lp.id().c_str(),
                     e.what());
        return 9;
    }
}

} // namespace

IsolatedExecution
runSweepIsolated(const std::string &sweepName, std::size_t totalPoints,
                 const ShardSpec &shard,
                 const std::vector<LabeledPoint> &points,
                 const ExecutorOptions &opt)
{
    if (opt.runDir.empty())
        throw std::invalid_argument("isolated run needs a run dir");
    const std::vector<FaultSpec> faults = faultSpecsFromEnv();
    const std::string journal_path = journalPath(opt.runDir);

    IsolatedExecution exec;
    exec.outcomes.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        exec.outcomes[i].index = points[i].index;
        exec.outcomes[i].id = points[i].id();
    }

    // --- run-dir state: fresh run vs resume ---------------------------
    std::vector<std::uint32_t> priorAttempts(points.size(), 0);
    JournalHeader header{sweepName, totalPoints, shard.index,
                         shard.count};
    if (opt.resume) {
        JournalHeader prior;
        std::vector<JournalRecord> records;
        if (!readJournal(journal_path, prior, records)) {
            throw RunDirError("cannot resume: no journal in "
                              + opt.runDir);
        }
        if (prior.sweep != sweepName || prior.totalPoints != totalPoints
            || prior.shardIndex != shard.index
            || prior.shardCount != shard.count) {
            throw RunDirError(
                "cannot resume: journal belongs to sweep "
                + prior.sweep + " ("
                + std::to_string(prior.totalPoints) + " points, shard "
                + std::to_string(prior.shardIndex) + "/"
                + std::to_string(prior.shardCount) + "), not to "
                + sweepName);
        }
        for (std::size_t i = 0; i < points.size(); ++i) {
            for (const JournalRecord &rec : records) {
                if (rec.index == points[i].index) {
                    priorAttempts[i] =
                        std::max(priorAttempts[i], rec.attempt);
                }
            }
        }
    } else {
        if (fileExists(journal_path)) {
            throw RunDirError(
                "run dir already contains a journal (pass --resume to "
                "continue it, or use a fresh directory): " + opt.runDir);
        }
        ensureDirs(opt.runDir + "/points");
        appendLine(journal_path, journalHeaderLine(header));
    }

    // --- resume: adopt committed results ------------------------------
    // The rename-committed result file is the authoritative
    // completeness predicate; the journal only supplies attempt counts.
    std::deque<std::size_t> todo;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const std::string result_path =
            pointResultPath(opt.runDir, points[i].index);
        if (opt.resume && fileExists(result_path)) {
            PointOutcome &out = exec.outcomes[i];
            out.status = PointStatus::Ok;
            out.attempts = std::max(priorAttempts[i], 1u);
            out.resultJson = readFileText(result_path);
            out.resumedFromDisk = true;
            out.simTimedOut = resultSaysSimTimedOut(out.resultJson);
        } else {
            todo.push_back(i);
        }
    }

    // --- the scheduler ------------------------------------------------
    struct Pending
    {
        std::size_t slot;
        std::uint32_t attempt; ///< local to this invocation, 1-based
        Clock::time_point readyAt;
    };
    struct Running
    {
        pid_t pid;
        std::size_t slot;
        std::uint32_t attempt;
        Clock::time_point start;
        Clock::time_point deadline;
    };
    std::deque<Pending> pending;
    for (const std::size_t slot : todo)
        pending.push_back({slot, 1, Clock::now()});
    std::vector<Running> running;
    const std::size_t cap = static_cast<std::size_t>(
        sweepThreads(opt.nthreads, pending.size()));

    auto journalAttempt = [&](std::size_t slot, std::uint32_t attempt,
                              const char *status, std::uint64_t ms,
                              const std::string &detail) {
        JournalRecord rec;
        rec.index = points[slot].index;
        rec.id = exec.outcomes[slot].id;
        rec.attempt = priorAttempts[slot] + attempt;
        rec.status = status;
        rec.durationMs = ms;
        rec.detail = detail;
        appendLine(journal_path, journalRecordLine(rec));
    };

    auto settleFailure = [&](std::size_t slot, std::uint32_t attempt,
                             PointStatus kind, std::uint64_t ms,
                             const std::string &detail) {
        PointOutcome &out = exec.outcomes[slot];
        out.attempts = priorAttempts[slot] + attempt;
        out.durationMs = ms;
        out.detail = detail;
        journalAttempt(slot, attempt,
                       kind == PointStatus::Timeout ? "timeout"
                                                    : "failed",
                       ms, detail);
        if (attempt < 1 + opt.retries) {
            const std::uint64_t wait = backoffDelayMs(
                opt.backoffBaseMs, attempt,
                points[slot].point.opt.seed, points[slot].index);
            pending.push_back({slot, attempt + 1,
                               Clock::now()
                                   + std::chrono::milliseconds(wait)});
            return;
        }
        out.status = kind;
    };

    auto settleExit = [&](const Running &run, const ChildExit &status) {
        const std::uint64_t ms = msBetween(run.start, Clock::now());
        PointOutcome &out = exec.outcomes[run.slot];
        if (!status.ok()) {
            settleFailure(run.slot, run.attempt, PointStatus::Failed,
                          ms, describeExit(status));
            return;
        }
        const std::string result_path =
            pointResultPath(opt.runDir, points[run.slot].index);
        if (!fileExists(result_path)) {
            settleFailure(run.slot, run.attempt, PointStatus::Failed,
                          ms, "exit 0 without a committed result");
            return;
        }
        out.status = PointStatus::Ok;
        out.attempts = priorAttempts[run.slot] + run.attempt;
        out.durationMs = ms;
        out.detail.clear();
        out.resultJson = readFileText(result_path);
        out.simTimedOut = resultSaysSimTimedOut(out.resultJson);
        journalAttempt(run.slot, run.attempt, "ok", ms, "");
    };

    while (!pending.empty() || !running.empty()) {
        const Clock::time_point now = Clock::now();

        // Launch every due pending point while slots are free. Scan
        // for the lowest due slot first so launch order is stable.
        while (running.size() < cap) {
            auto best = pending.end();
            for (auto it = pending.begin(); it != pending.end(); ++it) {
                if (it->readyAt > now)
                    continue;
                if (best == pending.end() || it->slot < best->slot)
                    best = it;
            }
            if (best == pending.end())
                break;
            const Pending job = *best;
            pending.erase(best);
            const LabeledPoint &lp = points[job.slot];
            const std::string result_path =
                pointResultPath(opt.runDir, lp.index);
            const std::uint32_t absolute_attempt =
                priorAttempts[job.slot] + job.attempt;
            const pid_t pid = spawnChild([&lp, &result_path,
                                          absolute_attempt, &faults] {
                return childRunPoint(lp, result_path, absolute_attempt,
                                     faults);
            });
            const Clock::time_point start = Clock::now();
            const Clock::time_point deadline =
                opt.timeoutMs == 0
                    ? Clock::time_point::max()
                    : start + std::chrono::milliseconds(opt.timeoutMs);
            running.push_back({pid, job.slot, job.attempt, start,
                               deadline});
        }

        // Reap exits and enforce deadlines.
        bool progressed = false;
        for (auto it = running.begin(); it != running.end();) {
            ChildExit status;
            if (pollChild(it->pid, status)) {
                settleExit(*it, status);
                it = running.erase(it);
                progressed = true;
                continue;
            }
            if (Clock::now() >= it->deadline) {
                killChild(it->pid);
                waitChild(it->pid); // SIGKILL makes this prompt
                const std::uint64_t ms =
                    msBetween(it->start, Clock::now());
                settleFailure(it->slot, it->attempt,
                              PointStatus::Timeout, ms,
                              "killed after " + std::to_string(ms)
                                  + " ms (timeout "
                                  + std::to_string(opt.timeoutMs)
                                  + " ms)");
                it = running.erase(it);
                progressed = true;
                continue;
            }
            ++it;
        }
        if (!progressed)
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return exec;
}

SweepReport
buildIsolatedReport(const std::string &sweepName,
                    std::size_t totalPoints, const ShardSpec &shard,
                    const IsolatedExecution &exec)
{
    SweepReport report;
    report.sweep = sweepName;
    report.totalPoints = totalPoints;
    report.shardIndex = shard.index;
    report.shardCount = shard.count;
    for (const PointOutcome &out : exec.outcomes) {
        if (out.status == PointStatus::Ok) {
            report.entries.push_back(
                {out.index, sweepEntryJsonFromText(out.index, out.id,
                                                   out.resultJson)});
        } else {
            report.failures.push_back(
                {out.index, out.id, pointStatusName(out.status),
                 out.attempts, out.detail});
        }
    }
    return report;
}

} // namespace skybyte
