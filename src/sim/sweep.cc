#include "sim/sweep.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "trace/workload.h"

namespace skybyte {

std::vector<std::string>
SweepAxis::labels() const
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (const AxisValue &v : values)
        out.push_back(v.label);
    return out;
}

std::string
LabeledPoint::col() const
{
    std::string out;
    for (std::size_t i = 1; i < labels.size(); ++i) {
        if (i > 1)
            out += '/';
        out += labels[i];
    }
    return out;
}

std::string
LabeledPoint::id() const
{
    std::string out = row();
    const std::string c = col();
    if (!c.empty()) {
        out += '/';
        out += c;
    }
    return out;
}

std::size_t
SweepSpec::pointCount() const
{
    std::size_t n = 1;
    for (const SweepAxis &axis : axes)
        n *= axis.values.size();
    return axes.empty() ? 0 : n;
}

std::vector<LabeledPoint>
SweepSpec::expand(const ExperimentOptions &opt) const
{
    std::vector<LabeledPoint> out;
    const std::size_t total = pointCount();
    out.reserve(total);
    for (std::size_t index = 0; index < total; ++index) {
        LabeledPoint lp;
        lp.index = index;
        lp.point = makeSweepPoint(baseVariant, "", opt);
        // Row-major decode: first axis varies slowest.
        std::size_t rem = index;
        std::vector<std::size_t> pick(axes.size());
        for (std::size_t a = axes.size(); a-- > 0;) {
            pick[a] = rem % axes[a].values.size();
            rem /= axes[a].values.size();
        }
        lp.labels.reserve(axes.size());
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const AxisValue &v = axes[a].values[pick[a]];
            lp.labels.push_back(v.label);
            if (v.apply)
                v.apply(lp.point);
        }
        out.push_back(std::move(lp));
    }
    return out;
}

ExperimentOptions
SweepSpec::optionsFromEnv() const
{
    ExperimentOptions opt = ExperimentOptions::fromEnv();
    if (std::getenv("SKYBYTE_BENCH_INSTR") == nullptr)
        opt.instrPerThread = defaultInstrPerThread;
    return opt;
}

SweepAxis
workloadAxis(std::vector<std::string> names)
{
    SweepAxis axis{"workload", {}};
    axis.values.reserve(names.size());
    for (std::string &name : names) {
        axis.values.push_back(
            {name, [name](SweepPoint &p) { p.workload = name; }});
    }
    return axis;
}

SweepAxis
paperWorkloadAxis()
{
    return workloadAxis(paperWorkloadNames());
}

SweepAxis
variantAxis(std::vector<std::string> names)
{
    SweepAxis axis{"variant", {}};
    axis.values.reserve(names.size());
    for (std::string &name : names) {
        axis.values.push_back({name, [name](SweepPoint &p) {
                                   p.cfg = makeBenchConfig(name);
                                   p.cfg.seed = p.opt.seed;
                               }});
    }
    return axis;
}

SweepAxis
knobAxis(std::string name, std::vector<AxisValue> values)
{
    return SweepAxis{std::move(name), std::move(values)};
}

namespace detail {
/** Defined in sweep_registry.cc: the paper's sweep definitions. */
void registerBuiltinSweeps();
} // namespace detail

namespace {

std::mutex &
registryMutex()
{
    static std::mutex m;
    return m;
}

std::map<std::string, SweepSpec> &
registryLocked()
{
    static std::map<std::string, SweepSpec> specs;
    return specs;
}

void
insertSpec(SweepSpec spec)
{
    if (spec.name.empty())
        throw std::invalid_argument("sweep name must not be empty");
    if (spec.axes.empty()) {
        throw std::invalid_argument("sweep " + spec.name
                                    + " has no axes");
    }
    auto [it, inserted] =
        registryLocked().emplace(spec.name, std::move(spec));
    if (!inserted) {
        throw std::invalid_argument("duplicate sweep name: "
                                    + it->first);
    }
}

void
ensureBuiltins()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::lock_guard<std::mutex> lock(registryMutex());
        detail::registerBuiltinSweeps();
    });
}

} // namespace

namespace detail {

/** Registration hook shared with sweep_registry.cc (not public API). */
void
registerSweepUnlocked(SweepSpec spec)
{
    insertSpec(std::move(spec));
}

} // namespace detail

void
registerSweep(SweepSpec spec)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    insertSpec(std::move(spec));
}

const SweepSpec *
findSweep(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    const auto &specs = registryLocked();
    const auto it = specs.find(name);
    return it == specs.end() ? nullptr : &it->second;
}

std::vector<const SweepSpec *>
registeredSweeps()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<const SweepSpec *> out;
    for (const auto &[name, spec] : registryLocked())
        out.push_back(&spec);
    return out;
}

ShardSpec
parseShard(const std::string &text)
{
    const auto slash = text.find('/');
    if (slash == std::string::npos || slash == 0
        || slash + 1 >= text.size()) {
        throw std::invalid_argument("expected shard i/N, got: " + text);
    }
    const auto parse_part = [&](const std::string &part) {
        // Digits only: stoul would accept (and wrap) "-1".
        if (part.empty()
            || part.find_first_not_of("0123456789") != std::string::npos)
            throw std::invalid_argument("bad shard number: " + text);
        unsigned long v = 0;
        try {
            v = std::stoul(part, nullptr, 10);
        } catch (const std::exception &) {
            throw std::invalid_argument("bad shard number: " + text);
        }
        if (v > 0xffffffffUL)
            throw std::invalid_argument("bad shard number: " + text);
        return static_cast<std::uint32_t>(v);
    };
    ShardSpec shard;
    shard.index = parse_part(text.substr(0, slash));
    shard.count = parse_part(text.substr(slash + 1));
    if (shard.count == 0 || shard.index >= shard.count) {
        throw std::invalid_argument("shard index out of range: " + text);
    }
    return shard;
}

ShardSpec
shardFromEnv()
{
    if (const char *s = std::getenv("SKYBYTE_SWEEP_SHARD"))
        return parseShard(s);
    return {};
}

bool
shardOwns(const ShardSpec &shard, std::size_t index)
{
    return index % shard.count == shard.index;
}

std::vector<LabeledPoint>
expandShard(const SweepSpec &spec, const ExperimentOptions &opt,
            const ShardSpec &shard, std::size_t &totalPoints)
{
    std::vector<LabeledPoint> all = spec.expand(opt);
    totalPoints = all.size();
    std::vector<LabeledPoint> owned;
    for (LabeledPoint &lp : all) {
        if (shardOwns(shard, lp.index))
            owned.push_back(std::move(lp));
    }
    return owned;
}

SweepExecution
runSweepShard(const SweepSpec &spec, const ExperimentOptions &opt,
              const ShardSpec &shard, int nthreads)
{
    SweepExecution exec;
    exec.points = expandShard(spec, opt, shard, exec.totalPoints);
    std::vector<SweepPoint> points;
    points.reserve(exec.points.size());
    for (const LabeledPoint &lp : exec.points)
        points.push_back(lp.point);
    exec.results = runSweep(points, nthreads);
    return exec;
}

} // namespace skybyte
