#include "sim/benchdiff.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace skybyte {

namespace {

/** One number with its dotted key path. */
struct NumToken
{
    double value = 0;
    std::string path;
};

/**
 * Lex of one JSON document: the structural skeleton (every
 * non-whitespace character with numbers replaced by '#', strings kept
 * verbatim) plus the numbers in order with their paths.
 */
struct BenchLex
{
    std::string skeleton;
    std::vector<NumToken> numbers;
};

/**
 * Single-pass lexer with key-path tracking: '"key":' pushes context,
 * '{'/'}' scope it, and array elements inherit the array's key. This
 * is not a JSON validator — both inputs come from the benches' own
 * writers — but malformed nesting still ends as a skeleton mismatch.
 */
BenchLex
lexBenchJson(const std::string &text)
{
    BenchLex lex;
    std::vector<std::string> stack;
    std::string current_key;
    std::size_t i = 0;

    auto path_of = [&]() {
        std::string path;
        for (const std::string &k : stack) {
            if (k.empty())
                continue;
            if (!path.empty())
                path += '.';
            path += k;
        }
        if (!current_key.empty()) {
            if (!path.empty())
                path += '.';
            path += current_key;
        }
        return path;
    };

    while (i < text.size()) {
        const char c = text[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '"') {
            std::string literal(1, '"');
            for (++i; i < text.size() && text[i] != '"'; ++i) {
                if (text[i] == '\\' && i + 1 < text.size())
                    literal += text[i++];
                literal += text[i];
            }
            if (i < text.size())
                literal += text[i++]; // closing quote
            // A string followed by ':' names the next value; any other
            // string is a value and part of the skeleton.
            std::size_t j = i;
            while (j < text.size()
                   && std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j < text.size() && text[j] == ':')
                current_key = literal.substr(1, literal.size() - 2);
            lex.skeleton += literal;
            continue;
        }
        const bool starts_number =
            (c >= '0' && c <= '9')
            || (c == '-' && i + 1 < text.size() && text[i + 1] >= '0'
                && text[i + 1] <= '9');
        if (starts_number) {
            std::size_t end = i + 1;
            while (end < text.size()
                   && (std::isdigit(
                           static_cast<unsigned char>(text[end]))
                       || text[end] == '.' || text[end] == 'e'
                       || text[end] == 'E' || text[end] == '+'
                       || text[end] == '-')) {
                ++end;
            }
            NumToken tok;
            tok.value =
                std::strtod(text.substr(i, end - i).c_str(), nullptr);
            tok.path = path_of();
            lex.numbers.push_back(std::move(tok));
            lex.skeleton += '#';
            i = end;
            continue;
        }
        if (c == '{' || c == '[') {
            stack.push_back(current_key);
            current_key.clear();
        } else if (c == '}' || c == ']') {
            if (!stack.empty())
                stack.pop_back();
            current_key.clear();
        }
        lex.skeleton += c;
        ++i;
    }
    return lex;
}

bool
pathSelected(const std::string &path,
             const std::vector<std::string> &keys)
{
    if (keys.empty())
        return true;
    for (const std::string &k : keys) {
        if (path.find(k) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

std::vector<BenchDrift>
diffBenchJson(const std::string &baseline, const std::string &current,
              const BenchDiffOptions &opt)
{
    const BenchLex a = lexBenchJson(baseline);
    const BenchLex b = lexBenchJson(current);
    if (a.skeleton != b.skeleton) {
        // Locate the first divergence for a usable message.
        std::size_t at = 0;
        while (at < a.skeleton.size() && at < b.skeleton.size()
               && a.skeleton[at] == b.skeleton[at])
            ++at;
        const auto context = [&](const std::string &s) {
            const std::size_t begin = at > 24 ? at - 24 : 0;
            return s.substr(begin, 48);
        };
        throw std::runtime_error(
            "benchdiff: reports differ structurally near \""
            + context(a.skeleton) + "\" vs \"" + context(b.skeleton)
            + "\" (metric added/removed/renamed? regenerate the "
              "baseline)");
    }

    const double tol = opt.tolPct / 100.0;
    std::vector<BenchDrift> drifts;
    for (std::size_t t = 0; t < a.numbers.size(); ++t) {
        const double va = a.numbers[t].value;
        const double vb = b.numbers[t].value;
        if (!pathSelected(a.numbers[t].path, opt.keys))
            continue;
        if (va == vb)
            continue;
        const double scale = std::max(std::fabs(va), std::fabs(vb));
        const double rel = scale > 0 ? std::fabs(va - vb) / scale : 0.0;
        if (rel <= tol)
            continue;
        const bool regression = vb < va;
        if (opt.regressOnly && !regression)
            continue;
        BenchDrift d;
        d.path = a.numbers[t].path;
        d.baseline = va;
        d.current = vb;
        d.relPct = rel * 100.0;
        d.regression = regression;
        drifts.push_back(std::move(d));
    }
    return drifts;
}

std::string
formatBenchDrift(const BenchDrift &drift, const BenchDiffOptions &opt)
{
    std::ostringstream os;
    os << std::setprecision(12) << drift.path << ": " << drift.baseline
       << " -> " << drift.current << " (" << std::setprecision(3)
       << drift.relPct << "% > " << opt.tolPct << "%"
       << (drift.regression ? ", regression" : ", improvement") << ")";
    return os.str();
}

} // namespace skybyte
