#include "cxl/ndr.h"

namespace skybyte {

namespace {

// Figure 8 layout, LSB first: valid | opcode | rsvd4 | tag | rsvd16.
constexpr std::uint32_t kValidShift = 0;
constexpr std::uint32_t kOpcodeShift = 1;
constexpr std::uint32_t kRsvd4Shift = 4;
constexpr std::uint32_t kTagShift = 8;
constexpr std::uint32_t kRsvd16Shift = 24;

} // namespace

bool
ndrOpcodeDefined(std::uint8_t opcode)
{
    switch (static_cast<CxlNdrOpcode>(opcode & 0b111)) {
      case CxlNdrOpcode::Cmp:
      case CxlNdrOpcode::CmpS:
      case CxlNdrOpcode::CmpE:
      case CxlNdrOpcode::BiConflictAck:
      case CxlNdrOpcode::SkyByteDelay:
        return true;
      default:
        return false; // 0b011, 0b101, 0b110 stay reserved
    }
}

NdrFlit
encodeNdr(const NdrMessage &msg)
{
    NdrFlit flit = 0;
    flit |= static_cast<NdrFlit>(msg.valid ? 1 : 0) << kValidShift;
    flit |= (static_cast<NdrFlit>(msg.opcode) & 0b111) << kOpcodeShift;
    flit |= static_cast<NdrFlit>(msg.tag) << kTagShift;
    // Both reserved fields (4 + 16 bits) transmit as zero.
    (void)kRsvd4Shift;
    (void)kRsvd16Shift;
    return flit;
}

std::optional<NdrMessage>
decodeNdr(NdrFlit flit)
{
    if (flit >> kNdrFlitBits)
        return std::nullopt; // stray bits beyond the 40-bit flit
    NdrMessage msg;
    msg.valid = ((flit >> kValidShift) & 1) != 0;
    if (!msg.valid)
        return std::nullopt;
    const auto opcode =
        static_cast<std::uint8_t>((flit >> kOpcodeShift) & 0b111);
    if (!ndrOpcodeDefined(opcode))
        return std::nullopt;
    msg.opcode = static_cast<CxlNdrOpcode>(opcode);
    msg.tag = static_cast<std::uint16_t>((flit >> kTagShift) & 0xffff);
    return msg;
}

CxlTagTable::CxlTagTable(std::uint32_t capacity)
    : capacity_(capacity > (1u << 16) ? (1u << 16) : capacity)
{}

std::optional<std::uint16_t>
CxlTagTable::allocate(const CxlMessage &request)
{
    if (inFlight_.size() >= capacity_) {
        stats_.rejectedFull++;
        return std::nullopt;
    }
    // Linear probe from the rolling cursor: the previous transaction's
    // tag is usually free again by the time the counter wraps.
    while (inFlight_.contains(next_))
        next_++;
    const std::uint16_t tag = next_++;
    CxlMessage tracked = request;
    tracked.tag = tag;
    inFlight_.tryEmplace(tag, tracked);
    stats_.allocated++;
    return tag;
}

const CxlMessage *
CxlTagTable::find(std::uint16_t tag) const
{
    return inFlight_.find(tag);
}

std::optional<CxlMessage>
CxlTagTable::complete(std::uint16_t tag)
{
    const CxlMessage *entry = inFlight_.find(tag);
    if (entry == nullptr) {
        stats_.unknownTagResponses++;
        return std::nullopt;
    }
    CxlMessage request = *entry;
    inFlight_.erase(tag);
    stats_.completed++;
    return request;
}

} // namespace skybyte
