/**
 * @file
 * Bit-exact No-Data-Response (NDR) flit codec and transaction tag
 * tracking (Figure 8, §III-A step C1/C2).
 *
 * Figure 8 lays the NDR message out as
 *
 *     | 1-bit | 3-bit  | 4-bit    | 16-bit | 16-bit   |
 *     | Valid | Opcode | reserved | Tag    | reserved |
 *
 * 40 bits total. The SSD answers a MemRd that will stall for a long
 * time with an NDR carrying the SkyByte-Delay opcode (a reserved
 * encoding, 0b111) and the request's tag; the host CXL controller uses
 * the tag to find the LLC MSHR entry and raise the Long Delay Exception
 * on the right core (C3).
 *
 * CxlTagTable is that controller-side bookkeeping: it hands out 16-bit
 * tags for outstanding CXL.mem transactions and maps an NDR's tag back
 * to the issuing request. Tags are finite (the 16-bit space), so the
 * table also models back-pressure when all tags are in flight.
 */

#ifndef SKYBYTE_CXL_NDR_H
#define SKYBYTE_CXL_NDR_H

#include <cstdint>
#include <optional>

#include "common/flat_map.h"
#include "common/types.h"
#include "cxl/cxl.h"

namespace skybyte {

/** A decoded NDR message (Figure 8 fields, reserved bits dropped). */
struct NdrMessage
{
    bool valid = false;
    CxlNdrOpcode opcode = CxlNdrOpcode::Cmp;
    std::uint16_t tag = 0;
};

/** Raw 40-bit NDR flit, stored right-aligned in a 64-bit word. */
using NdrFlit = std::uint64_t;

/** Number of meaningful bits in an NDR flit. */
inline constexpr std::uint32_t kNdrFlitBits = 40;

/** Encode @p msg into the Figure 8 bit layout. */
NdrFlit encodeNdr(const NdrMessage &msg);

/**
 * Decode a flit. Returns nullopt when the valid bit is clear or the
 * opcode is a reserved encoding SkyByte does not define.
 */
std::optional<NdrMessage> decodeNdr(NdrFlit flit);

/** Is @p opcode one of the defined (non-reserved) NDR encodings? */
bool ndrOpcodeDefined(std::uint8_t opcode);

/** Tag-table statistics. */
struct CxlTagStats
{
    std::uint64_t allocated = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejectedFull = 0;
    std::uint64_t unknownTagResponses = 0;
};

/**
 * Host-side table of outstanding CXL.mem transactions keyed by the
 * 16-bit tag (§III-A C1: "The CXL controller tracks all the memory
 * requests between the host CPU and the SSD").
 */
class CxlTagTable
{
  public:
    /** @param capacity max outstanding tags (<= 65536). */
    explicit CxlTagTable(std::uint32_t capacity = 1u << 16);

    /**
     * Allocate a tag for @p request.
     * @return the tag, or nullopt when every tag is outstanding.
     */
    std::optional<std::uint16_t> allocate(const CxlMessage &request);

    /** Look up (without releasing) the request behind @p tag. */
    const CxlMessage *find(std::uint16_t tag) const;

    /**
     * Response arrived for @p tag: release it.
     * @return the original request, or nullopt for an unknown tag
     *         (counted — a real controller would raise an error).
     */
    std::optional<CxlMessage> complete(std::uint16_t tag);

    std::uint64_t outstanding() const { return inFlight_.size(); }
    std::uint32_t capacity() const { return capacity_; }
    const CxlTagStats &stats() const { return stats_; }

  private:
    std::uint32_t capacity_;
    std::uint16_t next_ = 0;
    FlatMap<CxlMessage> inFlight_;
    CxlTagStats stats_;
};

} // namespace skybyte

#endif // SKYBYTE_CXL_NDR_H
