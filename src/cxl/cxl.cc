#include "cxl/cxl.h"

#include <algorithm>

namespace skybyte {

CxlLink::CxlLink(EventQueue &eq, const CxlConfig &cfg)
    : eq_(eq), protocolLatency_(cfg.protocolLatency),
      bytesPerNs_(cfg.bytesPerNs)
{}

Tick
CxlLink::transfer(Tick when, std::uint32_t bytes, Tick &dir_free)
{
    const Tick start = std::max(when, dir_free);
    const auto xfer = static_cast<Tick>(
        static_cast<double>(bytes) / bytesPerNs_
        * static_cast<double>(kTicksPerNs));
    dir_free = start + xfer;
    bytes_ += bytes;
    return start + xfer + protocolLatency_;
}

Tick
CxlLink::deliverToDevice(Tick when, std::uint32_t bytes)
{
    return transfer(when, bytes, toDeviceFree_);
}

Tick
CxlLink::deliverToHost(Tick when, std::uint32_t bytes)
{
    return transfer(when, bytes, toHostFree_);
}

} // namespace skybyte
