/**
 * @file
 * CXL.mem transport model (§II-A, §III-A, Figure 8).
 *
 * Message types follow the CXL.mem master-to-slave request (M2S Req) and
 * slave-to-master (S2M) classes the paper uses: MemRd / MemWr requests,
 * MemData data responses, and No-Data-Responses (NDR) whose opcode space
 * SkyByte extends with the SkyByte-Delay opcode (0b111) to signal a long
 * access delay back to the host.
 *
 * The link itself models the PCIe 5.0 x4 transport: a fixed protocol
 * latency per direction plus a shared bandwidth queue (Table II: 16 GB/s,
 * 40 ns).
 */

#ifndef SKYBYTE_CXL_CXL_H
#define SKYBYTE_CXL_CXL_H

#include <cstdint>
#include <functional>

#include "common/config.h"
#include "common/event_queue.h"
#include "common/types.h"

namespace skybyte {

/** CXL.mem M2S request opcodes (subset used by a Type-3 device). */
enum class CxlReqOpcode : std::uint8_t
{
    MemRd = 0,
    MemWr = 1,
};

/**
 * S2M NDR opcodes (Figure 8). SkyByte claims one reserved encoding for
 * the long-delay indication.
 */
enum class CxlNdrOpcode : std::uint8_t
{
    Cmp = 0b000,           ///< completion (writebacks/reads/invalidates)
    CmpS = 0b001,          ///< CXL.cache coherence completion (shared)
    CmpE = 0b010,          ///< CXL.cache coherence completion (exclusive)
    BiConflictAck = 0b100, ///< back-invalidate conflict ack
    SkyByteDelay = 0b111,  ///< long access delay indication (SkyByte)
};

/** One CXL.mem transaction as seen on the link. */
struct CxlMessage
{
    CxlReqOpcode opcode = CxlReqOpcode::MemRd;
    std::uint16_t tag = 0; ///< 16-bit transaction tag (Figure 8)
    Addr lineAddr = 0;
    LineValue value = 0;
};

/**
 * Bidirectional CXL link with per-direction bandwidth queues.
 * Timing only; the SSD controller sits on the far side.
 */
class CxlLink
{
  public:
    CxlLink(EventQueue &eq, const CxlConfig &cfg);

    /**
     * When does a @p bytes payload sent at @p when arrive at the device?
     */
    Tick deliverToDevice(Tick when, std::uint32_t bytes);

    /** When does a @p bytes payload sent at @p when arrive at the host? */
    Tick deliverToHost(Tick when, std::uint32_t bytes);

    /** Total payload bytes moved in both directions. */
    std::uint64_t bytesTransferred() const { return bytes_; }

    /** Allocate a fresh 16-bit transaction tag. */
    std::uint16_t nextTag() { return tag_++; }

    Tick protocolLatency() const { return protocolLatency_; }

  private:
    Tick transfer(Tick when, std::uint32_t bytes, Tick &dir_free);

    EventQueue &eq_;
    Tick protocolLatency_;
    double bytesPerNs_;
    Tick toDeviceFree_ = 0;
    Tick toHostFree_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint16_t tag_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_CXL_CXL_H
