#include "common/lane_kernel.h"

#include <algorithm>
#include <string>

#include "common/config.h"

namespace skybyte {

LaneWindow
LaneWindow::fromLatencies(std::initializer_list<Tick> latencies)
{
    if (latencies.size() == 0) {
        throw std::invalid_argument(
            "LaneWindow::fromLatencies needs at least one latency");
    }
    Tick lo = kTickMax;
    for (Tick latency : latencies) {
        if (latency == 0) {
            throw std::invalid_argument(
                "cross-boundary latency must be > 0 (a zero-latency "
                "boundary admits no safe parallel window)");
        }
        lo = std::min(lo, latency);
    }
    return LaneWindow{lo, lo};
}

void
LaneWindow::validate() const
{
    if (windowTicks == 0 || windowTicks > minCrossLatency) {
        throw std::invalid_argument(
            "lane window must satisfy 1 <= W <= L (W="
            + std::to_string(windowTicks)
            + ", L=" + std::to_string(minCrossLatency) + ")");
    }
}

Tick
laneWindowTicks(const SimConfig &cfg)
{
    // The cheapest cross-boundary hops an event can take between lane
    // groups of a simulated machine: core cluster -> shared LLC, host
    // <-> device over the CXL link, and the flash read floor. Their
    // minimum bounds how far any lane may safely run ahead.
    return LaneWindow::fromLatencies({cfg.cpu.llc.hitLatency,
                                      cfg.cxl.protocolLatency,
                                      cfg.flash.timing.readLatency})
        .windowTicks;
}

LaneEventKernel::LaneEventKernel(std::size_t groups, std::size_t workers,
                                 LaneWindow window)
    : window_(window)
{
    if (groups == 0) {
        throw std::invalid_argument(
            "LaneEventKernel needs at least one group");
    }
    window_.validate();
    workers_ = std::max<std::size_t>(1, std::min(workers, groups));
    lanes_.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g)
        lanes_.push_back(std::make_unique<EventQueue>());
    outboxes_ = std::vector<Outbox>(groups);
}

LaneEventKernel::~LaneEventKernel()
{
    // run() always joins its workers before returning (including on
    // exceptions), so this only fires if run() itself never finished —
    // in which case joining here prevents a std::terminate.
    if (!threads_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        windowCv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
        threads_.clear();
    }
}

void
LaneEventKernel::post(std::size_t from, std::size_t to, Tick when,
                      EventFn fn)
{
    if (from >= lanes_.size() || to >= lanes_.size())
        throw std::out_of_range("LaneEventKernel::post: bad group id");
    const Tick send_now = lanes_[from]->now();
    if (!window_.admissible(send_now, when)) {
        throw std::logic_error(
            "LaneEventKernel::post: delivery at " + std::to_string(when)
            + " violates the conservative window (sender now "
            + std::to_string(send_now) + ", min cross-boundary latency "
            + std::to_string(window_.minCrossLatency) + ")");
    }
    Outbox &ob = outboxes_[from];
    LaneMessage msg{when, static_cast<std::uint32_t>(from),
                    static_cast<std::uint32_t>(to), ob.nextSeq++,
                    std::move(fn)};
    // Once a window spills, later sends keep spilling so the drain
    // order (ring first, then overflow) preserves per-sender FIFO.
    if (!ob.overflowed && ob.ring.tryPush(std::move(msg)))
        return;
    ob.overflowed = true;
    ob.overflow.push_back(std::move(msg));
}

std::size_t
LaneEventKernel::pending() const
{
    std::size_t total = 0;
    for (const auto &q : lanes_)
        total += q->pending();
    return total;
}

Tick
LaneEventKernel::nextEventTime() const
{
    Tick next = kTickMax;
    for (const auto &q : lanes_)
        next = std::min(next, q->nextEventTime());
    return next;
}

void
LaneEventKernel::runWorkerWindow(std::size_t w, Tick window_end)
{
    // Fixed round-robin group ownership: which worker runs a group
    // never affects results (the canonical order is per-group), only
    // load balance.
    for (std::size_t g = w; g < lanes_.size(); g += workers_)
        lanes_[g]->run(window_end);
}

void
LaneEventKernel::drainAndMerge()
{
    mergeBuf_.clear();
    for (Outbox &ob : outboxes_) {
        LaneMessage msg;
        while (ob.ring.tryPop(msg))
            mergeBuf_.push_back(std::move(msg));
        for (LaneMessage &spilled : ob.overflow)
            mergeBuf_.push_back(std::move(spilled));
        ob.overflow.clear();
        ob.overflowed = false;
    }
    // (when, from, seq) is unique per message, so this sort is a total
    // order — the merge sequence cannot depend on worker interleaving.
    std::sort(mergeBuf_.begin(), mergeBuf_.end(),
              [](const LaneMessage &a, const LaneMessage &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.from != b.from)
                      return a.from < b.from;
                  return a.seq < b.seq;
              });
    messagesMerged_ += mergeBuf_.size();
    for (LaneMessage &msg : mergeBuf_)
        lanes_[msg.to]->schedule(msg.when, std::move(msg.fn));
    mergeBuf_.clear();
}

void
LaneEventKernel::runWindows(Tick limit,
                            const std::function<void(Tick)> &run_window)
{
    for (;;) {
        const Tick next = nextEventTime();
        if (next == kTickMax || next > limit)
            break;
        // Conservative admission makes every message due at or after
        // windowEnd(next)+1, so clipping the window at `limit` can only
        // shorten it — never admit anything early.
        const Tick end = std::min(window_.windowEnd(next), limit);
        run_window(end);
        ++barriers_;
        drainAndMerge();
    }
    // Align every lane clock with the bounded-run contract EventQueue
    // has: after run(limit), now() == limit even with events pending
    // past it. No event at or before `limit` remains (the loop above
    // consumed them), so these calls only advance clocks.
    if (limit != kTickMax) {
        for (auto &q : lanes_)
            q->run(limit);
    }
}

void
LaneEventKernel::workerLoop(std::size_t w)
{
    std::uint64_t seen = 0;
    for (;;) {
        Tick end;
        {
            std::unique_lock<std::mutex> lock(mu_);
            windowCv_.wait(lock,
                           [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            end = windowEnd_;
        }
        try {
            runWorkerWindow(w, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (workerError_ == nullptr)
                workerError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++arrived_;
        }
        doneCv_.notify_one();
    }
}

void
LaneEventKernel::run(Tick limit)
{
    if (running_)
        throw std::logic_error("LaneEventKernel::run is not reentrant");
    running_ = true;

    if (workers_ == 1) {
        // Serial mode: the identical window/barrier/merge loop, inline.
        // This is what makes worker count result-invariant — the only
        // difference from the threaded path is who executes a group.
        runWindows(limit, [this](Tick end) {
            for (auto &q : lanes_)
                q->run(end);
        });
        running_ = false;
        return;
    }

    stop_ = false;
    epoch_ = 0;
    arrived_ = 0;
    workerError_ = nullptr;
    threads_.reserve(workers_);
    for (std::size_t w = 0; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });

    auto shutdown = [this] {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        windowCv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
        threads_.clear();
    };

    try {
        runWindows(limit, [this](Tick end) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                windowEnd_ = end;
                ++epoch_;
            }
            windowCv_.notify_all();
            std::unique_lock<std::mutex> lock(mu_);
            doneCv_.wait(lock, [this] { return arrived_ == workers_; });
            arrived_ = 0;
            if (workerError_ != nullptr) {
                std::exception_ptr err = workerError_;
                workerError_ = nullptr;
                std::rethrow_exception(err);
            }
        });
    } catch (...) {
        shutdown();
        running_ = false;
        throw;
    }
    shutdown();
    running_ = false;
}

} // namespace skybyte
