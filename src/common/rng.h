/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * xoshiro256** core generator plus the distribution helpers the trace
 * generators need (uniform, zipf, geometric-ish burst lengths). Every
 * thread of every workload owns an independent Rng seeded from the
 * workload seed and thread id, so runs are reproducible regardless of
 * event interleaving.
 */

#ifndef SKYBYTE_COMMON_RNG_H
#define SKYBYTE_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

namespace skybyte {

/**
 * xoshiro256** pseudo-random generator (public-domain algorithm by
 * Blackman & Vigna), seeded via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedba5eULL) { reseed(seed); }

    /** Re-initialise the state from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, n). @p n must be nonzero. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Multiply-shift range reduction; bias is negligible for our use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

/**
 * Zipfian sampler over [0, n) using Gray/Jain rejection-inversion-free
 * approximation: cheap per-sample cost, accurate enough for locality
 * shaping (the same approach YCSB's generator takes).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     population size
     * @param theta skew in (0,1); YCSB default is 0.99
     */
    ZipfSampler(std::uint64_t n, double theta)
        : n_(n), theta_(theta)
    {
        zetan_ = zeta(n_, theta_);
        zeta2_ = zeta(2, theta_);
        alpha_ = 1.0 / (1.0 - theta_);
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_))
               / (1.0 - zeta2_ / zetan_);
    }

    /** Draw one zipf-distributed rank in [0, n). */
    std::uint64_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta_))
            return 1;
        const double frac =
            std::pow(eta_ * u - eta_ + 1.0, alpha_);
        auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) * frac);
        return rank >= n_ ? n_ - 1 : rank;
    }

    std::uint64_t population() const { return n_; }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        // Direct sum for small n, integral approximation for large n.
        if (n <= 10000) {
            double sum = 0.0;
            for (std::uint64_t i = 1; i <= n; ++i)
                sum += std::pow(1.0 / static_cast<double>(i), theta);
            return sum;
        }
        const double head = zeta(10000, theta);
        // integral of x^-theta from 10000 to n
        const double tail =
            (std::pow(static_cast<double>(n), 1.0 - theta)
             - std::pow(10000.0, 1.0 - theta)) / (1.0 - theta);
        return head + tail;
    }

    std::uint64_t n_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_RNG_H
