/**
 * @file
 * Multi-lane discrete-event kernel: conservative time-window
 * parallelism over per-lane calendar queues.
 *
 * The serial EventQueue executes one global event order. This kernel
 * partitions event sources into G *lane groups*, each with its own
 * calendar EventQueue, and advances the groups concurrently inside a
 * bounded time window — the domain-decomposition + boundary-exchange
 * shape of chunk-parallel tick simulation, applied to an event
 * calendar. The structure that makes this safe is the same one the
 * simulator has: events only cross group boundaries (core→uncore hop,
 * CXL link, flash read) with a known minimum latency L, so a group can
 * run W <= L ticks ahead of every other group without ever missing a
 * message from the past.
 *
 * Execution alternates two phases:
 *
 *  1. Window: every group runs its own queue up to the window end,
 *     independently and in parallel. Cross-group sends (post()) are
 *     buffered in the sending group's SPSC outbox ring (overflow spills
 *     to a producer-local vector), never applied directly.
 *  2. Barrier: all workers park; the coordinator drains every outbox,
 *     sorts the messages by (deliverTick, senderGroup, senderSeq) — a
 *     total order independent of worker interleaving — and schedules
 *     them into the destination queues. Conservative admission
 *     (deliverTick >= senderNow + L, enforced by post()) plus W <= L
 *     guarantees every merged message lands strictly after the window
 *     that produced it, so no group ever receives an event in its past.
 *
 * Determinism: the canonical event order is a pure function of the
 * group partition and the initial schedule — each group's intra-window
 * execution is single-threaded FIFO-calendar order, window boundaries
 * derive only from queue state, and the barrier merge is sorted by a
 * worker-independent key. The physical worker count (the `lanes` knob)
 * only chooses how groups are spread across host threads; workers=1
 * runs the identical window/barrier/merge loop inline on the caller.
 * tests/test_lane_kernel.cc pins checksum equality across worker
 * counts, and the System-level fingerprint tests pin it end to end.
 */

#ifndef SKYBYTE_COMMON_LANE_KERNEL_H
#define SKYBYTE_COMMON_LANE_KERNEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/event_queue.h"
#include "common/spsc_ring.h"
#include "common/types.h"

namespace skybyte {

struct SimConfig;

/**
 * The conservative window contract: groups may run @c windowTicks ahead
 * of each other because no cross-group message can be due sooner than
 * @c minCrossLatency after its send time.
 */
struct LaneWindow
{
    /** Barrier period W: how far groups advance between exchanges. */
    Tick windowTicks = 1;
    /** Minimum cross-boundary latency L; post() enforces it. */
    Tick minCrossLatency = 1;

    /**
     * The safe maximal window for a set of boundary latencies:
     * W = L = min(latencies).
     * @throws std::invalid_argument when empty or any latency is 0.
     */
    static LaneWindow fromLatencies(std::initializer_list<Tick> latencies);

    /** Is delivering at @p deliver legal for a send at @p send_now? */
    bool
    admissible(Tick send_now, Tick deliver) const
    {
        return deliver >= send_now + minCrossLatency;
    }

    /**
     * End (inclusive) of the window opening at @p start; the first tick
     * of the next window is windowEnd()+1.
     */
    Tick
    windowEnd(Tick start) const
    {
        const Tick end = start + (windowTicks - 1);
        return end < start ? kTickMax : end; // saturate on overflow
    }

    /** @throws std::invalid_argument unless 1 <= W <= L. */
    void validate() const;
};

/**
 * Minimum cross-boundary latency of a simulated machine: the cheapest
 * path an event can take between lane groups (core→LLC hop, CXL
 * protocol latency, flash read floor). This is the conservative window
 * a lane-parallel run of @p cfg may use.
 */
Tick laneWindowTicks(const SimConfig &cfg);

/** One buffered cross-lane event. */
struct LaneMessage
{
    Tick when = 0;
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    /** Per-sender send order: the deterministic same-tick tie-break. */
    std::uint64_t seq = 0;
    EventFn fn;
};

/**
 * G lane groups advanced by W worker threads under a conservative
 * window barrier. Not thread-safe externally: construction, setup
 * schedule() calls and run() all happen on one controlling thread;
 * post() may only be called from inside an event executing on the
 * sending group.
 */
class LaneEventKernel
{
  public:
    /** Outbox ring slots per group (overflow spills past this). */
    static constexpr std::size_t kRingSlots = 1024;

    /**
     * @param groups  logical lane count G (fixes the canonical order)
     * @param workers physical thread count; clamped to [1, groups]
     * @param window  validated conservative-window contract
     */
    LaneEventKernel(std::size_t groups, std::size_t workers,
                    LaneWindow window);

    ~LaneEventKernel();

    LaneEventKernel(const LaneEventKernel &) = delete;
    LaneEventKernel &operator=(const LaneEventKernel &) = delete;

    std::size_t groups() const { return lanes_.size(); }
    std::size_t workers() const { return workers_; }
    const LaneWindow &window() const { return window_; }

    /** Group @p g's own calendar queue (intra-group scheduling). */
    EventQueue &
    lane(std::size_t g)
    {
        return *lanes_.at(g);
    }

    /** Schedule onto group @p g at absolute @p when (setup phase). */
    template <typename F>
    void
    schedule(std::size_t g, Tick when, F &&fn)
    {
        lane(g).schedule(when, std::forward<F>(fn));
    }

    /**
     * Send a cross-group event: run @p fn on group @p to at @p when.
     * Must be called from an event executing on group @p from; the
     * message is exchanged at the next window barrier.
     * @throws std::logic_error when @p when violates the conservative
     *         admission bound (sooner than sender-now + L).
     */
    void post(std::size_t from, std::size_t to, Tick when, EventFn fn);

    /**
     * Run every group until all queues drain (and no messages are in
     * flight) or the window opening past @p limit is reached. With a
     * finite limit every lane clock reads exactly @p limit afterwards.
     * Events and merges happen in the canonical order regardless of the
     * worker count.
     */
    void run(Tick limit = kTickMax);

    /** Sum of pending events across groups (quiescent state only). */
    std::size_t pending() const;

    /** Earliest pending tick across groups (kTickMax when drained). */
    Tick nextEventTime() const;

    /** Cross-group messages merged so far. @{ */
    std::uint64_t messagesMerged() const { return messagesMerged_; }
    std::uint64_t barriers() const { return barriers_; }
    /** @} */

  private:
    /**
     * Per-group boundary outbox. The ring is the SPSC fast path
     * (producer: the worker executing the group; consumer: the barrier
     * coordinator). When a window produces more sends than ring slots,
     * the rest go to the producer-local overflow vector — and stay
     * there for the remainder of the window so per-sender FIFO order
     * survives the spill. The coordinator drains ring-then-overflow at
     * the barrier, while every producer is parked.
     */
    struct Outbox
    {
        SpscRing<LaneMessage> ring{kRingSlots};
        std::vector<LaneMessage> overflow;
        bool overflowed = false;
        std::uint64_t nextSeq = 0;
    };

    /** Execute groups [w mod workers] up to @p window_end inclusive. */
    void runWorkerWindow(std::size_t w, Tick window_end);

    /** Drain all outboxes, sort, schedule into destinations. */
    void drainAndMerge();

    /** The window/barrier loop body shared by serial and threaded runs. */
    void runWindows(Tick limit,
                    const std::function<void(Tick)> &run_window);

    /** Threaded worker body. */
    void workerLoop(std::size_t w);

    std::vector<std::unique_ptr<EventQueue>> lanes_;
    std::vector<Outbox> outboxes_;
    LaneWindow window_;
    std::size_t workers_;

    /** Barrier state (threaded mode only). @{ */
    std::mutex mu_;
    std::condition_variable windowCv_; ///< coordinator -> workers
    std::condition_variable doneCv_;   ///< workers -> coordinator
    std::uint64_t epoch_ = 0;
    std::size_t arrived_ = 0;
    Tick windowEnd_ = 0;
    bool stop_ = false;
    std::exception_ptr workerError_;
    std::vector<std::thread> threads_;
    /** @} */

    std::vector<LaneMessage> mergeBuf_;
    std::uint64_t messagesMerged_ = 0;
    std::uint64_t barriers_ = 0;
    bool running_ = false;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_LANE_KERNEL_H
