/**
 * @file
 * Simulator configuration: every knob from the paper's Table II / Table IV
 * plus the SkyByte policy switches exposed by the original artifact
 * (promotion_enable, write_log_enable, device_triggered_ctx_swt,
 * cs_threshold, ssd_cache_size_byte, host_dram_size_byte, t_policy).
 *
 * Preset builders produce the evaluation configurations: Base-CSSD,
 * SkyByte-{C,P,W,CP,WP,Full}, DRAM-Only, SkyByte-{CT,WCT} (TPP migration)
 * and AstriFlash-CXL.
 */

#ifndef SKYBYTE_COMMON_CONFIG_H
#define SKYBYTE_COMMON_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/types.h"

namespace skybyte {

/** Thread scheduling policies explored in §III-A. */
enum class SchedPolicy { RoundRobin, Random, Cfs };

/** Page-migration mechanisms compared in §VI-H. */
enum class MigrationMechanism {
    None,       ///< no promotion to host DRAM
    SkyByte,    ///< per-page access counting in the SSD controller (§III-C)
    Tpp,        ///< TPP-style periodic sampling + LRU lists [43]
    AstriFlash, ///< host DRAM as HW-managed set-associative page cache [23]
};

/** NAND flash chip families from Table IV. */
enum class NandType { ULL, ULL2, SLC, MLC };

/**
 * Host page-reclaim policy used to pick demotion victims (§III-C cites
 * Linux's active/inactive lists; LruScan is the simpler exact-LRU scan).
 */
enum class ReclaimPolicy { LruScan, ActiveInactive };

/** Per-core cache parameters. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t mshrs = 8;
    Tick hitLatency = nsToTicks(1.0);
};

/** CPU complex parameters (Table II). */
struct CpuConfig
{
    int numCores = 8;
    std::uint32_t robEntries = 256;
    std::uint32_t issueWidth = 4;     ///< instructions per cycle
    CacheConfig l1d{32 * 1024, 8, 8, nsToTicks(1.0)};
    CacheConfig l2{512 * 1024, 32, 128, nsToTicks(3.5)};
    CacheConfig llc{16ULL * 1024 * 1024, 16, 1024, nsToTicks(10.0)};
    /** Free a thread's MSHR entries when its loads squash (§III-A). */
    bool freeMshrOnSquash = true;
};

/**
 * Bank-level DRAM timing, derived from the Table II speed grades
 * ("DDR5 4800 MHz 36-38-38", "LPDDR4 3200 MHz 16-18-18"). With
 * banksPerChannel == 0 the device falls back to the fixed-latency
 * model; the presets below translate the CL-tRCD-tRP triples into
 * row-hit / row-miss / row-conflict latencies.
 */
struct DramBankTiming
{
    std::uint32_t banksPerChannel = 0; ///< 0 disables the bank model
    std::uint32_t rowBytes = 8192;
    Tick tRcd = 0; ///< activate -> column command
    Tick tRp = 0;  ///< precharge
    Tick tCas = 0; ///< column access (CL)
    /** Fixed controller/queueing overhead added to every access. */
    Tick controllerLatency = nsToTicks(20.0);

    bool enabled() const { return banksPerChannel > 0; }
};

/** DDR5-4800 36-38-38 (Table II host DRAM): CL/tRCD/tRP at 2400 MHz. */
DramBankTiming ddr5BankTiming();

/** LPDDR4-3200 16-18-18 (Table II SSD DRAM): CL/tRCD/tRP at 1600 MHz. */
DramBankTiming lpddr4BankTiming();

/** Host DDR5 DRAM (Table II: DDR5-4800, 8 channels). */
struct HostDramConfig
{
    Tick accessLatency = nsToTicks(70.0);
    std::uint32_t channels = 8;
    /** DDR5-4800, 64-bit channel: 4800 MT/s x 8 B = 38.4 GB/s. */
    double bytesPerNsPerChannel = 38.4;
    /** Optional bank/row-buffer model (see DramBankTiming). */
    DramBankTiming bank{};
};

/** SSD-internal LPDDR4 DRAM (Table II: LPDDR4-3200, 2 channels). */
struct SsdDramConfig
{
    Tick accessLatency = nsToTicks(100.0);
    std::uint32_t channels = 2;
    /** LPDDR4-3200, 64-bit channel: 3200 MT/s x 8 B = 25.6 GB/s. */
    double bytesPerNsPerChannel = 25.6;
    std::uint32_t mshrs = 2048;
    /** Optional bank/row-buffer model (see DramBankTiming). */
    DramBankTiming bank{};
};

/** CXL link (Table II: CXL over PCIe 5.0 x4). */
struct CxlConfig
{
    Tick protocolLatency = nsToTicks(40.0);
    double bytesPerNs = 16.0; ///< 16 GB/s
};

/** NAND timing (Table IV). */
struct NandTiming
{
    Tick readLatency = usToTicks(3.0);     ///< tR
    Tick programLatency = usToTicks(100.0);///< tProg
    Tick eraseLatency = usToTicks(1000.0); ///< tBERS
};

/** Table IV presets. */
NandTiming nandTiming(NandType type);

/** Human-readable NAND type name. */
std::string nandTypeName(NandType type);

/**
 * Flash geometry. Paper default: 16 channels x 8 chips x 8 dies x 1 plane,
 * 128 blocks/plane, 256 pages/block, 4 KB pages = 128 GB. The default here
 * is a 1/64-scale geometry with identical channel structure (see DESIGN.md
 * §1); `paperScale()` restores the full geometry.
 */
struct FlashConfig
{
    std::uint32_t channels = 16;
    std::uint32_t chipsPerChannel = 8;
    std::uint32_t diesPerChip = 8;
    std::uint32_t planesPerDie = 1;
    std::uint32_t blocksPerPlane = 2;   ///< paper: 128 (1/64 scale)
    std::uint32_t pagesPerBlock = 256;
    NandTiming timing{};
    /** Channel bus transfer time for one 4 KB page (~3.4 GB/s ONFI 5). */
    Tick pageTransferTime = nsToTicks(4096.0 / 3.4);
    /** GC starts when free blocks drop below this fraction per channel. */
    double gcFreeBlockThreshold = 0.20;
    /** GC stops once free fraction recovers above this level. */
    double gcRestoreThreshold = 0.25;
    /**
     * Wear-aware block allocation: open the least-erased free block
     * instead of the most recently freed one, bounding the P/E spread
     * across blocks (dynamic wear leveling).
     */
    bool wearAwareAllocation = false;

    std::uint64_t pagesPerChannel() const
    {
        return static_cast<std::uint64_t>(chipsPerChannel) * diesPerChip
               * planesPerDie * blocksPerPlane * pagesPerBlock;
    }
    std::uint64_t totalPages() const
    {
        return pagesPerChannel() * channels;
    }
    std::uint64_t totalBytes() const { return totalPages() * kPageBytes; }
    std::uint64_t blocksPerChannel() const
    {
        return static_cast<std::uint64_t>(chipsPerChannel) * diesPerChip
               * planesPerDie * blocksPerPlane;
    }
};

/** SkyByte / baseline policy switches (artifact §G knobs). */
struct PolicyConfig
{
    bool writeLogEnable = false;         ///< write_log_enable
    bool promotionEnable = false;        ///< promotion_enable
    bool deviceTriggeredCtxSwitch = false; ///< device_triggered_ctx_swt
    Tick csThreshold = usToTicks(2.0);   ///< cs_threshold
    Tick ctxSwitchOverhead = usToTicks(2.0);
    SchedPolicy schedPolicy = SchedPolicy::Cfs; ///< t_policy
    MigrationMechanism migration = MigrationMechanism::None;
    /** Page access count that makes a page a promotion candidate. */
    std::uint32_t hotPageThreshold = 32;
    /** TPP sampling period (used when migration == Tpp). */
    Tick tppSamplePeriod = usToTicks(200.0);
    /** AstriFlash user-level switch overhead (cheaper than OS switch). */
    Tick astriSwitchOverhead = nsToTicks(500.0);
};

/**
 * SSD DRAM layout. Paper default: 512 MB total = 64 MB write log + 448 MB
 * data cache; the 1/64-scale default keeps the 1:7 split.
 */
struct SsdCacheConfig
{
    std::uint64_t writeLogBytes = 1ULL * 1024 * 1024;  ///< paper: 64 MB
    std::uint64_t dataCacheBytes = 7ULL * 1024 * 1024; ///< paper: 448 MB
    std::uint32_t dataCacheWays = 16; ///< ssd_cache_way
    Tick writeLogIndexLatency = nsToTicks(72.0);  ///< FPGA-measured (§V)
    Tick dataCacheIndexLatency = nsToTicks(49.0); ///< FPGA-measured (§V)
    /** Second-level hash tables start at this many entries (§III-B). */
    std::uint32_t logIndexInitialEntries = 4;
    /** Resize when the load factor exceeds this (§III-B). */
    double logIndexLoadFactor = 0.75;
    /** Base-CSSD sequential next-page prefetch on cache miss [32],[62]. */
    bool baseCssdPrefetch = true;
};

/**
 * NUMA topology (§IV): the CXL-SSD appears as a CPU-less node attached
 * to a home socket; accesses from other sockets pay the inter-socket
 * hop. Cores are split into contiguous socket blocks. The context
 * switch threshold is shared by all nodes, as the paper argues.
 */
struct NumaConfig
{
    std::uint32_t sockets = 1;
    Tick interSocketLatency = nsToTicks(100.0);
    std::uint32_t ssdHomeSocket = 0;
};

/** Host-side memory budget for promoted pages. */
struct HostMemConfig
{
    /** host_dram_size_byte: max bytes of promoted pages (paper: 2 GB). */
    std::uint64_t promotedBytesMax = 32ULL * 1024 * 1024; ///< 1/64 scale
    /** Promotion Look-aside Buffer entries (§III-C). */
    std::uint32_t plbEntries = 64;
    /** One-way MSI-X interrupt cost for migration requests. */
    Tick msixLatency = nsToTicks(900.0);
    /** Per-core TLB shootdown cost charged when a migration completes. */
    Tick tlbShootdownCost = nsToTicks(400.0);
    /**
     * Data-persistence support (§IV): the first pinnedDeviceBytes of the
     * device address space are pinned to the CXL-SSD — never promoted to
     * (volatile) host DRAM, so clwb-flushed lines are durable once they
     * reach the battery-backed SSD DRAM.
     */
    std::uint64_t pinnedDeviceBytes = 0;
    /**
     * Migration granularity (§IV): 0 migrates plain 4 KB pages; set to
     * 2 MB to migrate huge pages chunk-by-chunk through the two-level
     * PLB. Must be a power-of-two multiple of kPageBytes.
     */
    std::uint64_t hugePageBytes = 0;
    /**
     * Cost of the custom NVMe command that tells the SSD to drop all
     * 4 KB chunks of a migrated huge page from its DRAM caches (§IV).
     */
    Tick nvmeNotifyLatency = usToTicks(2.0);
    /** Cachelines copied per PLB burst while a migration is in flight. */
    std::uint32_t plbBurstLines = 8;
    /** Victim selection for demotions when the host budget is full. */
    ReclaimPolicy reclaim = ReclaimPolicy::LruScan;
};

/**
 * Event-kernel tuning (ROADMAP "Calendar-window tuning"). The defaults
 * reproduce the constants the calendar queue shipped with; both knobs
 * only change simulator wall-clock, never simulated behaviour.
 */
struct KernelConfig
{
    /** Calendar near-window size in ticks; power of two >= 64. */
    std::uint32_t calendarWindowTicks = EventQueue::kWindowTicks;
    /** EventRecords carved per slab chunk. */
    std::uint32_t slabChunkRecords = detail::EventSlab::kChunkRecords;
    /**
     * Parallel-kernel lane count (`lanes=` / SKYBYTE_SIM_LANES): host
     * worker threads a single simulation may use. 1 (the default) is
     * the serial kernel, byte-for-byte the pre-knob behaviour; higher
     * values enable lane-parallel execution (common/lane_kernel.h for
     * event lanes, sim/lane_stage.h for core-group workload staging)
     * whose results are bit-identical to lanes=1 — the knob only
     * changes wall-clock. Valid range [1, 64].
     */
    std::uint32_t lanes = 1;
};

/**
 * Per-tenant QoS controls for co-located `mix:` workloads. All knobs
 * default off, so single-tenant runs and unconfigured mixes behave —
 * and fingerprint — exactly as before. Tenant weights come from the
 * per-tenant `qos=` spec key (default 1.0); every control divides its
 * resource proportionally to weight share.
 */
struct QosConfig
{
    /**
     * Weighted admission control at the SSD controller (`qos_policy=
     * weighted`): each tenant gets creditsPerEpoch * weight-share
     * request credits per epoch, and a request arriving after its
     * tenant's credits are spent is admitted at the start of the next
     * epoch with credit left — a deterministic token bucket that
     * throttles noisy neighbors at the device front end.
     */
    bool weightedAdmission = false;
    /** Admission epoch length (`qos_epoch_us`). */
    Tick epochTicks = usToTicks(10.0);
    /** Total request credits issued per epoch (`qos_credits_per_epoch`),
     *  split across tenants by weight share (>= 1 credit each). */
    std::uint32_t creditsPerEpoch = 256;
    /**
     * Per-tenant write-log entry quotas (`qos_write_log_quota`): a
     * tenant may hold at most capacity * weight-share live log entries;
     * appends beyond the quota are admitted but surcharged one extra
     * admission credit (and counted per tenant), pushing log pressure
     * back onto its source.
     */
    bool writeLogQuota = false;
    /**
     * Per-tenant migration-budget shares (`qos_migration_share`): a
     * tenant's promoted regions may hold at most promotedBytesMax *
     * weight-share bytes of host DRAM; promotions beyond the share are
     * rejected (counted in MigrationStats::rejectedTenantShare).
     */
    bool migrationShare = false;
};

/** Complete system configuration. */
struct SimConfig
{
    std::string name = "Base-CSSD";
    KernelConfig kernel{};
    CpuConfig cpu{};
    HostDramConfig hostDram{};
    SsdDramConfig ssdDram{};
    CxlConfig cxl{};
    NumaConfig numa{};
    FlashConfig flash{};
    SsdCacheConfig ssdCache{};
    HostMemConfig hostMem{};
    PolicyConfig policy{};
    QosConfig qos{};
    /** All application data in host DRAM (the DRAM-Only ideal). */
    bool dramOnly = false;
    /** Precondition the SSD so GC triggers (§VI-A). */
    bool preconditionSsd = true;
    /**
     * Warm the SSD DRAM data cache with the trace's recent working set
     * before the measured run (§VI-A: "we use the traces to warm up the
     * simulator, including ... the SSD DRAM cache").
     */
    bool warmupSsdCache = true;
    std::uint64_t seed = 42;
};

/**
 * Named evaluation presets from §VI-A / §VI-H. Valid names: "Base-CSSD",
 * "SkyByte-C", "SkyByte-P", "SkyByte-W", "SkyByte-CP", "SkyByte-WP",
 * "SkyByte-Full", "DRAM-Only", "SkyByte-CT", "SkyByte-WCT",
 * "AstriFlash-CXL".
 * @throws std::invalid_argument for unknown names.
 */
SimConfig makeConfig(const std::string &variant);

/** All variant names in Figure 14 order. */
const std::vector<std::string> &allVariantNames();

} // namespace skybyte

#endif // SKYBYTE_COMMON_CONFIG_H
