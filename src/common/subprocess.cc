#include "common/subprocess.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace skybyte {

std::string
describeExit(const ChildExit &status)
{
    if (status.signaled) {
        std::string out = "signal " + std::to_string(status.signal);
        if (const char *name = ::strsignal(status.signal)) {
            out += " (";
            out += name;
            out += ")";
        }
        return out;
    }
    return "exit " + std::to_string(status.exitCode);
}

pid_t
spawnChild(const std::function<int()> &body)
{
    const pid_t pid = ::fork();
    if (pid < 0) {
        throw std::runtime_error(std::string("fork failed: ")
                                 + std::strerror(errno));
    }
    if (pid == 0) {
        int code = 127;
        try {
            code = body();
        } catch (...) {
            // The body is expected to catch its own exceptions; this
            // is the last-resort barrier so nothing unwinds into the
            // forked copy of the parent's stack.
            code = 125;
        }
        ::_exit(code);
    }
    return pid;
}

namespace {

ChildExit
decodeStatus(int status)
{
    ChildExit out;
    if (WIFSIGNALED(status)) {
        out.signaled = true;
        out.signal = WTERMSIG(status);
    } else {
        out.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : 126;
    }
    return out;
}

} // namespace

bool
pollChild(pid_t pid, ChildExit &out)
{
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == 0)
        return false;
    if (r < 0) {
        throw std::runtime_error(std::string("waitpid failed: ")
                                 + std::strerror(errno));
    }
    out = decodeStatus(status);
    return true;
}

ChildExit
waitChild(pid_t pid)
{
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid, &status, 0);
        if (r >= 0)
            break;
        if (errno != EINTR) {
            throw std::runtime_error(std::string("waitpid failed: ")
                                     + std::strerror(errno));
        }
    }
    return decodeStatus(status);
}

void
killChild(pid_t pid)
{
    ::kill(pid, SIGKILL);
}

} // namespace skybyte
