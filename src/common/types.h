/**
 * @file
 * Fundamental types and unit helpers shared by every SkyByte module.
 *
 * The global time base is the Tick: 1 tick = 1/16 ns, so one CPU cycle at
 * the paper's 4 GHz clock is exactly 4 ticks and a 4-wide issue slot is
 * 1 tick. All latencies in the simulator are integral in this base.
 */

#ifndef SKYBYTE_COMMON_TYPES_H
#define SKYBYTE_COMMON_TYPES_H

#include <array>
#include <cstdint>
#include <limits>

namespace skybyte {

/** Simulated time, in units of 1/16 ns. */
using Tick = std::uint64_t;

/** Byte address in the simulated (virtual or device) address space. */
using Addr = std::uint64_t;

/** Monotonic functional value carried by a cacheline (see DESIGN.md §3). */
using LineValue = std::uint64_t;

/** Ticks per nanosecond (16 => integral 4 GHz cycles). */
inline constexpr Tick kTicksPerNs = 16;

/** Ticks per CPU cycle at 4 GHz. */
inline constexpr Tick kTicksPerCycle = 4;

/** Sentinel for "no time" / "not scheduled". */
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/** Cacheline size used by the CXL.mem interface (64 B). */
inline constexpr std::uint32_t kCachelineBytes = 64;

/** Flash page size (4 KB). */
inline constexpr std::uint32_t kPageBytes = 4096;

/** Cachelines per flash page. */
inline constexpr std::uint32_t kLinesPerPage = kPageBytes / kCachelineBytes;

/** Functional contents of one 4 KB flash page (64 line payloads). */
using PageData = std::array<LineValue, kLinesPerPage>;

/** Convert nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs));
}

/** Convert microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return nsToTicks(us * 1000.0);
}

/** Convert ticks to (fractional) nanoseconds, for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

/** Convert ticks to microseconds, for reporting. */
constexpr double
ticksToUs(Tick t)
{
    return ticksToNs(t) / 1000.0;
}

/** Cacheline-aligned address of @p a. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kCachelineBytes - 1);
}

/** Page-aligned address of @p a. */
constexpr Addr
pageAlign(Addr a)
{
    return a & ~static_cast<Addr>(kPageBytes - 1);
}

/** Logical page number of a byte address. */
constexpr std::uint64_t
pageNumber(Addr a)
{
    return a / kPageBytes;
}

/** Index of the cacheline within its page [0, 64). */
constexpr std::uint32_t
lineInPage(Addr a)
{
    return static_cast<std::uint32_t>((a % kPageBytes) / kCachelineBytes);
}

} // namespace skybyte

#endif // SKYBYTE_COMMON_TYPES_H
