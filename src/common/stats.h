/**
 * @file
 * Statistics primitives: log-bucketed latency histograms (Figure 3 CDFs),
 * linear ratio histograms (Figures 5/6 locality CDFs), and small helpers
 * for mean/percentile reporting.
 */

#ifndef SKYBYTE_COMMON_STATS_H
#define SKYBYTE_COMMON_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace skybyte {

/**
 * Histogram of latencies with logarithmically spaced buckets
 * (8 buckets per power of two), covering ~1 ns to ~100 ms in ticks.
 */
class LatencyHistogram
{
  public:
    static constexpr int kBucketsPerOctave = 8;
    static constexpr int kOctaves = 40;
    static constexpr int kNumBuckets = kBucketsPerOctave * kOctaves;

    /** Record one sample of @p t ticks. */
    void record(Tick t);

    /** Total number of samples. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean in ticks (0 when empty). */
    double meanTicks() const;

    /**
     * Approximate p-th percentile (p in [0,1]) in ticks: the upper
     * bound of the bucket holding the ceil(p * count)-th smallest
     * sample (rank clamped >= 1 for p > 0).
     */
    Tick percentileTicks(double p) const;

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

    /**
     * Emit (latency_ns, cumulative_fraction) pairs, one per non-empty
     * bucket, suitable for plotting the Figure 3 CDFs.
     */
    std::vector<std::pair<double, double>> cdfPoints() const;

    void reset();

  private:
    static int bucketOf(Tick t);
    static Tick bucketUpperBound(int b);

    std::array<std::uint64_t, kNumBuckets> buckets_ = {};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Histogram over a ratio in [0,1] with 64 linear buckets. Used for the
 * "fraction of cachelines accessed / dirty per page" distributions that
 * back Figures 5 and 6.
 */
class RatioHistogram
{
  public:
    static constexpr int kNumBuckets = 64;

    /** Record a sample @p r, clamped into [0,1]. */
    void record(double r);

    std::uint64_t count() const { return count_; }

    double mean() const;

    /**
     * Fraction of samples in buckets wholly below @p r — approximately
     * P(x < r), exclusive of the partial bucket containing @p r, so
     * cdfAt(0) == 0 and cdfAt(1) == 1.
     */
    double cdfAt(double r) const;

    /** Emit (ratio, cumulative_fraction) pairs for plotting. */
    std::vector<std::pair<double, double>> cdfPoints() const;

    void merge(const RatioHistogram &other);

    void reset();

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_ = {};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/** Geometric mean of @p xs (returns 0 for empty input). */
double geoMean(const std::vector<double> &xs);

} // namespace skybyte

#endif // SKYBYTE_COMMON_STATS_H
