/**
 * @file
 * Small-buffer-optimized callables for the simulator's hot paths.
 *
 * std::function costs a heap allocation whenever the callable exceeds
 * the implementation's tiny inline buffer (16 bytes on libstdc++) and
 * its copyability forces every capture-by-copy of a callback chain to
 * duplicate that allocation. Every simulated memory request used to pay
 * for this several times: once in the controller's waiter record, once
 * per completion lambda scheduled on the event queue, once per flash
 * callback. The two types here eliminate that traffic:
 *
 *  - InlineFunction<Sig, Bytes>: a move-only std::function replacement
 *    with a Bytes-sized inline buffer. Moving relocates the callable
 *    (via its move constructor) instead of cloning it; oversized
 *    callables (rare: page-payload captures) fall back to one heap
 *    cell whose ownership moves by pointer swap.
 *
 *  - InPlaceCallable<Sig, Bytes>: the storage-only variant for slab
 *    records (event queue, fetch waiters): construct() placement-news
 *    the callable directly inside the record, invoke() runs it there,
 *    destroy() tears it down. No move support and no empty state, so a
 *    record costs exactly two function pointers of overhead. This is
 *    the generalization of the event kernel's original InlineCallback.
 *
 * Both are deliberately not copyable: a callback is consumed exactly
 * once in this codebase, and cloning is the cost being removed.
 */

#ifndef SKYBYTE_COMMON_INLINE_FUNCTION_H
#define SKYBYTE_COMMON_INLINE_FUNCTION_H

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace skybyte {

template <typename Sig, std::size_t Bytes = 48>
class InlineFunction; // primary; only the R(Args...) form exists

/**
 * Move-only type-erased callable with a Bytes-sized inline buffer.
 */
template <typename R, typename... Args, std::size_t Bytes>
class InlineFunction<R(Args...), Bytes>
{
  public:
    static constexpr std::size_t kInlineBytes = Bytes;

    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction>
                  && std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    ~InlineFunction() { reset(); }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        return invoke_(buf_, std::forward<Args>(args)...);
    }

    /** Destroy the current target and construct @p fn in place. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (sizeof(Fn) <= Bytes
                      && alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            invoke_ = [](void *buf, Args &&...args) -> R {
                return (*std::launder(reinterpret_cast<Fn *>(buf)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Op op, void *self, void *dst) {
                Fn *fn_p = std::launder(reinterpret_cast<Fn *>(self));
                if (op == Op::MoveTo)
                    ::new (dst) Fn(std::move(*fn_p));
                fn_p->~Fn();
            };
        } else {
            auto *heap = new Fn(std::forward<F>(fn));
            ::new (static_cast<void *>(buf_)) Fn *(heap);
            invoke_ = [](void *buf, Args &&...args) -> R {
                return (**std::launder(reinterpret_cast<Fn **>(buf)))(
                    std::forward<Args>(args)...);
            };
            manage_ = [](Op op, void *self, void *dst) {
                Fn **slot = std::launder(reinterpret_cast<Fn **>(self));
                if (op == Op::MoveTo)
                    ::new (dst) Fn *(*slot); // ownership moves by pointer
                else
                    delete *slot;
            };
        }
    }

  private:
    enum class Op { MoveTo, Destroy };
    using Invoke = R (*)(void *, Args &&...);
    using Manage = void (*)(Op, void *, void *);

    void
    reset()
    {
        if (manage_ != nullptr)
            manage_(Op::Destroy, buf_, nullptr);
        invoke_ = nullptr;
        manage_ = nullptr;
    }

    void
    moveFrom(InlineFunction &other)
    {
        if (other.manage_ != nullptr) {
            other.manage_(Op::MoveTo, other.buf_, buf_);
            invoke_ = other.invoke_;
            manage_ = other.manage_;
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Bytes];
    Invoke invoke_ = nullptr;
    Manage manage_ = nullptr;
};

template <typename Sig, std::size_t Bytes = 48>
class InPlaceCallable; // primary; only the R(Args...) form exists

/**
 * Storage-only callable for slab records: constructed in place, never
 * relocated, destroyed explicitly by the owning allocator. Invoking a
 * non-constructed instance is undefined (records always construct the
 * callback before publication).
 */
template <typename R, typename... Args, std::size_t Bytes>
class InPlaceCallable<R(Args...), Bytes>
{
  public:
    static constexpr std::size_t kInlineBytes = Bytes;

    template <typename F>
    void
    construct(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= Bytes
                      && alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            invoke_ = [](void *buf, Args &&...args) -> R {
                return (*std::launder(reinterpret_cast<Fn *>(buf)))(
                    std::forward<Args>(args)...);
            };
            destroy_ = [](void *buf) {
                std::launder(reinterpret_cast<Fn *>(buf))->~Fn();
            };
        } else {
            auto *heap = new Fn(std::forward<F>(fn));
            ::new (static_cast<void *>(buf_)) Fn *(heap);
            invoke_ = [](void *buf, Args &&...args) -> R {
                return (**std::launder(reinterpret_cast<Fn **>(buf)))(
                    std::forward<Args>(args)...);
            };
            destroy_ = [](void *buf) {
                delete *std::launder(reinterpret_cast<Fn **>(buf));
            };
        }
    }

    R
    invoke(Args... args)
    {
        return invoke_(buf_, std::forward<Args>(args)...);
    }

    void destroy() { destroy_(buf_); }

  private:
    alignas(std::max_align_t) unsigned char buf_[Bytes];
    R (*invoke_)(void *, Args &&...);
    void (*destroy_)(void *);
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_INLINE_FUNCTION_H
