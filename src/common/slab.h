/**
 * @file
 * Free-list slab allocator for fixed-type simulation records.
 *
 * The request path allocates one record per in-flight fetch plus one
 * per waiting request; their lifetimes are bounded by device latency,
 * so a small recycled pool covers the steady state and alloc/release
 * become a pointer swap — the same treatment the event kernel gave its
 * EventRecords. Chunks are never returned to the system until the
 * allocator is destroyed, keeping record addresses stable for the
 * intrusive chains threaded through them.
 */

#ifndef SKYBYTE_COMMON_SLAB_H
#define SKYBYTE_COMMON_SLAB_H

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace skybyte {

/**
 * Typed slab: alloc() placement-constructs a T, release() destroys it
 * and recycles its storage. The caller owns lifetime bookkeeping; any
 * record still live at destruction leaks its T's resources (owners
 * drain their live records first).
 */
template <typename T>
class Slab
{
  public:
    static constexpr std::size_t kChunkRecords = 256;

    explicit Slab(std::size_t chunk_records = kChunkRecords)
        : chunkRecords_(chunk_records == 0 ? 1 : chunk_records)
    {}

    Slab(const Slab &) = delete;
    Slab &operator=(const Slab &) = delete;

    template <typename... Args>
    T *
    alloc(Args &&...args)
    {
        if (free_ == nullptr)
            refill();
        Node *n = free_;
        free_ = n->next;
        return ::new (static_cast<void *>(n->storage))
            T(std::forward<Args>(args)...);
    }

    void
    release(T *ptr)
    {
        ptr->~T();
        Node *n = reinterpret_cast<Node *>(
            reinterpret_cast<unsigned char *>(ptr));
        n->next = free_;
        free_ = n;
    }

  private:
    union Node
    {
        Node *next;
        alignas(T) unsigned char storage[sizeof(T)];
    };

    void
    refill()
    {
        chunks_.push_back(std::make_unique<Node[]>(chunkRecords_));
        Node *chunk = chunks_.back().get();
        for (std::size_t i = chunkRecords_; i-- > 0;) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *free_ = nullptr;
    std::size_t chunkRecords_;
};

/**
 * Intrusive singly-linked FIFO threaded through the records' own
 * `next` pointers. The request path appends waiters at the tail and
 * replays them head-first, so completion order equals arrival order —
 * an invariant the event-queue seq tie-break depends on; keeping the
 * append in one place keeps it from drifting across record types.
 */
template <typename T>
struct IntrusiveFifo
{
    T *head = nullptr;
    T *tail = nullptr;

    bool empty() const { return head == nullptr; }

    /** Append @p node (its `next` is overwritten). */
    void
    append(T *node)
    {
        node->next = nullptr;
        if (tail != nullptr)
            tail->next = node;
        else
            head = node;
        tail = node;
    }

    /** Release every node back into @p slab (runs destructors). */
    void
    drainTo(Slab<T> &slab)
    {
        for (T *node = head; node != nullptr;) {
            T *next = node->next;
            slab.release(node);
            node = next;
        }
        head = tail = nullptr;
    }
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_SLAB_H
