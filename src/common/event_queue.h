/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole system: cores, DRAM channels, the
 * CXL link, flash channels, and background jobs (log compaction, GC, page
 * migration) all schedule closures here. Events at the same tick execute
 * in FIFO order of scheduling, which keeps runs deterministic.
 */

#ifndef SKYBYTE_COMMON_EVENT_QUEUE_H
#define SKYBYTE_COMMON_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.h"

namespace skybyte {

/** Callback executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * Time-ordered event queue with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past clamps to now().
     */
    void
    schedule(Tick when, EventFn fn)
    {
        if (when < now_)
            when = now_;
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, EventFn fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /**
     * Execute the next event, advancing time to it.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Move the entry out before popping so the callback may schedule.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
        return true;
    }

    /** Run until the queue drains or @p limit ticks elapse. */
    void
    run(Tick limit = kTickMax)
    {
        while (!heap_.empty() && heap_.top().when <= limit) {
            if (!step())
                break;
        }
        if (heap_.empty() && limit != kTickMax && now_ < limit)
            now_ = limit;
    }

    /** Drop all pending events and reset the clock (tests only). */
    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_EVENT_QUEUE_H
