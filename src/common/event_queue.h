/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue drives the whole system: cores, DRAM channels, the
 * CXL link, flash channels, and background jobs (log compaction, GC, page
 * migration) all schedule closures here. Events at the same tick execute
 * in FIFO order of scheduling, which keeps runs deterministic.
 *
 * Hot-path design (every simulated instruction crosses this code):
 *
 *  - Two-level calendar queue. Near-future events (within kWindowTicks
 *    of the bucket cursor) live in per-tick FIFO buckets; an occupancy
 *    bitmap lets the cursor skip empty ticks a word at a time. Far
 *    events overflow into a binary min-heap ordered by (when, seq) and
 *    migrate into the bucket window as the cursor advances; because the
 *    heap pops in (when, seq) order and buckets append at the tail,
 *    same-tick FIFO order is preserved across the two levels.
 *  - Slab-allocated event records. Records are recycled through a
 *    free list carved from fixed-size chunks, so the steady state does
 *    zero allocator traffic per event.
 *  - Small-buffer-optimized callbacks. The callable is constructed in
 *    place inside the event record (detail::EventCallback, sized to
 *    cover every steady-state lambda the simulator schedules,
 *    including a captured move-only MemCallback plus its response
 *    payload) instead of a heap-backed std::function, and is never
 *    copied or moved afterwards. The storage type lives in
 *    common/inline_function.h, shared with the controller's slab
 *    request records.
 *
 * Regression note (seed kernel): the seed's std::priority_queue kernel
 * copied the whole Entry — including its std::function — out of top()
 * before pop() on every step(), adding an allocation + copy per event.
 * The calendar kernel executes the callback in place, so the copy is
 * structurally impossible now. LegacyEventQueue below preserves the seed
 * implementation verbatim so bench_kernel_hotpath can measure the
 * before/after events/sec ratio.
 */

#ifndef SKYBYTE_COMMON_EVENT_QUEUE_H
#define SKYBYTE_COMMON_EVENT_QUEUE_H

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/inline_function.h"
#include "common/types.h"

namespace skybyte {

/** Callback executed when an event fires (type-erased convenience). */
using EventFn = std::function<void()>;

namespace detail {

/**
 * Event-record callback storage: an InPlaceCallable sized so that the
 * request path's largest steady-state completion lambda — a move-only
 * MemCallback (48 B) plus a MemResponse payload (32 B) — constructs
 * inline. Oversized callables (page-payload captures on the rare
 * page-granular paths) fall back to a single heap cell inside
 * InPlaceCallable.
 */
using EventCallback = InPlaceCallable<void(), 80>;

/** One pending event: intrusive FIFO link + callback storage. */
struct EventRecord
{
    Tick when;
    std::uint64_t seq; ///< schedule order, tie-break across levels
    EventRecord *next; ///< same-tick FIFO chain
    EventCallback cb;
};

/**
 * Free-list slab allocator for EventRecords. Chunks are never returned
 * to the system until reset()/destruction, so alloc/release are a
 * pointer swap in the steady state.
 */
class EventSlab
{
  public:
    static constexpr std::size_t kChunkRecords = 512;

    explicit EventSlab(std::size_t chunk_records = kChunkRecords)
        : chunkRecords_(chunk_records)
    {
        if (chunkRecords_ == 0)
            throw std::invalid_argument("slab chunk size must be > 0");
    }

    EventRecord *
    alloc()
    {
        if (free_ == nullptr)
            refill();
        EventRecord *r = free_;
        free_ = r->next;
        return r;
    }

    void
    release(EventRecord *r)
    {
        r->next = free_;
        free_ = r;
    }

    void
    reset()
    {
        chunks_.clear();
        free_ = nullptr;
    }

  private:
    void
    refill()
    {
        chunks_.push_back(std::make_unique<EventRecord[]>(chunkRecords_));
        EventRecord *chunk = chunks_.back().get();
        for (std::size_t i = chunkRecords_; i-- > 0;) {
            chunk[i].next = free_;
            free_ = &chunk[i];
        }
    }

    std::vector<std::unique_ptr<EventRecord[]>> chunks_;
    EventRecord *free_ = nullptr;
    std::size_t chunkRecords_;
};

} // namespace detail

/**
 * Time-ordered event queue with deterministic same-tick ordering.
 */
class EventQueue
{
  public:
    /** Default calendar window: buckets covering [base_, base_+W). */
    static constexpr std::size_t kWindowTicks = 8192; // 512 ns

    /**
     * @param window_ticks near-future window size (power of two >= 64);
     *                     the sweet spot depends on the event-stride
     *                     distribution, hence the SimConfig knob
     * @param slab_chunk_records EventRecords carved per slab chunk
     */
    explicit EventQueue(
        std::size_t window_ticks = kWindowTicks,
        std::size_t slab_chunk_records = detail::EventSlab::kChunkRecords)
        : head_(window_ticks, nullptr), tail_(window_ticks, nullptr),
          bitmap_(window_ticks / 64, 0), slab_(slab_chunk_records),
          window_(window_ticks), mask_(window_ticks - 1),
          words_(window_ticks / 64)
    {
        if (window_ticks < 64 || (window_ticks & mask_) != 0) {
            throw std::invalid_argument(
                "calendar window must be a power of two >= 64");
        }
    }

    ~EventQueue() { destroyPending(); }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past clamps to now().
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        if (when < now_)
            when = now_;
        detail::EventRecord *r = slab_.alloc();
        r->when = when;
        r->seq = seq_++;
        r->next = nullptr;
        r->cb.construct(std::forward<F>(fn));
        if (when < base_ + window_)
            bucketAppend(r);
        else
            overflowPush(r);
        ++size_;
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleAfter(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Execute the next event, advancing time to it.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        detail::EventRecord *r = popNextAtMost(kTickMax);
        if (r == nullptr)
            return false;
        execute(r);
        return true;
    }

    /**
     * Time of the earliest pending event (kTickMax when empty). Does
     * not mutate cursor state, so it is safe between arbitrary
     * schedule() calls.
     */
    Tick
    nextEventTime() const
    {
        if (size_ == 0)
            return kTickMax;
        const std::size_t d = bucketed_ > 0 ? scanBitmap() : window_;
        const Tick bucket_when =
            d < window_ ? base_ + d : kTickMax;
        const Tick overflow_when =
            overflow_.empty() ? kTickMax : overflow_.front()->when;
        return std::min(bucket_when, overflow_when);
    }

    /**
     * Run until the queue drains or @p limit ticks elapse. With a
     * finite limit, now() afterwards is exactly @p limit even when
     * events remain pending past it (the seed kernel only advanced the
     * clock when the queue drained, which made back-to-back bounded
     * runs start from inconsistent clocks).
     *
     * The bounded pop fuses the nextEventTime()/popNext() pair the
     * seed loop did — one calendar scan per event instead of two.
     */
    void
    run(Tick limit = kTickMax)
    {
        while (detail::EventRecord *r = popNextAtMost(limit))
            execute(r);
        if (limit != kTickMax && now_ < limit)
            now_ = limit;
    }

    /** Drop all pending events and reset the clock (tests only). */
    void
    reset()
    {
        destroyPending();
        std::fill(head_.begin(), head_.end(), nullptr);
        std::fill(tail_.begin(), tail_.end(), nullptr);
        std::fill(bitmap_.begin(), bitmap_.end(), 0);
        overflow_.clear();
        slab_.reset();
        now_ = 0;
        base_ = 0;
        seq_ = 0;
        size_ = 0;
        bucketed_ = 0;
    }

    /** Configured near-window size in ticks. */
    std::size_t windowTicks() const { return window_; }

  private:

    /** Min-heap order over far-future events: (when, seq) ascending. */
    struct OverflowLater
    {
        bool
        operator()(const detail::EventRecord *a,
                   const detail::EventRecord *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    void
    bucketAppend(detail::EventRecord *r)
    {
        const std::size_t idx = r->when & mask_;
        if (head_[idx] == nullptr) {
            head_[idx] = tail_[idx] = r;
            bitmap_[idx >> 6] |= 1ull << (idx & 63);
        } else {
            tail_[idx]->next = r;
            tail_[idx] = r;
        }
        ++bucketed_;
    }

    void
    overflowPush(detail::EventRecord *r)
    {
        overflow_.push_back(r);
        std::push_heap(overflow_.begin(), overflow_.end(),
                       OverflowLater{});
    }

    /**
     * Offset from the cursor of the first occupied bucket, scanning the
     * occupancy bitmap circularly; windowTicks() when all empty.
     */
    std::size_t
    scanBitmap() const
    {
        const std::size_t start = base_ & mask_;
        const std::size_t word = start >> 6;
        const std::size_t bit = start & 63;
        const std::uint64_t first = bitmap_[word] >> bit;
        if (first != 0)
            return static_cast<std::size_t>(std::countr_zero(first));
        std::size_t off = 64 - bit;
        for (std::size_t i = 1; i < words_; ++i) {
            const std::uint64_t w = bitmap_[(word + i) & (words_ - 1)];
            if (w != 0)
                return off
                       + static_cast<std::size_t>(std::countr_zero(w));
            off += 64;
        }
        // Wrap: low bits of the starting word sit window-bit..
        // window-1 ticks ahead of the cursor.
        const std::uint64_t low =
            bit == 0 ? 0 : (bitmap_[word] & ((1ull << bit) - 1));
        if (low != 0)
            return off + static_cast<std::size_t>(std::countr_zero(low));
        return window_;
    }

    /** Pull overflow events entering the window [base_, @p end). */
    void
    migrateUpTo(Tick end)
    {
        while (!overflow_.empty() && overflow_.front()->when < end) {
            std::pop_heap(overflow_.begin(), overflow_.end(),
                          OverflowLater{});
            detail::EventRecord *r = overflow_.back();
            overflow_.pop_back();
            r->next = nullptr;
            bucketAppend(r);
        }
    }

    detail::EventRecord *
    popBucket(std::size_t idx)
    {
        detail::EventRecord *r = head_[idx];
        head_[idx] = r->next;
        if (head_[idx] == nullptr) {
            tail_[idx] = nullptr;
            bitmap_[idx >> 6] &= ~(1ull << (idx & 63));
        }
        --bucketed_;
        return r;
    }

    /**
     * Detach the earliest pending event if its time is <= @p limit,
     * advancing the bucket cursor. The cursor (base_) only moves here,
     * immediately before the event executes and now_ catches up, so
     * schedule() never observes base_ > now_ and bucket indices stay
     * unambiguous. The bucketed-event counter skips the bitmap scan
     * entirely when every pending event sits in the overflow heap
     * (flash-latency events routinely live past the window).
     */
    detail::EventRecord *
    popNextAtMost(Tick limit)
    {
        if (size_ == 0)
            return nullptr;
        const std::size_t d = bucketed_ > 0 ? scanBitmap() : window_;
        if (d < window_) {
            // Bucketed events exist; the overflow heap only holds ticks
            // >= base_ + window_, so the earliest is in a bucket.
            if (base_ + d > limit)
                return nullptr;
            base_ += d;
        } else {
            assert(!overflow_.empty());
            if (overflow_.front()->when > limit)
                return nullptr;
            base_ = overflow_.front()->when;
        }
        // The window end advanced: migrate overflow events that now
        // fall inside it before any callback can schedule at those
        // ticks (heap pop order keeps same-tick FIFO intact).
        migrateUpTo(base_ + window_);
        return popBucket(base_ & mask_);
    }

    /** Run @p r's callback and recycle the record. */
    void
    execute(detail::EventRecord *r)
    {
        --size_;
        now_ = r->when;
        r->cb.invoke();
        // The callback ran out of the record's own storage, so the
        // record is only recycled after the call returns.
        r->cb.destroy();
        slab_.release(r);
    }

    void
    destroyPending()
    {
        for (std::size_t i = 0; i < window_; ++i) {
            for (detail::EventRecord *r = head_[i]; r != nullptr;
                 r = r->next) {
                r->cb.destroy();
            }
        }
        for (detail::EventRecord *r : overflow_)
            r->cb.destroy();
    }

    std::vector<detail::EventRecord *> head_;
    std::vector<detail::EventRecord *> tail_;
    std::vector<std::uint64_t> bitmap_;
    std::vector<detail::EventRecord *> overflow_;
    detail::EventSlab slab_;
    std::size_t window_;
    std::size_t mask_;
    std::size_t words_;
    Tick now_ = 0;
    Tick base_ = 0; ///< tick of the bucket cursor (<= now_ when idle)
    std::uint64_t seq_ = 0;
    std::size_t size_ = 0;
    std::size_t bucketed_ = 0; ///< events in buckets (rest: overflow)
};

/**
 * The seed kernel, frozen verbatim: std::priority_queue of Entry
 * records holding std::function callbacks, with the full-Entry copy out
 * of top() in step(). Kept only so bench_kernel_hotpath and the kernel
 * tests can measure and pin the old behaviour; simulator code must use
 * EventQueue.
 */
class LegacyEventQueue
{
  public:
    LegacyEventQueue() = default;

    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    Tick now() const { return now_; }
    std::size_t pending() const { return heap_.size(); }

    void
    schedule(Tick when, EventFn fn)
    {
        if (when < now_)
            when = now_;
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    void
    scheduleAfter(Tick delay, EventFn fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Seed behaviour: copies the Entry (and its std::function) out
        // before popping so the callback may schedule.
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        e.fn();
        return true;
    }

    void
    run(Tick limit = kTickMax)
    {
        while (!heap_.empty() && heap_.top().when <= limit) {
            if (!step())
                break;
        }
        if (heap_.empty() && limit != kTickMax && now_ < limit)
            now_ = limit;
    }

    void
    reset()
    {
        heap_ = {};
        now_ = 0;
        seq_ = 0;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_EVENT_QUEUE_H
