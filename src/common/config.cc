#include "common/config.h"

#include <stdexcept>

namespace skybyte {

NandTiming
nandTiming(NandType type)
{
    switch (type) {
      case NandType::ULL: // Samsung Z-NAND
        return {usToTicks(3.0), usToTicks(100.0), usToTicks(1000.0)};
      case NandType::ULL2: // Toshiba XL-Flash
        return {usToTicks(4.0), usToTicks(75.0), usToTicks(850.0)};
      case NandType::SLC:
        return {usToTicks(25.0), usToTicks(200.0), usToTicks(1500.0)};
      case NandType::MLC:
        return {usToTicks(50.0), usToTicks(600.0), usToTicks(3000.0)};
    }
    throw std::invalid_argument("unknown NandType");
}

DramBankTiming
ddr5BankTiming()
{
    // DDR5-4800 runs the command clock at 2400 MHz (0.4167 ns/cycle);
    // Table II's 36-38-38 is CL-tRCD-tRP in those cycles.
    DramBankTiming t;
    t.banksPerChannel = 32;
    t.rowBytes = 8192;
    t.tCas = nsToTicks(36 / 2.4);
    t.tRcd = nsToTicks(38 / 2.4);
    t.tRp = nsToTicks(38 / 2.4);
    return t;
}

DramBankTiming
lpddr4BankTiming()
{
    // LPDDR4-3200's command clock is 1600 MHz (0.625 ns/cycle);
    // Table II's 16-18-18 is CL-tRCD-tRP in those cycles.
    DramBankTiming t;
    t.banksPerChannel = 8;
    t.rowBytes = 4096;
    t.tCas = nsToTicks(16 / 1.6);
    t.tRcd = nsToTicks(18 / 1.6);
    t.tRp = nsToTicks(18 / 1.6);
    return t;
}

std::string
nandTypeName(NandType type)
{
    switch (type) {
      case NandType::ULL: return "ULL";
      case NandType::ULL2: return "ULL2";
      case NandType::SLC: return "SLC";
      case NandType::MLC: return "MLC";
    }
    return "?";
}

SimConfig
makeConfig(const std::string &variant)
{
    SimConfig cfg;
    cfg.name = variant;
    auto &p = cfg.policy;
    if (variant == "Base-CSSD") {
        // all SkyByte features off
    } else if (variant == "SkyByte-C") {
        p.deviceTriggeredCtxSwitch = true;
    } else if (variant == "SkyByte-P") {
        p.promotionEnable = true;
        p.migration = MigrationMechanism::SkyByte;
    } else if (variant == "SkyByte-W") {
        p.writeLogEnable = true;
    } else if (variant == "SkyByte-CP") {
        p.deviceTriggeredCtxSwitch = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::SkyByte;
    } else if (variant == "SkyByte-WP") {
        p.writeLogEnable = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::SkyByte;
    } else if (variant == "SkyByte-Full") {
        p.deviceTriggeredCtxSwitch = true;
        p.writeLogEnable = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::SkyByte;
    } else if (variant == "DRAM-Only") {
        cfg.dramOnly = true;
        cfg.preconditionSsd = false;
    } else if (variant == "SkyByte-CT") {
        p.deviceTriggeredCtxSwitch = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::Tpp;
    } else if (variant == "SkyByte-WCT") {
        p.deviceTriggeredCtxSwitch = true;
        p.writeLogEnable = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::Tpp;
    } else if (variant == "AstriFlash-CXL") {
        p.deviceTriggeredCtxSwitch = true;
        p.promotionEnable = true;
        p.migration = MigrationMechanism::AstriFlash;
    } else {
        throw std::invalid_argument("unknown variant: " + variant);
    }
    return cfg;
}

const std::vector<std::string> &
allVariantNames()
{
    static const std::vector<std::string> names = {
        "Base-CSSD",  "SkyByte-P",  "SkyByte-C",   "SkyByte-W",
        "SkyByte-CP", "SkyByte-WP", "SkyByte-Full", "DRAM-Only",
    };
    return names;
}

} // namespace skybyte
