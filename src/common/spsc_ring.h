/**
 * @file
 * Single-producer single-consumer lock-free ring buffer.
 *
 * The multi-lane kernel (common/lane_kernel.h) exchanges cross-lane
 * boundary events through one of these per lane group: the owning
 * worker thread is the only producer, and the barrier coordinator is
 * the only consumer. Under that discipline a bounded ring needs no
 * locks at all — the producer owns the tail index, the consumer owns
 * the head index, and a release store on the writer side paired with an
 * acquire load on the reader side publishes each slot's contents.
 *
 * Capacity is a power of two so slot indexing is a mask; indices are
 * monotonically increasing (wrap-free for any realistic run: 2^64
 * pushes), so full/empty are plain subtractions with no reserved slot.
 *
 * A full ring rejects the push (tryPush returns false); the lane
 * kernel spills to a producer-local overflow vector in that case rather
 * than blocking mid-window. tests/test_lane_kernel.cc stresses the ring
 * from two real threads, which doubles as the TSan proof of the
 * memory-order choices.
 */

#ifndef SKYBYTE_COMMON_SPSC_RING_H
#define SKYBYTE_COMMON_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace skybyte {

/**
 * Bounded wait-free SPSC queue. Exactly one thread may call tryPush()
 * and exactly one thread may call tryPop(); the two may run
 * concurrently.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity slot count; power of two >= 2. */
    explicit SpscRing(std::size_t capacity)
        : slots_(capacity), mask_(capacity - 1)
    {
        if (capacity < 2 || (capacity & mask_) != 0) {
            throw std::invalid_argument(
                "SpscRing capacity must be a power of two >= 2");
        }
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side. @retval false when the ring is full. */
    bool
    tryPush(T &&value)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire)
            > mask_) {
            return false;
        }
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. @retval false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) == head)
            return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer-side view; racy but conservative from the producer. */
    bool
    empty() const
    {
        return tail_.load(std::memory_order_acquire)
               == head_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> slots_;
    std::size_t mask_;
    /** Consumer cursor; padded so the two cursors never share a line. */
    alignas(64) std::atomic<std::size_t> head_{0};
    /** Producer cursor. */
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_SPSC_RING_H
