#include "common/fs.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace skybyte {

namespace {

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error(what + " " + path + ": "
                             + std::strerror(errno));
}

/** Directory part of @p path ("." when there is no separator). */
std::string
dirnameOf(const std::string &path)
{
    const auto slash = path.rfind('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

std::string
basenameOf(const std::string &path)
{
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

void
writeAll(int fd, const char *data, std::size_t size,
         const std::string &path)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("cannot write", path);
        }
        done += static_cast<std::size_t>(n);
    }
}

} // namespace

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::string
readFileText(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw std::runtime_error("cannot read file: " + path);
    return buf.str();
}

void
writeFileAtomic(const std::string &path, const std::string &text)
{
    AtomicFileWriter out(path);
    out.write(text.data(), text.size());
    out.commit();
}

AtomicFileWriter::AtomicFileWriter(const std::string &path)
    : path_(path)
{
    // The temporary must live in the target directory: rename() is
    // only atomic within one filesystem.
    std::string tmpl = dirnameOf(path) + "/." + basenameOf(path)
                       + ".tmp.XXXXXX";
    std::vector<char> tmp(tmpl.begin(), tmpl.end());
    tmp.push_back('\0');
    fd_ = ::mkstemp(tmp.data());
    if (fd_ < 0)
        throwErrno("cannot create temp file for", path);
    tmpPath_.assign(tmp.data());
}

AtomicFileWriter::~AtomicFileWriter() { abort(); }

void
AtomicFileWriter::write(const void *data, std::size_t size)
{
    if (fd_ < 0) {
        throw std::runtime_error("write after commit/abort: " + path_);
    }
    try {
        writeAll(fd_, static_cast<const char *>(data), size, tmpPath_);
    } catch (...) {
        abort();
        throw;
    }
    written_ += size;
}

void
AtomicFileWriter::commit()
{
    if (fd_ < 0)
        return;
    try {
        if (::fsync(fd_) != 0)
            throwErrno("cannot fsync", tmpPath_);
        if (::close(fd_) != 0) {
            fd_ = -1;
            throwErrno("cannot close", tmpPath_);
        }
        fd_ = -1;
        if (::rename(tmpPath_.c_str(), path_.c_str()) != 0)
            throwErrno("cannot rename into", path_);
    } catch (...) {
        abort();
        throw;
    }
    tmpPath_.clear();
}

void
AtomicFileWriter::abort() noexcept
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!tmpPath_.empty()) {
        ::unlink(tmpPath_.c_str());
        tmpPath_.clear();
    }
}

void
ensureDirs(const std::string &path)
{
    if (path.empty())
        return;
    std::string partial;
    std::size_t i = 0;
    while (i < path.size()) {
        const auto slash = path.find('/', i);
        const std::size_t end =
            slash == std::string::npos ? path.size() : slash;
        partial.assign(path, 0, end);
        i = end + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            throwErrno("cannot create directory", partial);
    }
}

void
appendLine(const std::string &path, const std::string &line)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (fd < 0)
        throwErrno("cannot open for append", path);
    std::string record = line;
    record.push_back('\n');
    try {
        writeAll(fd, record.data(), record.size(), path);
        if (::fsync(fd) != 0)
            throwErrno("cannot fsync", path);
    } catch (...) {
        ::close(fd);
        throw;
    }
    if (::close(fd) != 0)
        throwErrno("cannot close", path);
}

} // namespace skybyte
