#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace skybyte {

int
LatencyHistogram::bucketOf(Tick t)
{
    if (t == 0)
        return 0;
    const int msb = 63 - __builtin_clzll(t);
    // Sub-bucket from the bits just below the MSB.
    int sub = 0;
    if (msb >= 3)
        sub = static_cast<int>((t >> (msb - 3)) & 0x7);
    else
        sub = static_cast<int>((t << (3 - msb)) & 0x7);
    int b = msb * kBucketsPerOctave + sub;
    return std::min(b, kNumBuckets - 1);
}

Tick
LatencyHistogram::bucketUpperBound(int b)
{
    const int msb = b / kBucketsPerOctave;
    const int sub = b % kBucketsPerOctave;
    if (msb >= 62)
        return kTickMax;
    const Tick base = Tick{1} << msb;
    if (msb >= 3)
        return base + ((base >> 3) * (sub + 1));
    // Low octaves: base/8 truncates to zero, which collapsed all the
    // sub-bucket bounds of an octave onto `base` (buckets 8 and 12 both
    // reported 2). Round the fractional sub-step up instead, keeping
    // the bounds strictly increasing across the reachable low buckets.
    return base + ((base * (sub + 1) + 7) >> 3);
}

void
LatencyHistogram::record(Tick t)
{
    buckets_[bucketOf(t)]++;
    count_++;
    sum_ += static_cast<double>(t);
}

double
LatencyHistogram::meanTicks() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

Tick
LatencyHistogram::percentileTicks(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    // Ceil-rank: the p-th percentile is the smallest sample with at
    // least ceil(p * count) samples at or below it. Truncating instead
    // resolves p99 of 100 samples to rank 98, and floating-point
    // products like 0.29 * 100 = 28.999... silently drop a rank.
    std::uint64_t rank = 0;
    if (p > 0.0) {
        rank = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::ceil(p * static_cast<double>(count_))));
    }
    std::uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
        seen += buckets_[b];
        if (seen >= rank && buckets_[b] > 0)
            return bucketUpperBound(b);
    }
    return bucketUpperBound(kNumBuckets - 1);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (int b = 0; b < kNumBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

std::vector<std::pair<double, double>>
LatencyHistogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> points;
    if (count_ == 0)
        return points;
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        cum += buckets_[b];
        points.emplace_back(ticksToNs(bucketUpperBound(b)),
                            static_cast<double>(cum)
                                / static_cast<double>(count_));
    }
    return points;
}

void
LatencyHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
}

void
RatioHistogram::record(double r)
{
    r = std::clamp(r, 0.0, 1.0);
    int b = static_cast<int>(r * kNumBuckets);
    b = std::min(b, kNumBuckets - 1);
    buckets_[b]++;
    count_++;
    sum_ += r;
}

double
RatioHistogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
RatioHistogram::cdfAt(double r) const
{
    if (count_ == 0)
        return 0.0;
    r = std::clamp(r, 0.0, 1.0);
    // Sum only the buckets wholly below r. Bucket b spans
    // [b/64, (b+1)/64), so including the bucket containing r would
    // also count samples strictly greater than r (the old behavior).
    const int limit = std::min(static_cast<int>(r * kNumBuckets),
                               kNumBuckets);
    std::uint64_t cum = 0;
    for (int b = 0; b < limit; ++b)
        cum += buckets_[b];
    return static_cast<double>(cum) / static_cast<double>(count_);
}

std::vector<std::pair<double, double>>
RatioHistogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> points;
    if (count_ == 0)
        return points;
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
        if (buckets_[b] == 0)
            continue;
        cum += buckets_[b];
        points.emplace_back(static_cast<double>(b + 1) / kNumBuckets,
                            static_cast<double>(cum)
                                / static_cast<double>(count_));
    }
    return points;
}

void
RatioHistogram::merge(const RatioHistogram &other)
{
    for (int b = 0; b < kNumBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

void
RatioHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
}

double
geoMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs)
        logSum += std::log(std::max(x, 1e-300));
    return std::exp(logSum / static_cast<double>(xs.size()));
}

} // namespace skybyte
