/**
 * @file
 * Small filesystem helpers shared by the report writers and the
 * hardened sweep executor. The one property everything here exists for
 * is crash-safety: writeFileAtomic() commits a file with
 * write-temp-then-rename so a reader never observes a truncated file,
 * and appendLine() appends a journal record with a single O_APPEND
 * write so a crashed driver leaves at most one partial trailing line.
 */

#ifndef SKYBYTE_COMMON_FS_H
#define SKYBYTE_COMMON_FS_H

#include <string>

namespace skybyte {

/** True when @p path names an existing regular file. */
bool fileExists(const std::string &path);

/**
 * Read a whole file into a string.
 * @throws std::runtime_error when the file cannot be opened or read.
 */
std::string readFileText(const std::string &path);

/**
 * Write @p text to @p path atomically: the bytes go to a temporary
 * file in the same directory, are flushed to disk, and the temporary
 * is renamed over @p path. Any reader (including one racing a crash)
 * sees either the previous content or the complete new content, never
 * a truncated mix.
 * @throws std::runtime_error on any I/O failure (the temp is removed).
 */
void writeFileAtomic(const std::string &path, const std::string &text);

/**
 * mkdir -p: create @p path and any missing parents.
 * @throws std::runtime_error when a component cannot be created.
 */
void ensureDirs(const std::string &path);

/**
 * Append @p line plus '\n' to @p path (creating it) with one O_APPEND
 * write() call, so concurrent appenders and crashed writers cannot
 * interleave or tear a record — at worst the final line is truncated,
 * which journal readers must tolerate.
 * @throws std::runtime_error on any I/O failure.
 */
void appendLine(const std::string &path, const std::string &line);

} // namespace skybyte

#endif // SKYBYTE_COMMON_FS_H
