/**
 * @file
 * Small filesystem helpers shared by the report writers and the
 * hardened sweep executor. The one property everything here exists for
 * is crash-safety: writeFileAtomic() commits a file with
 * write-temp-then-rename so a reader never observes a truncated file,
 * and appendLine() appends a journal record with a single O_APPEND
 * write so a crashed driver leaves at most one partial trailing line.
 */

#ifndef SKYBYTE_COMMON_FS_H
#define SKYBYTE_COMMON_FS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace skybyte {

/** True when @p path names an existing regular file. */
bool fileExists(const std::string &path);

/**
 * Read a whole file into a string.
 * @throws std::runtime_error when the file cannot be opened or read.
 */
std::string readFileText(const std::string &path);

/**
 * Write @p text to @p path atomically: the bytes go to a temporary
 * file in the same directory, are flushed to disk, and the temporary
 * is renamed over @p path. Any reader (including one racing a crash)
 * sees either the previous content or the complete new content, never
 * a truncated mix.
 * @throws std::runtime_error on any I/O failure (the temp is removed).
 */
void writeFileAtomic(const std::string &path, const std::string &text);

/**
 * mkdir -p: create @p path and any missing parents.
 * @throws std::runtime_error when a component cannot be created.
 */
void ensureDirs(const std::string &path);

/**
 * Append @p line plus '\n' to @p path (creating it) with one O_APPEND
 * write() call, so concurrent appenders and crashed writers cannot
 * interleave or tear a record — at worst the final line is truncated,
 * which journal readers must tolerate.
 * @throws std::runtime_error on any I/O failure.
 */
void appendLine(const std::string &path, const std::string &line);

/**
 * Streaming variant of writeFileAtomic() for artifacts too large to
 * buffer whole (multi-GB trace captures): bytes stream to a temporary
 * in the target directory and commit() fsyncs and renames it over the
 * destination, so a reader — including one racing a crash — sees
 * either the previous file or the complete new one, never a prefix.
 * A writer destroyed without commit() removes its temporary.
 */
class AtomicFileWriter
{
  public:
    /** @throws std::runtime_error when the temporary cannot be made. */
    explicit AtomicFileWriter(const std::string &path);

    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Append @p size bytes. @throws std::runtime_error on failure. */
    void write(const void *data, std::size_t size);

    /** Bytes written so far (= current file offset). */
    std::uint64_t bytesWritten() const { return written_; }

    /**
     * Flush, fsync and rename the temporary over the destination.
     * No-op if already committed.
     * @throws std::runtime_error on failure (the temp is removed).
     */
    void commit();

    /** Remove the temporary without committing (idempotent). */
    void abort() noexcept;

  private:
    std::string path_;
    std::string tmpPath_;
    int fd_ = -1;
    std::uint64_t written_ = 0;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_FS_H
