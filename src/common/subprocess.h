/**
 * @file
 * Minimal child-process helper for the process-isolated sweep executor
 * (sim/run_executor.h): fork a child that runs a C++ callable, poll or
 * wait for its exit, and SIGKILL it on timeout. POSIX-only, like the
 * CI targets; each child runs one simulation point, so a crash, abort
 * or OOM kill costs that point alone instead of the whole sweep.
 */

#ifndef SKYBYTE_COMMON_SUBPROCESS_H
#define SKYBYTE_COMMON_SUBPROCESS_H

#include <functional>
#include <string>

#include <sys/types.h>

namespace skybyte {

/** How a child process ended. */
struct ChildExit
{
    /** True when the child died on a signal (exitCode is unset). */
    bool signaled = false;
    int exitCode = 0;
    int signal = 0;

    bool ok() const { return !signaled && exitCode == 0; }
};

/** "exit N" or "signal N (NAME)" — the journal's exit detail. */
std::string describeExit(const ChildExit &status);

/**
 * Fork; the child runs @p body and _exit()s with its return value
 * (bypassing atexit handlers, so a forked test harness does not rerun
 * them). The caller must reap the pid with pollChild()/waitChild().
 * @throws std::runtime_error when fork() fails.
 */
pid_t spawnChild(const std::function<int()> &body);

/**
 * Nonblocking reap: true (and fills @p out) when the child has exited,
 * false while it is still running.
 * @throws std::runtime_error when waitpid() fails (bad pid).
 */
bool pollChild(pid_t pid, ChildExit &out);

/** Blocking reap. @throws std::runtime_error when waitpid() fails. */
ChildExit waitChild(pid_t pid);

/** Send SIGKILL (the pid must still be reaped afterwards). */
void killChild(pid_t pid);

} // namespace skybyte

#endif // SKYBYTE_COMMON_SUBPROCESS_H
