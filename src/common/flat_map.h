/**
 * @file
 * Open-addressing hash map for the simulator's hot indices.
 *
 * std::unordered_map costs one heap node per element and a pointer
 * chase per probe; the request-path indices (fetch table, write-log
 * first level, PLB, access counters, functional DRAM store) are probed
 * on every simulated memory access, so those misses dominated the
 * controller profile. FlatMap stores elements directly in a
 * power-of-two slot array with linear probing and backward-shift
 * deletion (no tombstones), mirroring the packed open-addressing
 * layout the paper's hardware index uses (§III-B).
 *
 * Semantics vs std::unordered_map, sized to what the simulator needs:
 *  - pointers/references are invalidated by any actual insertion
 *    (rehash may relocate) and by erase (backward shift); lookups of
 *    existing keys — find/contains and the found branch of
 *    operator[]/tryEmplace — never invalidate. Callers that need
 *    stable records store slab pointers as values
 *  - iteration (forEach) is in slot order: deterministic for a given
 *    insertion/erase history and portable across standard libraries —
 *    but NOT insertion order; order-sensitive consumers must sort
 *    (see SsdController::maybeStartCompaction)
 *  - the hash is a fixed 64-bit mix (splitmix64 finalizer), so layout
 *    and iteration order are identical on every platform
 */

#ifndef SKYBYTE_COMMON_FLAT_MAP_H
#define SKYBYTE_COMMON_FLAT_MAP_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace skybyte {

/** splitmix64 finalizer: the fixed, platform-independent key mix. */
struct FlatHash
{
    std::uint64_t
    operator()(std::uint64_t x) const
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }
};

/**
 * Open-addressing hash map keyed by a 64-bit integer.
 *
 * T must be move-constructible. The table doubles when occupancy would
 * exceed 70%, starting at 16 slots on first insert.
 */
template <typename T, typename Hash = FlatHash>
class FlatMap
{
  public:
    using Key = std::uint64_t;

    FlatMap() = default;

    FlatMap(FlatMap &&other) noexcept { swap(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            slots_.clear();
            states_.clear();
            size_ = 0;
            mask_ = 0;
            swap(other);
        }
        return *this;
    }

    FlatMap(const FlatMap &) = delete;
    FlatMap &operator=(const FlatMap &) = delete;

    ~FlatMap() { destroyAll(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return states_.size(); }

    /** Value for @p key, or nullptr. */
    T *
    find(Key key)
    {
        const std::size_t idx = findSlot(key);
        return idx == kNotFound ? nullptr : &slots_[idx].value();
    }

    const T *
    find(Key key) const
    {
        const std::size_t idx = findSlot(key);
        return idx == kNotFound ? nullptr : &slots_[idx].value();
    }

    bool contains(Key key) const { return findSlot(key) != kNotFound; }

    /**
     * Insert value-initialized T for @p key if absent; return the
     * (possibly pre-existing) mapped value.
     */
    T &operator[](Key key) { return *tryEmplace(key).first; }

    /**
     * Insert T(args...) if @p key is absent. Finding an existing key
     * never grows the table, so pointers to other elements stay valid
     * across pure lookups/updates spelled as operator[]/tryEmplace;
     * only an actual insertion may rehash.
     * @return {pointer to mapped value, inserted?}
     */
    template <typename... Args>
    std::pair<T *, bool>
    tryEmplace(Key key, Args &&...args)
    {
        std::size_t idx = 0;
        if (!states_.empty()) {
            idx = hash_(key) & mask_;
            while (states_[idx] != kEmpty) {
                if (slots_[idx].key == key)
                    return {&slots_[idx].value(), false};
                idx = (idx + 1) & mask_;
            }
        }
        if (needGrow()) {
            grow();
            idx = hash_(key) & mask_;
            while (states_[idx] != kEmpty)
                idx = (idx + 1) & mask_;
        }
        slots_[idx].key = key;
        ::new (slots_[idx].raw) T(std::forward<Args>(args)...);
        states_[idx] = kOccupied;
        ++size_;
        return {&slots_[idx].value(), true};
    }

    /** Insert or overwrite. @return pointer to the mapped value. */
    template <typename V>
    T *
    insertOrAssign(Key key, V &&value)
    {
        auto [p, inserted] = tryEmplace(key, std::forward<V>(value));
        if (!inserted)
            *p = std::forward<V>(value);
        return p;
    }

    /** Remove @p key. @retval true if it was present. */
    bool
    erase(Key key)
    {
        std::size_t idx = findSlot(key);
        if (idx == kNotFound)
            return false;
        slots_[idx].value().~T();
        states_[idx] = kEmpty;
        --size_;
        // Backward-shift: walk the probe chain after idx, moving back
        // any element whose ideal slot does not lie strictly between
        // the freed hole and itself, so later probes never hit a
        // premature empty slot.
        std::size_t hole = idx;
        std::size_t i = (idx + 1) & mask_;
        while (states_[i] == kOccupied) {
            const std::size_t ideal = hash_(slots_[i].key) & mask_;
            // Can slot i reach `hole` by its own probe sequence?
            // Equivalent: ideal is NOT in the circular interval
            // (hole, i].
            const bool movable =
                hole <= i ? (ideal <= hole || ideal > i)
                          : (ideal <= hole && ideal > i);
            if (movable) {
                slots_[hole].key = slots_[i].key;
                ::new (slots_[hole].raw) T(std::move(slots_[i].value()));
                slots_[i].value().~T();
                states_[hole] = kOccupied;
                states_[i] = kEmpty;
                hole = i;
            }
            i = (i + 1) & mask_;
        }
        return true;
    }

    void
    clear()
    {
        destroyAll();
        std::fill(states_.begin(), states_.end(), kEmpty);
        size_ = 0;
    }

    /** Visit every (key, value) in slot order (see file comment). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < states_.size(); ++i) {
            if (states_[i] == kOccupied)
                fn(slots_[i].key, slots_[i].value());
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < states_.size(); ++i) {
            if (states_[i] == kOccupied)
                fn(slots_[i].key, const_cast<const T &>(slots_[i].value()));
        }
    }

    void
    swap(FlatMap &other) noexcept
    {
        slots_.swap(other.slots_);
        states_.swap(other.states_);
        std::swap(size_, other.size_);
        std::swap(mask_, other.mask_);
    }

  private:
    static constexpr std::size_t kNotFound = ~static_cast<std::size_t>(0);
    static constexpr unsigned char kEmpty = 0;
    static constexpr unsigned char kOccupied = 1;

    /** Key + uninitialized value storage; T lives in raw when occupied. */
    struct Slot
    {
        Key key;
        alignas(T) unsigned char raw[sizeof(T)];

        T &value() { return *std::launder(reinterpret_cast<T *>(raw)); }
        const T &
        value() const
        {
            return *std::launder(reinterpret_cast<const T *>(raw));
        }
    };

    std::size_t
    findSlot(Key key) const
    {
        if (states_.empty())
            return kNotFound;
        std::size_t idx = hash_(key) & mask_;
        while (states_[idx] != kEmpty) {
            if (slots_[idx].key == key)
                return idx;
            idx = (idx + 1) & mask_;
        }
        return kNotFound;
    }

    bool
    needGrow() const
    {
        // Grow past 70% occupancy (linear probing degrades above).
        return states_.empty()
               || (size_ + 1) * 10 > states_.size() * 7;
    }

    void
    grow()
    {
        const std::size_t new_cap =
            states_.empty() ? 16 : states_.size() * 2;
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<unsigned char> old_states = std::move(states_);
        slots_ = std::vector<Slot>(new_cap);
        states_.assign(new_cap, kEmpty);
        mask_ = new_cap - 1;
        for (std::size_t i = 0; i < old_states.size(); ++i) {
            if (old_states[i] != kOccupied)
                continue;
            std::size_t idx = hash_(old_slots[i].key) & mask_;
            while (states_[idx] != kEmpty)
                idx = (idx + 1) & mask_;
            slots_[idx].key = old_slots[i].key;
            ::new (slots_[idx].raw) T(std::move(old_slots[i].value()));
            states_[idx] = kOccupied;
            old_slots[i].value().~T();
        }
    }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<T>) {
            for (std::size_t i = 0; i < states_.size(); ++i) {
                if (states_[i] == kOccupied)
                    slots_[i].value().~T();
            }
        }
    }

    std::vector<Slot> slots_;
    std::vector<unsigned char> states_;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
    [[no_unique_address]] Hash hash_;
};

} // namespace skybyte

#endif // SKYBYTE_COMMON_FLAT_MAP_H
