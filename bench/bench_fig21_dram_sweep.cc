/**
 * @file
 * Figure 21: performance of SkyByte variants with varying SSD DRAM
 * cache size (paper 0.125-2 GB; 1/64 scale here), keeping the host:SSD
 * promoted-page ratio at 4:1 and the log:cache split at 1:7. Paper:
 * SkyByte-Full wins at every size — a small DRAM with the cacheline
 * write log matches a much larger page-granular cache. Point grid:
 * registry sweep "fig21" (combined variant@size axis).
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::uint64_t> kDramMb = {2, 4, 8, 16, 32};
const std::vector<std::string> kVariants = {
    "Base-CSSD", "SkyByte-P", "SkyByte-W", "SkyByte-WP", "SkyByte-Full"};
}

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig21");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 21: execution time vs SSD DRAM size "
                    "(normalized to SkyByte-Full @ 8MB default)");
        for (const auto &w : sweepAxisLabels("fig21", 0)) {
            const double base = static_cast<double>(
                resultAt(w, "SkyByte-Full@8MB").execTime);
            std::printf("\n%s (SSD DRAM MB: rows = variant)\n",
                        w.c_str());
            std::printf("  %-14s", "variant");
            for (std::uint64_t mb : kDramMb)
                std::printf("%10lu", static_cast<unsigned long>(mb));
            std::printf("\n");
            for (const auto &v : kVariants) {
                std::printf("  %-14s", v.c_str());
                for (std::uint64_t mb : kDramMb) {
                    const std::string col =
                        v + "@" + std::to_string(mb) + "MB";
                    std::printf("%10.2f",
                                base > 0
                                    ? static_cast<double>(
                                          resultAt(w, col).execTime)
                                          / base
                                    : 0.0);
                }
                std::printf("\n");
            }
        }
    });
}
