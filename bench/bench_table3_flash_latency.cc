/**
 * @file
 * Table III: average flash read latency observed by SkyByte-WP demand
 * fetches. Paper values range from 3.3 us (ycsb, near-idle channels) to
 * 25.7 us (bfs-dense, queueing + compaction interference). Point grid:
 * registry sweep "table3".
 */

#include "support.h"

#include <map>

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("table3");
    return runBenchMain(argc, argv, [] {
        printHeader("Table III: average flash read latency of "
                    "SkyByte-WP (us)");
        std::printf("%-12s %12s %12s\n", "workload", "measured(us)",
                    "paper(us)");
        const std::map<std::string, double> paper = {
            {"bc", 3.5},    {"bfs-dense", 25.7}, {"dlrm", 3.4},
            {"radix", 4.9}, {"srad", 22.5},      {"tpcc", 19.6},
            {"ycsb", 3.3}};
        for (const auto &w : sweepAxisLabels("table3", 0)) {
            std::printf("%-12s %12.1f %12.1f\n", w.c_str(),
                        resultAt(w, "SkyByte-WP").flashReadLatencyUs,
                        paper.at(w));
        }
    });
}
