/**
 * @file
 * Ablation: the write log's two-level hash index (§III-B, Figure 12) vs
 * a flat single-level hash keyed by line address. Measures append and
 * lookup throughput, the per-page enumeration cost compaction depends
 * on, and the index memory footprint (the paper's motivation for the
 * resizable second-level tables: 32 MB worst case instead of 272 MB).
 */

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/rng.h"
#include "core/write_log.h"

namespace skybyte {
namespace {

constexpr std::uint64_t kLogBytes = 4ULL * 1024 * 1024;
constexpr std::uint64_t kPages = 4096;

void
BM_TwoLevelAppend(benchmark::State &state)
{
    const auto lines_per_page = static_cast<std::uint64_t>(state.range(0));
    Rng rng(7);
    for (auto _ : state) {
        WriteLogBuffer buf(kLogBytes, 4, 0.75);
        for (std::uint64_t i = 0; i < kLogBytes / kCachelineBytes; ++i) {
            const std::uint64_t page = rng.below(kPages);
            const std::uint64_t off = rng.below(lines_per_page);
            buf.append(page * kPageBytes + off * kCachelineBytes, i);
        }
        state.counters["index_bytes"] =
            static_cast<double>(buf.indexBytes());
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(kLogBytes
                                                        / kCachelineBytes));
}
BENCHMARK(BM_TwoLevelAppend)->Arg(1)->Arg(8)->Arg(64);

void
BM_FlatMapAppend(benchmark::State &state)
{
    const auto lines_per_page = static_cast<std::uint64_t>(state.range(0));
    Rng rng(7);
    for (auto _ : state) {
        std::unordered_map<Addr, std::uint32_t> index;
        for (std::uint64_t i = 0; i < kLogBytes / kCachelineBytes; ++i) {
            const std::uint64_t page = rng.below(kPages);
            const std::uint64_t off = rng.below(lines_per_page);
            index[page * kPageBytes + off * kCachelineBytes] =
                static_cast<std::uint32_t>(i);
        }
        // ~48 B per unordered_map node on this ABI vs 16 B + 4 B/slot.
        state.counters["index_bytes"] =
            static_cast<double>(index.size() * 48);
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(kLogBytes
                                                        / kCachelineBytes));
}
BENCHMARK(BM_FlatMapAppend)->Arg(1)->Arg(8)->Arg(64);

void
BM_TwoLevelLookup(benchmark::State &state)
{
    WriteLogBuffer buf(kLogBytes, 4, 0.75);
    Rng rng(7);
    for (std::uint64_t i = 0; i < kLogBytes / kCachelineBytes; ++i) {
        buf.append(rng.below(kPages) * kPageBytes
                       + rng.below(kLinesPerPage) * kCachelineBytes,
                   i);
    }
    for (auto _ : state) {
        const Addr addr = rng.below(kPages) * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        benchmark::DoNotOptimize(buf.lookup(addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelLookup);

/**
 * Compaction enumeration: visit all logged lines page by page. With the
 * two-level index this is one first-level scan + dense per-page tables;
 * a flat index would need a full-log scan or a sort per compaction.
 */
void
BM_TwoLevelPageEnumeration(benchmark::State &state)
{
    WriteLogBuffer buf(kLogBytes, 4, 0.75);
    Rng rng(7);
    for (std::uint64_t i = 0; i < kLogBytes / kCachelineBytes; ++i) {
        buf.append(rng.below(kPages) * kPageBytes
                       + rng.below(kLinesPerPage) * kCachelineBytes,
                   i);
    }
    for (auto _ : state) {
        std::uint64_t lines = 0;
        buf.forEachPage([&](std::uint64_t, const LogPageTable &table) {
            table.forEach([&](std::uint32_t, std::uint32_t) { lines++; });
        });
        benchmark::DoNotOptimize(lines);
    }
}
BENCHMARK(BM_TwoLevelPageEnumeration);

} // namespace
} // namespace skybyte

BENCHMARK_MAIN();
