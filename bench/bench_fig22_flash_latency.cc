/**
 * @file
 * Figure 22 (+ Table IV): SkyByte performance across NAND flash
 * families — ULL (Z-NAND), ULL2 (XL-Flash), SLC, MLC — with
 * SkyByte-Full at 16/24/32 threads. Paper: write log + context
 * switching matter more as flash gets slower, letting cheap commodity
 * flash approach Z-NAND performance for parallelizable applications.
 * Point grid: registry sweep "fig22" (columns are config/nand).
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<NandType> kNand = {NandType::ULL, NandType::ULL2,
                                     NandType::SLC, NandType::MLC};
}

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig22");
    return runBenchMain(argc, argv, [] {
        printHeader("Table IV: NAND flash parameters");
        std::printf("%-6s %10s %12s %10s\n", "type", "read(us)",
                    "program(us)", "erase(us)");
        for (NandType nand : kNand) {
            const NandTiming t = nandTiming(nand);
            std::printf("%-6s %10.0f %12.0f %10.0f\n",
                        nandTypeName(nand).c_str(),
                        ticksToUs(t.readLatency),
                        ticksToUs(t.programLatency),
                        ticksToUs(t.eraseLatency));
        }
        printHeader("Figure 22: execution time by NAND type "
                    "(normalized to ULL / Full-24 per workload)");
        for (const auto &w : sweepAxisLabels("fig22", 0)) {
            const double base = static_cast<double>(
                resultAt(w, "Full-24/ULL").execTime);
            std::printf("\n%s\n  %-12s", w.c_str(), "config");
            for (NandType nand : kNand)
                std::printf("%10s", nandTypeName(nand).c_str());
            std::printf("\n");
            for (const auto &c : sweepAxisLabels("fig22", 1)) {
                std::printf("  %-12s", c.c_str());
                for (NandType nand : kNand) {
                    const std::string col = c + "/" + nandTypeName(nand);
                    std::printf("%10.2f",
                                base > 0
                                    ? static_cast<double>(
                                          resultAt(w, col).execTime)
                                          / base
                                    : 0.0);
                }
                std::printf("\n");
            }
        }
    });
}
