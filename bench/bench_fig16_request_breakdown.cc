/**
 * @file
 * Figure 16: breakdown of all memory requests served by the memory
 * system under SkyByte-Full: H-R/W (host DRAM read/write), S-R-H
 * (CXL-SSD DRAM read hit), S-R-M (CXL-SSD DRAM read miss), S-W
 * (CXL-SSD write; all writes append to the log, so hits/misses are not
 * distinguished — paper footnote 1). Point grid: registry sweep
 * "fig16".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig16");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 16: memory request breakdown (%) under "
                    "SkyByte-Full");
        std::printf("%-12s %9s %9s %9s %9s\n", "workload", "H-R/W",
                    "S-R-H", "S-R-M", "S-W");
        for (const auto &w : sweepAxisLabels("fig16", 0)) {
            const SimResult &r = resultAt(w, "SkyByte-Full");
            const double total = static_cast<double>(
                r.hostReads + r.hostWrites + r.ssdReadHits
                + r.ssdReadMisses + r.ssdWrites);
            if (total == 0)
                continue;
            std::printf("%-12s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
                        w.c_str(),
                        100.0 * static_cast<double>(r.hostReads
                                                    + r.hostWrites)
                            / total,
                        100.0 * static_cast<double>(r.ssdReadHits)
                            / total,
                        100.0 * static_cast<double>(r.ssdReadMisses)
                            / total,
                        100.0 * static_cast<double>(r.ssdWrites)
                            / total);
        }
    });
}
