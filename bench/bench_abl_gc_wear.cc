/**
 * @file
 * Ablation: garbage-collection aggressiveness and wear-aware block
 * allocation. Table II fixes the GC threshold at 80% utilization (20%
 * free blocks); this bench sweeps the free-block threshold and toggles
 * dynamic wear leveling, reporting execution time, GC runs, write
 * amplification, and the block P/E spread. An earlier GC start smooths
 * the tail (fewer requests arrive during a collection) but burns more
 * background bandwidth; wear-aware allocation should bound the P/E
 * spread at no performance cost.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"srad", "bfs-dense"};
const std::vector<double> kThresholds = {0.10, 0.20, 0.40};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    std::vector<std::string> cols;
    for (const double threshold : kThresholds) {
        for (const bool wear : {false, true}) {
            char label[48];
            std::snprintf(label, sizeof(label), "gc=%.0f%%%s",
                          threshold * 100.0, wear ? "/wear" : "");
            cols.emplace_back(label);
            for (const auto &w : kWorkloads) {
                registerSim(w, label,
                            [w, threshold, wear, opt] {
                    // Base-CSSD: page-granular writebacks keep the
                    // flash programming (SkyByte's write log would
                    // coalesce most GC pressure away — that is Fig 18).
                    SimConfig cfg = makeBenchConfig("Base-CSSD");
                    cfg.flash.gcFreeBlockThreshold = threshold;
                    cfg.flash.gcRestoreThreshold = threshold + 0.05;
                    cfg.flash.wearAwareAllocation = wear;
                    return runConfig(cfg, w, opt);
                });
            }
        }
    }
    return runBenchMain(argc, argv, [cols = cols] {
        printHeader("Ablation: GC threshold x wear-aware allocation "
                    "(normalized exec time, gc=20% = 1.0 — Table II "
                    "default)");
        printNormalized(kWorkloads, cols, "gc=20%",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("GC runs");
        printMatrix("workload", kWorkloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.gcRuns);
                    },
                    "%12.0f");
        printHeader("Write amplification factor");
        printMatrix("workload", kWorkloads, cols,
                    [](const SimResult &r) {
                        return r.writeAmplification;
                    });
        printHeader("Block P/E spread (max - min erase count)");
        printMatrix("workload", kWorkloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.wearSpread);
                    },
                    "%12.0f");
    });
}
