/**
 * @file
 * Ablation: garbage-collection aggressiveness and wear-aware block
 * allocation. Table II fixes the GC threshold at 80% utilization (20%
 * free blocks); this bench sweeps the free-block threshold and toggles
 * dynamic wear leveling, reporting execution time, GC runs, write
 * amplification, and the block P/E spread. An earlier GC start smooths
 * the tail (fewer requests arrive during a collection) but burns more
 * background bandwidth; wear-aware allocation should bound the P/E
 * spread at no performance cost. Point grid: registry sweep
 * "abl_gc_wear".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_gc_wear");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("abl_gc_wear", 0);
        const std::vector<std::string> cols =
            sweepAxisLabels("abl_gc_wear", 1);
        printHeader("Ablation: GC threshold x wear-aware allocation "
                    "(normalized exec time, gc=20% = 1.0 — Table II "
                    "default)");
        printNormalized(workloads, cols, "gc=20%",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("GC runs");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.gcRuns);
                    },
                    "%12.0f");
        printHeader("Write amplification factor");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return r.writeAmplification;
                    });
        printHeader("Block P/E spread (max - min erase count)");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.wearSpread);
                    },
                    "%12.0f");
    });
}
