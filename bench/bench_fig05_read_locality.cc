/**
 * @file
 * Figure 5: CDF of the fraction of cachelines accessed per page read
 * from flash into the SSD DRAM cache, as the footprint:cache ratio (1:n)
 * varies. Paper's takeaway: most workloads access <40% of the lines in
 * >75% of pages, so page-granular caching wastes SSD DRAM. Point grid:
 * registry sweep "fig05".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig05");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 5: fraction of cachelines ACCESSED per "
                    "cached page (CDF at thresholds; mean)");
        std::printf("%-8s %-6s %8s %8s %8s %8s %8s\n", "workload",
                    "ratio", "<=12.5%", "<=25%", "<=50%", "<=75%",
                    "mean%");
        for (const auto &w : sweepAxisLabels("fig05", 0)) {
            for (const auto &col : sweepAxisLabels("fig05", 1)) {
                const RatioHistogram &h = resultAt(w, col).readLocality;
                std::printf("%-8s %-6s %8.3f %8.3f %8.3f %8.3f %8.1f\n",
                            w.c_str(), col.c_str(), h.cdfAt(0.125),
                            h.cdfAt(0.25), h.cdfAt(0.5), h.cdfAt(0.75),
                            100.0 * h.mean());
            }
        }
    });
}
