/**
 * @file
 * Figure 5: CDF of the fraction of cachelines accessed per page read
 * from flash into the SSD DRAM cache, as the footprint:cache ratio (1:n)
 * varies. Paper's takeaway: most workloads access <40% of the lines in
 * >75% of pages, so page-granular caching wastes SSD DRAM.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "dlrm", "radix",
                                             "ycsb"};
const std::vector<std::uint64_t> kRatios = {4, 8, 16, 32, 64};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(80'000);
    for (const auto &w : kWorkloads) {
        for (std::uint64_t n : kRatios) {
            const std::string col = "1:" + std::to_string(n);
            registerSim(w, col, [w, n, opt] {
                SimConfig cfg = makeBenchConfig("Base-CSSD");
                // Fix the footprint, scale the cache to footprint/n.
                ExperimentOptions o = opt;
                o.footprintBytes = 128ULL * 1024 * 1024;
                cfg.ssdCache.dataCacheBytes = o.footprintBytes / n;
                cfg.ssdCache.writeLogBytes = 0;
                return runConfig(cfg, w, o);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 5: fraction of cachelines ACCESSED per "
                    "cached page (CDF at thresholds; mean)");
        std::printf("%-8s %-6s %8s %8s %8s %8s %8s\n", "workload",
                    "ratio", "<=12.5%", "<=25%", "<=50%", "<=75%",
                    "mean%");
        for (const auto &w : kWorkloads) {
            for (std::uint64_t n : kRatios) {
                const std::string col = "1:" + std::to_string(n);
                const RatioHistogram &h = resultAt(w, col).readLocality;
                std::printf("%-8s %-6s %8.3f %8.3f %8.3f %8.3f %8.1f\n",
                            w.c_str(), col.c_str(), h.cdfAt(0.125),
                            h.cdfAt(0.25), h.cdfAt(0.5), h.cdfAt(0.75),
                            100.0 * h.mean());
            }
        }
    });
}
