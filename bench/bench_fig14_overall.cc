/**
 * @file
 * Figure 14: the headline ablation — normalized execution time of all
 * SkyByte variants over Base-CSSD. Paper: SkyByte-Full is 6.11x better
 * on average (up to 16.35x) and reaches 75% of DRAM-Only; expected
 * ordering Base < {P,C,W} < {CP,WP} < Full <= DRAM-Only. Point grid:
 * registry sweep "fig14".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig14");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("fig14", 0);
        printHeader("Figure 14: normalized execution time over "
                    "Base-CSSD (lower is better)");
        printNormalized(workloads, sweepAxisLabels("fig14", 1),
                        "Base-CSSD", [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        std::printf("\nSpeedup of SkyByte-Full over Base-CSSD "
                    "(higher is better):\n");
        std::vector<double> speedups;
        for (const auto &w : workloads) {
            const double s =
                static_cast<double>(resultAt(w, "Base-CSSD").execTime)
                / static_cast<double>(
                    resultAt(w, "SkyByte-Full").execTime);
            speedups.push_back(s);
            std::printf("  %-12s %6.2fx\n", w.c_str(), s);
        }
        std::printf("  %-12s %6.2fx   (paper: 6.11x at full scale)\n",
                    "geo.mean", geoMean(speedups));
        std::vector<double> vs_ideal;
        for (const auto &w : workloads) {
            vs_ideal.push_back(
                static_cast<double>(resultAt(w, "DRAM-Only").execTime)
                / static_cast<double>(
                    resultAt(w, "SkyByte-Full").execTime));
        }
        std::printf("\nSkyByte-Full reaches %.0f%% of DRAM-Only "
                    "performance (paper: 75%%)\n",
                    100.0 * geoMean(vs_ideal));
    });
}
