/**
 * @file
 * Ablation: demotion victim selection when the host promotion budget is
 * full — the exact-LRU scan vs the Linux-style active/inactive lists
 * §III-C actually cites. The two should agree on end-to-end performance
 * (both find cold pages); the lists do it without scanning every
 * promoted page, which is what makes them the deployable choice. The
 * registered sweep ("abl_reclaim") runs with a deliberately tight host
 * budget so demotions actually happen.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_reclaim");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("abl_reclaim", 0);
        const std::vector<std::string> cols =
            sweepAxisLabels("abl_reclaim", 1);
        printHeader("Ablation: reclaim policy under a tight host budget"
                    " (normalized exec time, lru-scan = 1.0)");
        printNormalized(workloads, cols, "lru-scan",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Demotions under each policy");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.demotions);
                    },
                    "%12.0f");
    });
}
