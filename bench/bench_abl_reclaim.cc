/**
 * @file
 * Ablation: demotion victim selection when the host promotion budget is
 * full — the exact-LRU scan vs the Linux-style active/inactive lists
 * §III-C actually cites. The two should agree on end-to-end performance
 * (both find cold pages); the lists do it without scanning every
 * promoted page, which is what makes them the deployable choice. Run
 * with a deliberately tight host budget so demotions actually happen.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "tpcc", "ycsb",
                                             "dlrm"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : kWorkloads) {
        for (const ReclaimPolicy policy :
             {ReclaimPolicy::LruScan, ReclaimPolicy::ActiveInactive}) {
            const std::string col =
                policy == ReclaimPolicy::LruScan ? "lru-scan"
                                                 : "active-inactive";
            registerSim(w, col, [w, policy, opt] {
                SimConfig cfg = makeBenchConfig("SkyByte-Full");
                // 1/32 of the default budget plus an eager promotion
                // threshold: the hot set must overflow the host so the
                // reclaim path actually runs.
                cfg.hostMem.promotedBytesMax /= 32;
                cfg.policy.hotPageThreshold = 8;
                cfg.hostMem.reclaim = policy;
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Ablation: reclaim policy under a tight host budget"
                    " (normalized exec time, lru-scan = 1.0)");
        printNormalized(kWorkloads, {"lru-scan", "active-inactive"},
                        "lru-scan", [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Demotions under each policy");
        printMatrix("workload", kWorkloads,
                    {"lru-scan", "active-inactive"},
                    [](const SimResult &r) {
                        return static_cast<double>(r.demotions);
                    },
                    "%12.0f");
    });
}
