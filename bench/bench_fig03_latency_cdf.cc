/**
 * @file
 * Figure 3: off-chip memory access latency distribution (CDF) for DRAM
 * vs CXL-SSD on bc, bfs-dense, srad, tpcc. The paper's shape: >90% of
 * CXL-SSD requests within ~200 ns (SSD DRAM cache hits) with a tail at
 * hundreds of microseconds from flash reads and GC.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "bfs-dense", "srad",
                                             "tpcc"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : kWorkloads) {
        for (const std::string v : {"DRAM-Only", "Base-CSSD"}) {
            registerSim(w, v,
                        [w, v, opt] { return runVariant(v, w, opt); });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 3: off-chip access latency CDFs "
                    "(latency_ns cumulative_fraction)");
        for (const auto &w : kWorkloads) {
            for (const std::string v : {"DRAM-Only", "Base-CSSD"}) {
                const SimResult &r = resultAt(w, v);
                std::printf("\n[%s / %s] p50=%.0fns p90=%.0fns "
                            "p99=%.0fns p99.9=%.0fns\n",
                            w.c_str(), v.c_str(),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.5)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.9)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.99)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.999)));
                int printed = 0;
                for (const auto &[ns, frac] :
                     r.offchipLatency.cdfPoints()) {
                    std::printf("  %10.0f %7.4f", ns, frac);
                    if (++printed % 4 == 0)
                        std::printf("\n");
                }
                std::printf("\n");
            }
        }
    });
}
