/**
 * @file
 * Figure 3: off-chip memory access latency distribution (CDF) for DRAM
 * vs CXL-SSD on bc, bfs-dense, srad, tpcc. The paper's shape: >90% of
 * CXL-SSD requests within ~200 ns (SSD DRAM cache hits) with a tail at
 * hundreds of microseconds from flash reads and GC. Point grid:
 * registry sweep "fig03".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig03");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 3: off-chip access latency CDFs "
                    "(latency_ns cumulative_fraction)");
        for (const auto &w : sweepAxisLabels("fig03", 0)) {
            for (const auto &v : sweepAxisLabels("fig03", 1)) {
                const SimResult &r = resultAt(w, v);
                std::printf("\n[%s / %s] p50=%.0fns p90=%.0fns "
                            "p99=%.0fns p99.9=%.0fns\n",
                            w.c_str(), v.c_str(),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.5)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.9)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.99)),
                            ticksToNs(r.offchipLatency.percentileTicks(
                                0.999)));
                int printed = 0;
                for (const auto &[ns, frac] :
                     r.offchipLatency.cdfPoints()) {
                    std::printf("  %10.0f %7.4f", ns, frac);
                    if (++printed % 4 == 0)
                        std::printf("\n");
                }
                std::printf("\n");
            }
        }
    });
}
