/**
 * @file
 * Figure 2: end-to-end execution time of each workload on host DRAM vs a
 * naive CXL-SSD (Base-CSSD). The paper reports 1.5-31.4x slowdowns; the
 * reproduced series should show the same per-workload ordering (graph
 * workloads worst, tpcc mildest).
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(120'000);
    for (const auto &w : paperWorkloadNames()) {
        for (const std::string v : {"DRAM-Only", "Base-CSSD"}) {
            registerSim(w, v,
                        [w, v, opt] { return runVariant(v, w, opt); });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 2: Normalized execution time, DRAM vs "
                    "Base-CSSD (DRAM = 1.0)");
        printNormalized(paperWorkloadNames(),
                        {"DRAM-Only", "Base-CSSD"}, "DRAM-Only",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
