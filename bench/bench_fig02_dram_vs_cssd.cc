/**
 * @file
 * Figure 2: end-to-end execution time of each workload on host DRAM vs a
 * naive CXL-SSD (Base-CSSD). The paper reports 1.5-31.4x slowdowns; the
 * reproduced series should show the same per-workload ordering (graph
 * workloads worst, tpcc mildest). Point grid: registry sweep "fig02".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig02");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 2: Normalized execution time, DRAM vs "
                    "Base-CSSD (DRAM = 1.0)");
        printNormalized(sweepAxisLabels("fig02", 0),
                        sweepAxisLabels("fig02", 1), "DRAM-Only",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
