/**
 * @file
 * Figure 17: average memory access time (AMAT) and its breakdown into
 * host DRAM / CXL protocol / SSD indexing / SSD DRAM / flash components
 * across the design variants. Paper: SkyByte reduces AMAT 14.19x vs
 * Base-CSSD on average; SkyByte-Full lands within 1.39x of DRAM-Only.
 * Point grid: registry sweep "fig17".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig17");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("fig17", 0);
        const std::vector<std::string> variants =
            sweepAxisLabels("fig17", 1);
        printHeader("Figure 17a: AMAT normalized to Base-CSSD");
        printNormalized(workloads, variants, "Base-CSSD",
                        [](const SimResult &r) {
                            return r.amatTotalTicks > 0 ? r.amatTotalTicks
                                                        : 1.0;
                        });
        printHeader("Figure 17b: AMAT component breakdown (ns per "
                    "off-chip read): host/protocol/indexing/ssdDram/"
                    "flash");
        for (const auto &w : workloads) {
            std::printf("\n%s\n", w.c_str());
            for (const auto &v : variants) {
                const SimResult &r = resultAt(w, v);
                std::printf("  %-14s host=%8.1f proto=%7.1f idx=%6.1f "
                            "dram=%8.1f flash=%10.1f total=%10.1f\n",
                            v.c_str(),
                            ticksToNs(static_cast<Tick>(
                                r.amatHostTicks)),
                            ticksToNs(static_cast<Tick>(
                                r.amatProtocolTicks)),
                            ticksToNs(static_cast<Tick>(
                                r.amatIndexingTicks)),
                            ticksToNs(static_cast<Tick>(
                                r.amatSsdDramTicks)),
                            ticksToNs(static_cast<Tick>(
                                r.amatFlashTicks)),
                            ticksToNs(static_cast<Tick>(
                                r.amatTotalTicks)));
            }
        }
    });
}
