/**
 * @file
 * Figure 20: flash write traffic vs write log size. A larger log widens
 * the coalescing window, so page programs per compaction drop; the
 * effect saturates once the log covers the workload's write working
 * set. Point grid: registry sweep "fig20".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig20");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("fig20", 0);
        const std::vector<std::string> sizes =
            sweepAxisLabels("fig20", 1);
        printHeader("Figure 20: flash write traffic vs write log size "
                    "(pages programmed, normalized to the 16 KB log)");
        printNormalized(workloads, sizes, "16",
                        [](const SimResult &r) {
                            return static_cast<double>(
                                       r.flashHostPrograms)
                                   + 1.0;
                        });
        std::printf("\nCompactions and log appends per run:\n");
        for (const auto &w : workloads) {
            std::printf("  %-12s", w.c_str());
            for (const auto &kb : sizes) {
                const SimResult &r = resultAt(w, kb);
                std::printf(" %5lux/%-8lu",
                            static_cast<unsigned long>(r.compactions),
                            static_cast<unsigned long>(r.logAppends));
            }
            std::printf("\n");
        }
    });
}
