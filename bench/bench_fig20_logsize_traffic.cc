/**
 * @file
 * Figure 20: flash write traffic vs write log size. A larger log widens
 * the coalescing window, so page programs per compaction drop; the
 * effect saturates once the log covers the workload's write working
 * set.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::uint64_t> kLogKb = {16, 64, 256, 1024, 2048,
                                           4096};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : paperWorkloadNames()) {
        for (std::uint64_t kb : kLogKb) {
            addSweepPoint(w, std::to_string(kb),
                          logSizeSweepPoint(kb, w, opt));
        }
    }
    registerSweep("fig20/logsize_traffic");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 20: flash write traffic vs write log size "
                    "(pages programmed, normalized to the 16 KB log)");
        std::vector<std::string> cols;
        for (std::uint64_t kb : kLogKb)
            cols.push_back(std::to_string(kb));
        printNormalized(paperWorkloadNames(), cols, "16",
                        [](const SimResult &r) {
                            return static_cast<double>(
                                       r.flashHostPrograms)
                                   + 1.0;
                        });
        std::printf("\nCompactions and log appends per run:\n");
        for (const auto &w : paperWorkloadNames()) {
            std::printf("  %-12s", w.c_str());
            for (std::uint64_t kb : kLogKb) {
                const SimResult &r = resultAt(w, std::to_string(kb));
                std::printf(" %5lux/%-8lu",
                            static_cast<unsigned long>(r.compactions),
                            static_cast<unsigned long>(r.logAppends));
            }
            std::printf("\n");
        }
    });
}
