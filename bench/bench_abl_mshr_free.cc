/**
 * @file
 * Ablation: freeing L1 MSHR entries when a thread's loads squash on a
 * coordinated context switch (§III-A) vs holding them until the
 * response returns. The paper enables freeing by default because held
 * entries from a switched-out thread starve the incoming thread's MLP
 * for microseconds.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "bfs-dense", "srad",
                                             "ycsb"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : kWorkloads) {
        for (const bool free_mshr : {true, false}) {
            const std::string col = free_mshr ? "free-on-squash"
                                              : "hold-until-fill";
            registerSim(w, col, [w, free_mshr, opt] {
                SimConfig cfg = makeBenchConfig("SkyByte-Full");
                cfg.cpu.freeMshrOnSquash = free_mshr;
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Ablation: MSHR handling on squash (SkyByte-Full; "
                    "normalized exec time, free-on-squash = 1.0)");
        printNormalized(kWorkloads,
                        {"free-on-squash", "hold-until-fill"},
                        "free-on-squash", [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
