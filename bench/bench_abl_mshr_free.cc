/**
 * @file
 * Ablation: freeing L1 MSHR entries when a thread's loads squash on a
 * coordinated context switch (§III-A) vs holding them until the
 * response returns. The paper enables freeing by default because held
 * entries from a switched-out thread starve the incoming thread's MLP
 * for microseconds. Point grid: registry sweep "abl_mshr_free".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_mshr_free");
    return runBenchMain(argc, argv, [] {
        printHeader("Ablation: MSHR handling on squash (SkyByte-Full; "
                    "normalized exec time, free-on-squash = 1.0)");
        printNormalized(sweepAxisLabels("abl_mshr_free", 0),
                        sweepAxisLabels("abl_mshr_free", 1),
                        "free-on-squash", [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
