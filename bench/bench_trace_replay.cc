/**
 * @file
 * Trace-replay pipeline benchmark: records/sec of the flat SKYTRC01
 * replay (eager whole-file load, then iterate) vs the streaming STRC
 * trace-log replay (background block decode into per-thread rings,
 * O(blocks-in-flight) memory). Both paths drain the same capture of
 * the same workload through the TraceCursor contract, so the numbers
 * isolate the pipeline, not the generator.
 *
 * The table reports both rates, the stored size of each encoding, and
 * the peak number of simultaneously live decoded STRC blocks — the
 * bounded-memory witness (flat replay holds the whole trace; the
 * streaming path a handful of blocks). `--json <path>` emits the
 * machine-readable report CI archives as BENCH_trace_replay.json.
 *
 * Scale knob: SKYBYTE_BENCH_TRACE_INSTR (instructions per thread,
 * default 400k at 4 threads).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/fs.h"
#include "trace/trace_file.h"
#include "trace/trace_log/trace_log.h"
#include "trace/trace_log/trace_log_workload.h"
#include "trace/workload.h"

using namespace skybyte;

namespace {

struct Corpus
{
    std::string flatPath;
    std::string logPath;
    std::uint64_t records = 0;
    int threads = 0;
};

/** Rate + footprint results, keyed by path name ("flat"/"tracelog"). */
struct PathResult
{
    double recordsPerSec = 0;
    std::uint64_t fileBytes = 0;
    std::uint64_t peakBlocks = 0;
};

PathResult g_flat;
PathResult g_log;

std::string
tmpDir()
{
    const char *env = std::getenv("TMPDIR");
    return env != nullptr && *env != '\0' ? env : "/tmp";
}

/** Capture one workload in both encodings; returns the file pair. */
Corpus
buildCorpus()
{
    Corpus c;
    c.flatPath = tmpDir() + "/bench_trace_replay.trace";
    c.logPath = tmpDir() + "/bench_trace_replay.strc";
    WorkloadParams params;
    params.numThreads = 4;
    params.instrPerThread = 400'000;
    if (const char *env = std::getenv("SKYBYTE_BENCH_TRACE_INSTR"))
        params.instrPerThread = std::strtoull(env, nullptr, 10);
    auto workload = makeWorkload("zipf:theta=0.99", params);
    c.threads = workload->numThreads();
    c.records = writeTraceFile(c.flatPath, *workload);
    auto workload2 = makeWorkload("zipf:theta=0.99", params);
    writeTraceLog(c.logPath, *workload2);
    return c;
}

/** Drain every thread of @p workload; returns records consumed. */
std::uint64_t
drain(Workload &workload)
{
    std::uint64_t n = 0;
    TraceRecord rec{};
    for (int tid = 0; tid < workload.numThreads(); ++tid) {
        TraceCursor cur(workload, tid);
        while (cur.next(rec)) {
            benchmark::DoNotOptimize(rec.vaddr);
            ++n;
        }
    }
    return n;
}

/** Construct + fully drain one replay; returns records/sec including
 *  the load/decode cost (that asymmetry is the point). */
template <typename MakeFn>
double
timeReplay(const MakeFn &make)
{
    const auto t0 = std::chrono::steady_clock::now();
    auto workload = make();
    const std::uint64_t n = drain(*workload);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return secs > 0 ? static_cast<double>(n) / secs : 0.0;
}

void
benchFlat(benchmark::State &state, const Corpus &corpus)
{
    double best = 0;
    for (auto _ : state) {
        best = std::max(best, timeReplay([&] {
            return std::make_unique<TraceFileWorkload>(corpus.flatPath);
        }));
        state.SetItemsProcessed(
            state.items_processed()
            + static_cast<std::int64_t>(corpus.records));
    }
    g_flat.recordsPerSec = std::max(g_flat.recordsPerSec, best);
    state.counters["records_per_sec"] = best;
}

void
benchTraceLog(benchmark::State &state, const Corpus &corpus)
{
    double best = 0;
    for (auto _ : state) {
        resetPeakLiveDecodedBlocks();
        best = std::max(best, timeReplay([&] {
            return std::make_unique<TraceLogWorkload>(corpus.logPath);
        }));
        g_log.peakBlocks =
            std::max(g_log.peakBlocks, peakLiveDecodedBlocks());
        state.SetItemsProcessed(
            state.items_processed()
            + static_cast<std::int64_t>(corpus.records));
    }
    g_log.recordsPerSec = std::max(g_log.recordsPerSec, best);
    state.counters["records_per_sec"] = best;
    state.counters["peak_decoded_blocks"] =
        static_cast<double>(g_log.peakBlocks);
}

std::uint64_t
fileSizeOf(const std::string &path)
{
    return readFileText(path).size();
}

std::string
extractJsonPath(int &argc, char **argv)
{
    std::string json_path;
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;
    return json_path;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path = extractJsonPath(argc, argv);
    const Corpus corpus = buildCorpus();
    g_flat.fileBytes = fileSizeOf(corpus.flatPath);
    g_log.fileBytes = fileSizeOf(corpus.logPath);

    benchmark::RegisterBenchmark("replay/flat",
                                 [&](benchmark::State &s) {
                                     benchFlat(s, corpus);
                                 });
    benchmark::RegisterBenchmark("replay/tracelog",
                                 [&](benchmark::State &s) {
                                     benchTraceLog(s, corpus);
                                 });

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const double ratio = g_flat.recordsPerSec > 0
                             ? g_log.recordsPerSec / g_flat.recordsPerSec
                             : 0.0;
    const double compression =
        g_log.fileBytes > 0
            ? static_cast<double>(g_flat.fileBytes)
                  / static_cast<double>(g_log.fileBytes)
            : 0.0;
    std::printf("\n================================================================\n");
    std::printf("Trace replay: flat eager load vs streaming STRC decode"
                " (%llu records, %d threads)\n",
                static_cast<unsigned long long>(corpus.records),
                corpus.threads);
    std::printf("================================================================\n");
    std::printf("%-10s %16s %14s %20s\n", "path", "records/sec",
                "file bytes", "peak decoded blocks");
    std::printf("%-10s %16.0f %14llu %20s\n", "flat",
                g_flat.recordsPerSec,
                static_cast<unsigned long long>(g_flat.fileBytes),
                "(whole trace)");
    std::printf("%-10s %16.0f %14llu %20llu\n", "tracelog",
                g_log.recordsPerSec,
                static_cast<unsigned long long>(g_log.fileBytes),
                static_cast<unsigned long long>(g_log.peakBlocks));
    std::printf("tracelog/flat rate %.2fx, on-disk compression %.2fx\n",
                ratio, compression);

    if (!json_path.empty()) {
        // Archived per commit by the CI bench-baselines job, like
        // BENCH_kernel_hotpath.json / BENCH_request_path.json.
        std::ostringstream out;
        out << "{\n  \"bench\": \"trace_replay\",\n"
            << "  \"unit\": \"records_per_sec\",\n"
            << "  \"records\": " << corpus.records << ",\n"
            << "  \"paths\": {\n"
            << "    \"flat\": {\"records_per_sec\": "
            << g_flat.recordsPerSec << ", \"file_bytes\": "
            << g_flat.fileBytes << "},\n"
            << "    \"tracelog\": {\"records_per_sec\": "
            << g_log.recordsPerSec << ", \"file_bytes\": "
            << g_log.fileBytes << ", \"peak_decoded_blocks\": "
            << g_log.peakBlocks << "}\n  },\n"
            << "  \"rate_ratio\": " << ratio << ",\n"
            << "  \"compression\": " << compression << "\n}\n";
        try {
            writeFileAtomic(json_path, out.str());
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         json_path.c_str(), e.what());
        }
    }
    std::remove(corpus.flatPath.c_str());
    std::remove(corpus.logPath.c_str());
    return 0;
}
