/**
 * @file
 * Shared support for the benchmark harness: every bench binary registers
 * its simulation runs as google-benchmark cases (1 iteration each, the
 * simulated execution time reported as manual time), stores the
 * SimResults in a process-wide table, and prints the paper-style
 * rows/series after the benchmark pass.
 *
 * Multi-point benches (the DRAM / log-size / thread-count sweeps)
 * instead collect SweepPoints with addSweepPoint() and register one
 * case via registerSweep(); the points then run concurrently on the
 * runSweep() worker pool. Results land in the same (row, col) table,
 * and are identical to a serial run (each point is seeded solely from
 * its own config).
 *
 * Scale knobs: SKYBYTE_BENCH_INSTR (instructions per thread at 8
 * threads), SKYBYTE_BENCH_THREADS, SKYBYTE_BENCH_FOOTPRINT_MB,
 * SKYBYTE_BENCH_NTHREADS (sweep worker pool size).
 */

#ifndef SKYBYTE_BENCH_SUPPORT_H
#define SKYBYTE_BENCH_SUPPORT_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace skybyte::bench {

/** Result store keyed by an arbitrary row/column label pair. */
inline std::map<std::pair<std::string, std::string>, SimResult> &
results()
{
    static std::map<std::pair<std::string, std::string>, SimResult> store;
    return store;
}

inline SimResult &
resultAt(const std::string &row, const std::string &col)
{
    return results()[{row, col}];
}

/** Default options for this binary (env-overridable). */
inline ExperimentOptions
benchOptions(std::uint64_t default_instr)
{
    ExperimentOptions opt = ExperimentOptions::fromEnv();
    if (std::getenv("SKYBYTE_BENCH_INSTR") == nullptr)
        opt.instrPerThread = default_instr;
    return opt;
}

/**
 * Register one simulation as a google-benchmark case. @p fn runs the
 * simulation and returns the result, which is stored under (row, col)
 * and surfaced as counters.
 */
inline void
registerSim(const std::string &row, const std::string &col,
            std::function<SimResult()> fn)
{
    const std::string name = row + "/" + col;
    benchmark::RegisterBenchmark(
        name.c_str(),
        [row, col, fn = std::move(fn)](benchmark::State &state) {
            for (auto _ : state) {
                SimResult res = fn();
                resultAt(row, col) = res;
                state.SetIterationTime(res.execMs() / 1000.0);
                state.counters["sim_exec_ms"] = res.execMs();
                state.counters["instructions"] = static_cast<double>(
                    res.committedInstructions);
                state.counters["flash_pgm"] = static_cast<double>(
                    res.flashHostPrograms + res.flashGcPrograms);
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

/** Sweep points queued for this binary, with their table labels. */
struct LabelledPoint
{
    std::string row;
    std::string col;
    SweepPoint point;
};

inline std::vector<LabelledPoint> &
sweepPoints()
{
    static std::vector<LabelledPoint> points;
    return points;
}

/** Queue one run for the pooled sweep, labelled (row, col). */
inline void
addSweepPoint(const std::string &row, const std::string &col,
              SweepPoint point)
{
    sweepPoints().push_back({row, col, std::move(point)});
}

/**
 * SkyByte-Full point with the SSD DRAM re-split to a @p kb KB write
 * log, keeping total SSD DRAM (log + data cache) fixed — the shared
 * configuration rule of the figure 19/20 log-size sweeps.
 */
inline SweepPoint
logSizeSweepPoint(std::uint64_t kb, const std::string &workload,
                  const ExperimentOptions &opt)
{
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    const std::uint64_t total =
        cfg.ssdCache.writeLogBytes + cfg.ssdCache.dataCacheBytes;
    cfg.ssdCache.writeLogBytes = kb * 1024;
    cfg.ssdCache.dataCacheBytes = total - kb * 1024;
    return {std::move(cfg), workload, opt};
}

/**
 * Register every queued point as a single google-benchmark case that
 * executes the whole batch through runSweep() on the worker pool. The
 * reported manual time is the summed simulated execution time, matching
 * what the per-case registration would have reported in total.
 */
inline void
registerSweep(const char *name = "sweep/all")
{
    benchmark::RegisterBenchmark(
        name,
        [](benchmark::State &state) {
            std::vector<SweepPoint> points;
            points.reserve(sweepPoints().size());
            for (const LabelledPoint &lp : sweepPoints())
                points.push_back(lp.point);
            for (auto _ : state) {
                const std::vector<SimResult> res = runSweep(points);
                double sim_ms = 0;
                std::uint64_t instr = 0;
                std::uint64_t flash_pgm = 0;
                for (std::size_t i = 0; i < res.size(); ++i) {
                    const LabelledPoint &lp = sweepPoints()[i];
                    resultAt(lp.row, lp.col) = res[i];
                    sim_ms += res[i].execMs();
                    instr += res[i].committedInstructions;
                    flash_pgm += res[i].flashHostPrograms
                                 + res[i].flashGcPrograms;
                }
                state.SetIterationTime(sim_ms / 1000.0);
                state.counters["sim_exec_ms"] = sim_ms;
                state.counters["points"] =
                    static_cast<double>(res.size());
                state.counters["threads"] = static_cast<double>(
                    sweepThreads(0, points.size()));
                state.counters["instructions"] =
                    static_cast<double>(instr);
                state.counters["flash_pgm"] =
                    static_cast<double>(flash_pgm);
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

/** Print a separator + table title. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/**
 * Print a matrix of doubles: rows x cols with a value extractor.
 */
inline void
printMatrix(const std::string &corner,
            const std::vector<std::string> &rows,
            const std::vector<std::string> &cols,
            const std::function<double(const SimResult &)> &value,
            const char *fmt = "%12.3f")
{
    std::printf("%-16s", corner.c_str());
    for (const auto &c : cols)
        std::printf("%12s", c.substr(0, 12).c_str());
    std::printf("\n");
    for (const auto &r : rows) {
        std::printf("%-16s", r.c_str());
        for (const auto &c : cols)
            std::printf(fmt, value(resultAt(r, c)));
        std::printf("\n");
    }
}

/**
 * Print rows normalized to a baseline column (e.g., exec time vs
 * Base-CSSD), plus a geometric-mean row across workloads.
 */
inline void
printNormalized(const std::vector<std::string> &workloads,
                const std::vector<std::string> &variants,
                const std::string &baseline,
                const std::function<double(const SimResult &)> &value,
                bool lower_is_better = true)
{
    std::printf("%-16s", "workload");
    for (const auto &v : variants)
        std::printf("%14s", v.substr(0, 14).c_str());
    std::printf("\n");
    std::vector<std::vector<double>> norm(variants.size());
    for (const auto &w : workloads) {
        std::printf("%-16s", w.c_str());
        const double base = value(resultAt(w, baseline));
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const double x = value(resultAt(w, variants[i]));
            const double n = base > 0 ? x / base : 0.0;
            norm[i].push_back(n);
            std::printf("%14.3f", n);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "geo.mean");
    for (std::size_t i = 0; i < variants.size(); ++i)
        std::printf("%14.3f", geoMean(norm[i]));
    std::printf("\n");
    std::printf("(normalized to %s; %s is better)\n", baseline.c_str(),
                lower_is_better ? "lower" : "higher");
}

/** Standard main body: run benchmarks, then call the table printer. */
inline int
runBenchMain(int argc, char **argv, const std::function<void()> &report)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report();
    return 0;
}

} // namespace skybyte::bench

#endif // SKYBYTE_BENCH_SUPPORT_H
