/**
 * @file
 * Shared support for the benchmark harness. A bench binary is a thin
 * shell around the sweep registry (sim/sweep.h): it registers its named
 * sweep as one google-benchmark case via registerRegistrySweep() — the
 * whole point grid then executes on the runSweep() worker pool — and
 * owns only the paper-style table printer that reads the results back
 * from the process-wide (row, col) table. The grid itself (axes,
 * variants, knob values) lives in the library's sweep registry, shared
 * with the skybyte_sweep CLI and CI, so a grid change lands everywhere
 * at once.
 *
 * Result-table convention: a point's row is its first-axis label (the
 * workload in every paper sweep) and its column the remaining axis
 * labels joined with '/' (LabeledPoint::col()).
 *
 * Scale knobs: SKYBYTE_BENCH_INSTR (instructions per thread at 8
 * threads; default comes from the sweep spec), SKYBYTE_BENCH_THREADS,
 * SKYBYTE_BENCH_FOOTPRINT_MB, SKYBYTE_BENCH_NTHREADS (worker pool).
 */

#ifndef SKYBYTE_BENCH_SUPPORT_H
#define SKYBYTE_BENCH_SUPPORT_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace skybyte::bench {

/** Result store keyed by an arbitrary row/column label pair. */
inline std::map<std::pair<std::string, std::string>, SimResult> &
results()
{
    static std::map<std::pair<std::string, std::string>, SimResult> store;
    return store;
}

inline SimResult &
resultAt(const std::string &row, const std::string &col)
{
    return results()[{row, col}];
}

/** The registered spec for @p name, or exit with a clear error. */
inline const SweepSpec &
requireSweep(const std::string &name)
{
    const SweepSpec *spec = findSweep(name);
    if (spec == nullptr) {
        std::fprintf(stderr, "bench: unknown sweep: %s\n", name.c_str());
        std::exit(1);
    }
    return *spec;
}

/** Value labels of axis @p axis of the named sweep (printer input). */
inline std::vector<std::string>
sweepAxisLabels(const std::string &name, std::size_t axis)
{
    return requireSweep(name).axes.at(axis).labels();
}

/**
 * Register the named registry sweep as a single google-benchmark case:
 * the expanded points run concurrently on the runSweep() pool, results
 * land at (row(), col()), and the reported manual time is the summed
 * simulated execution time. Output is identical to a serial run (each
 * point is seeded solely from its own config).
 */
inline void
registerRegistrySweep(const std::string &name)
{
    const SweepSpec &spec = requireSweep(name);
    benchmark::RegisterBenchmark(
        (name + "/sweep").c_str(),
        [&spec](benchmark::State &state) {
            const ExperimentOptions opt = spec.optionsFromEnv();
            for (auto _ : state) {
                const SweepExecution exec = runSweepShard(spec, opt);
                double sim_ms = 0;
                std::uint64_t instr = 0;
                std::uint64_t flash_pgm = 0;
                for (std::size_t i = 0; i < exec.points.size(); ++i) {
                    const LabeledPoint &lp = exec.points[i];
                    const SimResult &res = exec.results[i];
                    resultAt(lp.row(), lp.col()) = res;
                    sim_ms += res.execMs();
                    instr += res.committedInstructions;
                    flash_pgm += res.flashHostPrograms
                                 + res.flashGcPrograms;
                }
                state.SetIterationTime(sim_ms / 1000.0);
                state.counters["sim_exec_ms"] = sim_ms;
                state.counters["points"] =
                    static_cast<double>(exec.points.size());
                state.counters["threads"] = static_cast<double>(
                    sweepThreads(0, exec.points.size()));
                state.counters["instructions"] =
                    static_cast<double>(instr);
                state.counters["flash_pgm"] =
                    static_cast<double>(flash_pgm);
            }
        })
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
}

/** Print a separator + table title. */
inline void
printHeader(const std::string &title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/**
 * Print a matrix of doubles: rows x cols with a value extractor.
 */
inline void
printMatrix(const std::string &corner,
            const std::vector<std::string> &rows,
            const std::vector<std::string> &cols,
            const std::function<double(const SimResult &)> &value,
            const char *fmt = "%12.3f")
{
    std::printf("%-16s", corner.c_str());
    for (const auto &c : cols)
        std::printf("%12s", c.substr(0, 12).c_str());
    std::printf("\n");
    for (const auto &r : rows) {
        std::printf("%-16s", r.c_str());
        for (const auto &c : cols)
            std::printf(fmt, value(resultAt(r, c)));
        std::printf("\n");
    }
}

/**
 * Print rows normalized to a baseline column (e.g., exec time vs
 * Base-CSSD), plus a geometric-mean row across workloads.
 */
inline void
printNormalized(const std::vector<std::string> &workloads,
                const std::vector<std::string> &variants,
                const std::string &baseline,
                const std::function<double(const SimResult &)> &value,
                bool lower_is_better = true)
{
    std::printf("%-16s", "workload");
    for (const auto &v : variants)
        std::printf("%14s", v.substr(0, 14).c_str());
    std::printf("\n");
    std::vector<std::vector<double>> norm(variants.size());
    for (const auto &w : workloads) {
        std::printf("%-16s", w.c_str());
        const double base = value(resultAt(w, baseline));
        for (std::size_t i = 0; i < variants.size(); ++i) {
            const double x = value(resultAt(w, variants[i]));
            const double n = base > 0 ? x / base : 0.0;
            norm[i].push_back(n);
            std::printf("%14.3f", n);
        }
        std::printf("\n");
    }
    std::printf("%-16s", "geo.mean");
    for (std::size_t i = 0; i < variants.size(); ++i)
        std::printf("%14.3f", geoMean(norm[i]));
    std::printf("\n");
    std::printf("(normalized to %s; %s is better)\n", baseline.c_str(),
                lower_is_better ? "lower" : "higher");
}

/** Standard main body: run benchmarks, then call the table printer. */
inline int
runBenchMain(int argc, char **argv, const std::function<void()> &report)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report();
    return 0;
}

/**
 * Strip `--json <path>` from the arg list before it reaches
 * benchmark::Initialize (which rejects unknown flags). Returns the
 * path, or "" when absent. Shared by the baseline-emitting benches
 * (bench_kernel_hotpath, bench_request_path) so the CI artifact
 * plumbing stays in one place.
 */
inline std::string
extractJsonPath(int &argc, char **argv)
{
    std::string json_path;
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" && i + 1 < argc)
            json_path = argv[++i];
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;
    return json_path;
}

} // namespace skybyte::bench

#endif // SKYBYTE_BENCH_SUPPORT_H
