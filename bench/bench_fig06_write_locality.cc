/**
 * @file
 * Figure 6: CDF of the fraction of DIRTY cachelines per page flushed
 * from the SSD DRAM cache to flash, versus footprint:cache ratio.
 * Motivates the write log: flushing a whole page for a few dirty lines
 * is pure write amplification.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "dlrm", "radix",
                                             "ycsb"};
const std::vector<std::uint64_t> kRatios = {4, 8, 16, 32, 64};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(80'000);
    for (const auto &w : kWorkloads) {
        for (std::uint64_t n : kRatios) {
            const std::string col = "1:" + std::to_string(n);
            registerSim(w, col, [w, n, opt] {
                SimConfig cfg = makeBenchConfig("Base-CSSD");
                ExperimentOptions o = opt;
                o.footprintBytes = 128ULL * 1024 * 1024;
                cfg.ssdCache.dataCacheBytes = o.footprintBytes / n;
                return runConfig(cfg, w, o);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 6: fraction of cachelines DIRTY per page "
                    "flushed to flash (CDF at thresholds; mean)");
        std::printf("%-8s %-6s %8s %8s %8s %8s %8s %10s\n", "workload",
                    "ratio", "<=12.5%", "<=25%", "<=50%", "<=75%",
                    "mean%", "flushes");
        for (const auto &w : kWorkloads) {
            for (std::uint64_t n : kRatios) {
                const std::string col = "1:" + std::to_string(n);
                const RatioHistogram &h = resultAt(w, col).writeLocality;
                std::printf("%-8s %-6s %8.3f %8.3f %8.3f %8.3f %8.1f "
                            "%10lu\n",
                            w.c_str(), col.c_str(), h.cdfAt(0.125),
                            h.cdfAt(0.25), h.cdfAt(0.5), h.cdfAt(0.75),
                            100.0 * h.mean(),
                            static_cast<unsigned long>(h.count()));
            }
        }
    });
}
