/**
 * @file
 * Figure 6: CDF of the fraction of cachelines dirty per page flushed to
 * flash, as the footprint:cache ratio (1:n) varies. Paper's takeaway:
 * page-granular writebacks program mostly-clean pages, motivating the
 * cacheline-granular write log. Point grid: registry sweep "fig06".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig06");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 6: fraction of cachelines DIRTY per page "
                    "flushed to flash (CDF at thresholds; mean)");
        std::printf("%-8s %-6s %8s %8s %8s %8s %8s %10s\n", "workload",
                    "ratio", "<=12.5%", "<=25%", "<=50%", "<=75%",
                    "mean%", "flushes");
        for (const auto &w : sweepAxisLabels("fig06", 0)) {
            for (const auto &col : sweepAxisLabels("fig06", 1)) {
                const RatioHistogram &h = resultAt(w, col).writeLocality;
                std::printf("%-8s %-6s %8.3f %8.3f %8.3f %8.3f %8.1f "
                            "%10lu\n",
                            w.c_str(), col.c_str(), h.cdfAt(0.125),
                            h.cdfAt(0.25), h.cdfAt(0.5), h.cdfAt(0.75),
                            100.0 * h.mean(),
                            static_cast<unsigned long>(h.count()));
            }
        }
    });
}
