/**
 * @file
 * Figure 18: write traffic to the flash chips (pages programmed on the
 * data path, i.e., dirty-page writebacks / RMW / log compaction) for
 * each variant, normalized to Base-CSSD. Paper: SkyByte reduces flash
 * write traffic 23.08x on average, with the write log the dominant
 * contributor; context switching slightly increases traffic again.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kVariants = {
    "Base-CSSD",  "SkyByte-P",  "SkyByte-C", "SkyByte-W",
    "SkyByte-CP", "SkyByte-WP", "SkyByte-Full"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(150'000);
    for (const auto &w : paperWorkloadNames()) {
        for (const auto &v : kVariants) {
            registerSim(w, v,
                        [w, v, opt] { return runVariant(v, w, opt); });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 18: flash write traffic (pages programmed, "
                    "normalized to Base-CSSD; log scale in paper)");
        printNormalized(paperWorkloadNames(), kVariants, "Base-CSSD",
                        [](const SimResult &r) {
                            return static_cast<double>(
                                       r.flashHostPrograms)
                                   + 1.0; // avoid 0/0 on tiny runs
                        });
        std::printf("\nAbsolute pages programmed (data path / GC):\n");
        for (const auto &w : paperWorkloadNames()) {
            std::printf("  %-12s", w.c_str());
            for (const auto &v : kVariants) {
                const SimResult &r = resultAt(w, v);
                std::printf(" %8lu/%-6lu",
                            static_cast<unsigned long>(
                                r.flashHostPrograms),
                            static_cast<unsigned long>(
                                r.flashGcPrograms));
            }
            std::printf("\n");
        }
    });
}
