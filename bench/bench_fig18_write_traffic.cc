/**
 * @file
 * Figure 18: write traffic to the flash chips (pages programmed on the
 * data path, i.e., dirty-page writebacks / RMW / log compaction) for
 * each variant, normalized to Base-CSSD. Paper: SkyByte reduces flash
 * write traffic 23.08x on average, with the write log the dominant
 * contributor; context switching slightly increases traffic again.
 * Point grid: registry sweep "fig18".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig18");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("fig18", 0);
        const std::vector<std::string> variants =
            sweepAxisLabels("fig18", 1);
        printHeader("Figure 18: flash write traffic (pages programmed, "
                    "normalized to Base-CSSD; log scale in paper)");
        printNormalized(workloads, variants, "Base-CSSD",
                        [](const SimResult &r) {
                            return static_cast<double>(
                                       r.flashHostPrograms)
                                   + 1.0; // avoid 0/0 on tiny runs
                        });
        std::printf("\nAbsolute pages programmed (data path / GC):\n");
        for (const auto &w : workloads) {
            std::printf("  %-12s", w.c_str());
            for (const auto &v : variants) {
                const SimResult &r = resultAt(w, v);
                std::printf(" %8lu/%-6lu",
                            static_cast<unsigned long>(
                                r.flashHostPrograms),
                            static_cast<unsigned long>(
                                r.flashGcPrograms));
            }
            std::printf("\n");
        }
    });
}
