/**
 * @file
 * Ablation: the hot-page promotion threshold (§III-C — "the SSD
 * controller tracks the access count of flash pages and selects pages
 * whose access counts exceed a threshold"). Too low promotes one-hit
 * wonders and churns the budget; too high leaves hot pages serving from
 * the SSD forever. The sweep shows a broad plateau around the default,
 * which is why the paper can leave the constant untuned per workload.
 * Point grid: registry sweep "abl_promotion".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_promotion");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("abl_promotion", 0);
        const std::vector<std::string> cols =
            sweepAxisLabels("abl_promotion", 1);
        printHeader("Ablation: hot-page promotion threshold sweep "
                    "(normalized exec time, hot=32 default = 1.0)");
        printNormalized(workloads, cols, "hot=32",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Promotions at each threshold");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.promotions);
                    },
                    "%12.0f");
    });
}
