/**
 * @file
 * Ablation: the hot-page promotion threshold (§III-C — "the SSD
 * controller tracks the access count of flash pages and selects pages
 * whose access counts exceed a threshold"). Too low promotes one-hit
 * wonders and churns the budget; too high leaves hot pages serving from
 * the SSD forever. The sweep shows a broad plateau around the default,
 * which is why the paper can leave the constant untuned per workload.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "tpcc", "ycsb",
                                             "bfs-dense"};
const std::vector<std::uint32_t> kThresholds = {2, 8, 32, 128, 512};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    std::vector<std::string> cols;
    cols.reserve(kThresholds.size());
    for (const std::uint32_t threshold : kThresholds)
        cols.push_back("hot=" + std::to_string(threshold));
    for (const auto &w : kWorkloads) {
        for (std::size_t i = 0; i < kThresholds.size(); ++i) {
            const std::uint32_t threshold = kThresholds[i];
            registerSim(w, cols[i], [w, threshold, opt] {
                SimConfig cfg = makeBenchConfig("SkyByte-Full");
                cfg.policy.hotPageThreshold = threshold;
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [cols = cols] {
        printHeader("Ablation: hot-page promotion threshold sweep "
                    "(normalized exec time, hot=32 default = 1.0)");
        printNormalized(kWorkloads, cols, "hot=32",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Promotions at each threshold");
        printMatrix("workload", kWorkloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.promotions);
                    },
                    "%12.0f");
    });
}
