/**
 * @file
 * Figure 9: sensitivity of the coordinated context-switch trigger
 * threshold (2-80 us). Paper: 2 us (the measured context-switch
 * overhead) is best since flash reads (3 us) already exceed it; larger
 * thresholds forfeit switch opportunities and degrade up to ~2x.
 * Point grid: registry sweep "fig09".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig09");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 9: normalized execution time vs context "
                    "switch trigger threshold (us), 2us = 1.0");
        printNormalized(sweepAxisLabels("fig09", 0),
                        sweepAxisLabels("fig09", 1), "2",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
