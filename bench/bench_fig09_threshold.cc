/**
 * @file
 * Figure 9: sensitivity of the coordinated context-switch trigger
 * threshold (2-80 us). Paper: 2 us (the measured context-switch
 * overhead) is best since flash reads (3 us) already exceed it; larger
 * thresholds forfeit switch opportunities and degrade up to ~2x.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "bfs-dense", "srad",
                                             "tpcc"};
const std::vector<double> kThresholdsUs = {2, 10, 20, 40, 60, 80};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : kWorkloads) {
        for (double us : kThresholdsUs) {
            const std::string col = std::to_string(static_cast<int>(us));
            registerSim(w, col, [w, us, opt] {
                SimConfig cfg = makeBenchConfig("SkyByte-Full");
                cfg.policy.csThreshold = usToTicks(us);
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 9: normalized execution time vs context "
                    "switch trigger threshold (us), 2us = 1.0");
        std::vector<std::string> cols;
        for (double us : kThresholdsUs)
            cols.push_back(std::to_string(static_cast<int>(us)));
        printNormalized(kWorkloads, cols, "2",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
