/**
 * @file
 * Figure 10: thread scheduling policies (RR / Random / CFS) under the
 * coordinated context switch, with the execution-time breakdown
 * (context switch / compute-bound / memory-bound). Paper: the three
 * policies perform similarly because all threads are I/O bound.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "radix", "srad",
                                             "tpcc"};
const std::vector<std::pair<std::string, SchedPolicy>> kPolicies = {
    {"RR", SchedPolicy::RoundRobin},
    {"Random", SchedPolicy::Random},
    {"CFS", SchedPolicy::Cfs},
};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : kWorkloads) {
        for (const auto &[name, policy] : kPolicies) {
            registerSim(w, name, [w, policy = policy, opt] {
                SimConfig cfg = makeBenchConfig("SkyByte-Full");
                cfg.policy.schedPolicy = policy;
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 10: scheduling policies — normalized exec "
                    "time and breakdown (ctx/comp/mem %)");
        std::printf("%-10s %-8s %10s %8s %8s %8s\n", "workload",
                    "policy", "norm.time", "ctx%", "comp%", "mem%");
        for (const auto &w : kWorkloads) {
            const double base = static_cast<double>(
                resultAt(w, "RR").execTime);
            for (const auto &[name, policy] : kPolicies) {
                const SimResult &r = resultAt(w, name);
                const double busy = static_cast<double>(
                    r.computeTicks + r.memStallTicks + r.ctxSwitchTicks);
                std::printf(
                    "%-10s %-8s %10.3f %8.1f %8.1f %8.1f\n", w.c_str(),
                    name.c_str(),
                    base > 0 ? static_cast<double>(r.execTime) / base
                             : 0.0,
                    100.0 * static_cast<double>(r.ctxSwitchTicks) / busy,
                    100.0 * static_cast<double>(r.computeTicks) / busy,
                    100.0 * static_cast<double>(r.memStallTicks) / busy);
            }
        }
    });
}
