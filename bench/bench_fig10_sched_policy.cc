/**
 * @file
 * Figure 10: thread scheduling policies (RR / Random / CFS) under the
 * coordinated context switch, with the execution-time breakdown
 * (context switch / compute-bound / memory-bound). Paper: the three
 * policies perform similarly because all threads are I/O bound.
 * Point grid: registry sweep "fig10".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig10");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 10: scheduling policies — normalized exec "
                    "time and breakdown (ctx/comp/mem %)");
        std::printf("%-10s %-8s %10s %8s %8s %8s\n", "workload",
                    "policy", "norm.time", "ctx%", "comp%", "mem%");
        for (const auto &w : sweepAxisLabels("fig10", 0)) {
            const double base = static_cast<double>(
                resultAt(w, "RR").execTime);
            for (const auto &name : sweepAxisLabels("fig10", 1)) {
                const SimResult &r = resultAt(w, name);
                const double busy = static_cast<double>(
                    r.computeTicks + r.memStallTicks + r.ctxSwitchTicks);
                std::printf(
                    "%-10s %-8s %10.3f %8.1f %8.1f %8.1f\n", w.c_str(),
                    name.c_str(),
                    base > 0 ? static_cast<double>(r.execTime) / base
                             : 0.0,
                    100.0 * static_cast<double>(r.ctxSwitchTicks) / busy,
                    100.0 * static_cast<double>(r.computeTicks) / busy,
                    100.0 * static_cast<double>(r.memStallTicks) / busy);
            }
        }
    });
}
