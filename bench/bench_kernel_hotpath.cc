/**
 * @file
 * Microbenchmark of the discrete-event kernel itself: events/sec of the
 * calendar-queue EventQueue vs the seed's priority_queue kernel
 * (LegacyEventQueue, kept verbatim for this comparison).
 *
 * Scenarios model the simulator's event mix:
 *  - near:  self-rescheduling chains with cache/DRAM-scale strides
 *           (<= 256 ticks), all inside the calendar window.
 *  - spread: strides up to the full window (8192 ticks = 512 ns),
 *           exercising the occupancy-bitmap skip.
 *  - mixed: 5% flash-scale far events (~100k ticks) that overflow to
 *           the binary heap and migrate back as the cursor advances.
 *
 * Each chain's callback captures 40 bytes of state — representative of
 * the simulator's lambdas (this + a few words), which exceed libstdc++
 * std::function's 16-byte inline buffer and so cost the seed kernel a
 * heap allocation per schedule plus an Entry copy per step.
 *
 * The trailing report prints events/sec for both kernels and the
 * speedup ratio per scenario (the PR's acceptance gate is >= 2x).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "common/event_queue.h"
#include "common/fs.h"
#include "support.h"

using namespace skybyte;

namespace {

/** Best observed events/sec, keyed by (kernel, scenario). */
std::map<std::pair<std::string, std::string>, double> g_evps;

/**
 * One self-rescheduling chain. Copies of this struct are the scheduled
 * callbacks; the xorshift state makes stride sequences deterministic
 * per chain yet varied across events.
 */
template <typename Q>
struct ChainEvent
{
    Q *eq;
    std::uint64_t *executed;
    std::uint64_t target;
    Tick maxStride;
    Tick farStride; ///< 0 = never leave the near window
    std::uint32_t rng;

    void
    operator()()
    {
        if (++*executed >= target)
            return;
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        Tick d = 1 + (rng % maxStride);
        if (farStride != 0 && rng % 100 < 5)
            d = farStride + rng % 1024;
        eq->scheduleAfter(d, *this);
    }
};

/** Run @p target_events through a fresh kernel; returns events/sec. */
template <typename Q>
double
runChains(std::uint64_t target_events, unsigned nchains, Tick max_stride,
          Tick far_stride)
{
    Q eq;
    std::uint64_t executed = 0;
    for (unsigned i = 0; i < nchains; ++i) {
        eq.schedule(i, ChainEvent<Q>{&eq, &executed, target_events,
                                     max_stride, far_stride,
                                     0x9e3779b9u + i});
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (eq.step()) {
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    benchmark::DoNotOptimize(executed);
    return secs > 0 ? static_cast<double>(executed) / secs : 0.0;
}

template <typename Q>
void
benchScenario(benchmark::State &state, const std::string &kernel,
              const std::string &scenario, Tick max_stride,
              Tick far_stride)
{
    constexpr std::uint64_t kEvents = 2'000'000;
    constexpr unsigned kChains = 128;
    double best = 0;
    for (auto _ : state) {
        const double evps =
            runChains<Q>(kEvents, kChains, max_stride, far_stride);
        best = std::max(best, evps);
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(kEvents));
    }
    auto &slot = g_evps[{kernel, scenario}];
    slot = std::max(slot, best);
    state.counters["events_per_sec"] = best;
}

void
registerScenario(const std::string &scenario, Tick max_stride,
                 Tick far_stride)
{
    benchmark::RegisterBenchmark(
        ("calendar/" + scenario).c_str(),
        [=](benchmark::State &s) {
            benchScenario<EventQueue>(s, "calendar", scenario,
                                      max_stride, far_stride);
        });
    benchmark::RegisterBenchmark(
        ("legacy/" + scenario).c_str(),
        [=](benchmark::State &s) {
            benchScenario<LegacyEventQueue>(s, "legacy", scenario,
                                            max_stride, far_stride);
        });
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        skybyte::bench::extractJsonPath(argc, argv);

    registerScenario("near", 256, 0);
    registerScenario("spread", EventQueue::kWindowTicks, 0);
    registerScenario("mixed", 2048, 100'000);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n================================================================\n");
    std::printf("Kernel hot path: events/sec, calendar vs seed "
                "priority_queue kernel\n");
    std::printf("================================================================\n");
    std::printf("%-10s %16s %16s %10s\n", "scenario", "calendar",
                "legacy", "speedup");
    double log_sum = 0;
    int n = 0;
    bool all_pass = true;
    for (const char *scenario : {"near", "spread", "mixed"}) {
        const double neu = g_evps[{"calendar", scenario}];
        const double old = g_evps[{"legacy", scenario}];
        const double ratio = old > 0 ? neu / old : 0.0;
        std::printf("%-10s %16.0f %16.0f %9.2fx\n", scenario, neu, old,
                    ratio);
        if (ratio > 0) {
            log_sum += std::log(ratio);
            ++n;
        }
        if (ratio < 2.0)
            all_pass = false;
    }
    const double geomean = n > 0 ? std::exp(log_sum / n) : 0.0;
    std::printf("%-10s %33s %9.2fx\n", "geomean", "", geomean);
    std::printf("target: >= 2.00x per scenario — %s\n",
                all_pass ? "PASS" : "FAIL");
    if (!json_path.empty()) {
        // Machine-readable events/sec per (kernel, scenario): the CI
        // bench job archives this per commit so the perf trajectory
        // accumulates alongside BENCH_request_path.json. Committed
        // temp+rename like every other report writer.
        std::ostringstream out;
        out << "{\n  \"bench\": \"kernel_hotpath\",\n"
            << "  \"unit\": \"events_per_sec\",\n  \"scenarios\": {\n";
        int i = 0;
        for (const char *scenario : {"near", "spread", "mixed"}) {
            out << "    \"" << scenario << "\": {\"calendar\": "
                << g_evps[{"calendar", scenario}] << ", \"legacy\": "
                << g_evps[{"legacy", scenario}] << "}"
                << (++i < 3 ? ",\n" : "\n");
        }
        out << "  },\n  \"speedup_geomean\": " << geomean << "\n}\n";
        try {
            skybyte::writeFileAtomic(json_path, out.str());
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         json_path.c_str(), e.what());
        }
    }
    // Nonzero exit makes the CI smoke step fail with the gate; the
    // ratio compares two kernels in the same process, so host speed
    // cancels out and the margin (~4x vs 2x) absorbs runner noise.
    return all_pass ? 0 : 1;
}
