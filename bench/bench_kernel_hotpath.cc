/**
 * @file
 * Microbenchmark of the discrete-event kernel itself: events/sec of the
 * calendar-queue EventQueue vs the seed's priority_queue kernel
 * (LegacyEventQueue, kept verbatim for this comparison).
 *
 * Scenarios model the simulator's event mix:
 *  - near:  self-rescheduling chains with cache/DRAM-scale strides
 *           (<= 256 ticks), all inside the calendar window.
 *  - spread: strides up to the full window (8192 ticks = 512 ns),
 *           exercising the occupancy-bitmap skip.
 *  - mixed: 5% flash-scale far events (~100k ticks) that overflow to
 *           the binary heap and migrate back as the cursor advances.
 *
 * Each chain's callback captures 40 bytes of state — representative of
 * the simulator's lambdas (this + a few words), which exceed libstdc++
 * std::function's 16-byte inline buffer and so cost the seed kernel a
 * heap allocation per schedule plus an Entry copy per step.
 *
 * The trailing report prints events/sec for both kernels and the
 * speedup ratio per scenario (the PR's acceptance gate is >= 2x).
 *
 * --lanes=W[,W,...] additionally runs the multi-lane kernel
 * (common/lane_kernel.h) scaling curve: 64 lane groups of
 * self-rescheduling chains with a flash-scale cross-group hop
 * (post() at +48000 ticks, so the conservative window W = L = 48000
 * amortizes each barrier over thousands of events) executed at each
 * requested worker count. Every run folds a per-group checksum over
 * (event payload, lane clock); the checksums must be bit-identical
 * across worker counts — the bench doubles as a determinism gate.
 * Defaults to 1,2,4 when the flag is omitted so the scaling curve is
 * always in the JSON report.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/event_queue.h"
#include "common/fs.h"
#include "common/lane_kernel.h"
#include "support.h"

using namespace skybyte;

namespace {

/** Best observed events/sec, keyed by (kernel, scenario). */
std::map<std::pair<std::string, std::string>, double> g_evps;

/**
 * One self-rescheduling chain. Copies of this struct are the scheduled
 * callbacks; the xorshift state makes stride sequences deterministic
 * per chain yet varied across events.
 */
template <typename Q>
struct ChainEvent
{
    Q *eq;
    std::uint64_t *executed;
    std::uint64_t target;
    Tick maxStride;
    Tick farStride; ///< 0 = never leave the near window
    std::uint32_t rng;

    void
    operator()()
    {
        if (++*executed >= target)
            return;
        rng ^= rng << 13;
        rng ^= rng >> 17;
        rng ^= rng << 5;
        Tick d = 1 + (rng % maxStride);
        if (farStride != 0 && rng % 100 < 5)
            d = farStride + rng % 1024;
        eq->scheduleAfter(d, *this);
    }
};

/** Run @p target_events through a fresh kernel; returns events/sec. */
template <typename Q>
double
runChains(std::uint64_t target_events, unsigned nchains, Tick max_stride,
          Tick far_stride)
{
    Q eq;
    std::uint64_t executed = 0;
    for (unsigned i = 0; i < nchains; ++i) {
        eq.schedule(i, ChainEvent<Q>{&eq, &executed, target_events,
                                     max_stride, far_stride,
                                     0x9e3779b9u + i});
    }
    const auto t0 = std::chrono::steady_clock::now();
    while (eq.step()) {
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    benchmark::DoNotOptimize(executed);
    return secs > 0 ? static_cast<double>(executed) / secs : 0.0;
}

template <typename Q>
void
benchScenario(benchmark::State &state, const std::string &kernel,
              const std::string &scenario, Tick max_stride,
              Tick far_stride)
{
    constexpr std::uint64_t kEvents = 2'000'000;
    constexpr unsigned kChains = 128;
    double best = 0;
    for (auto _ : state) {
        const double evps =
            runChains<Q>(kEvents, kChains, max_stride, far_stride);
        best = std::max(best, evps);
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(kEvents));
    }
    auto &slot = g_evps[{kernel, scenario}];
    slot = std::max(slot, best);
    state.counters["events_per_sec"] = best;
}

void
registerScenario(const std::string &scenario, Tick max_stride,
                 Tick far_stride)
{
    benchmark::RegisterBenchmark(
        ("calendar/" + scenario).c_str(),
        [=](benchmark::State &s) {
            benchScenario<EventQueue>(s, "calendar", scenario,
                                      max_stride, far_stride);
        });
    benchmark::RegisterBenchmark(
        ("legacy/" + scenario).c_str(),
        [=](benchmark::State &s) {
            benchScenario<LegacyEventQueue>(s, "legacy", scenario,
                                            max_stride, far_stride);
        });
}

// ---------------------------------------------------------------------
// Multi-lane scaling scenario
// ---------------------------------------------------------------------

/** Lane-group count: models a large multi-core config (64 cores). */
constexpr std::size_t kLaneGroups = 64;
/** Cross-group hop latency: flash read scale, so W = L = 48000. */
constexpr Tick kLaneCrossLatency = 48'000;
/** Events per group; total events ~= kLaneGroups * this. */
constexpr std::uint64_t kLanePerGroupEvents = 60'000;

/**
 * Per-group counters, cache-line padded: each group is executed by
 * exactly one worker inside a window, but neighbouring groups run
 * concurrently on other workers.
 */
struct alignas(64) LaneGroupStat
{
    std::uint64_t executed = 0;
    std::uint64_t checksum = 0;
};

/**
 * One lane chain: like ChainEvent, but with a heavier payload (64
 * xorshift rounds, standing in for the cache/MSHR work a simulator
 * event does) and a 1/64 chance of hopping to another lane group via
 * post(). The chain dies when its current group reaches its event
 * budget; which groups end where is deterministic, so the total event
 * count and the per-group checksums are too.
 */
struct LaneChainEvent
{
    LaneEventKernel *k;
    LaneGroupStat *stats; ///< [k->groups()]
    std::uint32_t group;
    std::uint32_t rng;

    void
    operator()()
    {
        LaneGroupStat &st = stats[group];
        if (st.executed >= kLanePerGroupEvents)
            return;
        ++st.executed;
        std::uint32_t x = rng;
        for (int r = 0; r < 64; ++r) {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
        }
        rng = x;
        st.checksum ^= (st.checksum << 1) ^ x
                       ^ static_cast<std::uint64_t>(k->lane(group).now());
        if (x % 64 == 0 && k->groups() > 1) {
            LaneChainEvent next = *this;
            next.group = static_cast<std::uint32_t>(
                (group + 1 + (x >> 6) % (k->groups() - 1)) % k->groups());
            k->post(group, next.group,
                    k->lane(group).now() + kLaneCrossLatency + x % 1024,
                    next);
            return;
        }
        k->lane(group).scheduleAfter(1 + x % 2048, *this);
    }
};

struct LaneRun
{
    double evps = 0;
    std::uint64_t events = 0;
    std::uint64_t checksum = 0;
    std::uint64_t barriers = 0;
};

/** Run the lane scenario once at @p workers; returns best-effort evps. */
LaneRun
runLaneChains(std::size_t workers)
{
    LaneEventKernel k(kLaneGroups, workers,
                      LaneWindow::fromLatencies({kLaneCrossLatency}));
    std::vector<LaneGroupStat> stats(kLaneGroups);
    for (std::size_t g = 0; g < kLaneGroups; ++g) {
        k.schedule(g, static_cast<Tick>(g),
                   LaneChainEvent{&k, stats.data(),
                                  static_cast<std::uint32_t>(g),
                                  0x9e3779b9u
                                      + static_cast<std::uint32_t>(g)});
    }
    const auto t0 = std::chrono::steady_clock::now();
    k.run();
    const auto t1 = std::chrono::steady_clock::now();
    LaneRun run;
    for (std::size_t g = 0; g < kLaneGroups; ++g) {
        run.events += stats[g].executed;
        run.checksum = run.checksum * 1315423911u ^ stats[g].checksum;
    }
    run.barriers = k.barriers();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    run.evps = secs > 0 ? static_cast<double>(run.events) / secs : 0.0;
    benchmark::DoNotOptimize(run.checksum);
    return run;
}

/**
 * Strip `--lanes=W[,W,...]` before benchmark::Initialize. Returns the
 * worker counts to sweep (always starting with 1, the speedup
 * baseline); defaults to 1,2,4 when the flag is absent.
 */
std::vector<std::size_t>
extractLaneWorkers(int &argc, char **argv)
{
    std::string spec = "1,2,4";
    int out_argc = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--lanes=", 0) == 0)
            spec = arg.substr(8);
        else
            argv[out_argc++] = argv[i];
    }
    argc = out_argc;

    std::vector<std::size_t> workers{1};
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const std::size_t comma = spec.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end > begin) {
            const std::string tok = spec.substr(begin, end - begin);
            char *tail = nullptr;
            const unsigned long v = std::strtoul(tok.c_str(), &tail, 10);
            if (tail == nullptr || *tail != '\0' || v < 1 || v > 64) {
                std::fprintf(stderr,
                             "bench_kernel_hotpath: bad --lanes value"
                             " '%s' (want 1..64)\n",
                             tok.c_str());
                std::exit(1);
            }
            if (v != 1)
                workers.push_back(v);
        }
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return workers;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        skybyte::bench::extractJsonPath(argc, argv);
    const std::vector<std::size_t> lane_workers =
        extractLaneWorkers(argc, argv);

    registerScenario("near", 256, 0);
    registerScenario("spread", EventQueue::kWindowTicks, 0);
    registerScenario("mixed", 2048, 100'000);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n================================================================\n");
    std::printf("Kernel hot path: events/sec, calendar vs seed "
                "priority_queue kernel\n");
    std::printf("================================================================\n");
    std::printf("%-10s %16s %16s %10s\n", "scenario", "calendar",
                "legacy", "speedup");
    double log_sum = 0;
    int n = 0;
    bool all_pass = true;
    for (const char *scenario : {"near", "spread", "mixed"}) {
        const double neu = g_evps[{"calendar", scenario}];
        const double old = g_evps[{"legacy", scenario}];
        const double ratio = old > 0 ? neu / old : 0.0;
        std::printf("%-10s %16.0f %16.0f %9.2fx\n", scenario, neu, old,
                    ratio);
        if (ratio > 0) {
            log_sum += std::log(ratio);
            ++n;
        }
        if (ratio < 2.0)
            all_pass = false;
    }
    const double geomean = n > 0 ? std::exp(log_sum / n) : 0.0;
    std::printf("%-10s %33s %9.2fx\n", "geomean", "", geomean);
    std::printf("target: >= 2.00x per scenario — %s\n",
                all_pass ? "PASS" : "FAIL");

    // Multi-lane scaling: best-of-2 per worker count, checksum pinned
    // across all of them (the in-bench determinism gate).
    std::printf("\n================================================================\n");
    std::printf("Multi-lane kernel: %zu groups, cross-latency %llu"
                " ticks (window = L)\n",
                kLaneGroups,
                static_cast<unsigned long long>(kLaneCrossLatency));
    std::printf("================================================================\n");
    std::printf("%-8s %16s %10s %10s\n", "workers", "events/sec",
                "speedup", "barriers");
    std::map<std::size_t, LaneRun> lane_runs;
    for (const std::size_t w : lane_workers) {
        LaneRun best = runLaneChains(w);
        const LaneRun again = runLaneChains(w);
        if (again.checksum != best.checksum) {
            std::printf("lane checksum unstable at workers=%zu — FAIL\n",
                        w);
            return 1;
        }
        if (again.evps > best.evps)
            best = again;
        lane_runs[w] = best;
    }
    const double lane_base = lane_runs[1].evps;
    double lane_best_speedup = 0;
    bool lane_deterministic = true;
    for (const std::size_t w : lane_workers) {
        const LaneRun &r = lane_runs[w];
        const double s = lane_base > 0 ? r.evps / lane_base : 0.0;
        lane_best_speedup = std::max(lane_best_speedup, s);
        if (r.checksum != lane_runs[1].checksum
            || r.events != lane_runs[1].events)
            lane_deterministic = false;
        std::printf("%-8zu %16.0f %9.2fx %10llu\n", w, r.evps, s,
                    static_cast<unsigned long long>(r.barriers));
    }
    std::printf("checksum 0x%016llx, %llu events — %s across worker"
                " counts\n",
                static_cast<unsigned long long>(lane_runs[1].checksum),
                static_cast<unsigned long long>(lane_runs[1].events),
                lane_deterministic ? "identical" : "MISMATCH");
    if (!lane_deterministic)
        all_pass = false;
    // The speedup gate only binds where the host can actually run the
    // requested workers in parallel; a saturated CI runner still gates
    // on determinism above.
    const std::size_t max_workers =
        *std::max_element(lane_workers.begin(), lane_workers.end());
    const unsigned hw = std::thread::hardware_concurrency();
    if (max_workers >= 2 && hw >= 2 * max_workers) {
        std::printf("target: > 1.00x best lane speedup (%u hw threads)"
                    " — %s\n",
                    hw, lane_best_speedup > 1.0 ? "PASS" : "FAIL");
        if (lane_best_speedup <= 1.0)
            all_pass = false;
    } else {
        std::printf("lane speedup gate skipped (%u hw threads for"
                    " %zu workers)\n",
                    hw, max_workers);
    }

    if (!json_path.empty()) {
        // Machine-readable events/sec per (kernel, scenario): the CI
        // bench job archives this per commit so the perf trajectory
        // accumulates alongside BENCH_request_path.json. Committed
        // temp+rename like every other report writer.
        std::ostringstream out;
        out << "{\n  \"bench\": \"kernel_hotpath\",\n"
            << "  \"unit\": \"events_per_sec\",\n  \"scenarios\": {\n";
        int i = 0;
        for (const char *scenario : {"near", "spread", "mixed"}) {
            out << "    \"" << scenario << "\": {\"calendar\": "
                << g_evps[{"calendar", scenario}] << ", \"legacy\": "
                << g_evps[{"legacy", scenario}] << "}"
                << (++i < 3 ? ",\n" : "\n");
        }
        out << "  },\n  \"lanes\": {\n    \"groups\": " << kLaneGroups
            << ",\n    \"window_ticks\": " << kLaneCrossLatency
            << ",\n    \"events_per_sec\": {";
        i = 0;
        for (const std::size_t w : lane_workers) {
            out << (i++ > 0 ? ", " : "") << "\"" << w
                << "\": " << lane_runs[w].evps;
        }
        out << "},\n    \"scaling\": {";
        i = 0;
        for (const std::size_t w : lane_workers) {
            out << (i++ > 0 ? ", " : "") << "\"" << w << "\": "
                << (lane_base > 0 ? lane_runs[w].evps / lane_base : 0.0);
        }
        // "scaling", not "speedup": the lane curve depends on host
        // cores, and the CI benchdiff gate pins --keys=speedup.
        out << "},\n    \"deterministic\": "
            << (lane_deterministic ? 1 : 0) << "\n  },\n"
            << "  \"speedup_geomean\": " << geomean << "\n}\n";
        try {
            skybyte::writeFileAtomic(json_path, out.str());
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         json_path.c_str(), e.what());
        }
    }
    // Nonzero exit makes the CI smoke step fail with the gate; the
    // ratio compares two kernels in the same process, so host speed
    // cancels out and the margin (~4x vs 2x) absorbs runner noise.
    return all_pass ? 0 : 1;
}
