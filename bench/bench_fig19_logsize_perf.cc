/**
 * @file
 * Figure 19: SkyByte performance with varying write log size, keeping
 * the total SSD DRAM (log + data cache) fixed. Paper: a log of ~1/8 of
 * SSD DRAM already provides a sufficient coalescing window; write-heavy
 * workloads with temporal locality (srad, tpcc) are most sensitive.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
/** Log sizes in KB; the paper's 0.5-256 MB sweep at 1/64 scale. */
const std::vector<std::uint64_t> kLogKb = {16, 64, 256, 1024, 2048,
                                           4096};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : paperWorkloadNames()) {
        for (std::uint64_t kb : kLogKb) {
            addSweepPoint(w, std::to_string(kb),
                          logSizeSweepPoint(kb, w, opt));
        }
    }
    registerSweep("fig19/logsize_perf");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 19: normalized execution time vs write log "
                    "size (KB; total SSD DRAM fixed; 1024 KB = default "
                    "1/8 split = 1.0)");
        std::vector<std::string> cols;
        for (std::uint64_t kb : kLogKb)
            cols.push_back(std::to_string(kb));
        printNormalized(paperWorkloadNames(), cols, "1024",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
