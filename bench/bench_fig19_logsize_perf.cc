/**
 * @file
 * Figure 19: SkyByte performance with varying write log size, keeping
 * the total SSD DRAM (log + data cache) fixed. Paper: a log of ~1/8 of
 * SSD DRAM already provides a sufficient coalescing window; write-heavy
 * workloads with temporal locality (srad, tpcc) are most sensitive.
 * Point grid: registry sweep "fig19".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig19");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 19: normalized execution time vs write log "
                    "size (KB; total SSD DRAM fixed; 1024 KB = default "
                    "1/8 split = 1.0)");
        printNormalized(sweepAxisLabels("fig19", 0),
                        sweepAxisLabels("fig19", 1), "1024",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
    });
}
