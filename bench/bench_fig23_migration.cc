/**
 * @file
 * Figure 23: alternative page-migration mechanisms — SkyByte-C (no
 * migration), AstriFlash-CXL, TPP-based SkyByte-CT / SkyByte-WCT, and
 * SkyByte-CP / SkyByte-Full. Paper: SkyByte-CP beats AstriFlash-CXL by
 * ~1.09x (hot-page-only, fully-associative host use), SkyByte-WCT
 * beats SkyByte-CT by 1.10x (the write log composes with TPP), and
 * SkyByte-Full wins overall.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kVariants = {
    "SkyByte-C", "AstriFlash-CXL", "SkyByte-CT",
    "SkyByte-CP", "SkyByte-WCT",   "SkyByte-Full"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : paperWorkloadNames()) {
        for (const auto &v : kVariants) {
            registerSim(w, v, [w, v, opt] {
                SimConfig cfg = makeBenchConfig(v);
                if (v == "AstriFlash-CXL") {
                    // User-level switches are much cheaper than an OS
                    // context switch [23].
                    cfg.policy.ctxSwitchOverhead =
                        cfg.policy.astriSwitchOverhead;
                }
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 23: page migration mechanisms — execution "
                    "time normalized to SkyByte-C (lower is better)");
        printNormalized(paperWorkloadNames(), kVariants, "SkyByte-C",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        std::printf("\nPromotions (pages moved to host DRAM):\n");
        for (const auto &w : paperWorkloadNames()) {
            std::printf("  %-12s", w.c_str());
            for (const auto &v : kVariants) {
                std::printf(" %10lu", static_cast<unsigned long>(
                                          resultAt(w, v).promotions));
            }
            std::printf("\n");
        }
    });
}
