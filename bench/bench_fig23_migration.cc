/**
 * @file
 * Figure 23: alternative page-migration mechanisms — SkyByte-C (no
 * migration), AstriFlash-CXL, TPP-based SkyByte-CT / SkyByte-WCT, and
 * SkyByte-CP / SkyByte-Full. Paper: SkyByte-CP beats AstriFlash-CXL by
 * ~1.09x (hot-page-only, fully-associative host use), SkyByte-WCT
 * beats SkyByte-CT by 1.10x (the write log composes with TPP), and
 * SkyByte-Full wins overall. Point grid: registry sweep "fig23".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig23");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("fig23", 0);
        const std::vector<std::string> variants =
            sweepAxisLabels("fig23", 1);
        printHeader("Figure 23: page migration mechanisms — execution "
                    "time normalized to SkyByte-C (lower is better)");
        printNormalized(workloads, variants, "SkyByte-C",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        std::printf("\nPromotions (pages moved to host DRAM):\n");
        for (const auto &w : workloads) {
            std::printf("  %-12s", w.c_str());
            for (const auto &v : variants) {
                std::printf(" %10lu", static_cast<unsigned long>(
                                          resultAt(w, v).promotions));
            }
            std::printf("\n");
        }
    });
}
