/**
 * @file
 * Figure 4: execution-time boundedness breakdown (memory vs compute) for
 * DRAM vs CXL-SSD. Paper: memory-bounded share grows from 62.9-98.7%
 * (DRAM) to 77-99.8% (CXL-SSD). Point grid: registry sweep "fig04".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig04");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 4: cycles bounded by memory vs compute (%)");
        std::printf("%-12s %22s %22s\n", "workload", "DRAM mem/comp",
                    "CXL-SSD mem/comp");
        for (const auto &w : sweepAxisLabels("fig04", 0)) {
            auto pct = [](const SimResult &r) {
                const double busy = static_cast<double>(
                    r.computeTicks + r.memStallTicks + r.ctxSwitchTicks);
                return busy > 0 ? 100.0
                                      * static_cast<double>(r.memStallTicks)
                                      / busy
                                : 0.0;
            };
            const double dram_mem = pct(resultAt(w, "DRAM-Only"));
            const double cssd_mem = pct(resultAt(w, "Base-CSSD"));
            std::printf("%-12s %10.1f /%9.1f %11.1f /%9.1f\n", w.c_str(),
                        dram_mem, 100.0 - dram_mem, cssd_mem,
                        100.0 - cssd_mem);
        }
    });
}
