/**
 * @file
 * Ablation: fixed-latency DRAM timing (the paper folds DRAM service
 * into calibrated constants) vs the bank/row-buffer model built from
 * Table II's speed grades (DDR5-4800 36-38-38 for the host, LPDDR4-3200
 * 16-18-18 for the SSD DRAM). If the end-to-end conclusions moved with
 * the DRAM model, the simplification would be unsound; this bench shows
 * they do not — flash latency dominates every CXL-SSD variant.
 * Point grid: registry sweep "abl_dram_model".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_dram_model");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("abl_dram_model", 0);
        printHeader("Ablation: DRAM timing model (normalized exec "
                    "time; <variant>/fixed = 1.0 per variant)");
        std::printf("%-16s%18s%18s\n", "workload", "Base banked/fixed",
                    "Full banked/fixed");
        for (const auto &w : workloads) {
            const double base_ratio =
                static_cast<double>(
                    resultAt(w, "Base-CSSD/banked").execTime)
                / static_cast<double>(
                    resultAt(w, "Base-CSSD/fixed").execTime);
            const double full_ratio =
                static_cast<double>(
                    resultAt(w, "SkyByte-Full/banked").execTime)
                / static_cast<double>(
                    resultAt(w, "SkyByte-Full/fixed").execTime);
            std::printf("%-16s%18.3f%18.3f\n", w.c_str(), base_ratio,
                        full_ratio);
        }
        printHeader("Speedup Full over Base under each DRAM model "
                    "(the headline claim must survive the model swap)");
        std::printf("%-16s%14s%14s\n", "workload", "fixed", "banked");
        for (const auto &w : workloads) {
            const double fixed =
                static_cast<double>(
                    resultAt(w, "Base-CSSD/fixed").execTime)
                / static_cast<double>(
                    resultAt(w, "SkyByte-Full/fixed").execTime);
            const double banked =
                static_cast<double>(
                    resultAt(w, "Base-CSSD/banked").execTime)
                / static_cast<double>(
                    resultAt(w, "SkyByte-Full/banked").execTime);
            std::printf("%-16s%14.2f%14.2f\n", w.c_str(), fixed,
                        banked);
        }
    });
}
