/**
 * @file
 * Ablation: huge-page (2 MB) migration through the two-level PLB (§IV)
 * vs plain 4 KB migration (§III-C) vs no migration. Huge pages amortize
 * the MSI-X/PTE/TLB overheads over 512 chunks and pull whole regions of
 * a hot working set at once, but they occupy the host budget in coarse
 * units and copy cold chunks too, so sparse workloads regress — the
 * trade the §IV design discussion implies. A scaled-down 64 KB region
 * column separates "coarser than 4 KB" effects from "2 MB is too big at
 * bench scale". Point grid: registry sweep "abl_hugepage".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("abl_hugepage");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> workloads =
            sweepAxisLabels("abl_hugepage", 0);
        const std::vector<std::string> cols =
            sweepAxisLabels("abl_hugepage", 1);
        printHeader("Ablation: migration granularity (§IV huge pages; "
                    "normalized exec time, 4KB-pages = 1.0)");
        printNormalized(workloads, cols, "4KB-pages",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Promotions completed (regions)");
        printMatrix("workload", workloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.promotions);
                    },
                    "%12.0f");
    });
}
