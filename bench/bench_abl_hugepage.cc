/**
 * @file
 * Ablation: huge-page (2 MB) migration through the two-level PLB (§IV)
 * vs plain 4 KB migration (§III-C) vs no migration. Huge pages amortize
 * the MSI-X/PTE/TLB overheads over 512 chunks and pull whole regions of
 * a hot working set at once, but they occupy the host budget in coarse
 * units and copy cold chunks too, so sparse workloads regress — the
 * trade the §IV design discussion implies. A scaled-down 64 KB region
 * column separates "coarser than 4 KB" effects from "2 MB is too big at
 * bench scale".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<std::string> kWorkloads = {"bc", "tpcc", "ycsb",
                                             "radix"};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    struct Mode
    {
        const char *label;
        std::uint64_t hugeBytes;
        bool promote;
    };
    const std::vector<Mode> modes = {
        {"no-migration", 0, false},
        {"4KB-pages", 0, true},
        {"64KB-regions", 64ULL * 1024, true},
        {"2MB-huge", 2ULL * 1024 * 1024, true},
    };
    for (const auto &w : kWorkloads) {
        for (const Mode &mode : modes) {
            registerSim(w, mode.label, [w, mode, opt] {
                SimConfig cfg = makeBenchConfig(
                    mode.promote ? "SkyByte-Full" : "SkyByte-W");
                cfg.hostMem.hugePageBytes = mode.hugeBytes;
                return runConfig(cfg, w, opt);
            });
        }
    }
    return runBenchMain(argc, argv, [] {
        printHeader("Ablation: migration granularity (§IV huge pages; "
                    "normalized exec time, 4KB-pages = 1.0)");
        std::vector<std::string> cols;
        cols.reserve(4);
        for (const char *label :
             {"no-migration", "4KB-pages", "64KB-regions", "2MB-huge"})
            cols.emplace_back(label);
        printNormalized(kWorkloads, cols, "4KB-pages",
                        [](const SimResult &r) {
                            return static_cast<double>(r.execTime);
                        });
        printHeader("Promotions completed (regions)");
        printMatrix("workload", kWorkloads, cols,
                    [](const SimResult &r) {
                        return static_cast<double>(r.promotions);
                    },
                    "%12.0f");
    });
}
