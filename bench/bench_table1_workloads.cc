/**
 * @file
 * Table I: workload characteristics — memory footprint, write ratio and
 * LLC MPKI — measured from the synthetic generators and compared with
 * the paper's published values. Footprints are 1/64 scale by design;
 * write ratios should match closely; MPKI should preserve the paper's
 * ordering (tpcc lowest ... bfs-dense highest). Point grid: registry
 * sweep "table1".
 */

#include "support.h"

#include "trace/workload.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("table1");
    return runBenchMain(argc, argv, [] {
        printHeader("Table I: workload characteristics "
                    "(measured vs paper)");
        std::printf("%-10s %-9s %12s %12s %9s %9s %9s %9s\n", "name",
                    "suite", "footprint", "paper(GB)", "wr%", "paper%",
                    "MPKI", "paperMPKI");
        for (const auto &w : sweepAxisLabels("table1", 0)) {
            const WorkloadInfo &info = workloadInfo(w);
            const SimResult &r = resultAt(w, "Base-CSSD");

            // Measured write ratio of the generated trace.
            WorkloadParams params;
            params.numThreads = 1;
            params.instrPerThread = 200'000;
            auto wl = makeWorkload(w, params);
            std::uint64_t writes = 0, mem_ops = 0;
            TraceCursor cursor(*wl, 0);
            TraceRecord rec;
            while (cursor.next(rec)) {
                mem_ops++;
                writes += rec.isWrite ? 1 : 0;
            }
            const double footprint_mb =
                static_cast<double>(wl->footprintBytes()) / (1024 * 1024);

            std::printf("%-10s %-9s %9.0fMB %12.2f %8.1f%% %8.1f%% "
                        "%9.1f %9.1f\n",
                        w.c_str(), info.suite.c_str(), footprint_mb,
                        info.paperFootprintGb,
                        100.0 * static_cast<double>(writes)
                            / static_cast<double>(mem_ops),
                        100.0 * info.paperWriteRatio, r.llcMpki(),
                        info.paperLlcMpki);
        }
        std::printf("\n(footprints are deliberately 1/64 of the paper's;"
                    " MPKI is measured at bench scale so absolute values"
                    " differ — the cross-workload ordering is the "
                    "reproduction target)\n");
    });
}
