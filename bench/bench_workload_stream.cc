/**
 * @file
 * Front-end microbenchmark for the batched workload-stream API: drains
 * generator records through (a) the batched TraceBatch contract — one
 * virtual refill per 256 records, consumption is a flat pointer walk —
 * and (b) the seed's per-record contract, reproduced by
 * SingleRecordWorkload (one virtual call + batch bookkeeping per
 * record). Reported records/sec quantify how much of the front-end
 * profile the generator boundary costs; the end-of-run gate asserts
 * the batched path is not slower, i.e. the virtual boundary no longer
 * dominates generation.
 *
 * Run: ./bench_workload_stream [--benchmark_min_time=...]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "trace/workload.h"

using namespace skybyte;

namespace {

constexpr std::uint64_t kInstrPerThread = 4'000'000;

WorkloadParams
benchParams()
{
    WorkloadParams params;
    params.numThreads = 1;
    params.instrPerThread = kInstrPerThread;
    params.footprintBytes = 64ULL * 1024 * 1024;
    return params;
}

/** Consume every record of thread 0, returning a checksum + count. */
std::pair<std::uint64_t, std::uint64_t>
drain(Workload &workload)
{
    TraceBatch batch;
    std::uint64_t checksum = 0;
    std::uint64_t records = 0;
    std::uint32_t n;
    while ((n = workload.refill(0, batch)) != 0) {
        for (std::uint32_t i = 0; i < n; ++i) {
            const TraceRecord &rec = batch.records[i];
            checksum ^= rec.vaddr + rec.computeOps
                        + (rec.isWrite ? 1 : 0);
        }
        records += n;
    }
    return {checksum, records};
}

/** records/sec of the batched and per-record paths, keyed by spec. */
std::map<std::string, std::pair<double, double>> &
ratePerSpec()
{
    static std::map<std::string, std::pair<double, double>> rates;
    return rates;
}

void
BM_Stream(benchmark::State &state, const std::string &spec, bool batched)
{
    std::uint64_t records = 0;
    double seconds = 0;
    for (auto _ : state) {
        std::unique_ptr<Workload> workload =
            makeWorkload(spec, benchParams());
        if (!batched) {
            workload = std::make_unique<SingleRecordWorkload>(
                std::move(workload));
        }
        const auto start = std::chrono::steady_clock::now();
        auto [checksum, n] = drain(*workload);
        const auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(checksum);
        records += n;
        const double elapsed =
            std::chrono::duration<double>(end - start).count();
        seconds += elapsed;
        state.SetIterationTime(elapsed);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(records));
    const double rate =
        static_cast<double>(records) / std::max(seconds, 1e-12);
    auto &slot = ratePerSpec()[spec];
    (batched ? slot.first : slot.second) = rate;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string specs[] = {
        "ycsb", "bc", "tpcc",
        "zipf:theta=0.99", "scan:stride=64", "ptrchase:chain=64",
    };
    for (const std::string &spec : specs) {
        for (const bool batched : {true, false}) {
            benchmark::RegisterBenchmark(
                ("stream/" + spec
                 + (batched ? "/batched" : "/per-record"))
                    .c_str(),
                [spec, batched](benchmark::State &s) {
                    BM_Stream(s, spec, batched);
                })
                ->UseManualTime()
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Gate: the batched walk must not lose to per-record dispatch; the
    // summary shows what the virtual boundary costs per workload.
    bool ok = true;
    std::printf("\n%-24s %14s %14s %8s\n", "workload",
                "batched(Mr/s)", "per-rec(Mr/s)", "speedup");
    for (const auto &[spec, rates] : ratePerSpec()) {
        const auto [batched, per_record] = rates;
        if (batched <= 0 || per_record <= 0)
            continue;
        const double speedup = batched / per_record;
        std::printf("%-24s %14.1f %14.1f %7.2fx\n", spec.c_str(),
                    batched / 1e6, per_record / 1e6, speedup);
        if (speedup < 0.9)
            ok = false;
    }
    if (!ok) {
        std::fprintf(stderr, "bench_workload_stream: batched path lost "
                             "to per-record dispatch\n");
        return 1;
    }
    return 0;
}
