/**
 * @file
 * Microbenchmark of the SSD controller request path: host-visible
 * requests/sec of SsdController::read/write driven straight from the
 * event loop, with no CPU model in front, so controller-side costs
 * (callback storage, fetch records, hash indices, page copies)
 * dominate the profile.
 *
 * Scenarios sweep the hit/miss/log mix the paper's workloads produce:
 *
 *  - hit_read:   reads served from the SSD DRAM data cache (R2)
 *  - hit_log:    reads served from the write-log index (R1)
 *  - miss_read:  reads fetching pages from flash (R3, fetch records)
 *  - write_log:  log appends incl. background compaction (W1-W3)
 *  - write_cssd: Base-CSSD write hits + write-allocate RMW misses
 *  - mixed:      70/30 read/write over a hot/cold split (log enabled)
 *
 * Each scenario reports its best observed requests/sec; the trailing
 * table and the optional --json report (BENCH_request_path.json in CI)
 * are the inputs to the request-path perf trajectory. Run the same
 * binary source against two checkouts to compare controller versions:
 * the workload stream is deterministic (fixed xorshift seeds), so the
 * simulated work is identical and wall-clock ratios are meaningful.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "common/fs.h"
#include "core/ssd_controller.h"
#include "support.h"

using namespace skybyte;

namespace {

/** Best observed requests/sec per scenario. */
std::map<std::string, double> g_rps;

/** Deterministic 64-bit xorshift stream. */
struct XorShift
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
    bool chance(std::uint32_t pct) { return next() % 100 < pct; }
};

/** A controller + link + queue with bench-scale geometry. */
struct Device
{
    explicit Device(bool write_log, std::uint64_t cache_pages,
                    std::uint64_t log_lines)
    {
        cfg.policy.writeLogEnable = write_log;
        cfg.policy.deviceTriggeredCtxSwitch = false;
        cfg.flash.channels = 8;
        cfg.flash.chipsPerChannel = 2;
        cfg.flash.diesPerChip = 2;
        cfg.flash.blocksPerPlane = 64;
        cfg.flash.pagesPerBlock = 64;
        cfg.ssdCache.dataCacheBytes = cache_pages * kPageBytes;
        cfg.ssdCache.writeLogBytes = log_lines * kCachelineBytes;
        cfg.ssdCache.baseCssdPrefetch = false;
        link = std::make_unique<CxlLink>(eq, cfg.cxl);
        ssd = std::make_unique<SsdController>(cfg, eq, *link);
    }

    SimConfig cfg;
    EventQueue eq;
    std::unique_ptr<CxlLink> link;
    std::unique_ptr<SsdController> ssd;
};

constexpr std::uint64_t kRequests = 400'000;
constexpr std::uint64_t kDrainBatch = 64;

/** Issue @p n requests through @p issue, draining every kDrainBatch. */
template <typename IssueFn>
double
drive(Device &dev, std::uint64_t n, IssueFn &&issue)
{
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        issue(i);
        if (i % kDrainBatch == kDrainBatch - 1)
            dev.eq.run();
    }
    dev.eq.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    return secs > 0 ? static_cast<double>(n) / secs : 0.0;
}

double
runHitRead()
{
    Device dev(true, 8192, 16384);
    constexpr std::uint64_t kPages = 4096;
    for (std::uint64_t lpn = 0; lpn < kPages; ++lpn)
        dev.ssd->warmFill(lpn);
    XorShift rng{0x9e3779b97f4a7c15ULL};
    std::uint64_t sink = 0;
    return drive(dev, kRequests, [&](std::uint64_t) {
        const Addr addr = rng.below(kPages) * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        dev.ssd->read(addr, dev.eq.now(),
                      [&sink](const MemResponse &r) { sink += r.value; });
    });
}

double
runHitLog()
{
    Device dev(true, 64, 16384);
    // Populate the log with 8K distinct lines (cache too small to
    // shadow them), then read them back: R1 log-index hits.
    constexpr std::uint64_t kLines = 8192;
    for (std::uint64_t i = 0; i < kLines; ++i) {
        const Addr addr = i * kCachelineBytes;
        dev.ssd->write(addr, i + 1, dev.eq.now());
        if (i % kDrainBatch == 0)
            dev.eq.run();
    }
    dev.eq.run();
    XorShift rng{0x2545f4914f6cdd1dULL};
    std::uint64_t sink = 0;
    return drive(dev, kRequests, [&](std::uint64_t) {
        const Addr addr = rng.below(kLines) * kCachelineBytes;
        dev.ssd->read(addr, dev.eq.now(),
                      [&sink](const MemResponse &r) { sink += r.value; });
    });
}

double
runMissRead()
{
    Device dev(true, 512, 16384);
    constexpr std::uint64_t kPages = 24576;
    XorShift rng{0x853c49e6748fea9bULL};
    std::uint64_t sink = 0;
    // Random reads over a footprint 48x the cache: mostly R3 fetches.
    return drive(dev, kRequests / 8, [&](std::uint64_t) {
        const Addr addr = rng.below(kPages) * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        dev.ssd->read(addr, dev.eq.now(),
                      [&sink](const MemResponse &r) { sink += r.value; });
    });
}

double
runWriteLog()
{
    Device dev(true, 2048, 8192);
    constexpr std::uint64_t kPages = 4096;
    XorShift rng{0xda942042e4dd58b5ULL};
    // Write stream that cycles the log through compactions (W1-W3 plus
    // the Figure 13 background drain).
    return drive(dev, kRequests / 2, [&](std::uint64_t) {
        const Addr addr = rng.below(kPages) * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        dev.ssd->write(addr, rng.s | 1, dev.eq.now());
    });
}

double
runWriteCssd()
{
    Device dev(false, 8192, 0);
    constexpr std::uint64_t kHotPages = 4096;
    constexpr std::uint64_t kColdPages = 16384;
    for (std::uint64_t lpn = 0; lpn < kHotPages; ++lpn)
        dev.ssd->warmFill(lpn);
    XorShift rng{0xaf251af3b0f025b5ULL};
    // 95% cached write hits, 5% write-allocate RMW fetches.
    return drive(dev, kRequests / 2, [&](std::uint64_t) {
        const std::uint64_t lpn = rng.chance(95)
                                      ? rng.below(kHotPages)
                                      : kHotPages + rng.below(kColdPages);
        const Addr addr = lpn * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        dev.ssd->write(addr, rng.s | 1, dev.eq.now());
    });
}

double
runMixed()
{
    Device dev(true, 4096, 16384);
    constexpr std::uint64_t kHotPages = 3072;
    constexpr std::uint64_t kColdPages = 32768;
    for (std::uint64_t lpn = 0; lpn < kHotPages; ++lpn)
        dev.ssd->warmFill(lpn);
    XorShift rng{0xd1342543de82ef95ULL};
    std::uint64_t sink = 0;
    // 70/30 read/write; 90% of traffic in the cached hot set.
    return drive(dev, kRequests / 4, [&](std::uint64_t) {
        const std::uint64_t lpn = rng.chance(90)
                                      ? rng.below(kHotPages)
                                      : kHotPages + rng.below(kColdPages);
        const Addr addr = lpn * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        if (rng.chance(70)) {
            dev.ssd->read(addr, dev.eq.now(),
                          [&sink](const MemResponse &r) {
                              sink += r.value;
                          });
        } else {
            dev.ssd->write(addr, rng.s | 1, dev.eq.now());
        }
    });
}

using ScenarioFn = double (*)();

void
benchScenario(benchmark::State &state, const std::string &name,
              ScenarioFn fn)
{
    double best = 0;
    for (auto _ : state) {
        best = std::max(best, fn());
        state.SetItemsProcessed(state.items_processed() + 1);
    }
    auto &slot = g_rps[name];
    slot = std::max(slot, best);
    state.counters["requests_per_sec"] = best;
}

const std::pair<const char *, ScenarioFn> kScenarios[] = {
    {"hit_read", runHitRead},     {"hit_log", runHitLog},
    {"miss_read", runMissRead},   {"write_log", runWriteLog},
    {"write_cssd", runWriteCssd}, {"mixed", runMixed},
};

/** Write the machine-readable report CI archives per commit. */
void
writeJsonReport(const std::string &path, double geomean)
{
    std::ostringstream out;
    out << "{\n  \"bench\": \"request_path\",\n  \"unit\": "
        << "\"requests_per_sec\",\n  \"scenarios\": {\n";
    std::size_t i = 0;
    for (const auto &[name, fn] : kScenarios) {
        (void)fn;
        out << "    \"" << name << "\": " << g_rps[name]
            << (++i < std::size(kScenarios) ? ",\n" : "\n");
    }
    out << "  },\n  \"geomean\": " << geomean << "\n}\n";
    try {
        skybyte::writeFileAtomic(path, out.str());
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     e.what());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        skybyte::bench::extractJsonPath(argc, argv);

    for (const auto &[name, fn] : kScenarios) {
        benchmark::RegisterBenchmark(
            name, [name = std::string(name), fn](benchmark::State &s) {
                benchScenario(s, name, fn);
            });
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::printf("\n=========================================================\n");
    std::printf("Controller request path: requests/sec by scenario\n");
    std::printf("=========================================================\n");
    double log_sum = 0;
    int n = 0;
    for (const auto &[name, fn] : kScenarios) {
        (void)fn;
        const double rps = g_rps[name];
        std::printf("%-12s %16.0f\n", name, rps);
        if (rps > 0) {
            log_sum += std::log(rps);
            ++n;
        }
    }
    const double geomean = n > 0 ? std::exp(log_sum / n) : 0.0;
    std::printf("%-12s %16.0f\n", "geomean", geomean);
    if (!json_path.empty())
        writeJsonReport(json_path, geomean);
    return 0;
}
