/**
 * @file
 * Figure 15: throughput (bars) and SSD bandwidth utilization (lines) of
 * SkyByte-Full as the thread count grows from 8 (= SkyByte-WP baseline)
 * to 48 on 8 cores. Paper: throughput scales with bandwidth utilization
 * until context-switch overhead dominates. Point grid: registry sweep
 * "fig15".
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

int
main(int argc, char **argv)
{
    registerRegistrySweep("fig15");
    return runBenchMain(argc, argv, [] {
        const std::vector<std::string> threads =
            sweepAxisLabels("fig15", 1);
        printHeader("Figure 15: normalized throughput / SSD bandwidth "
                    "vs thread count (8 threads = SkyByte-WP = 1.0)");
        std::printf("%-12s %-6s", "workload", "metric");
        for (const auto &t : threads)
            std::printf("%9s", t.c_str());
        std::printf("\n");
        for (const auto &w : sweepAxisLabels("fig15", 0)) {
            const SimResult &base = resultAt(w, "8");
            std::printf("%-12s %-6s", w.c_str(), "thrpt");
            for (const auto &t : threads) {
                const SimResult &r = resultAt(w, t);
                std::printf("%9.2f", base.throughput() > 0
                                         ? r.throughput()
                                               / base.throughput()
                                         : 0.0);
            }
            std::printf("\n%-12s %-6s", "", "bw");
            for (const auto &t : threads) {
                const SimResult &r = resultAt(w, t);
                std::printf("%9.2f",
                            base.cxlBandwidthGbps() > 0
                                ? r.cxlBandwidthGbps()
                                      / base.cxlBandwidthGbps()
                                : 0.0);
            }
            std::printf("\n");
        }
    });
}
