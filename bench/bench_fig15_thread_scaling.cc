/**
 * @file
 * Figure 15: throughput (bars) and SSD bandwidth utilization (lines) of
 * SkyByte-Full as the thread count grows from 8 (= SkyByte-WP baseline)
 * to 48 on 8 cores. Paper: throughput scales with bandwidth utilization
 * until context-switch overhead dominates.
 */

#include "support.h"

using namespace skybyte;
using namespace skybyte::bench;

namespace {
const std::vector<int> kThreads = {8, 16, 24, 32, 40, 48};
}

int
main(int argc, char **argv)
{
    const ExperimentOptions opt = benchOptions(100'000);
    for (const auto &w : paperWorkloadNames()) {
        // 8 threads = SkyByte-WP (no switching benefit at 1 thread/core).
        {
            ExperimentOptions o = opt;
            o.threadsOverride = 8;
            addSweepPoint(w, "8", makeSweepPoint("SkyByte-WP", w, o));
        }
        for (int t : kThreads) {
            if (t == 8)
                continue;
            ExperimentOptions o = opt;
            o.threadsOverride = t;
            addSweepPoint(w, std::to_string(t),
                          makeSweepPoint("SkyByte-Full", w, o));
        }
    }
    registerSweep("fig15/thread_scaling");
    return runBenchMain(argc, argv, [] {
        printHeader("Figure 15: normalized throughput / SSD bandwidth "
                    "vs thread count (8 threads = SkyByte-WP = 1.0)");
        std::printf("%-12s %-6s", "workload", "metric");
        for (int t : kThreads)
            std::printf("%9d", t);
        std::printf("\n");
        for (const auto &w : paperWorkloadNames()) {
            const SimResult &base = resultAt(w, "8");
            std::printf("%-12s %-6s", w.c_str(), "thrpt");
            for (int t : kThreads) {
                const SimResult &r = resultAt(w, std::to_string(t));
                std::printf("%9.2f", base.throughput() > 0
                                         ? r.throughput()
                                               / base.throughput()
                                         : 0.0);
            }
            std::printf("\n%-12s %-6s", "", "bw");
            for (int t : kThreads) {
                const SimResult &r = resultAt(w, std::to_string(t));
                std::printf("%9.2f",
                            base.cxlBandwidthGbps() > 0
                                ? r.cxlBandwidthGbps()
                                      / base.cxlBandwidthGbps()
                                : 0.0);
            }
            std::printf("\n");
        }
    });
}
