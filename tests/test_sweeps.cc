/**
 * @file
 * Parameterized sensitivity-property sweeps (TEST_P), checking the
 * monotonic trends behind the paper's sensitivity studies hold at test
 * scale for every swept point: NAND families (Fig 22), write-log sizes
 * (Figs 19/20), SSD DRAM sizes (Fig 21), context-switch thresholds
 * (Fig 9) and thread counts (Fig 15).
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace skybyte {
namespace {

ExperimentOptions
sweepOpts()
{
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    opt.footprintBytes = 24ULL * 1024 * 1024;
    return opt;
}

SimConfig
sweepConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 64 * 1024;
    cfg.cpu.llc.sizeBytes = 1024 * 1024;
    cfg.ssdCache.writeLogBytes = 256 * 1024;
    cfg.ssdCache.dataCacheBytes = 1792 * 1024;
    cfg.hostMem.promotedBytesMax = 8ULL * 1024 * 1024;
    return cfg;
}

constexpr Tick kLimit = usToTicks(3'000'000.0);

/** NAND family sweep (Fig 22 / Table IV). */
class NandSweep : public ::testing::TestWithParam<NandType>
{};

TEST_P(NandSweep, SlowerNandNeverSpeedsUpBase)
{
    // ULL2 is not uniformly slower than ULL (its tProg/tBERS are
    // faster, Table IV), so the monotonicity claim only covers SLC/MLC.
    if (GetParam() == NandType::ULL2)
        GTEST_SKIP() << "ULL2 trades read for program latency";
    SimConfig ull = sweepConfig("Base-CSSD");
    SimConfig other = sweepConfig("Base-CSSD");
    other.flash.timing = nandTiming(GetParam());
    System a(ull, "srad", makeParams(ull, sweepOpts()));
    System b(other, "srad", makeParams(other, sweepOpts()));
    const SimResult ra = a.run(kLimit);
    const SimResult rb = b.run(kLimit);
    ASSERT_FALSE(ra.timedOut);
    ASSERT_FALSE(rb.timedOut);
    EXPECT_GE(static_cast<double>(rb.execTime),
              static_cast<double>(ra.execTime) * 0.99);
}

TEST_P(NandSweep, FullCompletesOnEveryFamily)
{
    SimConfig cfg = sweepConfig("SkyByte-Full");
    cfg.flash.timing = nandTiming(GetParam());
    System sys(cfg, "srad", makeParams(cfg, sweepOpts()));
    const SimResult res = sys.run(kLimit);
    EXPECT_FALSE(res.timedOut);
    EXPECT_GT(res.committedInstructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, NandSweep,
                         ::testing::Values(NandType::ULL, NandType::ULL2,
                                           NandType::SLC,
                                           NandType::MLC));

/** Write-log size sweep (Figs 19/20). */
class LogSizeSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LogSizeSweep, RunsCompleteAndLogIsExercised)
{
    SimConfig cfg = sweepConfig("SkyByte-W");
    const std::uint64_t total =
        cfg.ssdCache.writeLogBytes + cfg.ssdCache.dataCacheBytes;
    cfg.ssdCache.writeLogBytes = GetParam();
    cfg.ssdCache.dataCacheBytes = total - GetParam();
    // Enough work that dirty lines overflow the LLC and reach the SSD.
    ExperimentOptions opt = sweepOpts();
    opt.instrPerThread = 80'000;
    System sys(cfg, "srad", makeParams(cfg, opt));
    const SimResult res = sys.run(kLimit);
    ASSERT_FALSE(res.timedOut);
    EXPECT_GT(res.logAppends, 0u);
    // A tiny log must compact; a huge one may never fill.
    if (GetParam() <= 32 * 1024) {
        EXPECT_GT(res.compactions, 0u);
    }
}

TEST_P(LogSizeSweep, BiggerLogNeverProgramsMore)
{
    SimConfig small = sweepConfig("SkyByte-W");
    const std::uint64_t total =
        small.ssdCache.writeLogBytes + small.ssdCache.dataCacheBytes;
    small.ssdCache.writeLogBytes = GetParam();
    small.ssdCache.dataCacheBytes = total - GetParam();

    SimConfig big = sweepConfig("SkyByte-W");
    big.ssdCache.writeLogBytes = GetParam() * 4;
    big.ssdCache.dataCacheBytes = total - GetParam() * 4;

    ExperimentOptions opt = sweepOpts();
    opt.instrPerThread = 80'000;
    System a(small, "srad", makeParams(small, opt));
    System b(big, "srad", makeParams(big, opt));
    const SimResult rs = a.run(kLimit);
    const SimResult rb = b.run(kLimit);
    // Wider coalescing window: the trend is monotone at figure scale
    // (Fig 20); adjacent points can jitter from compaction windowing,
    // so the property only forbids a blow-up.
    EXPECT_LE(rb.flashHostPrograms,
              rs.flashHostPrograms + rs.flashHostPrograms / 2 + 16);
}

INSTANTIATE_TEST_SUITE_P(SizesBytes, LogSizeSweep,
                         ::testing::Values(8 * 1024, 32 * 1024,
                                           128 * 1024, 512 * 1024));

/** Context-switch threshold sweep (Fig 9). */
class ThresholdSweep : public ::testing::TestWithParam<double>
{};

TEST_P(ThresholdSweep, TwoMicrosecondsIsNeverWorse)
{
    SimConfig best = sweepConfig("SkyByte-Full");
    best.policy.csThreshold = usToTicks(2.0);
    SimConfig other = sweepConfig("SkyByte-Full");
    other.policy.csThreshold = usToTicks(GetParam());
    System a(best, "bfs-dense", makeParams(best, sweepOpts()));
    System b(other, "bfs-dense", makeParams(other, sweepOpts()));
    const SimResult ra = a.run(kLimit);
    const SimResult rb = b.run(kLimit);
    ASSERT_FALSE(ra.timedOut);
    ASSERT_FALSE(rb.timedOut);
    // Fig 9: 2 us is the sweet spot; allow 5% noise.
    EXPECT_LE(static_cast<double>(ra.execTime),
              static_cast<double>(rb.execTime) * 1.05);
    // Larger thresholds can only reduce switch counts.
    if (GetParam() > 2.0) {
        EXPECT_LE(rb.contextSwitches, ra.contextSwitches);
    }
}

INSTANTIATE_TEST_SUITE_P(ThresholdUs, ThresholdSweep,
                         ::testing::Values(10.0, 20.0, 40.0, 80.0));

/** Thread-count sweep (Fig 15). */
class ThreadSweep : public ::testing::TestWithParam<int>
{};

TEST_P(ThreadSweep, MoreThreadsNeverHurtTotalWorkCompletion)
{
    SimConfig cfg = sweepConfig("SkyByte-Full");
    ExperimentOptions opt = sweepOpts();
    opt.threadsOverride = GetParam();
    System sys(cfg, "bfs-dense", makeParams(cfg, opt));
    const SimResult res = sys.run(kLimit);
    ASSERT_FALSE(res.timedOut);
    // Fixed total problem size: committed instructions are constant.
    EXPECT_NEAR(static_cast<double>(res.committedInstructions),
                static_cast<double>(opt.instrPerThread) * 8.0,
                static_cast<double>(opt.instrPerThread));
}

TEST_P(ThreadSweep, SwitchingWithOversubscriptionBeatsBlocking)
{
    if (GetParam() <= 8)
        GTEST_SKIP() << "baseline case";
    // The Fig 15 claim restated at test scale: coordinated switching
    // with extra threads must beat the blocking SkyByte-WP baseline at
    // 8 threads (the figure's 1.0 reference point).
    SimConfig blocking = sweepConfig("SkyByte-WP");
    ExperimentOptions base_opt = sweepOpts();
    base_opt.threadsOverride = 8;
    base_opt.instrPerThread = 60'000;
    SimConfig switching = sweepConfig("SkyByte-Full");
    ExperimentOptions opt = base_opt;
    opt.threadsOverride = GetParam();
    System base(blocking, "bfs-dense", makeParams(blocking, base_opt));
    System many(switching, "bfs-dense", makeParams(switching, opt));
    const SimResult rb = base.run(kLimit);
    const SimResult rm = many.run(kLimit);
    if (GetParam() <= 24) {
        EXPECT_LT(rm.execTime, rb.execTime);
    } else {
        // Past the sweet spot, Fig 15 itself shows regressions (dlrm):
        // switch overhead plus migration churn from 32 threads sharing
        // one promotion budget can cost more than the hidden flash
        // latency. The magnitude at test scale is not a paper claim;
        // require only that it stays in the same band.
        EXPECT_LT(static_cast<double>(rm.execTime),
                  static_cast<double>(rb.execTime) * 1.3);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(8, 16, 24, 32));

} // namespace
} // namespace skybyte
