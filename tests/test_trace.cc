/**
 * @file
 * Tests for the workload generators: determinism, instruction budgets,
 * address ranges, write ratios matching Table I, locality skew, and the
 * trace file round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "trace/trace_file.h"
#include "trace/workload.h"

namespace skybyte {
namespace {

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.numThreads = 2;
    p.instrPerThread = 50'000;
    p.footprintBytes = 8ULL * 1024 * 1024;
    p.seed = 7;
    return p;
}

class AllWorkloads : public ::testing::TestWithParam<std::string>
{};

TEST_P(AllWorkloads, RespectsInstructionBudget)
{
    auto wl = makeWorkload(GetParam(), smallParams());
    TraceCursor cursor(*wl, 0);
    TraceRecord rec;
    while (cursor.next(rec)) {
    }
    const std::uint64_t emitted = wl->instructionsEmitted(0);
    EXPECT_GE(emitted, 50'000u - 64);
    EXPECT_LE(emitted, 50'000u + 64);
    EXPECT_FALSE(cursor.next(rec)); // stays exhausted
    TraceBatch batch;
    EXPECT_EQ(wl->refill(0, batch), 0u); // refill too
}

TEST_P(AllWorkloads, AddressesWithinRegions)
{
    auto wl = makeWorkload(GetParam(), smallParams());
    const Addr data_end =
        Workload::kDataBase + wl->footprintBytes();
    TraceCursor cursor(*wl, 0);
    TraceRecord rec;
    for (int i = 0; i < 20000 && cursor.next(rec); ++i) {
        const bool in_data =
            rec.vaddr >= Workload::kDataBase && rec.vaddr < data_end;
        const bool in_private = rec.vaddr >= Workload::kPrivateBase;
        EXPECT_TRUE(in_data || in_private)
            << std::hex << rec.vaddr;
    }
}

TEST_P(AllWorkloads, DeterministicPerSeedAndThread)
{
    auto a = makeWorkload(GetParam(), smallParams());
    auto b = makeWorkload(GetParam(), smallParams());
    TraceCursor ca(*a, 1), cb(*b, 1);
    TraceRecord ra, rb;
    for (int i = 0; i < 5000; ++i) {
        const bool ok_a = ca.next(ra);
        const bool ok_b = cb.next(rb);
        ASSERT_EQ(ok_a, ok_b);
        if (!ok_a)
            break;
        EXPECT_EQ(ra.vaddr, rb.vaddr);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
        EXPECT_EQ(ra.computeOps, rb.computeOps);
    }
}

TEST_P(AllWorkloads, StreamIndependentOfRefillGranularity)
{
    // The per-thread record sequence must not depend on how many
    // records each refill produces: a record-at-a-time wrapper (the
    // seed contract) must replay the batched stream exactly.
    auto batched = makeWorkload(GetParam(), smallParams());
    SingleRecordWorkload stepped(
        makeWorkload(GetParam(), smallParams()));
    TraceCursor cb(*batched, 1), cs(stepped, 1);
    TraceRecord rb, rs;
    for (int i = 0; i < 5000; ++i) {
        const bool ok_b = cb.next(rb);
        const bool ok_s = cs.next(rs);
        ASSERT_EQ(ok_b, ok_s);
        if (!ok_b)
            break;
        ASSERT_EQ(rb.vaddr, rs.vaddr);
        ASSERT_EQ(rb.isWrite, rs.isWrite);
        ASSERT_EQ(rb.computeOps, rs.computeOps);
    }
}

TEST_P(AllWorkloads, ThreadsDiffer)
{
    auto wl = makeWorkload(GetParam(), smallParams());
    TraceCursor c0(*wl, 0), c1(*wl, 1);
    TraceRecord r0, r1;
    int same = 0, total = 0;
    for (int i = 0; i < 2000; ++i) {
        if (!c0.next(r0) || !c1.next(r1))
            break;
        total++;
        same += (r0.vaddr == r1.vaddr) ? 1 : 0;
    }
    ASSERT_GT(total, 0);
    EXPECT_LT(same, total); // not identical streams
}

INSTANTIATE_TEST_SUITE_P(
    Names, AllWorkloads,
    ::testing::Values("bc", "bfs-dense", "dlrm", "radix", "srad", "tpcc",
                      "ycsb", "uniform", "zipf", "scan", "ptrchase",
                      "phased", "zipf:theta=0.6,write_ratio=0.5",
                      "scan:stride=4096,write_ratio=0.2",
                      "phased:phase_instr=5000,theta=0.95"));

/** Write ratios should track Table I within a few points. */
class WriteRatio
    : public ::testing::TestWithParam<std::pair<const char *, double>>
{};

TEST_P(WriteRatio, MatchesTableOne)
{
    const auto [name, expected] = GetParam();
    WorkloadParams p = smallParams();
    p.instrPerThread = 400'000;
    auto wl = makeWorkload(name, p);
    TraceCursor cursor(*wl, 0);
    TraceRecord rec;
    std::uint64_t writes = 0, mem_ops = 0;
    while (cursor.next(rec)) {
        mem_ops++;
        writes += rec.isWrite ? 1 : 0;
    }
    const double ratio = static_cast<double>(writes)
                         / static_cast<double>(mem_ops);
    EXPECT_NEAR(ratio, expected, 0.06) << name;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, WriteRatio,
    ::testing::Values(std::pair<const char *, double>{"bc", 0.11},
                      std::pair<const char *, double>{"bfs-dense", 0.25},
                      std::pair<const char *, double>{"dlrm", 0.32},
                      std::pair<const char *, double>{"radix", 0.29},
                      std::pair<const char *, double>{"srad", 0.24},
                      std::pair<const char *, double>{"tpcc", 0.36},
                      std::pair<const char *, double>{"ycsb", 0.05}));

TEST(WorkloadDefaults, FootprintsAreSixtyFourthOfPaper)
{
    WorkloadParams p;
    p.footprintBytes = 0; // workload default
    for (const auto &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, p);
        const double expect_mb =
            workloadInfo(name).paperFootprintGb * 1024.0 / 64.0;
        const double got_mb =
            static_cast<double>(wl->footprintBytes()) / (1024.0 * 1024.0);
        EXPECT_NEAR(got_mb, expect_mb, expect_mb * 0.02) << name;
    }
}

TEST(WorkloadLocality, YcsbIsZipfSkewed)
{
    WorkloadParams p = smallParams();
    p.instrPerThread = 300'000;
    auto wl = makeWorkload("ycsb", p);
    TraceCursor cursor(*wl, 0);
    std::unordered_map<std::uint64_t, std::uint64_t> page_counts;
    TraceRecord rec;
    std::uint64_t total = 0;
    while (cursor.next(rec)) {
        if (rec.vaddr < Workload::kPrivateBase) {
            page_counts[pageNumber(rec.vaddr)]++;
            total++;
        }
    }
    // Top 1% of touched pages should absorb a disproportionate share.
    std::vector<std::uint64_t> counts;
    for (const auto &[pg, c] : page_counts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    const std::size_t top = std::max<std::size_t>(counts.size() / 100, 1);
    std::uint64_t top_sum = 0;
    for (std::size_t i = 0; i < top; ++i)
        top_sum += counts[i];
    EXPECT_GT(static_cast<double>(top_sum) / static_cast<double>(total),
              0.10);
}

TEST(WorkloadLocality, SradWritesAreStrided)
{
    // srad's column-major sweep should touch many distinct pages in a
    // short write window (the "sparse writes" SkyByte-W exploits).
    WorkloadParams p = smallParams();
    auto wl = makeWorkload("srad", p);
    TraceCursor cursor(*wl, 0);
    std::unordered_set<std::uint64_t> pages;
    TraceRecord rec;
    int writes = 0;
    while (writes < 500 && cursor.next(rec)) {
        if (rec.isWrite && rec.vaddr < Workload::kPrivateBase) {
            pages.insert(pageNumber(rec.vaddr));
            writes++;
        }
    }
    EXPECT_GT(pages.size(), 100u);
}

TEST(WorkloadErrors, UnknownNameThrows)
{
    EXPECT_THROW(makeWorkload("nope", smallParams()),
                 std::invalid_argument);
    EXPECT_THROW(workloadInfo("nope"), std::invalid_argument);
}

TEST(TraceFile, RoundTripPreservesRecords)
{
    WorkloadParams p = smallParams();
    p.instrPerThread = 5'000;
    auto original = makeWorkload("ycsb", p);
    const std::string path = "/tmp/skybyte_trace_test.bin";
    const std::uint64_t written = writeTraceFile(path, *original);
    EXPECT_GT(written, 0u);

    TraceFileWorkload replay(path);
    EXPECT_EQ(replay.name(), "ycsb");
    EXPECT_EQ(replay.numThreads(), 2);
    EXPECT_EQ(replay.footprintBytes(), original->footprintBytes());

    auto fresh = makeWorkload("ycsb", p);
    TraceCursor fresh_cursor(*fresh, 0);
    TraceCursor replay_cursor(replay, 0);
    TraceRecord a, b;
    std::uint64_t records = 0;
    while (fresh_cursor.next(a)) {
        ASSERT_TRUE(replay_cursor.next(b));
        EXPECT_EQ(a.vaddr, b.vaddr);
        EXPECT_EQ(a.isWrite, b.isWrite);
        EXPECT_EQ(a.computeOps, b.computeOps);
        records++;
    }
    EXPECT_FALSE(replay_cursor.next(b));
    EXPECT_GT(records, 100u);
    std::remove(path.c_str());
}

TEST(TraceFile, CorruptMagicRejected)
{
    const std::string path = ::testing::TempDir() + "/bad_magic.skytrc";
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACEFILE_________________";
    out.close();
    EXPECT_THROW(TraceFileWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, TruncatedFileRejected)
{
    WorkloadParams params;
    params.instrPerThread = 2'000;
    params.numThreads = 2;
    auto wl = makeWorkload("uniform", params);
    const std::string path = ::testing::TempDir() + "/trunc.skytrc";
    writeTraceFile(path, *wl);
    // Chop the file in half: the per-thread sections become short.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    out.close();
    EXPECT_THROW(TraceFileWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, AbsurdLengthFieldsRejectedWithoutAllocating)
{
    // A header claiming 2^32-1 threads / a giant name must be rejected
    // by the file-size bound, not by attempting the allocation.
    const std::string path = ::testing::TempDir() + "/absurd.skytrc";
    std::ofstream out(path, std::ios::binary);
    const char magic[8] = {'S', 'K', 'Y', 'T', 'R', 'C', '0', '1'};
    out.write(magic, sizeof(magic));
    const std::uint32_t threads = 0xffffffffu;
    const std::uint32_t name_len = 0xffffffffu;
    const std::uint64_t footprint = 1 << 20;
    out.write(reinterpret_cast<const char *>(&threads), 4);
    out.write(reinterpret_cast<const char *>(&name_len), 4);
    out.write(reinterpret_cast<const char *>(&footprint), 8);
    out.close();
    EXPECT_THROW(TraceFileWorkload{path}, std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(TraceFileWorkload("/tmp/does_not_exist.skytrc"),
                 std::runtime_error);
}

} // namespace
} // namespace skybyte
