/**
 * @file
 * Unit tests for the RNG / zipf sampler and the statistics primitives
 * (latency and ratio histograms, geometric mean).
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace skybyte {
namespace {

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t x = a.next();
        EXPECT_EQ(x, b.next());
        if (x != c.next())
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng rng(9);
    std::array<int, 10> buckets{};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        buckets[static_cast<std::size_t>(rng.uniform() * 10)]++;
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 * 0.9);
        EXPECT_LT(b, n / 10 * 1.1);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Zipf, SamplesAreInRangeAndSkewed)
{
    Rng rng(3);
    ZipfSampler zipf(10000, 0.99);
    std::uint64_t rank0 = 0, tail = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t s = zipf.sample(rng);
        ASSERT_LT(s, 10000u);
        if (s == 0)
            rank0++;
        if (s >= 5000)
            tail++;
    }
    // Rank 0 should get ~1/zeta share (>>1/10000); the top half of the
    // rank space should get only a small share.
    EXPECT_GT(rank0, static_cast<std::uint64_t>(n) / 100);
    EXPECT_LT(tail, static_cast<std::uint64_t>(n) / 4);
}

TEST(Zipf, LowerThetaIsLessSkewed)
{
    Rng r1(5), r2(5);
    ZipfSampler strong(100000, 0.99), weak(100000, 0.5);
    std::uint64_t strong_head = 0, weak_head = 0;
    for (int i = 0; i < 50000; ++i) {
        if (strong.sample(r1) < 100)
            strong_head++;
        if (weak.sample(r2) < 100)
            weak_head++;
    }
    EXPECT_GT(strong_head, weak_head);
}

TEST(LatencyHistogram, MeanAndCount)
{
    LatencyHistogram h;
    for (Tick t = 1; t <= 100; ++t)
        h.record(t * 100);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.meanTicks(), 5050.0, 1.0);
}

TEST(LatencyHistogram, PercentilesOrderedAndBracketed)
{
    LatencyHistogram h;
    for (int i = 0; i < 900; ++i)
        h.record(100); // fast bulk
    for (int i = 0; i < 100; ++i)
        h.record(100000); // slow tail
    const Tick p50 = h.percentileTicks(0.5);
    const Tick p95 = h.percentileTicks(0.95);
    EXPECT_LE(p50, p95);
    EXPECT_LT(p50, 200u);
    EXPECT_GT(p95, 50000u);
}

TEST(LatencyHistogram, CdfPointsMonotone)
{
    LatencyHistogram h;
    Rng rng(1);
    for (int i = 0; i < 10000; ++i)
        h.record(rng.below(1'000'000) + 1);
    double prev_frac = 0.0, prev_ns = 0.0;
    for (const auto &[ns, frac] : h.cdfPoints()) {
        EXPECT_GE(frac, prev_frac);
        EXPECT_GE(ns, prev_ns);
        prev_frac = frac;
        prev_ns = ns;
    }
    EXPECT_NEAR(prev_frac, 1.0, 1e-9);
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    LatencyHistogram a, b;
    a.record(10);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
}

TEST(RatioHistogram, CdfAtThresholds)
{
    RatioHistogram h;
    for (int i = 0; i < 50; ++i)
        h.record(0.1);
    for (int i = 0; i < 50; ++i)
        h.record(0.9);
    EXPECT_NEAR(h.cdfAt(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.cdfAt(1.0), 1.0, 1e-9);
    EXPECT_NEAR(h.mean(), 0.5, 0.01);
}

TEST(RatioHistogram, ClampsOutOfRange)
{
    RatioHistogram h;
    h.record(-1.0);
    h.record(2.0);
    EXPECT_EQ(h.count(), 2u);
    // -1 clamps into the first bucket and 2.0 into the last; the
    // exclusive CDF sees neither strictly below 0 and both below 1.
    EXPECT_NEAR(h.cdfAt(0.0), 0.0, 1e-9);
    EXPECT_NEAR(h.cdfAt(0.5), 0.5, 1e-9);
    EXPECT_NEAR(h.cdfAt(1.0), 1.0, 1e-9);
}

TEST(GeoMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geoMean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

} // namespace
} // namespace skybyte
