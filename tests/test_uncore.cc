/**
 * @file
 * Tests for the shared uncore: L3 behaviour, LLC MSHR capacity and
 * cross-core coalescing (§III-A C1: one CXL.mem request can serve
 * instructions from several cores), DelayHint fan-out, and the off-chip
 * latency histogram that backs Figure 3.
 */

#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "cpu/uncore.h"

namespace skybyte {
namespace {

/** Backend that lets the test control response timing and kind. */
class ManualBackend : public MemoryBackend
{
  public:
    struct Pending
    {
        Addr line;
        MemCallback cb;
    };

    void
    read(const MemRequest &req, Tick, MemCallback cb) override
    {
        pending.push_back({req.lineAddr, std::move(cb)});
    }

    void
    write(const MemRequest &req, Tick) override
    {
        writes.push_back(req.lineAddr);
    }

    void
    respondAll(MemResponseKind kind, LineValue value = 0)
    {
        auto batch = std::move(pending);
        pending.clear();
        for (auto &p : batch) {
            MemResponse resp;
            resp.kind = kind;
            resp.lineAddr = p.line;
            resp.value = value;
            p.cb(resp);
        }
    }

    std::vector<Pending> pending;
    std::vector<Addr> writes;
};

struct UncoreFixture
{
    UncoreFixture()
    {
        cfg.llc.sizeBytes = 64 * kCachelineBytes;
        cfg.llc.mshrs = 4;
        uncore = std::make_unique<Uncore>(cfg, eq, backend);
    }

    /** Slab-backed miss record (MissRef replaced the shared_ptr). */
    MissRef
    makeStatus(Addr line)
    {
        MissRef st = uncore->makeMiss();
        st->lineAddr = line;
        st->owner = nullptr; // no core callbacks in these tests
        return st;
    }

    EventQueue eq;
    CpuConfig cfg;
    ManualBackend backend;
    std::unique_ptr<Uncore> uncore;
};

TEST(Uncore, MissGoesToBackendOnce)
{
    UncoreFixture fx;
    auto s1 = fx.makeStatus(0x1000);
    EXPECT_EQ(fx.uncore->load(s1, 0), UncoreLoadResult::Pending);
    EXPECT_EQ(fx.backend.pending.size(), 1u);
    EXPECT_EQ(fx.uncore->llcMisses(), 1u);
}

TEST(Uncore, SameLineCoalesces)
{
    UncoreFixture fx;
    auto s1 = fx.makeStatus(0x2000);
    auto s2 = fx.makeStatus(0x2000);
    fx.uncore->load(s1, 0);
    EXPECT_EQ(fx.uncore->load(s2, 0), UncoreLoadResult::Pending);
    // One backend request serves both statuses.
    EXPECT_EQ(fx.backend.pending.size(), 1u);
    EXPECT_EQ(fx.uncore->llcCoalesced(), 1u);
}

TEST(Uncore, MshrCapacityBlocks)
{
    UncoreFixture fx; // 4 LLC MSHRs
    for (Addr a = 0; a < 4; ++a)
        EXPECT_EQ(fx.uncore->load(fx.makeStatus(a * 0x1000), 0),
                  UncoreLoadResult::Pending);
    EXPECT_EQ(fx.uncore->load(fx.makeStatus(0x9000), 0),
              UncoreLoadResult::MshrBlocked);
    EXPECT_EQ(fx.uncore->llcMshrBlocks(), 1u);
    // A response frees the entry.
    fx.backend.respondAll(MemResponseKind::Data);
    EXPECT_EQ(fx.uncore->load(fx.makeStatus(0x9000), 0),
              UncoreLoadResult::Pending);
}

TEST(Uncore, DataResponseFillsL3)
{
    UncoreFixture fx;
    auto s = fx.makeStatus(0x3000);
    fx.uncore->load(s, 0);
    fx.backend.respondAll(MemResponseKind::Data, 777);
    EXPECT_TRUE(s->done);
    EXPECT_EQ(s->value, 777u);
    // Subsequent load hits in L3 with the functional value.
    auto s2 = fx.makeStatus(0x3000);
    EXPECT_EQ(fx.uncore->load(s2, 0), UncoreLoadResult::HitL3);
    EXPECT_EQ(s2->value, 777u);
}

TEST(Uncore, HintMarksAllWaiters)
{
    UncoreFixture fx;
    auto s1 = fx.makeStatus(0x4000);
    auto s2 = fx.makeStatus(0x4000);
    fx.uncore->load(s1, 0);
    fx.uncore->load(s2, 0);
    fx.backend.respondAll(MemResponseKind::DelayHint);
    EXPECT_TRUE(s1->hinted);
    EXPECT_TRUE(s2->hinted);
    EXPECT_FALSE(s1->done);
    // The transaction ended: the line is NOT in L3.
    auto s3 = fx.makeStatus(0x4000);
    EXPECT_EQ(fx.uncore->load(s3, 0), UncoreLoadResult::Pending);
}

TEST(Uncore, DirtyL3VictimWritesBack)
{
    UncoreFixture fx;
    // Fill L3 with dirty lines via writebacks until something spills.
    for (Addr i = 0; i < 200; ++i)
        fx.uncore->writebackToL3(i * kCachelineBytes, i, 0);
    EXPECT_GT(fx.backend.writes.size(), 0u);
}

TEST(Uncore, OffchipHistogramRecordsLatency)
{
    UncoreFixture fx;
    auto s = fx.makeStatus(0x5000);
    s->issuedAt = 0;
    fx.uncore->load(s, 0);
    // Respond at a later simulated time.
    fx.eq.schedule(nsToTicks(500.0), [&] {
        fx.backend.respondAll(MemResponseKind::Data);
    });
    fx.eq.run();
    EXPECT_EQ(fx.uncore->offchipLatency().count(), 1u);
    EXPECT_GE(fx.uncore->offchipLatency().meanTicks(),
              static_cast<double>(nsToTicks(400.0)));
}

} // namespace
} // namespace skybyte
