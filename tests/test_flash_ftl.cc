/**
 * @file
 * Tests for the flash substrate: channel timing per NAND family
 * (Table IV), die/bus queueing, the Algorithm 1 delay estimator, FTL
 * mapping with out-of-place updates, GC triggering and reclamation, and
 * preconditioning (§VI-A).
 */

#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "ssd/flash.h"
#include "ssd/ftl.h"

namespace skybyte {
namespace {

FlashConfig
tinyFlash()
{
    FlashConfig cfg;
    cfg.channels = 2;
    cfg.chipsPerChannel = 2;
    cfg.diesPerChip = 2;
    cfg.blocksPerPlane = 4; // 16 blocks/channel
    cfg.pagesPerBlock = 8;
    return cfg;
}

TEST(FlashChannel, ReadLatencyIsCellPlusTransfer)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    FlashChannel ch(0, cfg, eq);
    Tick done = 0;
    ch.enqueue(FlashOpKind::Read, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_EQ(done, cfg.timing.readLatency + cfg.pageTransferTime);
}

TEST(FlashChannel, NandPresetsOrdering)
{
    // Table IV: ULL < ULL2 < SLC < MLC read latency.
    const Tick ull = nandTiming(NandType::ULL).readLatency;
    const Tick ull2 = nandTiming(NandType::ULL2).readLatency;
    const Tick slc = nandTiming(NandType::SLC).readLatency;
    const Tick mlc = nandTiming(NandType::MLC).readLatency;
    EXPECT_LT(ull, ull2);
    EXPECT_LT(ull2, slc);
    EXPECT_LT(slc, mlc);
    EXPECT_EQ(ull, usToTicks(3.0));
    EXPECT_EQ(nandTiming(NandType::MLC).eraseLatency, usToTicks(3000.0));
}

TEST(FlashChannel, DieParallelismOverlapsReads)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash(); // 4 dies on the channel
    FlashChannel ch(0, cfg, eq);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i)
        ch.enqueue(FlashOpKind::Read, 0, [&](Tick t) { done.push_back(t); });
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // Cell reads overlap; only the bus transfers serialize.
    const Tick serial = 4 * (cfg.timing.readLatency + cfg.pageTransferTime);
    EXPECT_LT(done.back(), serial);
    EXPECT_GE(done.back(),
              cfg.timing.readLatency + 4 * cfg.pageTransferTime);
}

TEST(FlashChannel, EstimateGrowsWithQueueDepth)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    FlashChannel ch(0, cfg, eq);
    const Tick idle = ch.estimateReadDelay(0);
    EXPECT_EQ(idle, cfg.timing.readLatency + cfg.pageTransferTime);
    for (int i = 0; i < 16; ++i)
        ch.enqueue(FlashOpKind::Read, 0, nullptr);
    EXPECT_GT(ch.estimateReadDelay(0), idle);
    EXPECT_EQ(ch.pendingReads(), 16u);
    eq.run();
    EXPECT_EQ(ch.pendingReads(), 0u);
    EXPECT_EQ(ch.completedReads(), 16u);
}

TEST(FlashChannel, GcActiveFlag)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    FlashChannel ch(0, cfg, eq);
    EXPECT_FALSE(ch.gcActive());
    ch.setGcActive(true);
    EXPECT_TRUE(ch.gcActive());
}

TEST(Ftl, ReadMapsOnDemandAndCompletes)
{
    EventQueue eq;
    Ftl ftl(tinyFlash(), eq, 1);
    Tick done = 0;
    ftl.readPage(5, 0, [&](Tick t) { done = t; });
    eq.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ftl.stats().hostReads, 1u);
}

TEST(Ftl, WriteIsOutOfPlace)
{
    EventQueue eq;
    Ftl ftl(tinyFlash(), eq, 1);
    PageData data{};
    data[0] = 42;
    ftl.writePage(3, 0, data, nullptr);
    ftl.writePage(3, 0, data, nullptr); // rewrite invalidates the old
    eq.run();
    EXPECT_EQ(ftl.stats().hostPrograms, 2u);
    EXPECT_EQ(ftl.pageData(3)[0], 42u);
}

TEST(Ftl, FunctionalLinePeek)
{
    EventQueue eq;
    Ftl ftl(tinyFlash(), eq, 1);
    PageData data{};
    data[7] = 1234;
    ftl.writePage(2, 0, data, nullptr);
    EXPECT_EQ(ftl.peekLine(2 * kPageBytes + 7 * kCachelineBytes), 1234u);
    EXPECT_EQ(ftl.peekLine(9 * kPageBytes), 0u);
}

TEST(Ftl, GcTriggersAndReclaims)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    Ftl ftl(cfg, eq, 1);
    // Write the same small set of pages repeatedly: out-of-place updates
    // create dead pages until GC must run.
    PageData data{};
    for (int round = 0; round < 60; ++round) {
        for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
            ftl.writePage(lpn * cfg.channels, eq.now(), data, nullptr);
        eq.run();
    }
    EXPECT_GT(ftl.stats().gcRuns, 0u);
    EXPECT_GT(ftl.stats().gcErases, 0u);
    // Device still functional and mapped.
    Tick done = 0;
    ftl.readPage(0, eq.now(), [&](Tick t) { done = t; });
    eq.run();
    EXPECT_GT(done, 0u);
    // Free blocks recovered above zero.
    EXPECT_GT(ftl.freeBlocks(0), 0u);
}

TEST(Ftl, PreconditionLeavesFreeBlocksNearThreshold)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    Ftl ftl(cfg, eq, 1);
    ftl.precondition(16);
    const auto threshold = static_cast<std::uint32_t>(
        cfg.blocksPerChannel() * cfg.gcFreeBlockThreshold);
    for (std::uint32_t c = 0; c < cfg.channels; ++c) {
        EXPECT_GE(ftl.freeBlocks(c), threshold);
        EXPECT_LE(ftl.freeBlocks(c), threshold + 3);
    }
}

TEST(Ftl, EstimatorSeesGc)
{
    EventQueue eq;
    Ftl ftl(tinyFlash(), eq, 1);
    EXPECT_FALSE(ftl.gcActiveFor(0));
}

TEST(Ftl, ChannelStriping)
{
    EventQueue eq;
    FlashConfig cfg = tinyFlash();
    Ftl ftl(cfg, eq, 1);
    // LPN n maps to channel n % channels.
    EXPECT_EQ(&ftl.channelOf(0), &ftl.channelOf(2));
    EXPECT_NE(&ftl.channelOf(0), &ftl.channelOf(1));
}

} // namespace
} // namespace skybyte
